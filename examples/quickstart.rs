//! Quickstart: draw uniform random samples of a spatial range join
//! without computing the join.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use srj::{
    generate, split_rs, BbstSampler, DatasetKind, DatasetSpec, JoinSampler, Rect, SampleConfig,
};

fn main() {
    // 1. Get two point sets. Here: a Foursquare-like synthetic POI set,
    //    randomly split into R and S (the paper's default |R| ≈ |S|).
    let points = generate(&DatasetSpec::new(DatasetKind::PoiClusters, 200_000, 42));
    let (r, s) = split_rs(&points, 0.5, 7);
    println!("n = |R| = {}, m = |S| = {}", r.len(), s.len());

    // 2. Build the BBST sampler for window half-extent l = 100
    //    (the paper's default on the [0, 10000]^2 domain).
    let config = SampleConfig::new(100.0);
    let mut sampler = BbstSampler::build(&r, &s, &config);
    let report = sampler.report();
    println!(
        "built in {:?} (pre-sort {:?}, grid+BBSTs {:?}, upper bounds {:?})",
        report.build_total(),
        report.preprocessing,
        report.grid_mapping,
        report.upper_bounding,
    );

    // 3. Draw one million uniform, independent join samples.
    let t = 1_000_000;
    let mut rng = SmallRng::seed_from_u64(1);
    let samples = sampler.sample(t, &mut rng).expect("join is non-empty");
    let report = sampler.report();
    println!(
        "sampled {} pairs in {:?} ({} loop iterations, {:.4} accept rate)",
        samples.len(),
        report.sampling,
        report.iterations,
        report.samples as f64 / report.iterations as f64,
    );

    // 4. Every sample is a genuine join result.
    for pair in samples.iter().take(5) {
        let rp = r[pair.r as usize];
        let sp = s[pair.s as usize];
        assert!(Rect::window(rp, config.half_extent).contains(sp));
        println!(
            "  ({:.1}, {:.1}) joins ({:.1}, {:.1})",
            rp.x, rp.y, sp.x, sp.y
        );
    }
    println!(
        "memory footprint: {:.1} MiB",
        sampler.memory_bytes() as f64 / (1 << 20) as f64
    );
}
