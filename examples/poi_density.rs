//! Density visualization from join samples (a motivating application
//! from the paper's introduction: "(kernel) density visualization ...
//! random samples are sufficient to obtain highly accurate results").
//!
//! Joins a Foursquare-like POI set with itself (venues near venues),
//! estimates the spatial density of join results from a *sample*, and
//! compares it against the exact density — printing both as ASCII
//! heatmaps plus the relative error.
//!
//! ```sh
//! cargo run --release --example poi_density
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use srj::{generate, split_rs, BbstSampler, DatasetKind, DatasetSpec, JoinSampler, SampleConfig};
use srj_geom::DEFAULT_DOMAIN;

const GRID: usize = 16;

/// Bins join results by the R-point's location into a GRID×GRID raster.
fn raster_of(pairs: &[(f64, f64)]) -> Vec<f64> {
    let mut bins = vec![0f64; GRID * GRID];
    let cell = DEFAULT_DOMAIN / GRID as f64;
    for &(x, y) in pairs {
        let i = ((x / cell) as usize).min(GRID - 1);
        let j = ((y / cell) as usize).min(GRID - 1);
        bins[j * GRID + i] += 1.0;
    }
    let total: f64 = bins.iter().sum();
    if total > 0.0 {
        for b in &mut bins {
            *b /= total;
        }
    }
    bins
}

fn print_heatmap(title: &str, bins: &[f64]) {
    const SHADES: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let max = bins.iter().cloned().fold(0.0f64, f64::max);
    println!("{title}");
    for j in (0..GRID).rev() {
        let row: String = (0..GRID)
            .map(|i| {
                let v = bins[j * GRID + i] / max.max(f64::MIN_POSITIVE);
                SHADES[((v * 9.0).round() as usize).min(9)]
            })
            .collect();
        println!("  |{row}|");
    }
}

fn main() {
    let points = generate(&DatasetSpec::new(DatasetKind::PoiClusters, 120_000, 3));
    let (r, s) = split_rs(&points, 0.5, 11);
    let config = SampleConfig::new(100.0);

    // Exact density: materialise the join (small scale makes it feasible
    // here; that is exactly what the sampler avoids at real scale).
    let exact_pairs: Vec<(f64, f64)> = srj::join::grid_join(&r, &s, config.half_extent)
        .into_iter()
        .map(|(ri, _)| (r[ri as usize].x, r[ri as usize].y))
        .collect();
    println!("|J| = {}", exact_pairs.len());
    let exact = raster_of(&exact_pairs);

    // Sampled density: 50k samples, i.e. a small fraction of |J|.
    let mut sampler = BbstSampler::build(&r, &s, &config);
    let mut rng = SmallRng::seed_from_u64(21);
    let t = 50_000;
    let sampled_pairs: Vec<(f64, f64)> = sampler
        .sample(t, &mut rng)
        .expect("non-empty join")
        .into_iter()
        .map(|p| (r[p.r as usize].x, r[p.r as usize].y))
        .collect();
    let sampled = raster_of(&sampled_pairs);

    print_heatmap("exact join density:", &exact);
    print_heatmap(&format!("density from {t} samples:"), &sampled);

    // L1 distance between the two distributions.
    let l1: f64 = exact.iter().zip(&sampled).map(|(a, b)| (a - b).abs()).sum();
    println!("L1 distance between densities: {l1:.4} (0 = identical, 2 = disjoint)");
    println!(
        "sampling cost: {:?} vs join cost {:?}",
        sampler.report().sampling,
        "Ω(|J|) for the exact path"
    );
    assert!(l1 < 0.2, "sampled density diverged from the exact density");
}
