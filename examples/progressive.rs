//! Progressive sampling with early stopping (paper §II: `t` "can be ∞";
//! samplers "can stop sampling whenever sufficient join samples are
//! obtained") — the online-aggregation pattern of the join-sampling
//! literature the paper builds on (ripple joins, wander join).
//!
//! Question answered online: *what fraction of road-network join pairs
//! lies in the busiest quarter of the map?* The estimator consumes
//! samples one at a time and stops as soon as its 95% confidence
//! interval is tighter than ±1%.
//!
//! ```sh
//! cargo run --release --example progressive
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use srj::{generate, split_rs, BbstSampler, DatasetKind, DatasetSpec, JoinSampler, SampleConfig};

fn main() {
    let points = generate(&DatasetSpec::new(DatasetKind::RoadLike, 150_000, 6));
    let (r, s) = split_rs(&points, 0.5, 23);
    let config = SampleConfig::new(100.0);
    let mut sampler = BbstSampler::build(&r, &s, &config);
    let mut rng = SmallRng::seed_from_u64(31);

    let in_region = |p: &srj::Point| p.x < 5_000.0 && p.y < 5_000.0;

    let mut hits = 0usize;
    let mut n = 0usize;
    let target_half_width = 0.01; // ±1% at 95% confidence
    for pair in sampler.sample_iter(&mut rng) {
        n += 1;
        if in_region(&r[pair.r as usize]) {
            hits += 1;
        }
        if n.is_multiple_of(1_000) {
            let p = hits as f64 / n as f64;
            let half_width = 1.96 * (p * (1.0 - p) / n as f64).sqrt();
            if half_width < target_half_width {
                println!(
                    "converged after {n} samples: share = {:.3} ± {:.3}",
                    p, half_width
                );
                break;
            }
        }
    }
    assert!(n > 0, "sampler produced no samples");

    // Verify against the exact answer.
    let join = srj::join::grid_join(&r, &s, config.half_extent);
    let exact = join
        .iter()
        .filter(|&&(ri, _)| in_region(&r[ri as usize]))
        .count() as f64
        / join.len() as f64;
    let estimate = hits as f64 / n as f64;
    println!("exact share = {exact:.3}, estimate = {estimate:.3}");
    println!(
        "stopped after {n} samples vs |J| = {} pairs the exact path scans",
        join.len()
    );
    assert!(
        (estimate - exact).abs() < 0.02,
        "estimator outside tolerance"
    );
}
