//! Running the pipeline on external data files (the path you would use
//! with the paper's real datasets — CaStreet, Foursquare, IMIS, NYC —
//! once obtained from their sources; see README).
//!
//! This example writes a synthetic dataset to a CSV file to stand in for
//! a downloaded file, then runs the full load → normalise → split →
//! sample pipeline from disk.
//!
//! ```sh
//! cargo run --release --example real_data [path/to/points.csv]
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use srj::datagen::{read_points_file, write_points_file};
use srj::geom::{normalize_to_domain, DEFAULT_DOMAIN};
use srj::{generate, split_rs, BbstSampler, DatasetKind, DatasetSpec, JoinSampler, SampleConfig};

fn main() {
    let path = match std::env::args().nth(1) {
        Some(p) => std::path::PathBuf::from(p),
        None => {
            // No file given: fabricate one, as a stand-in for a download.
            let dir = std::env::temp_dir().join("srj-real-data");
            std::fs::create_dir_all(&dir).expect("create temp dir");
            let path = dir.join("points.csv");
            let pts = generate(&DatasetSpec::new(DatasetKind::PoiClusters, 100_000, 12));
            write_points_file(&path, &pts).expect("write CSV");
            println!(
                "no input file given; wrote a synthetic one to {}",
                path.display()
            );
            path
        }
    };

    // 1. Load.
    let mut points = read_points_file(&path).expect("parse point file");
    println!("loaded {} points from {}", points.len(), path.display());

    // 2. Normalise to the paper's [0, 10000]² domain (§V-A).
    normalize_to_domain(&mut points, DEFAULT_DOMAIN);

    // 3. Random R/S split, |R| ≈ |S| (§V-A).
    let (r, s) = split_rs(&points, 0.5, 99);

    // 4. Build and sample with the paper's defaults.
    let config = SampleConfig::new(100.0);
    let mut sampler = BbstSampler::build(&r, &s, &config);
    let mut rng = SmallRng::seed_from_u64(5);
    match sampler.sample(100_000, &mut rng) {
        Ok(samples) => {
            let report = sampler.report();
            println!(
                "drew {} uniform join samples in {:?} (build {:?}, accept rate {:.3})",
                samples.len(),
                report.sampling,
                report.build_total(),
                report.samples as f64 / report.iterations as f64,
            );
            println!(
                "estimated |J| from acceptance statistics: {:.0}",
                sampler.estimate_join_size().unwrap()
            );
        }
        Err(e) => println!("sampling failed: {e} (is the join empty at l = 100?)"),
    }
}
