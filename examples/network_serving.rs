//! Network serving quickstart: an in-process `srj-server` plus clients
//! driving it over loopback TCP — the whole request/batch/backpressure
//! path without leaving one binary.
//!
//! ```sh
//! cargo run --release --example network_serving
//! ```
//!
//! For separate processes, see `srj-serve` / `srj-loadgen` (README
//! "Network serving").

use std::time::Instant;

use srj::{datagen, Client, DatasetRegistry, RequestStatus, SampleRequest, Server, ServerConfig};

fn main() {
    // 1. Register a dataset under an id — ids are what clients name in
    //    their requests, and the engine-cache identity.
    let points = datagen::generate(&datagen::DatasetSpec::new(
        datagen::DatasetKind::PoiClusters,
        40_000,
        7,
    ));
    let (r, s) = datagen::split_rs(&points, 0.5, 0xD15C);
    println!("dataset 1: |R| = {}, |S| = {}", r.len(), s.len());
    let mut registry = DatasetRegistry::new();
    registry.register(1, r, s);

    // 2. Start the server on an OS-assigned loopback port.
    let mut server =
        Server::start("127.0.0.1:0", registry, ServerConfig::default()).expect("bind loopback");
    let addr = server.local_addr();
    println!("serving on {addr}");

    // 3. Concurrent clients: each opens one connection and draws a
    //    sample stream. The first request pays the index build (planner
    //    picks the algorithm); the rest hit the engine cache.
    let start = Instant::now();
    let total: u64 = std::thread::scope(|scope| {
        (0..4u64)
            .map(|cid| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let outcome = client
                        .sample(SampleRequest {
                            req_id: 0,
                            dataset: 1,
                            l: 100.0,
                            algorithm: None, // let the planner pick
                            shards: 1,
                            t: 100_000,
                            seed: 1 + cid,
                        })
                        .expect("sample");
                    assert_eq!(outcome.status, RequestStatus::Ok);
                    println!(
                        "client {cid}: {} samples, server-side {:.1} ms, {:.2} rejections/sample",
                        outcome.pairs.len(),
                        outcome.stats.elapsed_ns as f64 / 1e6,
                        outcome.stats.iterations as f64 / outcome.stats.samples.max(1) as f64
                    );
                    outcome.pairs.len() as u64
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum()
    });
    let wall = start.elapsed();
    println!(
        "{total} samples over TCP in {:.2}s ({:.0} samples/sec)",
        wall.as_secs_f64(),
        total as f64 / wall.as_secs_f64()
    );

    // 4. Server-wide stats over the wire, then graceful shutdown.
    let mut client = Client::connect(addr).expect("connect");
    let stats = client.server_stats().expect("stats");
    println!(
        "server: {} requests, {} samples, cache {} hit / {} miss, p99 {:.1} ms",
        stats.queries,
        stats.samples,
        stats.cache_hits,
        stats.cache_misses,
        stats.p99_ns as f64 / 1e6
    );
    server.shutdown();
    println!("server shut down cleanly");
}
