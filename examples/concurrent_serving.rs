//! Concurrent query serving with `srj-engine`: build the index once,
//! then serve uniform join samples from many threads at once.
//!
//! ```sh
//! cargo run --release --example concurrent_serving
//! ```
//!
//! The demo
//! 1. generates a clustered POI-style workload,
//! 2. lets the planner pick the sampler (`Engine::auto`) and prints why,
//! 3. serves batched sample queries from 8 threads against the one
//!    shared index,
//! 4. prints the engine's aggregate statistics (throughput, p50/p99),
//! 5. shows the `(dataset id, l)` engine cache absorbing a repeated
//!    window size.

use std::sync::Arc;
use std::thread;
use std::time::Instant;

use srj::{generate, split_rs, DatasetKind, DatasetSpec, Engine, EngineCache, Rect, SampleConfig};

const THREADS: u64 = 8;
const QUERIES_PER_THREAD: usize = 50;
const SAMPLES_PER_QUERY: usize = 2_000;

fn main() {
    // 1. A clustered workload on the paper's [0, 10000]² domain.
    let points = generate(&DatasetSpec::new(DatasetKind::PoiClusters, 120_000, 42));
    let (r, s) = split_rs(&points, 0.5, 7);
    let l = 100.0; // the paper's default half-extent
    let config = SampleConfig::new(l);

    // 2. Build once; the planner picks the algorithm from an O(n + m)
    //    estimate of the workload's selectivity.
    let t0 = Instant::now();
    let engine = Arc::new(Engine::auto(&r, &s, &config));
    let build_time = t0.elapsed();
    let plan = engine.plan().expect("auto always records a plan");
    println!("planner chose  : {}", plan.algorithm);
    println!("  reason       : {}", plan.reason);
    match (plan.est_join_size, plan.est_overhead) {
        (Some(j), Some(o)) => {
            println!("  est. |J|     : {j:.0}");
            println!("  est. Σµ/|J|  : {o:.2}");
        }
        _ => println!("  estimates    : skipped (small-input fast path)"),
    }
    println!(
        "built in       : {build_time:?} ({} bytes retained)",
        engine.memory_bytes()
    );

    // 3. Serve from THREADS threads; each gets its own seeded handle
    //    (own RNG, own phase report) against the shared index.
    let t1 = Instant::now();
    thread::scope(|scope| {
        for tid in 0..THREADS {
            let engine = Arc::clone(&engine);
            let r = &r;
            let s = &s;
            scope.spawn(move || {
                let mut handle = engine.handle_seeded(0x5EED ^ tid);
                for _ in 0..QUERIES_PER_THREAD {
                    let pairs = handle.sample(SAMPLES_PER_QUERY).expect("non-empty join");
                    // spot-check: every draw is a genuine join result
                    let p = pairs[0];
                    assert!(Rect::window(r[p.r as usize], l).contains(s[p.s as usize]));
                }
            });
        }
    });
    let serve_time = t1.elapsed();

    // 4. Aggregate statistics from the engine.
    let stats = engine.stats();
    let total = stats.samples as f64;
    println!(
        "\nserved         : {} queries / {} samples from {THREADS} threads",
        stats.queries, stats.samples
    );
    println!(
        "wall time      : {serve_time:?} ({:.0} samples/sec)",
        total / serve_time.as_secs_f64()
    );
    println!(
        "latency        : mean {:?}  p50 {:?}  p99 {:?}",
        stats.mean_latency, stats.p50_latency, stats.p99_latency
    );

    // 5. Progressive sampling: stream until a stopping rule fires (here,
    //    1000 distinct r ids — "stop sampling whenever sufficient join
    //    samples are obtained", §II). The stream records one aggregate
    //    stats query per internal batch, not one per draw.
    let queries_before = engine.stats().queries;
    let mut h = engine.handle_seeded(777);
    let mut distinct_r = std::collections::HashSet::new();
    let mut drawn = 0u64;
    for pair in h.stream() {
        drawn += 1;
        distinct_r.insert(pair.r);
        if distinct_r.len() >= 1_000 {
            break;
        }
    }
    println!(
        "\nstreamed       : {drawn} draws to reach 1000 distinct r ids \
         ({} stats queries recorded)",
        engine.stats().queries - queries_before
    );

    // 6. Repeated window sizes hit the engine cache instead of
    //    rebuilding the index.
    let cache = EngineCache::new(8);
    const DATASET_ID: u64 = 1;
    for pass in 0..3 {
        let t = Instant::now();
        let e = cache.get_or_build(DATASET_ID, l, || Engine::auto(&r, &s, &config));
        let mut h = e.handle_seeded(pass);
        h.sample(1_000).unwrap();
        println!(
            "cache pass {pass} : {:?} ({} hit / {} miss)",
            t.elapsed(),
            cache.hits(),
            cache.misses()
        );
    }
}
