//! Training data for learned cardinality estimation (introduction
//! application: "learned models for cardinality estimation ... are
//! trained on random samples of join results").
//!
//! Uses IMIS-like trajectory data. For a sweep of window sizes, the
//! example (a) draws a fixed budget of uniform join samples, (b) derives
//! an unbiased join-cardinality estimate from the sampler's acceptance
//! statistics, and (c) emits (l, estimate) training rows, comparing each
//! against the exact cardinality. The point: labels for *every* window
//! size come at sampling cost, not at `Ω(|J|)` join cost.
//!
//! ```sh
//! cargo run --release --example cardinality_training
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use srj::{generate, split_rs, BbstSampler, DatasetKind, DatasetSpec, JoinSampler, SampleConfig};

fn main() {
    let points = generate(&DatasetSpec::new(DatasetKind::TrajectoryLike, 100_000, 4));
    let (r, s) = split_rs(&points, 0.5, 19);

    println!("     l     |J| exact     |J| estimated   rel-err   build+sample time");
    let mut worst = 0f64;
    for l in [25.0, 50.0, 100.0, 200.0] {
        let config = SampleConfig::new(l);
        let t0 = std::time::Instant::now();
        let mut sampler = BbstSampler::build(&r, &s, &config);
        let mut rng = SmallRng::seed_from_u64(l as u64);
        // fixed training budget per label
        let _training_rows = sampler.sample(20_000, &mut rng).expect("non-empty join");
        let elapsed = t0.elapsed();

        // Unbiased cardinality estimate: each iteration accepts with
        // probability |J| / Σµ  ⇒  |J| ≈ Σµ · (accepted / iterations).
        let est = sampler.estimate_join_size().expect("sampled at least once");

        let exact = srj::join::join_count(&r, &s, l) as f64;
        let rel = (est - exact).abs() / exact;
        worst = worst.max(rel);
        println!(
            "{l:>6}  {exact:>12.0}  {est:>15.0}  {:>7.2}%   {elapsed:?}",
            rel * 100.0
        );
    }
    println!("worst relative error: {:.2}%", worst * 100.0);
    assert!(worst < 0.1, "cardinality estimates should be within 10%");
}
