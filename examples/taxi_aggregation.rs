//! Approximate spatial aggregation over an NYC-taxi-like join
//! (introduction application: "spatial aggregation ... random samples
//! are sufficient").
//!
//! The analytical question: *for each borough-like zone, how many
//! (pick-up, drop-off) pairs fall within l of each other?* — i.e. the
//! per-zone share of the spatial range join. Exact answering costs
//! `Ω(|J|)`; with `t` uniform samples, `share ≈ hits/t` with standard
//! Monte-Carlo error, and the absolute count is `share × |J|`.
//!
//! ```sh
//! cargo run --release --example taxi_aggregation
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use srj::{generate, split_rs, BbstSampler, DatasetKind, DatasetSpec, JoinSampler, SampleConfig};
use srj_geom::DEFAULT_DOMAIN;

const ZONES: usize = 4; // 4×4 zones

fn zone_of(x: f64, y: f64) -> usize {
    let cell = DEFAULT_DOMAIN / ZONES as f64;
    let i = ((x / cell) as usize).min(ZONES - 1);
    let j = ((y / cell) as usize).min(ZONES - 1);
    j * ZONES + i
}

fn main() {
    // pick-ups = R, drop-offs = S
    let points = generate(&DatasetSpec::new(DatasetKind::TaxiHotspots, 60_000, 9));
    let (pickups, dropoffs) = split_rs(&points, 0.5, 13);
    let config = SampleConfig::new(40.0);

    // Ground truth per zone (feasible only at this demo scale).
    let join = srj::join::grid_join(&pickups, &dropoffs, config.half_extent);
    let join_size = join.len() as f64;
    let mut exact = [0f64; ZONES * ZONES];
    for &(ri, _) in &join {
        let p = pickups[ri as usize];
        exact[zone_of(p.x, p.y)] += 1.0;
    }

    // Estimate from samples. |J| itself is estimated from the sampler's
    // acceptance statistics: |J| ≈ Σµ × accept-rate (unbiased because a
    // sampling iteration accepts with probability |J| / Σµ).
    let mut sampler = BbstSampler::build(&pickups, &dropoffs, &config);
    let mut rng = SmallRng::seed_from_u64(17);
    let t = 40_000;
    let samples = sampler.sample(t, &mut rng).expect("non-empty join");
    let est_join_size = sampler.estimate_join_size().expect("sampled at least once");

    let mut est = [0f64; ZONES * ZONES];
    for p in &samples {
        let rp = pickups[p.r as usize];
        est[zone_of(rp.x, rp.y)] += 1.0;
    }

    println!("|J| exact = {join_size:.0}, estimated = {est_join_size:.0}");
    println!("zone  exact-count  est-count  rel-err");
    let mut max_rel = 0f64;
    for z in 0..ZONES * ZONES {
        let exact_cnt = exact[z];
        let est_cnt = est[z] / t as f64 * est_join_size;
        let rel = if exact_cnt > 0.0 {
            (est_cnt - exact_cnt).abs() / exact_cnt
        } else {
            0.0
        };
        // only report zones carrying ≥ 1% of the join
        if exact_cnt >= join_size * 0.01 {
            println!(
                "{z:>4}  {exact_cnt:>11.0}  {est_cnt:>9.0}  {:>6.2}%",
                rel * 100.0
            );
            max_rel = max_rel.max(rel);
        }
    }
    println!(
        "max relative error over major zones: {:.2}%",
        max_rel * 100.0
    );
    assert!(
        (est_join_size - join_size).abs() / join_size < 0.05,
        "join size estimate off by more than 5%"
    );
    assert!(
        max_rel < 0.2,
        "zone aggregate estimate off by more than 20%"
    );
}
