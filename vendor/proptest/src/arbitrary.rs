//! `any::<T>()` for the types the workspace asks for.

use core::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for "any `T`".
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}
