//! The [`Strategy`] trait and the built-in strategies for ranges,
//! tuples, and mapped values.

use core::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy that applies `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.index(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.index(span + 1) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start
                    + (rng.unit_f64() as $t) * (self.end - self.start);
                if v < self.end { v } else { self.start }
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                start + (rng.unit_f64() as $t) * (end - start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
