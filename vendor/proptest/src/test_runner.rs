//! Test-case configuration and the deterministic case RNG.

/// Configuration block accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; this shim matches it.
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-case RNG (xoshiro256++ seeded from the test name
/// and case index) so every run generates the same case sequence.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// RNG for case `case` of the property named `name`.
    pub fn deterministic(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index, then
        // SplitMix64-expanded into the full state.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^= (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut s = [0u64; 4];
        for word in &mut s {
            h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = h;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *word = z ^ (z >> 31);
        }
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        TestRng { s }
    }

    /// Next 64 uniformly random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, n)`.
    pub fn index(&mut self, n: u64) -> u64 {
        assert!(n > 0, "index bound must be positive");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}
