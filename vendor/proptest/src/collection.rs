//! Collection strategies (`prop::collection::vec`).

use core::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing a `Vec` whose length is drawn from `len` and whose
/// elements are drawn from `element`.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(self.len.start < self.len.end, "empty length range");
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + rng.index(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `Vec` strategy with lengths in `len` (half-open, like proptest's
/// range-based size parameter).
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}
