//! Offline stand-in for the subset of the `proptest` API this
//! workspace's property tests use.
//!
//! The build container cannot reach a cargo registry, so the real
//! `proptest` crate is unavailable. This shim keeps the `proptest!`
//! tests running as genuine randomized property tests:
//!
//! * strategies for numeric ranges, tuples, `prop_map`,
//!   `prop::collection::vec`, and `any::<bool>()`;
//! * a deterministic per-test RNG (seeded from the test name and case
//!   index), so failures are reproducible run-to-run;
//! * `prop_assert!` / `prop_assert_eq!` that panic with the case's
//!   generated-input debug dump.
//!
//! **Not** provided: shrinking, persisted failure files, `prop_oneof!`,
//! recursive strategies. A failing case prints its inputs instead of a
//! minimised counterexample.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything the canonical `use proptest::prelude::*;` import brings in.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` that runs `ProptestConfig::cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(
                        stringify!($name),
                        __case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &$strat, &mut __rng,
                        );
                    )+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}\n"),+),
                        $(&$arg),+
                    );
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body)
                    );
                    if let Err(__panic) = __outcome {
                        eprintln!(
                            "proptest case {} of {} failed with inputs:\n{}",
                            __case + 1, __config.cases, __inputs,
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_even() -> impl Strategy<Value = u64> {
        (0u64..100).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in -2.0..9.5f64, b in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..9.5).contains(&y));
            prop_assert!(usize::from(b) <= 1);
        }

        #[test]
        fn mapped_strategy_applies(v in small_even()) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn vec_strategy_respects_len(v in prop::collection::vec(0u32..5, 1..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            for x in v {
                prop_assert!(x < 5);
            }
        }

        #[test]
        fn tuples_compose(p in (0.0..1.0f64, 0.0..1.0f64)) {
            prop_assert!(p.0 < 1.0 && p.1 < 1.0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::deterministic("x", 3);
        let mut b = crate::test_runner::TestRng::deterministic("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::deterministic("x", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
