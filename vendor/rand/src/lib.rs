//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses.
//!
//! The build container has no network access and no cargo registry
//! cache, so the real `rand` crate cannot be fetched. This crate
//! re-implements exactly the surface the workspace calls:
//!
//! * [`RngCore`] — `next_u32` / `next_u64` / `fill_bytes`, object-safe,
//!   with the `&mut R` / `Box<R>` forwarding impls the samplers rely on
//!   (`&mut dyn RngCore` is the RNG type of the `JoinSampler` trait);
//! * [`Rng`] — the extension trait with `gen::<f64>()` and
//!   `gen_range(..)` over integer and float ranges, blanket-implemented
//!   for every `RngCore` (including unsized ones);
//! * [`SeedableRng`] — `from_seed` plus the SplitMix64-based
//!   `seed_from_u64` default, so fixed-seed tests are deterministic;
//! * [`rngs::SmallRng`] — xoshiro256++ \[Blackman & Vigna 2018\], the
//!   same family the real `SmallRng` uses on 64-bit targets.
//!
//! Streams are **not** bit-identical to the real `rand` crate (seeding
//! and rounding details differ); every test in this workspace fixes its
//! own seeds and asserts distributional properties, so only internal
//! determinism matters. If the registry becomes reachable, deleting
//! `vendor/` and pointing the workspace `rand` dependency back at
//! crates.io is a manifest-only change.

pub mod distributions;
pub mod rngs;
mod uniform;

pub use uniform::{SampleRange, SampleUniform};

/// Core RNG interface: a source of uniformly random bits.
///
/// Object-safe; the workspace passes `&mut dyn RngCore` across the
/// `JoinSampler` trait boundary.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Extension methods on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (for `f64`/`f32`: uniform in
    /// `[0, 1)` with full mantissa resolution).
    #[inline]
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// A uniformly random value in `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// An RNG constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64` by expanding it with SplitMix64
    /// (the same scheme `rand_core` documents for this method).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_hits_all_values() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let x = rng.gen_range(2.5..3.5f64);
            assert!((2.5..3.5).contains(&x));
        }
    }

    #[test]
    fn dyn_rng_core_usable_via_rng_ext() {
        let mut rng = SmallRng::seed_from_u64(11);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&x));
        let i = dyn_rng.gen_range(0..5usize);
        assert!(i < 5);
    }

    #[test]
    fn buffered_rng_preserves_the_inner_stream() {
        let mut direct = SmallRng::seed_from_u64(21);
        let mut buffered = super::rngs::BufferedRng::new(SmallRng::seed_from_u64(21));
        // Crosses a refill boundary (stash is 64 words).
        for k in 0..200 {
            assert_eq!(buffered.next_u64(), direct.next_u64(), "word {k}");
        }
        // Through a dyn inner object, the stream is still the same.
        let mut direct = SmallRng::seed_from_u64(22);
        let mut raw = SmallRng::seed_from_u64(22);
        let dyn_inner: &mut dyn RngCore = &mut raw;
        let mut buffered = super::rngs::BufferedRng::new(dyn_inner);
        for _ in 0..100 {
            assert_eq!(buffered.next_u64(), direct.next_u64());
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SmallRng::seed_from_u64(13);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
