//! The `Standard` distribution: uniformly random values of primitive
//! types, mirroring `rand::distributions`.

use crate::Rng;

/// A distribution of values of type `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" uniform distribution for primitive types
/// (`f64`/`f32` in `[0, 1)`, integers over their whole domain).
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<u32> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u64> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<usize> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}
