//! Concrete RNGs: [`SmallRng`] (the one generator the workspace
//! instantiates) and the [`BufferedRng`] word-stash adaptor that
//! amortises `dyn RngCore` dispatch on draw hot loops.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic RNG: **xoshiro256++**
/// \[Blackman & Vigna, "Scrambled linear pseudorandom number
/// generators", 2018\] — the same family the real `rand::rngs::SmallRng`
/// uses on 64-bit platforms. 256-bit state, period `2²⁵⁶ − 1`, passes
/// BigCrush.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    #[inline]
    fn step(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        // `chunks_exact_mut` so the common full-chunk copy compiles to
        // one 8-byte store (no per-chunk length slicing) — this is the
        // loop a `BufferedRng` refill amortises its dispatch into.
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.step().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.step().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Words a [`BufferedRng`] pulls from its inner generator per refill.
const STASH_WORDS: usize = 64;

/// A word-stash adaptor: pulls [`STASH_WORDS`] `u64`s from the inner
/// generator in one refill loop and serves draws from the stash.
///
/// The point is dispatch amortisation. A `&mut dyn RngCore` on a draw
/// hot loop pays one virtual call per random word (two through the
/// `Box<dyn RngCore>` forwarding impl, which re-enters the vtable via
/// `&mut **self`); wrapping the dyn object in a `BufferedRng` once per
/// batch moves those calls into the refill loop, so the per-word cost
/// on the draw path is an inlined array read plus ~1/64th of a virtual
/// call. Wrapping an already-concrete RNG is near free but pointless.
///
/// The stream is the inner generator's stream in order (refills pull
/// whole little-endian words via `fill_bytes`, which every generator
/// in this crate produces as its `next_u64` sequence); `next_u32`
/// consumes a full word, like `SmallRng`.
#[derive(Debug)]
pub struct BufferedRng<R: RngCore> {
    inner: R,
    stash: [u64; STASH_WORDS],
    /// Next unserved stash slot; `== STASH_WORDS` means empty.
    pos: usize,
}

impl<R: RngCore> BufferedRng<R> {
    /// Wraps `inner`; the first draw triggers the first refill.
    pub fn new(inner: R) -> Self {
        BufferedRng {
            inner,
            stash: [0; STASH_WORDS],
            pos: STASH_WORDS,
        }
    }

    /// Unwraps the inner generator. Unserved stash words are discarded
    /// — they were already drawn from the inner stream.
    pub fn into_inner(self) -> R {
        self.inner
    }

    // One `fill_bytes` call per refill — NOT a `next_u64` loop, which
    // would still pay the virtual dispatch once per word and amortise
    // nothing. `fill_bytes` crosses the vtable once and the inner
    // generator steps itself with direct calls.
    #[inline(never)]
    fn refill(&mut self) {
        let mut bytes = [0u8; STASH_WORDS * 8];
        self.inner.fill_bytes(&mut bytes);
        for (w, chunk) in self.stash.iter_mut().zip(bytes.chunks_exact(8)) {
            *w = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        self.pos = 0;
    }
}

impl<R: RngCore> RngCore for BufferedRng<R> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        // `>=`, not `==`: the branch then proves `pos < STASH_WORDS`
        // and the indexing below compiles without a bounds check.
        if self.pos >= STASH_WORDS {
            self.refill();
        }
        let w = self.stash[self.pos];
        self.pos += 1;
        w
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(b);
        }
        // The all-zero state is the one fixed point of the linear
        // engine; nudge it (the real crate rejects it the same way).
        if s == [0, 0, 0, 0] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        SmallRng { s }
    }
}
