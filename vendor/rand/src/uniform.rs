//! Range sampling (`Rng::gen_range`) for the types the workspace uses.

use core::ops::{Range, RangeInclusive};

use crate::RngCore;

/// Marker: `T` can be drawn uniformly from a range.
pub trait SampleUniform: Sized {}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T: SampleUniform> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a uniform `u64` onto `[0, n)` with the widening-multiply trick
/// (Lemire 2019, without the rejection step). The residual bias is
/// `O(n / 2⁶⁴)` — immaterial for the workspace's range sizes, which are
/// bounded by dataset cardinalities.
#[inline]
fn mul_shift(x: u64, n: u64) -> u64 {
    ((x as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {}

        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(mul_shift(rng.next_u64(), span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(mul_shift(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {}

        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t
                    * (1.0 / (1u64 << 53) as $t);
                let v = self.start + unit * (self.end - self.start);
                // Guard the open upper bound against rounding.
                if v < self.end { v } else { <$t>::max(self.start, self.end - (self.end - self.start) * 1e-16) }
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t
                    * (1.0 / (1u64 << 53) as $t);
                start + unit * (end - start)
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

#[cfg(test)]
mod tests {
    use crate::rngs::SmallRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn integer_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..2_000 {
            let v = rng.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&w));
            let x = rng.gen_range(0..=3u8);
            assert!(x <= 3);
        }
    }

    #[test]
    fn float_range_respects_open_bound() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..2_000 {
            let v = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(v > 0.0 && v < 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(3);
        let _ = rng.gen_range(5..5usize);
    }
}
