//! Offline stand-in for the subset of the Criterion.rs API this
//! workspace's benches use.
//!
//! The build container cannot reach a cargo registry, so the real
//! `criterion` crate is unavailable. This shim keeps every bench target
//! compiling and producing *useful* numbers — median / min / mean
//! wall-clock per iteration printed to stdout — without Criterion's
//! statistical machinery (no outlier analysis, no HTML reports, no
//! regression baselines).
//!
//! Provided surface: [`Criterion`], [`BenchmarkGroup`] (with
//! `sample_size`, `throughput`, `bench_function`, `bench_with_input`,
//! `finish`), [`Bencher::iter`], [`BenchmarkId`], [`Throughput`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under Criterion's name.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&id.to_string(), 10, None, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark (Criterion's "samples").
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput so results can be read as
    /// elements/sec or bytes/sec.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Times `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Times `f`, passing `input` through (Criterion's borrow-shaping
    /// variant; the shim simply forwards the reference).
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (printing-only here; kept for API compatibility).
    pub fn finish(self) {}
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, recording one duration sample per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.samples.is_empty() {
            // One untimed warm-up pass before the first sample.
            black_box(routine());
        }
        let t = Instant::now();
        black_box(routine());
        self.samples.push(t.elapsed());
    }
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a parameter component, e.g. `sample/Virtual`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id that is only a parameter (grouped under the group name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (&self.name[..], &self.parameter) {
            ("", Some(p)) => write!(f, "{p}"),
            (n, Some(p)) => write!(f, "{n}/{p}"),
            (n, None) => write!(f, "{n}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// Per-iteration work declaration, for throughput-normalised readouts.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

fn run_one<F>(label: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
    };
    for _ in 0..sample_size {
        f(&mut b);
    }
    if b.samples.is_empty() {
        println!("{label:<48} (no samples — bencher.iter never called)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let rate = throughput
        .map(|t| {
            let per_sec = |units: u64| units as f64 / median.as_secs_f64().max(1e-12);
            match t {
                Throughput::Elements(n) => format!("  {:>12.0} elem/s", per_sec(n)),
                Throughput::Bytes(n) => format!("  {:>12.0} B/s", per_sec(n)),
            }
        })
        .unwrap_or_default();
    println!("{label:<48} median {median:>10.3?}  min {min:>10.3?}  mean {mean:>10.3?}{rate}");
}

/// Declares a group of benchmark functions, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
