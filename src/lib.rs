//! # `srj` — Random Sampling over Spatial Range Joins
//!
//! A from-scratch Rust implementation of
//!
//! > Daichi Amagata. *Random Sampling over Spatial Range Joins.*
//! > ICDE 2025 (arXiv:2508.15070).
//!
//! Given two 2-D point sets `R` and `S` and a window half-extent `l`, the
//! spatial range join is `J = {(r, s) | r ∈ R, s ∈ S, s ∈ w(r)}` with
//! `w(r) = [r.x−l, r.x+l] × [r.y−l, r.y+l]`. This crate returns `t`
//! **uniform, independent** samples of `J` *without* computing `J`:
//!
//! * [`BbstSampler`] — the paper's proposed algorithm:
//!   `Õ(n + m + t)` expected time, `O(n + m)` space, built on the
//!   Bucket-based Binary Search Tree ([`srj_bbst`]).
//! * [`KdsSampler`] — baseline: exact kd-tree range counting + spatial
//!   independent range sampling, `O((n + t)·√m)`.
//! * [`KdsRejectionSampler`] — baseline: grid upper bounds + rejection
//!   sampling, `O(n + m + n·m^1.5·t / |J|)` expected.
//!
//! ## Quickstart
//!
//! ```
//! use srj::{BbstSampler, JoinSampler, Point, SampleConfig};
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//!
//! // two tiny point sets
//! let r: Vec<Point> = (0..50).map(|i| Point::new(i as f64, i as f64)).collect();
//! let s: Vec<Point> = (0..50).map(|i| Point::new(i as f64, (i % 7) as f64)).collect();
//!
//! let config = SampleConfig::new(5.0); // half-extent l = 5
//! let mut sampler = BbstSampler::build(&r, &s, &config);
//! let mut rng = SmallRng::seed_from_u64(7);
//! let samples = sampler.sample(100, &mut rng).unwrap();
//! assert_eq!(samples.len(), 100);
//! for pair in &samples {
//!     // every sample is a genuine join result
//!     let w = srj::Rect::window(r[pair.r as usize], 5.0);
//!     assert!(w.contains(s[pair.s as usize]));
//! }
//! ```
//!
//! ## Serving at scale
//!
//! For concurrent serving, every sampler is split into an immutable
//! `Send + Sync` index plus cheap per-thread cursors, and the
//! [`engine`] crate wraps the split into a query service: build once
//! with [`Engine::build`] (or let the planner pick the algorithm with
//! [`Engine::auto`]), then hand each thread a [`SamplerHandle`] with
//! its own RNG and statistics. See `examples/concurrent_serving.rs`.
//!
//! For serving over the network, the [`server`] crate wraps the engine
//! in a TCP front-end with request batching and per-connection
//! backpressure (binaries `srj-serve` / `srj-loadgen`; see
//! `examples/network_serving.rs`).
//!
//! ## Observability
//!
//! The [`obs`] crate threads a metrics registry, sampled span tracing,
//! and a lifecycle event journal through every layer: the server
//! exposes Prometheus text over the `METRICS` frame (live dashboard:
//! `srj-top`), traced `SAMPLE` requests return their spans via the
//! `TRACE` frame, and every epoch swap / cell patch / repair /
//! re-plan / compaction / backpressure park lands in the journal
//! (`srj-serve --log-json`). See the README's "Observability" section.
//!
//! The workspace crates are re-exported under their own names
//! ([`geom`], [`alias`], [`kdtree`], [`grid`], [`bbst`], [`join`],
//! [`datagen`], [`core`], [`engine`], [`server`], [`obs`]) and the
//! most common types at the crate root.

pub use srj_alias as alias;
pub use srj_bbst as bbst;
pub use srj_core as core;
pub use srj_datagen as datagen;
pub use srj_engine as engine;
pub use srj_geom as geom;
pub use srj_grid as grid;
pub use srj_join as join;
pub use srj_kdtree as kdtree;
pub use srj_obs as obs;
pub use srj_rangetree as rangetree;
pub use srj_rtree as rtree;
pub use srj_server as server;

pub use srj_core::{
    AnySamplerIndex, BbstCellCtx, BbstCursor, BbstIndex, BbstKdVariantCursor, BbstKdVariantIndex,
    BbstKdVariantSampler, BbstSampler, CellPatchReport, CellStore, CellUnit, Cursor, DeltaSet,
    JoinPair, JoinSampler, JoinThenSample, KdCellStore, KdsCursor, KdsIndex, KdsRejectionCursor,
    KdsRejectionIndex, KdsRejectionSampler, KdsSampler, MassMode, OverlayIndex, OverlaySupport,
    PhaseReport, RangeTreeSampler, SampleConfig, SampleError, SampleIter, SamplerIndex,
};
pub use srj_datagen::{generate, split_rs, DatasetKind, DatasetSpec};
pub use srj_engine::{
    Algorithm, DatasetSnapshot, DatasetStore, Engine, EngineCache, EpochConfig, EpochEngine,
    PlanReport, SPatchDelta, SamplerHandle, ShardedIndex, StatsSnapshot,
};
pub use srj_geom::{Point, PointId, Rect};
pub use srj_obs::{EventKind, LifecycleEvent, Registry};
pub use srj_server::{
    Client, DatasetRegistry, RequestStatus, SampleOutcome, SampleRequest, Server, ServerConfig,
    Side, TraceSpan, UpdateOutcome,
};
