use rand::Rng;

/// Number of grid cells a query window can overlap: the window side is
/// twice the cell side, so `w(r)` fits inside the 3×3 block of cells
/// around the cell containing `r` (paper Fig. 1).
pub const NUM_CELLS: usize = 9;

/// Inline cumulative-weight row over the 9 cells overlapping one window.
///
/// This plays the role of the per-point alias `A_r` in Algorithm 1: after
/// the approximate-range-counting phase computed `µ(r, c)` for each of the
/// nine cells, the sampling phase repeatedly picks a cell with probability
/// `µ(r, c) / µ(r)`. Storing a full Walker alias per point would allocate
/// two heap vectors for every `r ∈ R`; the cumulative row is a `Copy`
/// 72-byte struct held in one flat `Vec<CumulativeRow9>`, sampled by a
/// ≤ 9-entry scan — `O(1)` per draw, exactly `O(n)` space overall.
#[derive(Clone, Copy, Debug, Default)]
pub struct CumulativeRow9 {
    /// `cum[i]` = `µ(r, c_0) + … + µ(r, c_i)`.
    cum: [f64; NUM_CELLS],
}

impl CumulativeRow9 {
    /// Builds the cumulative row from nine per-cell weights.
    ///
    /// Weights must be non-negative and finite (checked in debug builds).
    #[inline]
    pub fn new(weights: [f64; NUM_CELLS]) -> Self {
        let mut cum = [0.0; NUM_CELLS];
        let mut acc = 0.0;
        for (slot, &w) in cum.iter_mut().zip(weights.iter()) {
            debug_assert!(w.is_finite() && w >= 0.0, "bad cell weight {w}");
            acc += w;
            *slot = acc;
        }
        CumulativeRow9 { cum }
    }

    /// Total weight `µ(r)` of the row.
    #[inline]
    pub fn total(&self) -> f64 {
        self.cum[NUM_CELLS - 1]
    }

    /// Weight of cell `i` (recovered from the cumulative form).
    #[inline]
    pub fn weight(&self, i: usize) -> f64 {
        if i == 0 {
            self.cum[0]
        } else {
            self.cum[i] - self.cum[i - 1]
        }
    }

    /// Draws a cell index in `0..9` with probability proportional to its
    /// weight, or `None` if the total weight is zero.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<usize> {
        let total = self.total();
        if total <= 0.0 {
            return None;
        }
        let u = rng.gen::<f64>() * total;
        // Scan ≤ 9 entries; branch-predictable and cache-resident.
        let mut i = 0;
        while i < NUM_CELLS - 1 && u >= self.cum[i] {
            i += 1;
        }
        // Skip over trailing zero-weight cells (u can land exactly on a
        // boundary shared by empty cells).
        while self.weight(i) == 0.0 {
            debug_assert!(i > 0, "sampled from all-zero row");
            i -= 1;
        }
        Some(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn total_and_weights_roundtrip() {
        let w = [1.0, 0.0, 2.0, 0.0, 3.0, 0.0, 4.0, 0.0, 5.0];
        let row = CumulativeRow9::new(w);
        assert_eq!(row.total(), 15.0);
        for (i, &wi) in w.iter().enumerate() {
            assert_eq!(row.weight(i), wi);
        }
    }

    #[test]
    fn zero_row_returns_none() {
        let row = CumulativeRow9::new([0.0; 9]);
        let mut rng = SmallRng::seed_from_u64(5);
        assert_eq!(row.sample(&mut rng), None);
    }

    #[test]
    fn never_samples_zero_weight_cell() {
        let w = [0.0, 5.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0];
        let row = CumulativeRow9::new(w);
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..20_000 {
            let i = row.sample(&mut rng).unwrap();
            assert!(w[i] > 0.0, "sampled zero-weight cell {i}");
        }
    }

    #[test]
    fn frequencies_track_weights() {
        let w = [1.0, 2.0, 0.0, 4.0, 0.0, 0.0, 8.0, 0.0, 1.0];
        let row = CumulativeRow9::new(w);
        let mut rng = SmallRng::seed_from_u64(77);
        let draws = 320_000usize;
        let mut counts = [0usize; 9];
        for _ in 0..draws {
            counts[row.sample(&mut rng).unwrap()] += 1;
        }
        let total: f64 = w.iter().sum();
        for i in 0..9 {
            if w[i] == 0.0 {
                assert_eq!(counts[i], 0);
            } else {
                let expected = draws as f64 * w[i] / total;
                let rel = (counts[i] as f64 - expected).abs() / expected;
                assert!(
                    rel < 0.05,
                    "cell {i}: expected {expected}, got {}",
                    counts[i]
                );
            }
        }
    }

    #[test]
    fn single_nonzero_cell_always_chosen() {
        for hot in 0..9 {
            let mut w = [0.0; 9];
            w[hot] = 3.5;
            let row = CumulativeRow9::new(w);
            let mut rng = SmallRng::seed_from_u64(hot as u64);
            for _ in 0..100 {
                assert_eq!(row.sample(&mut rng), Some(hot));
            }
        }
    }
}
