//! Weighted random sampling structures.
//!
//! All three algorithms in the paper pick a query point `r ∈ R` with
//! probability proportional to a (possibly approximate) range count, using
//! **Walker's alias method** \[Walker 1974\]: `O(k)` construction over `k`
//! weights, `O(1)` per draw, `O(k)` space. [`AliasTable`] implements it
//! with the classic two-stack (small/large) construction.
//!
//! The proposed algorithm additionally needs, for every `r`, a weighted
//! choice among the ≤ 9 grid cells overlapping `w(r)` (the alias `A_r` in
//! Algorithm 1). Building a heap-allocated alias per point would cost two
//! `Vec`s per element of `R`; [`CumulativeRow9`] instead stores an inline
//! fixed-size cumulative-weight row and samples by scanning at most nine
//! entries — still `O(1)` per draw with far better constants and exactly
//! `O(n)` total space (see DESIGN.md §2.2 for this documented deviation).

mod row9;
mod table;

pub use row9::{CumulativeRow9, NUM_CELLS};
pub use table::AliasTable;
