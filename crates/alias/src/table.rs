use rand::Rng;

/// Walker's alias table: `O(1)` weighted sampling over a fixed set of
/// weights.
///
/// Built in `O(k)` time from `k` non-negative weights; each draw makes one
/// uniform index choice and one biased coin flip. Entries with zero weight
/// are never returned.
///
/// This is the `alias` structure of the paper's Algorithm 1 (`A`) and of
/// both baselines (Section III), crediting \[59\] A. J. Walker, "New fast
/// method for generating discrete random numbers with arbitrary frequency
/// distributions", Electronics Letters 1974.
///
/// ```
/// use srj_alias::AliasTable;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let table = AliasTable::new(&[1.0, 0.0, 3.0]).unwrap();
/// let mut rng = SmallRng::seed_from_u64(1);
/// let i = table.sample(&mut rng);
/// assert!(i == 0 || i == 2); // index 1 has zero weight
/// assert_eq!(table.total_weight(), 4.0);
/// ```
#[derive(Clone, Debug)]
pub struct AliasTable {
    /// `prob[i]`: probability of keeping column `i` (scaled to `[0, 1]`).
    prob: Vec<f64>,
    /// `alias[i]`: the donor index used when the coin flip rejects `i`.
    alias: Vec<u32>,
    /// Packed columns for the branchless one-word walk
    /// ([`AliasTable::sample_word`]); same decision table as
    /// `prob`/`alias`, with the keep probability pre-scaled to a `u64`
    /// fixed-point threshold.
    cols: Vec<AliasCol>,
    /// Sum of the input weights.
    total: f64,
}

/// One packed column of the branchless walk: 12 bytes of payload, one
/// cache line holds five columns.
#[derive(Clone, Copy, Debug)]
struct AliasCol {
    /// Keep threshold: `prob[i] · 2⁶⁴`, saturating — a full column
    /// (`prob == 1.0`) saturates to `u64::MAX` and its alias is the
    /// identity (the construction only assigns an alias to columns it
    /// pops from the small stack), so the 2⁻⁶⁴ miss is harmless.
    thresh: u64,
    alias: u32,
}

impl AliasTable {
    /// Builds an alias table from `weights`.
    ///
    /// Returns `None` if `weights` is empty, if any weight is negative or
    /// non-finite, or if all weights are zero (no valid draw exists).
    pub fn new(weights: &[f64]) -> Option<Self> {
        let k = weights.len();
        if k == 0 || k > u32::MAX as usize {
            return None;
        }
        let mut total = 0.0;
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return None;
            }
            total += w;
        }
        if total <= 0.0 {
            return None;
        }

        // Scale each weight so the average column height is exactly 1.
        let scale = k as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias: Vec<u32> = (0..k as u32).collect();

        // Two-stack construction: repeatedly top up a "small" column
        // (height < 1) from a "large" one (height ≥ 1).
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            // Donate (1 - prob[s]) of column l's mass to column s.
            let new_l = (prob[l as usize] + prob[s as usize]) - 1.0;
            prob[l as usize] = new_l;
            if new_l < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Numerical leftovers: all remaining columns are (within rounding)
        // exactly full.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }

        // 2⁶⁴ as f64; `prob == 1.0` saturates to u64::MAX on the cast.
        const SCALE_64: f64 = 18_446_744_073_709_551_616.0;
        let cols = prob
            .iter()
            .zip(alias.iter())
            .map(|(&p, &a)| AliasCol {
                thresh: (p * SCALE_64) as u64,
                alias: a,
            })
            .collect();

        Some(AliasTable {
            prob,
            alias,
            cols,
            total,
        })
    }

    /// Branchless single-word draw: one uniform `u64` supplies both the
    /// column index (high bits of the widening multiply — provably
    /// `< len`, so the indexing bound check vanishes) and the coin flip
    /// (low product bits against the fixed-point keep threshold).
    ///
    /// Distribution-equivalent to [`AliasTable::sample`] up to a
    /// `len/2⁶⁴` rounding bias — unobservable at any feasible draw
    /// count — but consumes different RNG bits, so streams drawn
    /// through the two entry points differ.
    #[inline]
    pub fn sample_word(&self, word: u64) -> usize {
        let wide = (word as u128) * (self.cols.len() as u128);
        let i = (wide >> 64) as usize;
        let coin = wide as u64;
        let col = self.cols[i];
        if coin < col.thresh {
            i
        } else {
            col.alias as usize
        }
    }

    /// Batched draws through the branchless walk: fills `out` with one
    /// index per slot, one `next_u64` each, inner loop unrolled four
    /// wide so the widening multiplies pipeline.
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [usize]) {
        let mut chunks = out.chunks_exact_mut(4);
        for chunk in &mut chunks {
            let (w0, w1, w2, w3) = (
                rng.next_u64(),
                rng.next_u64(),
                rng.next_u64(),
                rng.next_u64(),
            );
            chunk[0] = self.sample_word(w0);
            chunk[1] = self.sample_word(w1);
            chunk[2] = self.sample_word(w2);
            chunk[3] = self.sample_word(w3);
        }
        for slot in chunks.into_remainder() {
            *slot = self.sample_word(rng.next_u64());
        }
    }

    /// Draws an index with probability proportional to its weight.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let k = self.prob.len();
        let i = rng.gen_range(0..k);
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// `true` iff the table has no entries (never true for a constructed
    /// table, provided for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Sum of the input weights (`Σ_r µ(r)` in the paper's analysis).
    #[inline]
    pub fn total_weight(&self) -> f64 {
        self.total
    }

    /// Approximate heap footprint in bytes (for the Fig. 4 memory
    /// experiment).
    pub fn memory_bytes(&self) -> usize {
        self.prob.capacity() * std::mem::size_of::<f64>()
            + self.alias.capacity() * std::mem::size_of::<u32>()
            + self.cols.capacity() * std::mem::size_of::<AliasCol>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    #[test]
    fn rejects_degenerate_input() {
        assert!(AliasTable::new(&[]).is_none());
        assert!(AliasTable::new(&[0.0, 0.0]).is_none());
        assert!(AliasTable::new(&[1.0, -0.5]).is_none());
        assert!(AliasTable::new(&[f64::NAN]).is_none());
        assert!(AliasTable::new(&[f64::INFINITY, 1.0]).is_none());
    }

    #[test]
    fn single_entry_always_returned() {
        let t = AliasTable::new(&[42.0]).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
        assert_eq!(t.total_weight(), 42.0);
    }

    #[test]
    fn zero_weight_entries_never_sampled() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0, 3.0, 0.0]).unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let i = t.sample(&mut rng);
            assert!(i == 1 || i == 3, "sampled zero-weight index {i}");
        }
    }

    #[test]
    fn frequencies_track_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = SmallRng::seed_from_u64(42);
        let draws = 400_000usize;
        let mut counts = [0usize; 4];
        for _ in 0..draws {
            counts[t.sample(&mut rng)] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let expected = draws as f64 * w / 10.0;
            let got = counts[i] as f64;
            let rel = (got - expected).abs() / expected;
            assert!(rel < 0.02, "index {i}: expected {expected}, got {got}");
        }
    }

    #[test]
    fn uniform_weights_are_uniform() {
        let t = AliasTable::new(&[5.0; 10]).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[t.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let rel = (c as f64 - 10_000.0).abs() / 10_000.0;
            assert!(rel < 0.05);
        }
    }

    #[test]
    fn heavily_skewed_weights() {
        // one giant weight among many tiny ones
        let mut weights = vec![1e-6; 1000];
        weights[500] = 1e6;
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| t.sample(&mut rng) == 500).count();
        assert!(hits > 9_900, "expected ~all draws at index 500, got {hits}");
    }

    #[test]
    fn sample_word_tracks_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = SmallRng::seed_from_u64(42);
        let draws = 400_000usize;
        let mut counts = [0usize; 4];
        for _ in 0..draws {
            counts[t.sample_word(rng.next_u64())] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let expected = draws as f64 * w / 10.0;
            let got = counts[i] as f64;
            let rel = (got - expected).abs() / expected;
            assert!(rel < 0.02, "index {i}: expected {expected}, got {got}");
        }
    }

    #[test]
    fn sample_word_never_hits_zero_weight() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0, 3.0, 0.0]).unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..100_000 {
            let i = t.sample_word(rng.next_u64());
            assert!(i == 1 || i == 3, "sampled zero-weight index {i}");
        }
        // Edge words: index stays in range and lands on a live column.
        for w in [0u64, 1, u64::MAX / 2, u64::MAX - 1, u64::MAX] {
            let i = t.sample_word(w);
            assert!(i == 1 || i == 3, "edge word {w} gave {i}");
        }
    }

    #[test]
    fn sample_many_matches_sample_word_stream() {
        let t = AliasTable::new(&[2.0, 5.0, 1.0]).unwrap();
        let mut a = SmallRng::seed_from_u64(11);
        let mut b = SmallRng::seed_from_u64(11);
        let mut batched = [0usize; 23];
        t.sample_many(&mut a, &mut batched);
        for (k, &got) in batched.iter().enumerate() {
            assert_eq!(got, t.sample_word(b.next_u64()), "draw {k} diverged");
        }
    }

    #[test]
    fn single_entry_sample_word_always_returned() {
        let t = AliasTable::new(&[42.0]).unwrap();
        for w in [0u64, u64::MAX, 0x1234_5678_9abc_def0] {
            assert_eq!(t.sample_word(w), 0);
        }
    }

    #[test]
    fn memory_accounting_nonzero() {
        let t = AliasTable::new(&[1.0, 2.0]).unwrap();
        assert!(t.memory_bytes() >= 2 * (8 + 4));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }
}
