//! The generic per-thread query cursor shared by every sampler.
//!
//! Each algorithm's immutable index implements [`SamplerIndex`]; the
//! one [`Cursor`] type supplies the timing-wrapped [`JoinSampler`]
//! implementation (single draws, batched draws, report assembly) so the
//! accounting logic exists exactly once instead of per algorithm.

use std::sync::Arc;
use std::time::Instant;

use rand::{Rng, RngCore};

use crate::buffer::BufferStats;
use crate::config::{JoinPair, PhaseReport, SampleError};
use crate::traits::JoinSampler;

/// Pre-allocation cap for batched draws: `t` is caller-controlled (and
/// remote-controlled through the network front-end); vectors still grow
/// on demand past the cap.
const MAX_PREALLOC_PAIRS: usize = 1 << 20;

/// Contract an immutable, shareable sampler index exposes to its
/// cursors: a thread-safe draw against caller-owned mutable state.
pub trait SamplerIndex: Send + Sync {
    /// Per-cursor scratch state the draw needs (e.g. a kd-tree descent
    /// buffer); `()` when the draw is allocation-free.
    type Scratch: Default + Send;

    /// Algorithm name as used in the paper's tables.
    fn algorithm_name(&self) -> &'static str;

    /// **One** sampling-loop iteration against `&self` (many threads
    /// may call this concurrently, each with its own scratch and
    /// stats): `Ok(Some(pair))` on acceptance, `Ok(None)` on a rejected
    /// candidate, `Err(EmptyJoin)` when the total weight is zero.
    ///
    /// Implementations must increment `stats.iterations` once per call
    /// and `stats.samples` on acceptance, so that per-iteration
    /// accounting (Table IV, the engine's rejection-rate feedback)
    /// holds however the iterations are driven.
    ///
    /// Exposing the single iteration — rather than only the
    /// accept-loop in [`SamplerIndex::draw_with`] — is what makes
    /// composition correct: a sharded wrapper must re-pick the shard on
    /// **every** iteration (each iteration emits any pair of `J` with
    /// probability exactly `1/Σµ`), not merely loop inside one shard,
    /// which would bias samples toward shards with looser bounds.
    ///
    /// Generic over the RNG so the serving engine can monomorphise the
    /// whole draw path over its concrete `SmallRng` (no virtual call
    /// per random word); the object-safe [`crate::JoinSampler`] path
    /// instantiates it at `R = dyn RngCore` and behaves exactly as
    /// before.
    fn try_draw<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        scratch: &mut Self::Scratch,
        stats: &mut PhaseReport,
    ) -> Result<Option<JoinPair>, SampleError>;

    /// Consecutive-rejection safety valve for the
    /// [`SamplerIndex::draw_with`] accept-loop
    /// ([`crate::SampleConfig::max_consecutive_rejections`] for
    /// rejecting samplers; the default `u64::MAX` suits samplers that
    /// never reject).
    fn rejection_limit(&self) -> u64 {
        u64::MAX
    }

    /// Total sampling weight `Σ_r µ(r)` this index draws against
    /// (`= |J|` for exact-counting indexes, `0.0` for an empty join).
    /// Per iteration, each pair of `J` is emitted with probability
    /// exactly `1 / total_weight` — the invariant a sharded wrapper's
    /// top-level alias relies on.
    fn total_weight(&self) -> f64;

    /// Number of `S`-side cells this index draws from, when its
    /// structure is cell-granular (`0` otherwise). Sizes the engine's
    /// per-cell rejection counters.
    fn cell_count(&self) -> usize {
        0
    }

    /// Moves the per-cell rejection records accumulated in `scratch`
    /// into `out` (one slot entry per rejected iteration). Indexes
    /// whose draws attribute rejections to a cell record them in their
    /// scratch; the default is a no-op for everything else.
    fn drain_cell_rejections(_scratch: &mut Self::Scratch, _out: &mut Vec<u32>) {}

    /// Switches the buffered-draw fast path carried in `scratch` on or
    /// off (see [`crate::DrawBuffers`]). Default no-op for indexes
    /// without a buffered path; the legacy entry points never consult
    /// buffers either way, so their RNG streams stay byte-identical.
    fn set_buffers(_scratch: &mut Self::Scratch, _enabled: bool) {}

    /// Pre-promotes the given cell slots to buffered status (warm
    /// start, skipping the heat ladder). Default no-op.
    fn warm_buffers(_scratch: &mut Self::Scratch, _slots: &[u32]) {}

    /// Pins the buffered path's RNG to a caller-chosen stream, making
    /// the buffered draw sequence a pure function of the caller's
    /// seed. Default no-op.
    fn seed_buffers(_scratch: &mut Self::Scratch, _seed: u64) {}

    /// Drains the buffer hit/refill/invalidation counters accumulated
    /// in `scratch`. Default: all-zero.
    fn drain_buffer_stats(_scratch: &mut Self::Scratch) -> BufferStats {
        BufferStats::default()
    }

    /// One uniform draw: loops [`SamplerIndex::try_draw`] until a
    /// candidate is accepted or [`SamplerIndex::rejection_limit`]
    /// consecutive rejections trip the safety valve.
    fn draw_with<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        scratch: &mut Self::Scratch,
        stats: &mut PhaseReport,
    ) -> Result<JoinPair, SampleError> {
        let mut consecutive = 0u64;
        loop {
            match self.try_draw(rng, scratch, stats)? {
                Some(pair) => return Ok(pair),
                None => {
                    consecutive += 1;
                    if consecutive >= self.rejection_limit() {
                        return Err(SampleError::RejectionLimit);
                    }
                }
            }
        }
    }

    /// Build-phase timing recorded when the index was constructed.
    fn index_build_report(&self) -> PhaseReport;

    /// Approximate heap footprint of the retained structures.
    fn index_memory_bytes(&self) -> usize;

    /// Heap bytes of the `S`-side structures this index holds through
    /// an `Arc` and may therefore share with sibling indexes (a sharded
    /// engine builds the kd-tree / grid / per-cell BBSTs once and
    /// clones the `Arc` into every shard). Included in
    /// [`SamplerIndex::index_memory_bytes`]; an aggregator subtracts it
    /// for every index after the first that reports the same
    /// [`SamplerIndex::shared_memory_token`]. `0` when nothing is
    /// shareable.
    fn shared_memory_bytes(&self) -> usize {
        0
    }

    /// Identity of the shared `S`-side allocation (the `Arc`'s pointer
    /// address): two indexes returning the same non-zero token hold the
    /// *same* structures, so their [`shared_memory_bytes`] must be
    /// counted once. `0` means "nothing shared".
    ///
    /// [`shared_memory_bytes`]: SamplerIndex::shared_memory_bytes
    fn shared_memory_token(&self) -> usize {
        0
    }
}

/// Object-safe view of a [`SamplerIndex`]: erases the per-cursor
/// scratch type so heterogeneous indexes — in particular
/// [`crate::OverlayIndex`]-wrapped ones, whose concrete type depends on
/// the base algorithm — can stand behind one `Arc<dyn
/// AnySamplerIndex>` (e.g. in an engine's epoch-swap cell).
///
/// Blanket-implemented for every `SamplerIndex`; [`any_cursor`] hands
/// out a boxed [`Cursor`] so the timing/accounting logic still exists
/// exactly once.
///
/// [`any_cursor`]: AnySamplerIndex::any_cursor
pub trait AnySamplerIndex: Send + Sync {
    /// Algorithm name as used in the paper's tables.
    fn any_name(&self) -> &'static str;

    /// A fresh boxed cursor over this shared index (O(1)).
    fn any_cursor(self: Arc<Self>) -> Box<dyn JoinSampler + Send>;

    /// Build-phase timing recorded at construction.
    fn any_build_report(&self) -> PhaseReport;

    /// Approximate heap footprint of the retained structures.
    fn any_memory_bytes(&self) -> usize;

    /// Total sampling weight `Σµ` (see [`SamplerIndex::total_weight`]).
    fn any_total_weight(&self) -> f64;

    /// Number of `S`-side cells (see [`SamplerIndex::cell_count`]).
    fn any_cell_count(&self) -> usize;
}

impl<I: SamplerIndex + 'static> AnySamplerIndex for I {
    fn any_name(&self) -> &'static str {
        self.algorithm_name()
    }

    fn any_cursor(self: Arc<Self>) -> Box<dyn JoinSampler + Send> {
        Box::new(Cursor::new(self))
    }

    fn any_build_report(&self) -> PhaseReport {
        self.index_build_report()
    }

    fn any_memory_bytes(&self) -> usize {
        self.index_memory_bytes()
    }

    fn any_total_weight(&self) -> f64 {
        self.total_weight()
    }

    fn any_cell_count(&self) -> usize {
        self.cell_count()
    }
}

/// Cheap per-thread query state over a shared index: scratch buffers
/// plus this cursor's own sampling-phase statistics. Construction is
/// O(1); clone the `Arc` and make one cursor per serving thread.
pub struct Cursor<I: SamplerIndex> {
    index: Arc<I>,
    scratch: I::Scratch,
    stats: PhaseReport,
}

impl<I: SamplerIndex> Cursor<I> {
    /// A fresh cursor over `index` with zeroed sampling statistics.
    pub fn new(index: Arc<I>) -> Self {
        Cursor {
            index,
            scratch: I::Scratch::default(),
            stats: PhaseReport::default(),
        }
    }

    /// The shared index this cursor samples from.
    pub fn index(&self) -> &Arc<I> {
        &self.index
    }

    /// This cursor's own sampling-phase statistics (no build phases).
    pub fn sampling_stats(&self) -> &PhaseReport {
        &self.stats
    }

    /// Switches this cursor's buffered-draw fast path on or off.
    pub fn set_buffers(&mut self, enabled: bool) {
        I::set_buffers(&mut self.scratch, enabled);
    }

    /// Pre-promotes `slots` to buffered status (warm start).
    pub fn warm_buffers(&mut self, slots: &[u32]) {
        I::warm_buffers(&mut self.scratch, slots);
    }

    /// Pins this cursor's buffer RNG to a seed-derived stream.
    pub fn seed_buffers(&mut self, seed: u64) {
        I::seed_buffers(&mut self.scratch, seed);
    }

    /// Drains the buffer hit/refill/invalidation counters.
    pub fn drain_buffer_stats(&mut self) -> BufferStats {
        I::drain_buffer_stats(&mut self.scratch)
    }

    /// Monomorphised batch draw: `t` accept-loops against a concrete
    /// RNG under a single timing bracket, appending to `out`. This is
    /// the engine's hot serving path — the compiler sees the whole
    /// index/RNG pair, so there is no virtual call per random word and
    /// no `Instant::now()` per pair.
    pub fn sample_batch<R: Rng + ?Sized>(
        &mut self,
        t: usize,
        rng: &mut R,
        out: &mut Vec<JoinPair>,
    ) -> Result<(), SampleError> {
        let start = Instant::now();
        out.reserve(t.min(MAX_PREALLOC_PAIRS));
        for _ in 0..t {
            match self
                .index
                .draw_with(rng, &mut self.scratch, &mut self.stats)
            {
                Ok(p) => out.push(p),
                Err(e) => {
                    self.stats.sampling += start.elapsed();
                    return Err(e);
                }
            }
        }
        self.stats.sampling += start.elapsed();
        Ok(())
    }
}

impl<I: SamplerIndex> JoinSampler for Cursor<I> {
    fn name(&self) -> &'static str {
        self.index.algorithm_name()
    }

    fn take_cell_rejections(&mut self, out: &mut Vec<u32>) {
        I::drain_cell_rejections(&mut self.scratch, out);
    }

    fn sample_one(&mut self, rng: &mut dyn RngCore) -> Result<JoinPair, SampleError> {
        let t = Instant::now();
        let out = self
            .index
            .draw_with(rng, &mut self.scratch, &mut self.stats);
        self.stats.sampling += t.elapsed();
        out
    }

    fn sample(&mut self, t: usize, rng: &mut dyn RngCore) -> Result<Vec<JoinPair>, SampleError> {
        let start = Instant::now();
        let mut out = Vec::with_capacity(t.min(MAX_PREALLOC_PAIRS));
        for _ in 0..t {
            match self
                .index
                .draw_with(rng, &mut self.scratch, &mut self.stats)
            {
                Ok(p) => out.push(p),
                Err(e) => {
                    self.stats.sampling += start.elapsed();
                    return Err(e);
                }
            }
        }
        self.stats.sampling += start.elapsed();
        Ok(out)
    }

    fn report(&self) -> PhaseReport {
        self.index
            .index_build_report()
            .with_sampling_from(&self.stats)
    }

    fn memory_bytes(&self) -> usize {
        self.index.index_memory_bytes()
    }
}
