//! Cell-granular, patchable `S`-side structures.
//!
//! Every index in this crate bottoms out in per-cell structures over
//! `S`: the grid's member lists, the per-cell BBST pairs (§IV), or
//! per-cell kd-trees (the KDS family after this refactor). A
//! [`CellStore`] holds them as an immutable, `Arc`-shared collection —
//! one [`Grid`] plus one unit per non-empty cell — and supports
//! [`CellStore::patch`]: given the points inserted and deleted since
//! the store was built, produce a **new** store that rebuilds only the
//! cells those mutations touch and carries every clean cell (and its
//! unit) over by `Arc` clone.
//!
//! Patching never renumbers ids: inserted points are appended to the
//! point array, deleted points stay resolvable but leave their cells
//! (they become *dead* ids — indexed by no cell, invisible to every
//! count and draw). That id stability is what makes structural sharing
//! sound: a clean cell's sorted id lists mean exactly the same thing in
//! the patched store. The epoch machinery in `srj-engine` uses this to
//! turn a major epoch swap from `O(|S|)` S-side work into `O(dirty
//! cells)`.

use std::collections::HashSet;
use std::sync::Arc;

use rand::Rng;
use srj_bbst::CellBbsts;
use srj_geom::{Point, PointId, Rect};
use srj_grid::{Cell, Grid};
use srj_kdtree::{CanonicalScratch, KdTree};

use crate::buffer::DrawBuffers;
use crate::parallel::par_map;

/// A per-cell payload a [`CellStore`] can carry: built from one cell's
/// member list, never mutated afterwards.
pub trait CellUnit: Send + Sync + Sized + 'static {
    /// Build parameters shared by every cell of a store (e.g. the BBST
    /// bucket capacity). Fixed when the store is first built; a patch
    /// reuses the original context so rebuilt and shared cells stay
    /// consistent.
    type Ctx: Clone + Send + Sync;

    /// Builds the unit for `cell` (member ids index into `points`).
    fn build_unit(points: &[Point], cell: &Cell, ctx: &Self::Ctx) -> Self;

    /// Approximate heap footprint of this unit, in bytes.
    fn unit_memory_bytes(&self) -> usize;
}

impl CellUnit for CellBbsts {
    type Ctx = BbstCellCtx;

    fn build_unit(points: &[Point], cell: &Cell, ctx: &BbstCellCtx) -> Self {
        if ctx.cascading {
            CellBbsts::build_cascading(points, &cell.by_x, ctx.cap)
        } else {
            CellBbsts::build(points, &cell.by_x, ctx.cap)
        }
    }

    fn unit_memory_bytes(&self) -> usize {
        self.memory_bytes()
    }
}

/// Build context for per-cell BBST pairs: the bucket capacity
/// `⌈log₂ m⌉` and the fractional-cascading switch.
#[derive(Clone, Copy, Debug)]
pub struct BbstCellCtx {
    /// Bucket capacity used for the virtual mass (Section IV-D).
    pub cap: u32,
    /// Whether the trees carry fractional-cascading bridges.
    pub cascading: bool,
}

impl CellUnit for KdTree {
    type Ctx = ();

    /// A kd-tree over the cell's members; its point ids are **local**
    /// (positions in `cell.by_x`), so callers map a sampled local id
    /// through `cell.by_x` back to the global id.
    fn build_unit(points: &[Point], cell: &Cell, _ctx: &()) -> Self {
        let pts: Vec<Point> = cell.by_x.iter().map(|&id| points[id as usize]).collect();
        KdTree::build(&pts)
    }

    fn unit_memory_bytes(&self) -> usize {
        self.memory_bytes()
    }
}

/// What a [`CellStore::patch`] did, surfaced all the way to the serving
/// stats (`cells-patched` counters).
#[derive(Clone, Copy, Debug, Default)]
pub struct PatchReport {
    /// Cells in the patched store.
    pub cells_total: usize,
    /// Cells rebuilt (dirty; includes cells that vanished because every
    /// member was deleted) — the work the patch paid for.
    pub cells_rebuilt: usize,
    /// Cells carried over by `Arc` clone, structurally shared with the
    /// pre-patch store.
    pub cells_shared: usize,
}

/// An immutable, `Arc`-shared collection of per-cell structures over
/// `S`: the grid plus one [`CellUnit`] per non-empty cell, patchable at
/// cell granularity. See the module docs.
pub struct CellStore<U: CellUnit> {
    grid: Arc<Grid>,
    units: Vec<Arc<U>>,
    ctx: U::Ctx,
}

impl<U: CellUnit> CellStore<U> {
    /// Builds the grid and every cell unit (units on `threads`
    /// builder threads; bit-identical to serial).
    pub fn build(points: &[Point], cell_side: f64, ctx: U::Ctx, threads: usize) -> Self {
        Self::from_grid(Arc::new(Grid::build(points, cell_side)), ctx, threads)
    }

    /// Builds the units over an already-built grid (e.g. the planner's
    /// donated estimation grid, or a grid built from a pre-sorted `S`).
    pub fn from_grid(grid: Arc<Grid>, ctx: U::Ctx, threads: usize) -> Self {
        let (units, _par) = par_map(grid.cells(), threads, |_, c| {
            Arc::new(U::build_unit(grid.points(), c, &ctx))
        });
        CellStore { grid, units, ctx }
    }

    /// The grid underneath (cells, coordinates, point array).
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The `Arc` holding the grid — the coarse sharing token.
    pub fn grid_arc(&self) -> &Arc<Grid> {
        &self.grid
    }

    /// Number of non-empty cells.
    pub fn num_cells(&self) -> usize {
        self.units.len()
    }

    /// The unit for the cell at `slot`.
    pub fn unit(&self, slot: u32) -> &U {
        &self.units[slot as usize]
    }

    /// The `Arc` holding the unit at `slot` — `Arc::ptr_eq` across two
    /// stores proves the cell's structure was shared, not rebuilt.
    pub fn unit_arc(&self, slot: u32) -> &Arc<U> {
        &self.units[slot as usize]
    }

    /// The build context the store was created with.
    pub fn ctx(&self) -> &U::Ctx {
        &self.ctx
    }

    /// Per-cell sharing tokens for diagnostics and tests: the cell's
    /// coordinate paired with its unit's `Arc` pointer.
    pub fn cell_tokens(&self) -> Vec<((i32, i32), usize)> {
        self.grid
            .cells()
            .iter()
            .zip(&self.units)
            .map(|(c, u)| (c.coord, Arc::as_ptr(u) as usize))
            .collect()
    }

    /// Rebuilds only the cells touched by `inserted`/`deleted`,
    /// `Arc`-sharing every clean cell's grid entry **and** unit with
    /// this store. Ids are stable: inserted points get
    /// `grid.num_points()..`, deleted ids become dead (resolvable, but
    /// indexed by no cell). The original [`CellStore::ctx`] is reused.
    pub fn patch(&self, inserted: &[Point], deleted: &HashSet<PointId>) -> (Self, PatchReport) {
        let (grid, gp) = self.grid.patch(inserted, deleted);
        let grid = Arc::new(grid);
        let units: Vec<Arc<U>> = gp
            .shared_from
            .iter()
            .enumerate()
            .map(|(slot, from)| match from {
                Some(old) => Arc::clone(&self.units[*old as usize]),
                None => Arc::new(U::build_unit(
                    grid.points(),
                    grid.cell(slot as u32),
                    &self.ctx,
                )),
            })
            .collect();
        let report = PatchReport {
            cells_total: units.len(),
            cells_rebuilt: gp.cells_rebuilt,
            cells_shared: gp.cells_shared,
        };
        (
            CellStore {
                grid,
                units,
                ctx: self.ctx.clone(),
            },
            report,
        )
    }

    /// Approximate heap footprint: grid plus every unit (shared units
    /// are charged here; an aggregator dedups via the store's token).
    pub fn memory_bytes(&self) -> usize {
        self.grid.memory_bytes()
            + self
                .units
                .iter()
                .map(|u| u.unit_memory_bytes())
                .sum::<usize>()
    }
}

/// The KDS family's `S`-side: per-cell kd-trees behind a [`CellStore`],
/// answering exact window counts and uniform in-window draws.
///
/// A window of half-extent = the grid's cell side overlaps at most the
/// 3×3 block around it, so a count visits ≤ 9 cells — fully covered
/// cells in `O(1)`, boundary cells through their kd-tree in `O(√|c|)` —
/// preserving the §III-A `O(√m)` query bound while making the
/// structure patchable cell by cell.
pub struct KdCellStore {
    store: CellStore<KdTree>,
}

impl KdCellStore {
    /// Builds the grid (cell side = the window half-extent `l`) and the
    /// per-cell kd-trees.
    pub fn build(s: &[Point], cell_side: f64, threads: usize) -> Self {
        KdCellStore {
            store: CellStore::build(s, cell_side, (), threads),
        }
    }

    /// Builds the per-cell kd-trees over an already-built grid.
    pub fn from_grid(grid: Arc<Grid>, threads: usize) -> Self {
        KdCellStore {
            store: CellStore::from_grid(grid, (), threads),
        }
    }

    /// The cell store underneath.
    pub fn store(&self) -> &CellStore<KdTree> {
        &self.store
    }

    /// The grid underneath.
    pub fn grid(&self) -> &Grid {
        self.store.grid()
    }

    /// Number of indexed (live) points.
    pub fn live_points(&self) -> usize {
        self.store.grid().live_points()
    }

    /// Cell-granular patch; see [`CellStore::patch`].
    pub fn patch(&self, inserted: &[Point], deleted: &HashSet<PointId>) -> (Self, PatchReport) {
        let (store, report) = self.store.patch(inserted, deleted);
        (KdCellStore { store }, report)
    }

    /// Identity token of the shared allocation (the grid `Arc`).
    pub fn token(&self) -> usize {
        Arc::as_ptr(self.store.grid_arc()) as usize
    }

    /// Walks every cell slot overlapping `w` (≤ 9 for the window sizes
    /// the samplers use; falls back to scanning the non-empty cells for
    /// degenerate wide windows).
    fn for_each_covering_slot(&self, w: &Rect, mut f: impl FnMut(u32)) {
        let grid = self.store.grid();
        let (lo_cx, lo_cy) = grid.coord_of(Point::new(w.min_x, w.min_y));
        let (hi_cx, hi_cy) = grid.coord_of(Point::new(w.max_x, w.max_y));
        let span = (hi_cx as i64 - lo_cx as i64 + 1) * (hi_cy as i64 - lo_cy as i64 + 1);
        if span > grid.num_cells() as i64 {
            for slot in 0..grid.num_cells() as u32 {
                if w.intersects(&grid.cell(slot).rect) {
                    f(slot);
                }
            }
            return;
        }
        for cx in lo_cx..=hi_cx {
            for cy in lo_cy..=hi_cy {
                if let Some(slot) = grid.cell_slot_at((cx, cy)) {
                    f(slot);
                }
            }
        }
    }

    /// Exact count of one cell's members inside `w`.
    fn count_cell(&self, slot: u32, w: &Rect) -> usize {
        let cell = self.store.grid().cell(slot);
        if w.contains_rect(&cell.rect) {
            cell.len()
        } else {
            self.store.unit(slot).range_count(w)
        }
    }

    /// Exact `|S ∩ w|` over the live points.
    pub fn count_window(&self, w: &Rect) -> usize {
        let mut total = 0usize;
        self.for_each_covering_slot(w, |slot| total += self.count_cell(slot, w));
        total
    }

    /// One uniform, independent draw from `S ∩ w` (the KDS sampling
    /// primitive): the covering cell is ranked by exact count, then the
    /// cell's kd-tree draws uniformly inside it. Returns the **global**
    /// point id and the exact window count, or `None` when the window
    /// is empty.
    ///
    /// The per-cell counts are gathered once into a stack buffer (≤ 9
    /// cells for the window sizes the samplers use) and reused for the
    /// rank selection — this is the serving system's hottest loop, so
    /// the covering cells are never range-counted twice. Degenerate
    /// wide windows (> 9 covering cells) fall back to a re-walk.
    pub fn sample_in_window<R: Rng + ?Sized>(
        &self,
        w: &Rect,
        rng: &mut R,
        scratch: &mut CanonicalScratch,
    ) -> Option<(PointId, usize)> {
        self.sample_impl(w, rng, scratch, None)
    }

    /// [`KdCellStore::sample_in_window`] with the buffered fast path:
    /// when the ranked cell is **fully covered** by `w` (every member
    /// qualifies — with cell side = window half-extent that is the
    /// common case), the draw skips the kd descent entirely and is
    /// served from [`DrawBuffers`] — a pre-drawn buffer pop for hot
    /// cells, the already-drawn in-cell rank for cold ones. Boundary
    /// cells keep the descent. The distribution is identical; the RNG
    /// stream is not, so the legacy entry point stays separate.
    pub fn sample_in_window_buffered<R: Rng + ?Sized>(
        &self,
        w: &Rect,
        rng: &mut R,
        scratch: &mut CanonicalScratch,
        buffers: &mut DrawBuffers,
    ) -> Option<(PointId, usize)> {
        self.sample_impl(w, rng, scratch, Some(buffers))
    }

    fn sample_impl<R: Rng + ?Sized>(
        &self,
        w: &Rect,
        rng: &mut R,
        scratch: &mut CanonicalScratch,
        mut buffers: Option<&mut DrawBuffers>,
    ) -> Option<(PointId, usize)> {
        let mut counts: [(u32, usize); 9] = [(0, 0); 9];
        let mut filled = 0usize;
        let mut overflow = false;
        let mut total = 0usize;
        self.for_each_covering_slot(w, |slot| {
            let count = self.count_cell(slot, w);
            if count == 0 {
                return;
            }
            total += count;
            if filled < counts.len() {
                counts[filled] = (slot, count);
                filled += 1;
            } else {
                overflow = true;
            }
        });
        if total == 0 {
            return None;
        }
        let mut rank = rng.gen_range(0..total as u64) as usize;
        let draw = |slot: u32,
                    count: usize,
                    in_cell_rank: usize,
                    rng: &mut R,
                    scratch: &mut CanonicalScratch,
                    buffers: &mut Option<&mut DrawBuffers>| {
            let cell = self.store.grid().cell(slot);
            if let Some(bufs) = buffers.as_deref_mut() {
                if bufs.enabled() && w.contains_rect(&cell.rect) {
                    // Fully covered: every member qualifies, and the
                    // in-cell rank is already uniform over them.
                    debug_assert_eq!(cell.len(), count);
                    let token = Arc::as_ptr(self.store.unit_arc(slot)) as usize;
                    let id = bufs.draw_covered(slot, token, &cell.by_x, || in_cell_rank);
                    return (id, total);
                }
            }
            let (local, in_cell) = self
                .store
                .unit(slot)
                .sample_in_range(w, rng, scratch)
                .expect("covering cell with a positive count must yield a sample");
            debug_assert_eq!(in_cell, count);
            (cell.by_x[local as usize], total)
        };
        if !overflow {
            for &(slot, count) in &counts[..filled] {
                if rank < count {
                    return Some(draw(slot, count, rank, rng, scratch, &mut buffers));
                }
                rank -= count;
            }
            unreachable!("rank exceeded the window count");
        }
        // Wide-window fallback: re-walk the covering cells to locate
        // the ranked one.
        let mut picked: Option<(PointId, usize)> = None;
        self.for_each_covering_slot(w, |slot| {
            if picked.is_some() {
                return;
            }
            let count = self.count_cell(slot, w);
            if rank < count {
                picked = Some(draw(slot, count, rank, rng, scratch, &mut buffers));
            } else {
                rank -= count;
            }
        });
        Some(picked.expect("rank exceeded the window count"))
    }

    /// Approximate heap footprint (grid + per-cell trees).
    pub fn memory_bytes(&self) -> usize {
        self.store.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn pseudo_points(n: usize, seed: u64, extent: f64) -> Vec<Point> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(next() * extent, next() * extent))
            .collect()
    }

    #[test]
    fn kd_cell_store_counts_match_brute_force() {
        let s = pseudo_points(500, 3, 80.0);
        let store = KdCellStore::build(&s, 7.0, 1);
        assert_eq!(store.live_points(), 500);
        for &(cx, cy, half) in &[(20.0, 20.0, 7.0), (5.0, 70.0, 7.0), (40.0, 40.0, 3.0)] {
            let w = Rect::window(Point::new(cx, cy), half);
            let brute = s.iter().filter(|p| w.contains(**p)).count();
            assert_eq!(store.count_window(&w), brute, "window {w:?}");
        }
        // Degenerate wide window exercises the fallback path.
        let wide = Rect::new(-10.0, -10.0, 200.0, 200.0);
        assert_eq!(store.count_window(&wide), 500);
    }

    #[test]
    fn kd_cell_store_samples_are_uniform_in_window() {
        let s = pseudo_points(120, 11, 30.0);
        let store = KdCellStore::build(&s, 6.0, 1);
        let w = Rect::window(Point::new(15.0, 15.0), 6.0);
        let qualifying: Vec<u32> = (0..s.len() as u32)
            .filter(|&i| w.contains(s[i as usize]))
            .collect();
        assert!(qualifying.len() > 5, "test window too sparse");
        let mut rng = SmallRng::seed_from_u64(7);
        let mut scratch = CanonicalScratch::new();
        let mut freq: HashMap<u32, u64> = HashMap::new();
        let draws = 40_000;
        for _ in 0..draws {
            let (id, count) = store.sample_in_window(&w, &mut rng, &mut scratch).unwrap();
            assert_eq!(count, qualifying.len());
            assert!(w.contains(s[id as usize]));
            *freq.entry(id).or_default() += 1;
        }
        assert_eq!(freq.len(), qualifying.len(), "some point never sampled");
        let expected = draws as f64 / qualifying.len() as f64;
        for (&id, &c) in &freq {
            let rel = (c as f64 - expected).abs() / expected;
            assert!(rel < 0.15, "point {id}: expected {expected:.1}, got {c}");
        }
    }

    #[test]
    fn patch_shares_clean_units_and_stays_exact() {
        let s = pseudo_points(400, 21, 60.0);
        let store = KdCellStore::build(&s, 6.0, 1);
        let inserted = vec![Point::new(3.0, 3.0), Point::new(3.5, 3.2)];
        let deleted: HashSet<PointId> = [7u32, 200].into_iter().collect();
        let (patched, rep) = store.patch(&inserted, &deleted);

        assert_eq!(rep.cells_total, patched.store().num_cells());
        assert!(rep.cells_rebuilt >= 1 && rep.cells_rebuilt <= 4);
        assert!(rep.cells_shared > 0);
        // Clean cells share the unit Arc; dirty cells do not.
        let before: HashMap<(i32, i32), usize> = store.store().cell_tokens().into_iter().collect();
        let mut shared = 0;
        for (coord, token) in patched.store().cell_tokens() {
            if before.get(&coord) == Some(&token) {
                shared += 1;
            }
        }
        assert_eq!(shared, rep.cells_shared);

        // Counts over the patched store match a brute force over the
        // live set (stable ids, dead ids invisible).
        let live: Vec<(u32, Point)> = (0..s.len() as u32)
            .filter(|id| !deleted.contains(id))
            .map(|id| (id, s[id as usize]))
            .chain(
                inserted
                    .iter()
                    .enumerate()
                    .map(|(i, &p)| ((s.len() + i) as u32, p)),
            )
            .collect();
        assert_eq!(patched.live_points(), live.len());
        let w = Rect::window(Point::new(4.0, 4.0), 6.0);
        let brute = live.iter().filter(|(_, p)| w.contains(*p)).count();
        assert_eq!(patched.count_window(&w), brute);
        // Sampling never emits a dead id.
        let mut rng = SmallRng::seed_from_u64(9);
        let mut scratch = CanonicalScratch::new();
        for _ in 0..2_000 {
            let (id, _) = patched
                .sample_in_window(&w, &mut rng, &mut scratch)
                .unwrap();
            assert!(!deleted.contains(&id));
        }
    }
}
