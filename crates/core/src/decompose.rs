//! Shared window-over-grid decomposition helpers (Section IV-A/IV-D).
//!
//! Both the proposed BBST algorithm and its Fig. 9 kd-tree variant
//! decompose `w(r)` over the 3×3 cell block and treat cases 1 and 2
//! identically; only case 3 differs. The case-1/2 logic lives here.

use srj_bbst::QuadrantQuery;
use srj_geom::{PointId, Rect};
use srj_grid::{Cell, CellCase};

/// Exact case-1/2 count `µ(r, c)` for a non-corner cell (Section IV-D
/// rationale (i)/(ii)); `None` for corner cells.
pub(crate) fn case12_count(
    cell: &Cell,
    points: &[srj_geom::Point],
    case: CellCase,
    w: &Rect,
) -> Option<u64> {
    let c = match case {
        CellCase::Full => cell.len(),
        CellCase::XMinSided => cell.count_x_at_least(points, w.min_x),
        CellCase::XMaxSided => cell.count_x_at_most(points, w.max_x),
        CellCase::YMinSided => cell.count_y_at_least(points, w.min_y),
        CellCase::YMaxSided => cell.count_y_at_most(points, w.max_y),
        CellCase::Quadrant { .. } => return None,
    };
    Some(c as u64)
}

/// The contiguous run of qualifying ids for a case-1/2 cell (sampling
/// phase (i)/(ii)); `None` for corner cells.
pub(crate) fn case12_run<'a>(
    cell: &'a Cell,
    points: &[srj_geom::Point],
    case: CellCase,
    w: &Rect,
) -> Option<&'a [PointId]> {
    let run = match case {
        CellCase::Full => &cell.by_x[..],
        CellCase::XMinSided => cell.run_x_at_least(points, w.min_x),
        CellCase::XMaxSided => cell.run_x_at_most(points, w.max_x),
        CellCase::YMinSided => cell.run_y_at_least(points, w.min_y),
        CellCase::YMaxSided => cell.run_y_at_most(points, w.max_y),
        CellCase::Quadrant { .. } => return None,
    };
    Some(run)
}

/// The 2-sided query a corner cell poses (Section IV-D rationale (iii)):
/// the window boundary that cuts into the cell on each axis.
pub(crate) fn quadrant_query(x_is_min: bool, y_is_min: bool, w: &Rect) -> QuadrantQuery {
    QuadrantQuery {
        x_is_min,
        y_is_min,
        x0: if x_is_min { w.min_x } else { w.max_x },
        y0: if y_is_min { w.min_y } else { w.max_y },
    }
}

/// The corner cell's quadrant region clipped to the cell extent, as a
/// rectangle — used by the kd-tree variant, whose per-cell trees answer
/// rectangle queries rather than quadrant queries.
pub(crate) fn quadrant_rect(q: &QuadrantQuery, cell_rect: &Rect) -> Rect {
    let (min_x, max_x) = if q.x_is_min {
        (q.x0.min(cell_rect.max_x), cell_rect.max_x)
    } else {
        (cell_rect.min_x, q.x0.max(cell_rect.min_x))
    };
    let (min_y, max_y) = if q.y_is_min {
        (q.y0.min(cell_rect.max_y), cell_rect.max_y)
    } else {
        (cell_rect.min_y, q.y0.max(cell_rect.min_y))
    };
    Rect::new(min_x, min_y, max_x, max_y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use srj_geom::Point;
    use srj_grid::{case_of, Grid, NEIGHBOR_OFFSETS};

    fn pseudo_points(n: usize, seed: u64, extent: f64) -> Vec<Point> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(next() * extent, next() * extent))
            .collect()
    }

    /// Cases 1 and 2 claim exactness: the count must equal the brute
    /// force count of cell points inside the window, for every cell of
    /// the 3×3 block of many probe points.
    #[test]
    fn case12_counts_are_exact() {
        let s = pseudo_points(2000, 3, 100.0);
        let l = 7.0;
        let grid = Grid::build(&s, l);
        let probes = pseudo_points(50, 4, 100.0);
        for rp in probes {
            let w = Rect::window(rp, l);
            let hood = grid.neighborhood(rp);
            for (i, cell) in hood.iter().enumerate() {
                let Some(cell) = cell else { continue };
                let case = case_of(i);
                let Some(count) = case12_count(cell, grid.points(), case, &w) else {
                    continue; // corner cell
                };
                let brute = cell
                    .by_x
                    .iter()
                    .filter(|&&id| w.contains(grid.point(id)))
                    .count() as u64;
                assert_eq!(
                    count, brute,
                    "offset {:?} case {case:?} r {rp:?}",
                    NEIGHBOR_OFFSETS[i]
                );
            }
        }
    }

    /// Every id in a case-1/2 run must satisfy the window, and the run
    /// length must equal the count.
    #[test]
    fn case12_runs_match_counts() {
        let s = pseudo_points(1500, 5, 80.0);
        let l = 6.0;
        let grid = Grid::build(&s, l);
        for rp in pseudo_points(30, 6, 80.0) {
            let w = Rect::window(rp, l);
            for (i, cell) in grid.neighborhood(rp).iter().enumerate() {
                let Some(cell) = cell else { continue };
                let case = case_of(i);
                let (Some(count), Some(run)) = (
                    case12_count(cell, grid.points(), case, &w),
                    case12_run(cell, grid.points(), case, &w),
                ) else {
                    continue;
                };
                assert_eq!(run.len() as u64, count);
                for &id in run {
                    assert!(
                        w.contains(grid.point(id)),
                        "case {case:?} leaked id outside the window"
                    );
                }
            }
        }
    }

    #[test]
    fn quadrant_query_boundaries() {
        let w = Rect::new(10.0, 20.0, 30.0, 40.0);
        let q = quadrant_query(true, true, &w); // c↙
        assert_eq!((q.x0, q.y0), (10.0, 20.0));
        let q = quadrant_query(false, false, &w); // c↗
        assert_eq!((q.x0, q.y0), (30.0, 40.0));
        let q = quadrant_query(true, false, &w); // c↖
        assert_eq!((q.x0, q.y0), (10.0, 40.0));
    }

    #[test]
    fn quadrant_rect_clips_to_cell() {
        let cell = Rect::new(0.0, 0.0, 10.0, 10.0);
        let q = QuadrantQuery {
            x_is_min: true,
            y_is_min: true,
            x0: 4.0,
            y0: 6.0,
        };
        assert_eq!(quadrant_rect(&q, &cell), Rect::new(4.0, 6.0, 10.0, 10.0));
        let q = QuadrantQuery {
            x_is_min: false,
            y_is_min: false,
            x0: 4.0,
            y0: 6.0,
        };
        assert_eq!(quadrant_rect(&q, &cell), Rect::new(0.0, 0.0, 4.0, 6.0));
    }
}
