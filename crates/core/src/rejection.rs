use std::time::Instant;

use rand::{Rng, RngCore};
use srj_alias::AliasTable;
use srj_geom::{Point, Rect};
use srj_grid::Grid;
use srj_kdtree::{CanonicalScratch, KdTree};

use crate::config::{JoinPair, PhaseReport, SampleConfig, SampleError};
use crate::traits::JoinSampler;

/// Baseline 2 — **KDS-rejection** (paper Section III-B).
///
/// Replaces KDS's `O(n√m)` exact counting with `O(1)`-per-point upper
/// bounds from a grid: `µ(r)` = total population of the ≤ 9 cells
/// overlapping `w(r)`. The alias then over-weights each `r` by
/// `µ(r)/|S(w(r))|`, which rejection sampling corrects: a drawn pair is
/// accepted with probability `|S(w(r))| / µ(r)`.
///
/// The bound has **no approximation guarantee** (all nine cells may be
/// almost entirely outside the window), so the expected iteration count
/// `Σµ/|J|` can be large — the drawback the proposed algorithm fixes.
///
/// Expected `O(n + m + n·m^1.5·t/|J|)` time, `O(n + m)` space.
pub struct KdsRejectionSampler {
    r_points: Vec<Point>,
    tree: KdTree,
    grid: Grid,
    /// Per-`r` upper bounds `µ(r)` (the alias weights).
    mu: Vec<f64>,
    alias: Option<AliasTable>,
    config: SampleConfig,
    report: PhaseReport,
    scratch: CanonicalScratch,
}

impl KdsRejectionSampler {
    /// Builds the sampler: kd-tree (pre-processing), grid (GM), bounds +
    /// alias (UB).
    pub fn build(r: &[Point], s: &[Point], config: &SampleConfig) -> Self {
        let t0 = Instant::now();
        let tree = KdTree::build(s);
        let preprocessing = t0.elapsed();

        let t1 = Instant::now();
        let grid = Grid::build(s, config.half_extent);
        let grid_mapping = t1.elapsed();

        let t2 = Instant::now();
        let mu: Vec<f64> = r
            .iter()
            .map(|&rp| grid.neighborhood_population(rp) as f64)
            .collect();
        let alias = AliasTable::new(&mu);
        let upper_bounding = t2.elapsed();

        KdsRejectionSampler {
            r_points: r.to_vec(),
            tree,
            grid,
            mu,
            alias,
            config: *config,
            report: PhaseReport {
                preprocessing,
                grid_mapping,
                upper_bounding,
                ..PhaseReport::default()
            },
            scratch: CanonicalScratch::new(),
        }
    }

    /// Sum of the upper bounds `Σ_r µ(r)` (the rejection-rate
    /// denominator: expected iterations per sample is `Σµ / |J|`).
    pub fn mu_total(&self) -> f64 {
        self.alias.as_ref().map_or(0.0, AliasTable::total_weight)
    }

    fn draw_one(&mut self, rng: &mut dyn RngCore) -> Result<JoinPair, SampleError> {
        let alias = self.alias.as_ref().ok_or(SampleError::EmptyJoin)?;
        let mut consecutive = 0u64;
        loop {
            self.report.iterations += 1;
            let ridx = alias.sample(rng);
            let w = Rect::window(self.r_points[ridx], self.config.half_extent);
            // µ(r) > 0 does not imply the window is non-empty: the nine
            // cells may hold points only outside w(r).
            if let Some((sid, count)) = self.tree.sample_in_range(&w, rng, &mut self.scratch) {
                // Accept with probability |S(w(r))| / µ(r).
                let accept = rng.gen::<f64>() * self.mu[ridx] < count as f64;
                if accept {
                    self.report.samples += 1;
                    return Ok(JoinPair::new(ridx as u32, sid));
                }
            }
            consecutive += 1;
            if consecutive >= self.config.max_consecutive_rejections {
                return Err(SampleError::RejectionLimit);
            }
        }
    }
}

impl JoinSampler for KdsRejectionSampler {
    fn name(&self) -> &'static str {
        "KDS-rejection"
    }

    fn sample_one(&mut self, rng: &mut dyn RngCore) -> Result<JoinPair, SampleError> {
        let t = Instant::now();
        let out = self.draw_one(rng);
        self.report.sampling += t.elapsed();
        out
    }

    fn sample(&mut self, t: usize, rng: &mut dyn RngCore) -> Result<Vec<JoinPair>, SampleError> {
        let start = Instant::now();
        let mut out = Vec::with_capacity(t);
        for _ in 0..t {
            match self.draw_one(rng) {
                Ok(p) => out.push(p),
                Err(e) => {
                    self.report.sampling += start.elapsed();
                    return Err(e);
                }
            }
        }
        self.report.sampling += start.elapsed();
        Ok(out)
    }

    fn report(&self) -> PhaseReport {
        self.report
    }

    fn memory_bytes(&self) -> usize {
        self.r_points.capacity() * std::mem::size_of::<Point>()
            + self.tree.memory_bytes()
            + self.grid.memory_bytes()
            + self.mu.capacity() * std::mem::size_of::<f64>()
            + self.alias.as_ref().map_or(0, AliasTable::memory_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn pseudo_points(n: usize, seed: u64, extent: f64) -> Vec<Point> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| Point::new(next() * extent, next() * extent)).collect()
    }

    #[test]
    fn samples_are_genuine_join_pairs_and_rejections_happen() {
        let r = pseudo_points(70, 11, 60.0);
        let s = pseudo_points(130, 12, 60.0);
        let cfg = SampleConfig::new(5.0);
        let mut sampler = KdsRejectionSampler::build(&r, &s, &cfg);
        let mut rng = SmallRng::seed_from_u64(13);
        let samples = sampler.sample(400, &mut rng).unwrap();
        for p in &samples {
            let w = Rect::window(r[p.r as usize], 5.0);
            assert!(w.contains(s[p.s as usize]));
        }
        let rep = sampler.report();
        assert_eq!(rep.samples, 400);
        // the 9-cell bound is loose: rejections are all but certain here
        assert!(rep.iterations > rep.samples, "expected at least one rejection");
    }

    #[test]
    fn mu_dominates_exact_count() {
        let r = pseudo_points(50, 21, 40.0);
        let s = pseudo_points(80, 22, 40.0);
        let cfg = SampleConfig::new(4.0);
        let sampler = KdsRejectionSampler::build(&r, &s, &cfg);
        for (i, &rp) in r.iter().enumerate() {
            let w = Rect::window(rp, 4.0);
            let exact = s.iter().filter(|p| w.contains(**p)).count() as f64;
            assert!(
                sampler.mu[i] >= exact,
                "r{i}: µ {} < exact {exact}",
                sampler.mu[i]
            );
        }
        let brute = srj_join::nested_loop_join(&r, &s, 4.0).len() as f64;
        assert!(sampler.mu_total() >= brute);
    }

    #[test]
    fn empty_join_with_nearby_points_trips_safety_valve() {
        // S point in a neighbouring cell but outside every window:
        // µ > 0 yet |J| = 0 ⇒ the safety valve must fire.
        let r = vec![Point::new(10.0, 10.0)];
        let s = vec![Point::new(13.5, 13.5)]; // within the 3×3 block for l = 2
        let cfg = SampleConfig::new(2.0).with_rejection_limit(5_000);
        let mut sampler = KdsRejectionSampler::build(&r, &s, &cfg);
        assert!(sampler.mu_total() > 0.0);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(sampler.sample_one(&mut rng), Err(SampleError::RejectionLimit));
    }

    #[test]
    fn truly_empty_join() {
        let r = vec![Point::new(0.0, 0.0)];
        let s = vec![Point::new(500.0, 500.0)];
        let cfg = SampleConfig::new(1.0);
        let mut sampler = KdsRejectionSampler::build(&r, &s, &cfg);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(sampler.sample_one(&mut rng), Err(SampleError::EmptyJoin));
    }
}
