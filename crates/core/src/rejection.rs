use std::sync::Arc;
use std::time::Instant;

use crate::buffer::{BufferStats, KdsScratch};
use crate::cellstore::KdCellStore;
use crate::config::{JoinPair, PhaseReport, SampleConfig, SampleError};
use crate::cursor::{Cursor, SamplerIndex};
use crate::parallel::par_map;
use crate::traits::JoinSampler;
use rand::{Rng, RngCore};
use srj_alias::AliasTable;
use srj_geom::{Point, Rect};
use srj_grid::Grid;

/// Immutable build product of Baseline 2 — **KDS-rejection** (paper
/// Section III-B).
///
/// Replaces KDS's `O(n√m)` exact counting with `O(1)`-per-point upper
/// bounds from a grid: `µ(r)` = total population of the ≤ 9 cells
/// overlapping `w(r)`. The alias then over-weights each `r` by
/// `µ(r)/|S(w(r))|`, which rejection sampling corrects: a drawn pair is
/// accepted with probability `|S(w(r))| / µ(r)`.
///
/// The bound has **no approximation guarantee** (all nine cells may be
/// almost entirely outside the window), so the expected iteration count
/// `Σµ/|J|` can be large — the drawback the proposed algorithm fixes.
///
/// `Send + Sync`, never mutated after build; share it via [`Arc`] and
/// give each thread its own [`KdsRejectionCursor`].
///
/// Expected `O(n + m + n·m^1.5·t/|J|)` time, `O(n + m)` space.
pub struct KdsRejectionIndex {
    r_points: Vec<Point>,
    /// The `S`-side — the grid (for the 9-cell bounds) plus per-cell
    /// kd-trees (for the in-window draws) behind one cell-granular
    /// [`KdCellStore`] — `Arc`-held so a sharded engine can build it
    /// once and share it across every shard (see
    /// [`KdsRejectionIndex::build_shared`]), and an epoch engine can
    /// patch it cell by cell.
    s_cells: Arc<KdCellStore>,
    /// Per-`r` upper bounds `µ(r)` (the alias weights).
    mu: Vec<f64>,
    alias: Option<AliasTable>,
    config: SampleConfig,
    build_report: PhaseReport,
}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<KdsRejectionIndex>();
};

impl KdsRejectionIndex {
    /// Runs the build phases: grid (GM), per-cell kd-trees
    /// (pre-processing), bounds + alias (UB).
    pub fn build(r: &[Point], s: &[Point], config: &SampleConfig) -> Self {
        let (s_cells, preprocessing, grid_mapping) = Self::build_s_structures(s, config);
        Self::build_inner(r, s_cells, config, preprocessing, grid_mapping)
    }

    /// Builds only the `S`-side structures (grid + per-cell kd-trees)
    /// and reports the time each phase took (tree builds, grid build).
    /// A sharded engine calls this once and hands `Arc` clones to every
    /// per-shard [`KdsRejectionIndex::build_shared`], so the `S`-side
    /// is built — and held in memory — exactly once.
    pub fn build_s_structures(
        s: &[Point],
        config: &SampleConfig,
    ) -> (Arc<KdCellStore>, std::time::Duration, std::time::Duration) {
        let t1 = Instant::now();
        let grid = Arc::new(Grid::build(s, config.half_extent));
        let grid_mapping = t1.elapsed();
        let t0 = Instant::now();
        let s_cells = Arc::new(KdCellStore::from_grid(grid, config.build_threads));
        (s_cells, t0.elapsed(), grid_mapping)
    }

    /// Like [`KdsRejectionIndex::build`], but over an already-built
    /// `S`-side (from [`KdsRejectionIndex::build_s_structures`], or a
    /// [`KdCellStore::patch`] of one). Its build time is charged to
    /// whoever built it, so this index's report records zero
    /// preprocessing / grid-mapping.
    ///
    /// # Panics
    /// Panics if the store's cell side differs from
    /// `config.half_extent`.
    pub fn build_shared(r: &[Point], s_cells: Arc<KdCellStore>, config: &SampleConfig) -> Self {
        let zero = std::time::Duration::ZERO;
        Self::build_inner(r, s_cells, config, zero, zero)
    }

    /// Like [`KdsRejectionIndex::build`], but reuses a grid the caller
    /// already built over `s` with cell side `config.half_extent`
    /// (e.g. the planner's estimation grid — `srj-engine` uses this to
    /// avoid paying the grid-mapping phase twice on the auto path).
    /// `grid_build_time` is charged to the report's GM phase so the
    /// phase decomposition stays truthful.
    ///
    /// # Panics
    /// Panics if the grid's cell side differs from `config.half_extent`
    /// or the grid does not cover `s` — a mismatched grid would make
    /// `µ(r)` undercount windows and silently bias the samples.
    pub fn build_with_grid(
        r: &[Point],
        s: &[Point],
        config: &SampleConfig,
        grid: Grid,
        grid_build_time: std::time::Duration,
    ) -> Self {
        assert_eq!(grid.num_points(), s.len(), "grid must cover s");
        let t0 = Instant::now();
        let s_cells = Arc::new(KdCellStore::from_grid(Arc::new(grid), config.build_threads));
        let preprocessing = t0.elapsed();
        Self::build_inner(r, s_cells, config, preprocessing, grid_build_time)
    }

    fn build_inner(
        r: &[Point],
        s_cells: Arc<KdCellStore>,
        config: &SampleConfig,
        preprocessing: std::time::Duration,
        grid_mapping: std::time::Duration,
    ) -> Self {
        assert!(
            s_cells.grid().cell_side().to_bits() == config.half_extent.to_bits(),
            "grid cell side ({}) must equal the window half-extent ({})",
            s_cells.grid().cell_side(),
            config.half_extent
        );

        let t2 = Instant::now();
        let grid = s_cells.grid();
        let (mu, par) = par_map(r, config.build_threads, |_, &rp| {
            grid.neighborhood_population(rp) as f64
        });
        let alias = AliasTable::new(&mu);
        let upper_bounding = t2.elapsed();
        let upper_bounding_cpu = par.cpu + upper_bounding.saturating_sub(par.wall);

        KdsRejectionIndex {
            r_points: r.to_vec(),
            s_cells,
            mu,
            alias,
            config: *config,
            build_report: PhaseReport {
                preprocessing,
                grid_mapping,
                upper_bounding,
                upper_bounding_cpu,
                ..PhaseReport::default()
            },
        }
    }

    /// The `Arc`-shared `S`-side (grid + per-cell kd-trees), for
    /// rebuilding an index over a mutated `R` without re-paying the
    /// `S`-side build, or for patching cell by cell when `S` mutated
    /// (epoch-based rebuilds hand this — or its [`KdCellStore::patch`]
    /// — straight back to [`KdsRejectionIndex::build_shared`]).
    pub fn s_structures(&self) -> Arc<KdCellStore> {
        Arc::clone(&self.s_cells)
    }

    /// Sum of the upper bounds `Σ_r µ(r)` (the rejection-rate
    /// denominator: expected iterations per sample is `Σµ / |J|`).
    pub fn mu_total(&self) -> f64 {
        self.alias.as_ref().map_or(0.0, AliasTable::total_weight)
    }

    /// Upper bound `µ(r)` for one query point.
    pub fn mu_of(&self, ridx: usize) -> f64 {
        self.mu[ridx]
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &SampleConfig {
        &self.config
    }

    /// Build-phase timing (preprocessing + GM + UB).
    pub fn build_report(&self) -> PhaseReport {
        self.build_report
    }

    /// Approximate heap footprint of the retained structures.
    pub fn memory_bytes(&self) -> usize {
        self.r_points.capacity() * std::mem::size_of::<Point>()
            + self.s_cells.memory_bytes()
            + self.mu.capacity() * std::mem::size_of::<f64>()
            + self.alias.as_ref().map_or(0, AliasTable::memory_bytes)
    }
}

impl SamplerIndex for KdsRejectionIndex {
    type Scratch = KdsScratch;

    fn algorithm_name(&self) -> &'static str {
        "KDS-rejection"
    }

    /// One rejection-sampling iteration: draw `r ∝ µ(r)`, draw a point
    /// of `S ∩ w(r)`, accept with probability `|S(w(r))| / µ(r)`.
    fn try_draw<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        scratch: &mut KdsScratch,
        stats: &mut PhaseReport,
    ) -> Result<Option<JoinPair>, SampleError> {
        let alias = self.alias.as_ref().ok_or(SampleError::EmptyJoin)?;
        stats.iterations += 1;
        let ridx = alias.sample(rng);
        let w = Rect::window(self.r_points[ridx], self.config.half_extent);
        // µ(r) > 0 does not imply the window is non-empty: the nine
        // cells may hold points only outside w(r).
        let drawn = if scratch.buffers.enabled() {
            self.s_cells
                .sample_in_window_buffered(&w, rng, &mut scratch.kd, &mut scratch.buffers)
        } else {
            self.s_cells.sample_in_window(&w, rng, &mut scratch.kd)
        };
        if let Some((sid, count)) = drawn {
            // Accept with probability |S(w(r))| / µ(r).
            if rng.gen::<f64>() * self.mu[ridx] < count as f64 {
                stats.samples += 1;
                return Ok(Some(JoinPair::new(ridx as u32, sid)));
            }
        }
        Ok(None)
    }

    fn set_buffers(scratch: &mut KdsScratch, enabled: bool) {
        scratch.buffers.set_enabled(enabled);
    }

    fn warm_buffers(scratch: &mut KdsScratch, slots: &[u32]) {
        scratch.buffers.warm(slots);
    }

    fn seed_buffers(scratch: &mut KdsScratch, seed: u64) {
        scratch.buffers.seed_rng(seed);
    }

    fn drain_buffer_stats(scratch: &mut KdsScratch) -> BufferStats {
        scratch.buffers.drain_stats()
    }

    fn rejection_limit(&self) -> u64 {
        self.config.max_consecutive_rejections
    }

    fn total_weight(&self) -> f64 {
        self.mu_total()
    }

    fn cell_count(&self) -> usize {
        self.s_cells.store().num_cells()
    }

    fn index_build_report(&self) -> PhaseReport {
        self.build_report
    }

    fn index_memory_bytes(&self) -> usize {
        self.memory_bytes()
    }

    fn shared_memory_bytes(&self) -> usize {
        self.s_cells.memory_bytes()
    }

    fn shared_memory_token(&self) -> usize {
        // The grid and the per-cell trees live behind one store Arc,
        // so one token covers both.
        Arc::as_ptr(&self.s_cells) as usize
    }
}

/// Cheap per-thread query state over a shared [`KdsRejectionIndex`]
/// (see [`Cursor`]).
pub type KdsRejectionCursor = Cursor<KdsRejectionIndex>;

/// Baseline 2 — **KDS-rejection** — as a self-contained single-threaded
/// sampler (owned index + one cursor), preserving the pre-split API.
/// Concurrent callers should use [`KdsRejectionIndex`] +
/// [`KdsRejectionCursor`] (or `srj-engine`) directly.
pub struct KdsRejectionSampler {
    cursor: KdsRejectionCursor,
}

impl KdsRejectionSampler {
    /// Builds the index and attaches a private cursor.
    pub fn build(r: &[Point], s: &[Point], config: &SampleConfig) -> Self {
        KdsRejectionSampler {
            cursor: KdsRejectionCursor::new(Arc::new(KdsRejectionIndex::build(r, s, config))),
        }
    }

    /// Sum of the upper bounds `Σ_r µ(r)`.
    pub fn mu_total(&self) -> f64 {
        self.cursor.index().mu_total()
    }

    /// The shared index, for handing to additional cursors.
    pub fn index(&self) -> &Arc<KdsRejectionIndex> {
        self.cursor.index()
    }
}

impl JoinSampler for KdsRejectionSampler {
    fn name(&self) -> &'static str {
        self.cursor.name()
    }

    fn sample_one(&mut self, rng: &mut dyn RngCore) -> Result<JoinPair, SampleError> {
        self.cursor.sample_one(rng)
    }

    fn sample(&mut self, t: usize, rng: &mut dyn RngCore) -> Result<Vec<JoinPair>, SampleError> {
        self.cursor.sample(t, rng)
    }

    fn report(&self) -> PhaseReport {
        self.cursor.report()
    }

    fn memory_bytes(&self) -> usize {
        self.cursor.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn pseudo_points(n: usize, seed: u64, extent: f64) -> Vec<Point> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(next() * extent, next() * extent))
            .collect()
    }

    #[test]
    fn samples_are_genuine_join_pairs_and_rejections_happen() {
        let r = pseudo_points(70, 11, 60.0);
        let s = pseudo_points(130, 12, 60.0);
        let cfg = SampleConfig::new(5.0);
        let mut sampler = KdsRejectionSampler::build(&r, &s, &cfg);
        let mut rng = SmallRng::seed_from_u64(13);
        let samples = sampler.sample(400, &mut rng).unwrap();
        for p in &samples {
            let w = Rect::window(r[p.r as usize], 5.0);
            assert!(w.contains(s[p.s as usize]));
        }
        let rep = sampler.report();
        assert_eq!(rep.samples, 400);
        // the 9-cell bound is loose: rejections are all but certain here
        assert!(
            rep.iterations > rep.samples,
            "expected at least one rejection"
        );
    }

    #[test]
    fn mu_dominates_exact_count() {
        let r = pseudo_points(50, 21, 40.0);
        let s = pseudo_points(80, 22, 40.0);
        let cfg = SampleConfig::new(4.0);
        let sampler = KdsRejectionSampler::build(&r, &s, &cfg);
        let index = sampler.index();
        for (i, &rp) in r.iter().enumerate() {
            let w = Rect::window(rp, 4.0);
            let exact = s.iter().filter(|p| w.contains(**p)).count() as f64;
            assert!(
                index.mu_of(i) >= exact,
                "r{i}: µ {} < exact {exact}",
                index.mu_of(i)
            );
        }
        let brute = srj_join::nested_loop_join(&r, &s, 4.0).len() as f64;
        assert!(sampler.mu_total() >= brute);
    }

    #[test]
    fn empty_join_with_nearby_points_trips_safety_valve() {
        // S point in a neighbouring cell but outside every window:
        // µ > 0 yet |J| = 0 ⇒ the safety valve must fire.
        let r = vec![Point::new(10.0, 10.0)];
        let s = vec![Point::new(13.5, 13.5)]; // within the 3×3 block for l = 2
        let cfg = SampleConfig::new(2.0).with_rejection_limit(5_000);
        let mut sampler = KdsRejectionSampler::build(&r, &s, &cfg);
        assert!(sampler.mu_total() > 0.0);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(
            sampler.sample_one(&mut rng),
            Err(SampleError::RejectionLimit)
        );
    }

    #[test]
    fn truly_empty_join() {
        let r = vec![Point::new(0.0, 0.0)];
        let s = vec![Point::new(500.0, 500.0)];
        let cfg = SampleConfig::new(1.0);
        let mut sampler = KdsRejectionSampler::build(&r, &s, &cfg);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(sampler.sample_one(&mut rng), Err(SampleError::EmptyJoin));
    }

    #[test]
    fn cursors_over_shared_index_are_reproducible() {
        let r = pseudo_points(40, 31, 30.0);
        let s = pseudo_points(70, 32, 30.0);
        let index = Arc::new(KdsRejectionIndex::build(&r, &s, &SampleConfig::new(4.0)));
        let mut a = KdsRejectionCursor::new(Arc::clone(&index));
        let mut b = KdsRejectionCursor::new(Arc::clone(&index));
        let mut rng_a = SmallRng::seed_from_u64(99);
        let mut rng_b = SmallRng::seed_from_u64(99);
        assert_eq!(
            a.sample(30, &mut rng_a).unwrap(),
            b.sample(30, &mut rng_b).unwrap()
        );
    }
}
