//! Uniform, independent random sampling over spatial range joins.
//!
//! The paper's problem (Definition 2): given point sets `R` (size `n`)
//! and `S` (size `m`), a window half-extent `l`, and a sample count `t`,
//! return `t` pairs of `J = {(r, s) | s ∈ w(r)}`, each drawn uniformly at
//! random with replacement and independently — **without running the
//! join**.
//!
//! Four samplers implement the common [`JoinSampler`] trait:
//!
//! | Sampler | Paper | Time | Space |
//! |---|---|---|---|
//! | [`KdsSampler`] | §III-A | `O((n + t)√m)` | `O(n + m)` |
//! | [`KdsRejectionSampler`] | §III-B | `O(n + m + n·m^1.5·t/\|J\|)` exp. | `O(n + m)` |
//! | [`BbstSampler`] | §IV | `Õ(n + m + t)` exp. | `O(n + m)` |
//! | [`BbstKdVariantSampler`] | Fig. 9 | grid pipeline, kd-tree cells | `O(n + m)` |
//!
//! plus [`JoinThenSample`], the `Ω(|J|)` strawman (materialise, then
//! sample) that the introduction rules out and the experiments use as a
//! sanity lower bound.
//!
//! All samplers record a [`PhaseReport`] with the paper's phase
//! decomposition (pre-processing, GM, UB, sampling; Tables II–IV) and
//! expose `memory_bytes()` for the Fig. 4 experiment.
//!
//! ## Build once, sample from many threads
//!
//! The paper separates one-time preprocessing from per-sample work; this
//! crate makes that split structural. Every sampler is divided into an
//! immutable, `Send + Sync` **index** ([`KdsIndex`],
//! [`KdsRejectionIndex`], [`BbstIndex`], [`BbstKdVariantIndex`]) that
//! runs the build phases exactly once, and a cheap mutable **cursor**
//! ([`KdsCursor`], [`KdsRejectionCursor`], [`BbstCursor`],
//! [`BbstKdVariantCursor`]) holding only per-thread state (scratch
//! buffers and sampling statistics). Wrap an index in an `Arc`, hand
//! each thread its own cursor, and all threads draw concurrently from
//! the same structures. The classic `*Sampler` types remain as
//! single-threaded shims (owned index + one cursor) with the original
//! API; the `srj-engine` crate builds a full concurrent serving engine
//! — planner, index cache, `R`-sharding, latency statistics — on top
//! of this split.
//!
//! ## Dynamic datasets
//!
//! Mutations never touch a built index: pending inserts/deletes live
//! in a [`DeltaSet`] and an [`OverlayIndex`] composes any base index
//! with them — three disjoint pair sources behind one per-iteration
//! alias — so samples stay exactly uniform over the *current* join
//! between full rebuilds (see [`overlay`](OverlayIndex)). The
//! `srj-engine` crate drives this through its epoch-swap cell.
//!
//! ## Parallel builds
//!
//! The dominant build cost everywhere is the per-`r` upper-bounding
//! loop; [`SampleConfig::build_threads`] runs it on a chunked
//! [`std::thread::scope`] map ([`parallel`]) with **bit-identical**
//! results at any thread count. [`PhaseReport`] records the phase's
//! wall time and the summed worker CPU time separately, so the
//! achieved speedup is always visible.

mod bbst_alg;
pub mod buffer;
pub mod cellstore;
mod config;
mod cursor;
mod decompose;
mod kds;
mod materialize;
mod overlay;
pub mod parallel;
mod rangetree_sampler;
mod rejection;
mod traits;
mod variant;

pub use bbst_alg::{BbstCursor, BbstIndex, BbstSStructures, BbstSampler};
pub use buffer::{BufferStats, DrawBuffers, KdsScratch, BUFFER_CAP, MAX_BUFFERS, PROMOTE_HITS};
pub use cellstore::{
    BbstCellCtx, CellStore, CellUnit, KdCellStore, PatchReport as CellPatchReport,
};
pub use config::{JoinPair, PhaseReport, SampleConfig, SampleError};
pub use cursor::{AnySamplerIndex, Cursor, SamplerIndex};
pub use kds::{KdsCursor, KdsIndex, KdsSampler};
pub use materialize::JoinThenSample;
pub use overlay::{DeltaSet, OverlayIndex, OverlaySupport};
pub use parallel::{chunk_bounds, effective_threads, par_map, ParMapReport};
pub use rangetree_sampler::RangeTreeSampler;
pub use rejection::{KdsRejectionCursor, KdsRejectionIndex, KdsRejectionSampler};
pub use traits::{JoinSampler, SampleIter};
pub use variant::{BbstKdVariantCursor, BbstKdVariantIndex, BbstKdVariantSampler};

// Re-export the mass mode so downstream users configure the BBST bound
// without depending on srj-bbst directly.
pub use srj_bbst::MassMode;
