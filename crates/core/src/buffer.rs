//! Per-cell sample buffers: the O(1) buffered-draw fast path.
//!
//! The SIRS trick this reproduces: a draw that lands in a grid cell
//! **fully covered** by the query window is a uniform choice among the
//! cell's members — window-independent — so hot cells can carry a
//! fixed-capacity buffer of pre-drawn member ids, refilled in bulk
//! under the buffer's own RNG stream. The common draw then pops the
//! next pre-drawn id (a sequential read) instead of paying a kd-tree /
//! BBST descent plus a cold random access into the member list.
//!
//! Buffers live in the per-cursor scratch, so they are **pinned to the
//! index the cursor samples** (indexes are immutable; a maintenance
//! swap produces a new index, new cursors, and therefore fresh
//! buffers). Each buffer additionally records the identity of the
//! member list it was drawn from and refuses to serve a mismatched
//! list — a stale buffer would be a uniformity bug, not just a perf
//! bug. The path is off by default (`Default` scratch ⇒ disabled), so
//! the legacy draw entry points keep their byte-identical RNG streams;
//! the serving engine's batch path switches it on.
//!
//! Uniformity: conditioned on the rank draw selecting a fully-covered
//! cell, every member is equally likely — whether served as
//! `members[rank_in_cell]` (the unpromoted O(1) path, reusing the rank
//! the cell selection already consumed) or as the next pre-drawn
//! buffer id (each refill entry is an independent uniform draw over
//! the same member list). The cell-selection probabilities themselves
//! are untouched, so the draw distribution over the window is exactly
//! the descent path's.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use srj_geom::PointId;
use srj_kdtree::CanonicalScratch;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-cursor scratch of the KDS family: the kd-tree descent buffer
/// plus the buffered-draw fast path state (off by default, so
/// `Default` cursors keep the legacy RNG stream byte-for-byte).
#[derive(Default)]
pub struct KdsScratch {
    /// Kd-tree descent scratch.
    pub kd: CanonicalScratch,
    /// Buffered fully-covered-cell draw state.
    pub buffers: DrawBuffers,
}

/// Pre-drawn ids per buffer: large enough to amortise the refill's
/// random member-list accesses, small enough that a cursor's working
/// set of buffers stays cache-resident.
pub const BUFFER_CAP: usize = 256;

/// Fully-covered draws a slot must serve before it earns a buffer —
/// cold cells keep the direct path and never pay a refill.
pub const PROMOTE_HITS: u32 = 8;

/// Buffers one cursor holds at most (the hottest slots win).
pub const MAX_BUFFERS: usize = 32;

/// Promotion-ladder entries tracked per cursor.
const MAX_HEAT: usize = 64;

/// Hit/refill/invalidation counts accumulated by one cursor's buffers,
/// drained by the serving engine into its shared counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Draws served by a buffer pop.
    pub hits: u64,
    /// Bulk refills performed.
    pub refills: u64,
    /// Buffers dropped because their member-list identity changed.
    pub invalidations: u64,
}

impl BufferStats {
    /// Field-wise sum.
    pub fn merge(&mut self, other: BufferStats) {
        self.hits += other.hits;
        self.refills += other.refills;
        self.invalidations += other.invalidations;
    }
}

/// One hot cell's pre-drawn ids.
struct SampleBuffer {
    slot: u32,
    /// Identity of the member list the ids were drawn from (the unit
    /// `Arc` pointer); `0` = not yet filled.
    token: usize,
    ids: Vec<PointId>,
    /// Next unserved id; `== ids.len()` means empty.
    pos: usize,
}

/// Process-wide seed sequence for buffer RNG streams: every buffer set
/// gets its own deterministic-per-process stream, decorrelated from
/// the request-seeded draw RNGs.
static BUFFER_SEED_SEQ: AtomicU64 = AtomicU64::new(0x5EED_B0FF_u64);

/// The per-cursor buffer set; lives inside an index's scratch state.
/// `Default` is all-off: the legacy draw entry points see a disabled,
/// empty set and never consult it.
#[derive(Default)]
pub struct DrawBuffers {
    enabled: bool,
    /// The buffer set's own RNG stream, created on first use.
    rng: Option<SmallRng>,
    bufs: Vec<SampleBuffer>,
    /// Promotion ladder: (slot, fully-covered draws served so far).
    heat: Vec<(u32, u32)>,
    stats: BufferStats,
}

impl DrawBuffers {
    /// Whether the buffered path is active for this cursor.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Switches the buffered path on or off. Turning it off keeps the
    /// buffers (re-enabling resumes them); the legacy entry points
    /// never consult them anyway.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Pins the buffer RNG to a caller-chosen stream. Seeded handles
    /// call this at arm time so a request's buffered draw sequence is
    /// a pure function of its seed — without it the stream comes from
    /// the process-wide [`BUFFER_SEED_SEQ`] and two same-seed requests
    /// would serve different (still uniform) pairs.
    pub fn seed_rng(&mut self, seed: u64) {
        self.rng = Some(SmallRng::seed_from_u64(seed));
    }

    /// Pre-promotes `slots`: each gets an empty buffer that fills on
    /// its first draw, skipping the promotion ladder. Callers wanting
    /// reproducible streams must warm from per-request-deterministic
    /// state only (the serving engine deliberately does not warm at
    /// all — see `Engine::arm_buffers`).
    pub fn warm(&mut self, slots: &[u32]) {
        for &slot in slots {
            if self.bufs.len() >= MAX_BUFFERS {
                break;
            }
            if self.bufs.iter().any(|b| b.slot == slot) {
                continue;
            }
            self.bufs.push(SampleBuffer {
                slot,
                token: 0,
                ids: Vec::new(),
                pos: 0,
            });
        }
    }

    /// Drains the accumulated hit/refill/invalidation counts.
    pub fn drain_stats(&mut self) -> BufferStats {
        std::mem::take(&mut self.stats)
    }

    /// One uniform draw over `members` (a fully-covered cell's member
    /// list, identified by `token`): a buffer pop when `slot` is hot,
    /// otherwise `members[rank()]` — `rank` is lazy because callers on
    /// the rank-walk path already hold a uniform in-cell rank, while
    /// others would pay an RNG draw for nothing.
    ///
    /// Callers must ensure `members` is non-empty and every member
    /// qualifies (the cell is fully covered by the query window).
    #[inline]
    pub fn draw_covered(
        &mut self,
        slot: u32,
        token: usize,
        members: &[PointId],
        rank: impl FnOnce() -> usize,
    ) -> PointId {
        debug_assert!(!members.is_empty());
        if let Some(i) = self.bufs.iter().position(|b| b.slot == slot) {
            return self.pop(i, token, members);
        }
        self.bump_heat(slot);
        members[rank()]
    }

    /// Serves one id from buffer `i`, refilling (and dropping stale
    /// contents) as needed.
    fn pop(&mut self, i: usize, token: usize, members: &[PointId]) -> PointId {
        let buf = &mut self.bufs[i];
        if buf.token != token {
            // The member list this buffer was drawn from is gone (only
            // possible if a cursor outlived its index's cell — the
            // scratch pinning makes this unreachable today, but a
            // stale serve would silently break uniformity, so the
            // check stays).
            if buf.token != 0 {
                self.stats.invalidations += 1;
            }
            buf.token = token;
            buf.pos = buf.ids.len(); // force refill
        }
        if buf.pos == buf.ids.len() {
            let rng = self.rng.get_or_insert_with(|| {
                SmallRng::seed_from_u64(
                    BUFFER_SEED_SEQ.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed),
                )
            });
            let buf = &mut self.bufs[i];
            buf.ids.clear();
            buf.ids.reserve(BUFFER_CAP);
            let len = members.len() as u128;
            for _ in 0..BUFFER_CAP {
                // Widening-multiply uniform index (bias ≤ len/2⁶⁴).
                let k = ((rng.next_u64() as u128 * len) >> 64) as usize;
                buf.ids.push(members[k]);
            }
            buf.pos = 0;
            self.stats.refills += 1;
        }
        let buf = &mut self.bufs[i];
        let id = buf.ids[buf.pos];
        buf.pos += 1;
        self.stats.hits += 1;
        id
    }

    /// Counts a fully-covered draw toward `slot`'s promotion.
    fn bump_heat(&mut self, slot: u32) {
        if self.bufs.len() >= MAX_BUFFERS {
            return;
        }
        if let Some(entry) = self.heat.iter_mut().find(|(s, _)| *s == slot) {
            entry.1 += 1;
            if entry.1 >= PROMOTE_HITS {
                self.warm(&[slot]);
            }
        } else if self.heat.len() < MAX_HEAT {
            self.heat.push((slot, 1));
        }
    }

    /// Number of promoted slots (tests / diagnostics).
    pub fn promoted(&self) -> usize {
        self.bufs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn unpromoted_draws_use_the_given_rank() {
        let mut b = DrawBuffers::default();
        b.set_enabled(true);
        let members = [10u32, 20, 30];
        assert_eq!(b.draw_covered(5, 1, &members, || 2), 30);
        assert_eq!(b.drain_stats(), BufferStats::default());
    }

    #[test]
    fn promotion_after_enough_hits_then_buffered() {
        let mut b = DrawBuffers::default();
        b.set_enabled(true);
        let members: Vec<u32> = (0..50).collect();
        for _ in 0..PROMOTE_HITS {
            b.draw_covered(3, 7, &members, || 0);
        }
        assert_eq!(b.promoted(), 1);
        let id = b.draw_covered(3, 7, &members, || unreachable!("buffered"));
        assert!(members.contains(&id));
        let s = b.drain_stats();
        assert_eq!((s.hits, s.refills), (1, 1));
    }

    #[test]
    fn warm_start_skips_the_ladder_and_draws_are_uniform() {
        let mut b = DrawBuffers::default();
        b.set_enabled(true);
        b.warm(&[9]);
        let members: Vec<u32> = (0..10).collect();
        let draws = 40_000u64;
        let mut freq: HashMap<u32, u64> = HashMap::new();
        for _ in 0..draws {
            *freq
                .entry(b.draw_covered(9, 42, &members, || unreachable!()))
                .or_default() += 1;
        }
        let expected = draws as f64 / members.len() as f64;
        for (&id, &c) in &freq {
            let rel = (c as f64 - expected).abs() / expected;
            assert!(rel < 0.1, "member {id}: {c} vs {expected}");
        }
        let s = b.drain_stats();
        assert_eq!(s.hits, draws);
        assert_eq!(s.refills, draws.div_ceil(BUFFER_CAP as u64));
        assert_eq!(s.invalidations, 0);
    }

    #[test]
    fn token_change_invalidates_and_refills() {
        let mut b = DrawBuffers::default();
        b.set_enabled(true);
        b.warm(&[1]);
        let old: Vec<u32> = (0..8).collect();
        let new: Vec<u32> = (100..108).collect();
        b.draw_covered(1, 11, &old, || unreachable!());
        let id = b.draw_covered(1, 22, &new, || unreachable!());
        assert!(new.contains(&id), "stale id {id} served after token change");
        let s = b.drain_stats();
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.refills, 2);
    }

    #[test]
    fn buffer_cap_bounds_the_set() {
        let mut b = DrawBuffers::default();
        b.set_enabled(true);
        let slots: Vec<u32> = (0..2 * MAX_BUFFERS as u32).collect();
        b.warm(&slots);
        assert_eq!(b.promoted(), MAX_BUFFERS);
    }
}
