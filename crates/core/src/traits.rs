use rand::RngCore;

use crate::config::{JoinPair, PhaseReport, SampleError};

/// Common interface of all join samplers.
///
/// Object-safe (the experiment harness iterates over
/// `Box<dyn JoinSampler>`), so the RNG is taken as `&mut dyn RngCore`.
///
/// All samplers draw **with replacement**; every accepted pair is a
/// uniform, independent draw from `J` (Theorem 3 for BBST, the
/// correctness arguments of §III for the baselines).
pub trait JoinSampler {
    /// Human-readable algorithm name (as used in the paper's tables).
    fn name(&self) -> &'static str;

    /// Draws one uniform join sample.
    fn sample_one(&mut self, rng: &mut dyn RngCore) -> Result<JoinPair, SampleError>;

    /// Draws `t` uniform join samples with replacement (Definition 2).
    ///
    /// The default implementation loops [`JoinSampler::sample_one`];
    /// implementations may override for batching. The loop is
    /// bracketed by trace span hooks ([`srj_obs::trace::event`]) that
    /// cost one relaxed load when tracing is disabled.
    fn sample(&mut self, t: usize, rng: &mut dyn RngCore) -> Result<Vec<JoinPair>, SampleError> {
        srj_obs::trace::event("draw_loop", "begin");
        let mut out = Vec::with_capacity(t);
        for _ in 0..t {
            match self.sample_one(rng) {
                Ok(pair) => out.push(pair),
                Err(e) => {
                    srj_obs::trace::event("draw_loop", "error");
                    return Err(e);
                }
            }
        }
        srj_obs::trace::event("draw_loop", "end");
        Ok(out)
    }

    /// Draws `t` **distinct** join samples (sampling without
    /// replacement), by the paper's suggested extension: "just rejecting
    /// a given sample if it has already been obtained" (§II).
    ///
    /// Needs `t ≤ |J|`; if `t` exceeds the join size the duplicate
    /// bail-out below reports [`SampleError::RejectionLimit`].
    fn sample_without_replacement(
        &mut self,
        t: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<JoinPair>, SampleError> {
        // Bound the pre-allocation: `t` is caller-controlled and the
        // old `t * 2` both overflowed near `usize::MAX` and committed
        // gigabytes up front for huge requests. The set still grows on
        // demand past the cap.
        const MAX_PREALLOC_PAIRS: usize = 1 << 16;
        let mut seen =
            std::collections::HashSet::with_capacity(t.saturating_mul(2).min(MAX_PREALLOC_PAIRS));
        let mut out = Vec::with_capacity(t.min(MAX_PREALLOC_PAIRS));
        let mut consecutive_duplicates = 0u64;
        while out.len() < t {
            let pair = self.sample_one(rng)?;
            if seen.insert(pair) {
                out.push(pair);
                consecutive_duplicates = 0;
            } else {
                consecutive_duplicates += 1;
                // Adaptive bail-out, scaled to the observed distinct
                // count k instead of a fixed 10M draws (which stalled
                // for minutes on tiny exhausted joins): if any unseen
                // pair remained, a draw would miss it with probability
                // ≤ k/(k+1), so c consecutive duplicates occur with
                // probability ≤ (k/(k+1))^c ≈ e^(−c/(k+1)). At
                // c = 64·(k+1) a false bail-out has probability
                // < e⁻⁶⁴; the 4096 floor keeps tiny k comfortably
                // conservative.
                let limit = 64 * (seen.len() as u64 + 1);
                if consecutive_duplicates > limit.max(4_096) {
                    return Err(SampleError::RejectionLimit);
                }
            }
        }
        Ok(out)
    }

    /// Phase timing / iteration report (Tables II–IV).
    fn report(&self) -> PhaseReport;

    /// Moves any per-cell rejection records this sampler accumulated
    /// since the last call into `out` (one `S`-cell slot per rejected
    /// iteration). Default: no cell attribution (`out` untouched). The
    /// serving engine drains these into shared per-cell counters — the
    /// feedback behind targeted cell repairs.
    fn take_cell_rejections(&mut self, _out: &mut Vec<u32>) {}

    /// Approximate heap footprint of all retained structures, in bytes
    /// (Fig. 4).
    fn memory_bytes(&self) -> usize;

    /// Progressive sampling: an iterator of uniform, independent join
    /// samples that can be stopped at any point.
    ///
    /// The paper notes that `t` "can be ∞. Because all algorithms ...
    /// pick join samples progressively, they can stop sampling whenever
    /// sufficient join samples are obtained" (§II). The iterator ends
    /// (returns `None`) on the first [`SampleError`], which it exposes
    /// through [`SampleIter::error`].
    fn sample_iter<'a>(&'a mut self, rng: &'a mut dyn RngCore) -> SampleIter<'a>
    where
        Self: Sized,
    {
        SampleIter {
            sampler: self,
            rng,
            error: None,
        }
    }
}

/// Progressive sampling iterator; see [`JoinSampler::sample_iter`].
pub struct SampleIter<'a> {
    sampler: &'a mut dyn JoinSampler,
    rng: &'a mut dyn RngCore,
    error: Option<SampleError>,
}

impl SampleIter<'_> {
    /// The error that terminated the stream, if any.
    pub fn error(&self) -> Option<SampleError> {
        self.error
    }
}

impl Iterator for SampleIter<'_> {
    type Item = JoinPair;

    fn next(&mut self) -> Option<JoinPair> {
        if self.error.is_some() {
            return None;
        }
        match self.sampler.sample_one(self.rng) {
            Ok(p) => Some(p),
            Err(e) => {
                self.error = Some(e);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// A toy sampler over a fixed pair universe, to exercise the default
    /// trait methods in isolation.
    struct Toy {
        universe: Vec<JoinPair>,
        report: PhaseReport,
    }

    impl JoinSampler for Toy {
        fn name(&self) -> &'static str {
            "toy"
        }
        fn sample_one(&mut self, rng: &mut dyn RngCore) -> Result<JoinPair, SampleError> {
            if self.universe.is_empty() {
                return Err(SampleError::EmptyJoin);
            }
            self.report.iterations += 1;
            self.report.samples += 1;
            let i = (rng.next_u64() % self.universe.len() as u64) as usize;
            Ok(self.universe[i])
        }
        fn report(&self) -> PhaseReport {
            self.report
        }
        fn memory_bytes(&self) -> usize {
            self.universe.len() * std::mem::size_of::<JoinPair>()
        }
    }

    fn toy(n: u32) -> Toy {
        Toy {
            universe: (0..n).map(|i| JoinPair::new(i, i * 2)).collect(),
            report: PhaseReport::default(),
        }
    }

    #[test]
    fn default_sample_collects_t() {
        let mut t = toy(10);
        let mut rng = SmallRng::seed_from_u64(0);
        let v = t.sample(25, &mut rng).unwrap();
        assert_eq!(v.len(), 25);
        assert_eq!(t.report().samples, 25);
    }

    #[test]
    fn empty_join_propagates() {
        let mut t = toy(0);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(t.sample(5, &mut rng), Err(SampleError::EmptyJoin));
    }

    #[test]
    fn without_replacement_is_distinct_and_complete() {
        let mut t = toy(20);
        let mut rng = SmallRng::seed_from_u64(1);
        let v = t.sample_without_replacement(20, &mut rng).unwrap();
        assert_eq!(v.len(), 20);
        let set: std::collections::HashSet<_> = v.iter().collect();
        assert_eq!(set.len(), 20, "duplicates returned");
    }

    #[test]
    fn without_replacement_bails_out_fast_when_t_exceeds_join() {
        // |J| = 5 but 10 distinct pairs requested: the adaptive
        // bail-out must fire after ~thousands of draws, not the old
        // fixed 10M.
        let mut t = toy(5);
        let mut rng = SmallRng::seed_from_u64(8);
        assert_eq!(
            t.sample_without_replacement(10, &mut rng),
            Err(SampleError::RejectionLimit)
        );
        // 5 distinct + adaptive duplicate budget: orders of magnitude
        // below the old 10M-draw stall.
        assert!(
            t.report().iterations < 100_000,
            "bail-out too slow: {} draws",
            t.report().iterations
        );
    }

    #[test]
    fn without_replacement_survives_skewed_near_complete_collection() {
        // Collecting all 40 of 40 pairs forces long duplicate streaks
        // near the end; the adaptive limit must NOT fire spuriously.
        let mut t = toy(40);
        let mut rng = SmallRng::seed_from_u64(12);
        let v = t.sample_without_replacement(40, &mut rng).unwrap();
        assert_eq!(v.len(), 40);
    }

    #[test]
    fn without_replacement_huge_t_does_not_overallocate() {
        // A request near usize::MAX previously computed `t * 2` with
        // overflow (debug: panic) and tried to reserve the result.
        // Now it starts bounded and fails via the bail-out.
        let mut t = toy(3);
        let mut rng = SmallRng::seed_from_u64(5);
        assert_eq!(
            t.sample_without_replacement(usize::MAX, &mut rng),
            Err(SampleError::RejectionLimit)
        );
    }

    #[test]
    fn sample_iter_streams_and_stops_on_error() {
        let mut t = toy(5);
        let mut rng = SmallRng::seed_from_u64(3);
        let collected: Vec<_> = t.sample_iter(&mut rng).take(100).collect();
        assert_eq!(collected.len(), 100);

        let mut empty = toy(0);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut iter = empty.sample_iter(&mut rng);
        assert!(iter.next().is_none());
        assert_eq!(iter.error(), Some(SampleError::EmptyJoin));
    }

    #[test]
    fn object_safety() {
        let mut boxed: Box<dyn JoinSampler> = Box::new(toy(3));
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(boxed.sample_one(&mut rng).is_ok());
        // the dyn-compatible RNG plumbing still yields usable randomness
        let mut any = false;
        for _ in 0..50 {
            any |= boxed.sample_one(&mut rng).unwrap().r != 0;
        }
        assert!(any);
        let _ = rng.gen::<f64>();
    }
}
