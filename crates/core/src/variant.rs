use std::sync::Arc;
use std::time::Instant;

use rand::{Rng, RngCore};
use srj_alias::{AliasTable, CumulativeRow9};
use srj_geom::{Point, PointId, Rect};
use srj_grid::{case_of, CellCase, Grid};
use srj_kdtree::{CanonicalScratch, KdTree};

use crate::config::{JoinPair, PhaseReport, SampleConfig, SampleError};
use crate::cursor::{Cursor, SamplerIndex};
use crate::decompose::{case12_count, case12_run, quadrant_query, quadrant_rect};
use crate::parallel::par_map;
use crate::traits::JoinSampler;

/// Immutable build product of the Fig. 9 ablation: Algorithm 1's
/// pipeline with **a per-cell kd-tree instead of the two BBSTs** for the
/// case-3 corner cells ("this variant used KDS" for corner sampling).
///
/// Case-3 counts become exact (kd-tree range counting of the clipped
/// quadrant rectangle) and corner draws never produce dud slots, but
/// each corner count costs `O(√N)` instead of `Õ(1)` and each corner
/// draw costs `O(√N)` — which is precisely the gap the paper's Fig. 9
/// measures (BBST is "up to 12 times faster").
///
/// `Send + Sync`; share via [`Arc`] with one
/// [`BbstKdVariantCursor`] per thread.
pub struct BbstKdVariantIndex {
    r_points: Vec<Point>,
    grid: Grid,
    /// Per-cell kd-trees, parallel to `grid.cells()`; point ids are
    /// positions in the cell's `by_x` array.
    cell_trees: Vec<KdTree>,
    rows: Vec<CumulativeRow9>,
    alias: Option<AliasTable>,
    config: SampleConfig,
    build_report: PhaseReport,
}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<BbstKdVariantIndex>();
};

impl BbstKdVariantIndex {
    /// Builds the variant (same phase structure as
    /// [`crate::BbstIndex::build`]).
    pub fn build(r: &[Point], s: &[Point], config: &SampleConfig) -> Self {
        let t0 = Instant::now();
        let mut x_order: Vec<PointId> = (0..s.len() as u32).collect();
        x_order.sort_unstable_by(|&a, &b| s[a as usize].x.total_cmp(&s[b as usize].x));
        let preprocessing = t0.elapsed();

        let t1 = Instant::now();
        let grid = Grid::build_from_sorted(s, &x_order, config.half_extent);
        drop(x_order);
        let cell_trees: Vec<KdTree> = grid
            .cells()
            .iter()
            .map(|c| {
                let pts: Vec<Point> = c.by_x.iter().map(|&id| grid.point(id)).collect();
                KdTree::build(&pts)
            })
            .collect();
        let grid_mapping = t1.elapsed();

        let t2 = Instant::now();
        let (rows, par) = par_map(r, config.build_threads, |_, &rp| {
            let w = Rect::window(rp, config.half_extent);
            let slots = grid.neighborhood_slots(rp);
            let mut cell_w = [0.0f64; 9];
            for (i, slot) in slots.into_iter().enumerate() {
                let Some(slot) = slot else { continue };
                let cell = grid.cell(slot);
                let mu = match case_of(i) {
                    CellCase::Quadrant { x_is_min, y_is_min } => {
                        let q = quadrant_query(x_is_min, y_is_min, &w);
                        let rect = quadrant_rect(&q, &cell.rect);
                        cell_trees[slot as usize].range_count(&rect) as u64
                    }
                    case => case12_count(cell, grid.points(), case, &w)
                        .expect("non-corner case must yield an exact count"),
                };
                cell_w[i] = mu as f64;
            }
            CumulativeRow9::new(cell_w)
        });
        let weights: Vec<f64> = rows.iter().map(CumulativeRow9::total).collect();
        let alias = AliasTable::new(&weights);
        let upper_bounding = t2.elapsed();
        let upper_bounding_cpu = par.cpu + upper_bounding.saturating_sub(par.wall);

        BbstKdVariantIndex {
            r_points: r.to_vec(),
            grid,
            cell_trees,
            rows,
            alias,
            config: *config,
            build_report: PhaseReport {
                preprocessing,
                grid_mapping,
                upper_bounding,
                upper_bounding_cpu,
                ..PhaseReport::default()
            },
        }
    }

    /// Sum of the per-`r` bounds — exact here, so `mu_total == |J|`.
    pub fn mu_total(&self) -> f64 {
        self.alias.as_ref().map_or(0.0, AliasTable::total_weight)
    }

    /// Build-phase timing (preprocessing + GM + UB).
    pub fn build_report(&self) -> PhaseReport {
        self.build_report
    }

    /// Approximate heap footprint of the retained structures.
    pub fn memory_bytes(&self) -> usize {
        self.r_points.capacity() * std::mem::size_of::<Point>()
            + self.grid.memory_bytes()
            + self
                .cell_trees
                .iter()
                .map(KdTree::memory_bytes)
                .sum::<usize>()
            + self.rows.capacity() * std::mem::size_of::<CumulativeRow9>()
            + self.alias.as_ref().map_or(0, AliasTable::memory_bytes)
    }

    /// One uniform draw against the immutable index (`&self`; safe from
    /// many threads). The variant's bounds are exact, so a draw never
    /// rejects.
    fn draw<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        scratch: &mut CanonicalScratch,
        stats: &mut PhaseReport,
    ) -> Result<JoinPair, SampleError> {
        let alias = self.alias.as_ref().ok_or(SampleError::EmptyJoin)?;
        stats.iterations += 1;
        let ridx = alias.sample(rng);
        let rp = self.r_points[ridx];
        let w = Rect::window(rp, self.config.half_extent);
        let cell_idx = self.rows[ridx]
            .sample(rng)
            .expect("alias returned r with zero µ(r)");
        let slot = self.grid.neighborhood_slots(rp)[cell_idx]
            .expect("positive cell weight for an empty cell");
        let cell = self.grid.cell(slot);
        let sid = match case_of(cell_idx) {
            CellCase::Quadrant { x_is_min, y_is_min } => {
                let q = quadrant_query(x_is_min, y_is_min, &w);
                let rect = quadrant_rect(&q, &cell.rect);
                let (pos, _count) = self.cell_trees[slot as usize]
                    .sample_in_range(&rect, rng, scratch)
                    .expect("positive exact count for an empty quadrant");
                cell.by_x[pos as usize]
            }
            case => {
                let run = case12_run(cell, self.grid.points(), case, &w)
                    .expect("non-corner case must yield a run");
                run[rng.gen_range(0..run.len())]
            }
        };
        debug_assert!(
            w.contains(self.grid.point(sid)),
            "variant sample escaped the window"
        );
        stats.samples += 1;
        Ok(JoinPair::new(ridx as u32, sid))
    }
}

impl SamplerIndex for BbstKdVariantIndex {
    type Scratch = CanonicalScratch;

    fn algorithm_name(&self) -> &'static str {
        "BBST-kd-variant"
    }

    fn try_draw<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        scratch: &mut CanonicalScratch,
        stats: &mut PhaseReport,
    ) -> Result<Option<JoinPair>, SampleError> {
        self.draw(rng, scratch, stats).map(Some)
    }

    fn total_weight(&self) -> f64 {
        self.mu_total()
    }

    fn index_build_report(&self) -> PhaseReport {
        self.build_report
    }

    fn index_memory_bytes(&self) -> usize {
        self.memory_bytes()
    }
}

/// Cheap per-thread query state over a shared [`BbstKdVariantIndex`]
/// (see [`Cursor`]).
pub type BbstKdVariantCursor = Cursor<BbstKdVariantIndex>;

/// The Fig. 9 ablation as a self-contained single-threaded sampler
/// (owned index + one cursor), preserving the pre-split API.
pub struct BbstKdVariantSampler {
    cursor: BbstKdVariantCursor,
}

impl BbstKdVariantSampler {
    /// Builds the index and attaches a private cursor.
    pub fn build(r: &[Point], s: &[Point], config: &SampleConfig) -> Self {
        BbstKdVariantSampler {
            cursor: BbstKdVariantCursor::new(Arc::new(BbstKdVariantIndex::build(r, s, config))),
        }
    }

    /// Sum of the per-`r` bounds — exact here, so `mu_total == |J|`.
    pub fn mu_total(&self) -> f64 {
        self.cursor.index().mu_total()
    }

    /// The shared index, for handing to additional cursors.
    pub fn index(&self) -> &Arc<BbstKdVariantIndex> {
        self.cursor.index()
    }
}

impl JoinSampler for BbstKdVariantSampler {
    fn name(&self) -> &'static str {
        self.cursor.name()
    }

    fn sample_one(&mut self, rng: &mut dyn RngCore) -> Result<JoinPair, SampleError> {
        self.cursor.sample_one(rng)
    }

    fn sample(&mut self, t: usize, rng: &mut dyn RngCore) -> Result<Vec<JoinPair>, SampleError> {
        self.cursor.sample(t, rng)
    }

    fn report(&self) -> PhaseReport {
        self.cursor.report()
    }

    fn memory_bytes(&self) -> usize {
        self.cursor.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn pseudo_points(n: usize, seed: u64, extent: f64) -> Vec<Point> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(next() * extent, next() * extent))
            .collect()
    }

    #[test]
    fn samples_are_genuine_and_never_rejected() {
        let r = pseudo_points(70, 81, 60.0);
        let s = pseudo_points(200, 82, 60.0);
        let cfg = SampleConfig::new(5.0);
        let mut sampler = BbstKdVariantSampler::build(&r, &s, &cfg);
        let mut rng = SmallRng::seed_from_u64(83);
        let samples = sampler.sample(400, &mut rng).unwrap();
        for p in samples {
            let w = Rect::window(r[p.r as usize], 5.0);
            assert!(w.contains(s[p.s as usize]));
        }
        // exact per-cell counts ⇒ zero rejections
        let rep = sampler.report();
        assert_eq!(rep.iterations, rep.samples);
    }

    #[test]
    fn mu_total_equals_join_size() {
        let r = pseudo_points(50, 91, 40.0);
        let s = pseudo_points(90, 92, 40.0);
        let sampler = BbstKdVariantSampler::build(&r, &s, &SampleConfig::new(4.0));
        let brute = srj_join::nested_loop_join(&r, &s, 4.0).len() as f64;
        assert_eq!(sampler.mu_total(), brute);
    }

    #[test]
    fn empty_join() {
        let r = vec![Point::new(0.0, 0.0)];
        let s = vec![Point::new(900.0, 900.0)];
        let mut sampler = BbstKdVariantSampler::build(&r, &s, &SampleConfig::new(1.0));
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(sampler.sample_one(&mut rng), Err(SampleError::EmptyJoin));
    }
}
