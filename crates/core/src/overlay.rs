//! Delta overlay: uniform sampling over a **mutated** dataset between
//! full index rebuilds.
//!
//! Every index in this crate is build-once/immutable — the right call
//! for the paper's static workloads, but a dynamic dataset (point
//! inserts and deletes) would otherwise force a full rebuild per
//! mutation. The overlay answers correctly *between* rebuilds: pending
//! mutations live in a small [`DeltaSet`] (insert buffers + delete
//! tombstones) and an [`OverlayIndex`] composes the unchanged base
//! index with the deltas, preserving per-iteration uniformity.
//!
//! ## The sampling argument
//!
//! Let the current (logical) dataset be `R' = (R ∖ R⁻) ∪ R⁺` and
//! `S' = (S ∖ S⁻) ∪ S⁺`. Its join `J'` splits into three **disjoint**
//! pair sources:
//!
//! 1. **base** — `(r, s)` with both endpoints in the base sets. The
//!    base index already emits every pair of `J(R, S)` with
//!    per-iteration probability exactly `1/W_base`
//!    ([`SamplerIndex::total_weight`]'s invariant); pairs touching a
//!    tombstoned point are simply **rejected**, which filters the
//!    emitted set down to source 1 without changing any survivor's
//!    probability.
//! 2. **inserted `R` × base `S`** — a Walker alias over `R⁺` weighted
//!    by the §III-B 9-cell bound `µ(r)` (population of the 3×3 grid
//!    block over base `S`), then one uniform candidate from the block,
//!    accepted iff it lies in `w(r)` and is not tombstoned: each pair
//!    `(r⁺, s)` is emitted per iteration with probability
//!    `(µ(r)/W_R) · (1/µ(r)) = 1/W_R`.
//! 3. **current `R` × inserted `S`** — the window is symmetric
//!    (`s ∈ w(r) ⇔ r ∈ w(s)`), so an alias over `S⁺` weighted by
//!    `ν(s) = pop₉(s over base R) + |R⁺|` draws `s`, then one uniform
//!    candidate from the ≤ 9-cell block over base `R` **plus** the
//!    whole `R⁺` buffer, accepted iff `r ∈ w(s)` and live. Again each
//!    pair is emitted with probability exactly `1/W_S` per iteration.
//!
//! A top-level alias over `(W_base, W_R, W_S)` re-picks the source on
//! **every** iteration (the same composition rule as the sharded
//! engine: per iteration every pair of `J'` must have probability
//! `1/(W_base + W_R + W_S)`), so accepted samples are uniform over the
//! *current* join — chi-squared-tested in `tests/dynamic_updates.rs`.
//!
//! The two support grids (over base `S` for source 2, over base `R`
//! for source 3) are built once per epoch ([`OverlaySupport`]) and
//! `Arc`-shared across every overlay snapshot of that epoch; a
//! snapshot itself costs `O(|delta|)` to assemble.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::Rng;
use srj_alias::AliasTable;
use srj_geom::{Point, PointId, Rect};
use srj_grid::Grid;

use crate::buffer::BufferStats;
use crate::config::{JoinPair, PhaseReport, SampleConfig, SampleError};
use crate::cursor::SamplerIndex;

/// Pending mutations against a base `(R, S)` snapshot: insert buffers
/// plus delete tombstones.
///
/// Point ids are stable within an epoch: base points keep their build
/// ids (`0..base_len`), inserted points get `base_len + i` in insertion
/// order. Deleting an inserted point tombstones it (its id is never
/// reused); a full rebuild compacts ids and resets the delta.
#[derive(Clone, Debug, Default)]
pub struct DeltaSet {
    /// `|R|` of the base snapshot the ids are relative to.
    pub base_r_len: usize,
    /// `|S|` of the base snapshot.
    pub base_s_len: usize,
    /// Inserted `R` points; id of `r_inserted[i]` is `base_r_len + i`.
    pub r_inserted: Vec<Point>,
    /// Inserted `S` points; id of `s_inserted[j]` is `base_s_len + j`.
    pub s_inserted: Vec<Point>,
    /// Tombstoned `R` ids (base or inserted).
    pub r_deleted: HashSet<PointId>,
    /// Tombstoned `S` ids (base or inserted).
    pub s_deleted: HashSet<PointId>,
}

impl DeltaSet {
    /// An empty delta against a base of the given sizes.
    pub fn for_base(base_r_len: usize, base_s_len: usize) -> Self {
        DeltaSet {
            base_r_len,
            base_s_len,
            ..DeltaSet::default()
        }
    }

    /// `true` iff no mutation is pending.
    pub fn is_empty(&self) -> bool {
        self.r_inserted.is_empty()
            && self.s_inserted.is_empty()
            && self.r_deleted.is_empty()
            && self.s_deleted.is_empty()
    }

    /// Total pending operations (inserts + tombstones; a deleted
    /// inserted point counts twice — it cost two operations).
    pub fn pending_ops(&self) -> usize {
        self.r_inserted.len() + self.s_inserted.len() + self.r_deleted.len() + self.s_deleted.len()
    }

    /// Live `|R'|` (base + inserted − tombstoned).
    pub fn live_r_len(&self) -> usize {
        self.base_r_len + self.r_inserted.len() - self.r_deleted.len()
    }

    /// Live `|S'|`.
    pub fn live_s_len(&self) -> usize {
        self.base_s_len + self.s_inserted.len() - self.s_deleted.len()
    }

    /// Whether `R` id `id` is currently live.
    pub fn is_r_live(&self, id: PointId) -> bool {
        (id as usize) < self.base_r_len + self.r_inserted.len() && !self.r_deleted.contains(&id)
    }

    /// Whether `S` id `id` is currently live.
    pub fn is_s_live(&self, id: PointId) -> bool {
        (id as usize) < self.base_s_len + self.s_inserted.len() && !self.s_deleted.contains(&id)
    }

    /// Resolves `R` id `id` against `base_r` (live or tombstoned).
    pub fn r_point(&self, base_r: &[Point], id: PointId) -> Option<Point> {
        let i = id as usize;
        if i < self.base_r_len {
            base_r.get(i).copied()
        } else {
            self.r_inserted.get(i - self.base_r_len).copied()
        }
    }

    /// Resolves `S` id `id` against `base_s`.
    pub fn s_point(&self, base_s: &[Point], id: PointId) -> Option<Point> {
        let j = id as usize;
        if j < self.base_s_len {
            base_s.get(j).copied()
        } else {
            self.s_inserted.get(j - self.base_s_len).copied()
        }
    }

    /// Approximate heap footprint of the buffers.
    pub fn memory_bytes(&self) -> usize {
        let set_entry = std::mem::size_of::<PointId>() + 1;
        (self.r_inserted.capacity() + self.s_inserted.capacity()) * std::mem::size_of::<Point>()
            + (self.r_deleted.capacity() + self.s_deleted.capacity()) * set_entry
    }

    /// Pending tombstones (deletes only, both sides). Tombstone-heavy
    /// deltas degrade the base source's acceptance rate *and* keep `Σµ`
    /// inflated, so the engine tracks them against a separate (lower)
    /// rebuild threshold than the total pending fraction.
    pub fn tombstone_ops(&self) -> usize {
        self.r_deleted.len() + self.s_deleted.len()
    }

    /// The dirty-cell map of the pending `S`-side mutations: the
    /// coordinates (cell side = `cell_side`) of every inserted or
    /// tombstoned `S` point, resolved against `base_s`. This is exactly
    /// the set of cells a [`crate::CellStore::patch`] would rebuild —
    /// the engine compares its size against the total cell count to
    /// decide between a cell patch and a full rebuild.
    pub fn dirty_s_cells(&self, base_s: &[Point], cell_side: f64) -> HashSet<(i32, i32)> {
        let coord = |p: Point| {
            (
                (p.x / cell_side).floor() as i32,
                (p.y / cell_side).floor() as i32,
            )
        };
        let mut dirty: HashSet<(i32, i32)> = HashSet::new();
        for (j, &p) in self.s_inserted.iter().enumerate() {
            if !self.s_deleted.contains(&((self.base_s_len + j) as PointId)) {
                dirty.insert(coord(p));
            }
        }
        for &id in &self.s_deleted {
            // Only deletes of *base* points dirty a cell; an
            // inserted-then-deleted point never materialises, so a
            // patch never touches its would-be cell (mirrors
            // `Grid::patch`'s dirty computation exactly — overcounting
            // here would make the engine's patch budget refuse patches
            // it could afford).
            if (id as usize) < self.base_s_len {
                if let Some(p) = self.s_point(base_s, id) {
                    dirty.insert(coord(p));
                }
            }
        }
        dirty
    }
}

/// Per-epoch support structures for [`OverlayIndex`]: one hash grid
/// over base `S` (candidate source for inserted-`R` draws) and one
/// over base `R` (candidate source for inserted-`S` draws), both with
/// cell side = `l` so a window's 3×3 block covers it. Built once per
/// epoch, `Arc`-shared across every overlay snapshot of that epoch.
pub struct OverlaySupport {
    s_grid: Arc<Grid>,
    r_grid: Arc<Grid>,
    build_time: Duration,
    half_extent: f64,
}

impl OverlaySupport {
    /// Builds both grids over the epoch's base snapshot; `O(n + m)`.
    pub fn build(base_r: &[Point], base_s: &[Point], half_extent: f64) -> Self {
        Self::build_filtered(base_r, base_s, &HashSet::new(), half_extent)
    }

    /// Like [`OverlaySupport::build`], but the `S`-side grid indexes
    /// only the ids **not** in `s_dead` — the dead ids an incremental
    /// (cell-patch) compaction left in the base without renumbering.
    /// Dead points then never enter a neighborhood population (so the
    /// inserted-`R` weights `µ(r⁺)` count live candidates only) and are
    /// never drawn as candidates, keeping the overlay sources exactly
    /// uniform over the live join.
    pub fn build_filtered(
        base_r: &[Point],
        base_s: &[Point],
        s_dead: &HashSet<PointId>,
        half_extent: f64,
    ) -> Self {
        let t0 = Instant::now();
        let s_grid = Arc::new(Grid::build_subset(base_s, s_dead, half_extent));
        let r_grid = Arc::new(Grid::build(base_r, half_extent));
        OverlaySupport {
            s_grid,
            r_grid,
            build_time: t0.elapsed(),
            half_extent,
        }
    }

    /// Wall-clock the grid builds took.
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// The window half-extent both grids were built with.
    pub fn half_extent(&self) -> f64 {
        self.half_extent
    }

    /// Heap bytes of both grids.
    pub fn memory_bytes(&self) -> usize {
        self.s_grid.memory_bytes() + self.r_grid.memory_bytes()
    }
}

/// The `k`-th member (0-based) of the 3×3 neighborhood of `p`, in the
/// deterministic slot order [`Grid::neighborhood_slots`] — the order
/// `neighborhood_population` sums in, so a uniform `k` in
/// `[0, pop₉(p))` is a uniform candidate.
fn kth_neighborhood_member(grid: &Grid, p: Point, mut k: usize) -> PointId {
    for slot in grid.neighborhood_slots(p).into_iter().flatten() {
        let cell = grid.cell(slot);
        if k < cell.len() {
            return cell.by_x[k];
        }
        k -= cell.len();
    }
    unreachable!("candidate rank outside the neighborhood population")
}

/// A base index composed with a [`DeltaSet`]: answers uniformly over
/// the **current** (mutated) join without touching the base build. See
/// the module docs for the three-source argument.
///
/// Immutable and `Send + Sync` like every index: a mutation produces a
/// *new* overlay snapshot (`O(|delta|)`), which the engine layer swaps
/// in atomically while in-flight cursors finish against the old one.
pub struct OverlayIndex<I: SamplerIndex> {
    base: Arc<I>,
    delta: DeltaSet,
    s_grid: Arc<Grid>,
    r_grid: Arc<Grid>,
    /// Alias over `(W_base, W_R, W_S)`; `None` when all are zero.
    source_alias: Option<AliasTable>,
    /// Alias over inserted `R` weighted by `µ(r)` (0 for tombstoned).
    r_ins_alias: Option<AliasTable>,
    /// `µ(r)` per inserted `R` point (the candidate count the draw
    /// ranks into; must match the alias weights exactly).
    r_ins_mu: Vec<u64>,
    /// Alias over inserted `S` weighted by `ν(s)` (0 for tombstoned).
    s_ins_alias: Option<AliasTable>,
    total_weight: f64,
    rejection_limit: u64,
    half_extent: f64,
    build_report: PhaseReport,
}

impl<I: SamplerIndex> OverlayIndex<I> {
    /// Assembles an overlay snapshot: `O(|delta|)` alias builds over
    /// the `Arc`-shared per-epoch `support` grids.
    ///
    /// # Panics
    /// Panics if `support` was built for a different base snapshot or
    /// half-extent than `delta`/`config` describe — a mismatched grid
    /// would silently bias the overlay sources.
    pub fn new(
        base: Arc<I>,
        delta: DeltaSet,
        support: &OverlaySupport,
        config: &SampleConfig,
    ) -> Self {
        assert_eq!(
            support.s_grid.num_points(),
            delta.base_s_len,
            "overlay support S-grid does not cover the base S snapshot"
        );
        assert_eq!(
            support.r_grid.num_points(),
            delta.base_r_len,
            "overlay support R-grid does not cover the base R snapshot"
        );
        assert!(
            support.half_extent.to_bits() == config.half_extent.to_bits(),
            "overlay support grids were built for l = {}, config says {}",
            support.half_extent,
            config.half_extent
        );

        // Source 2 weights: 9-cell bound over base S, zeroed for
        // tombstoned inserts (a zero-weight alias entry is never drawn).
        let r_ins_mu: Vec<u64> = delta
            .r_inserted
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                if delta
                    .r_deleted
                    .contains(&((delta.base_r_len + i) as PointId))
                {
                    0
                } else {
                    support.s_grid.neighborhood_population(p) as u64
                }
            })
            .collect();
        // Source 3 weights: 9-cell bound over base R plus the whole
        // inserted-R buffer (every r⁺ is a candidate for every s⁺).
        let s_ins_nu: Vec<u64> = delta
            .s_inserted
            .iter()
            .enumerate()
            .map(|(j, &p)| {
                if delta
                    .s_deleted
                    .contains(&((delta.base_s_len + j) as PointId))
                {
                    0
                } else {
                    (support.r_grid.neighborhood_population(p) + delta.r_inserted.len()) as u64
                }
            })
            .collect();

        let mu_f: Vec<f64> = r_ins_mu.iter().map(|&w| w as f64).collect();
        let nu_f: Vec<f64> = s_ins_nu.iter().map(|&w| w as f64).collect();
        let w_base = base.total_weight();
        let w_r: f64 = mu_f.iter().sum();
        let w_s: f64 = nu_f.iter().sum();
        let build_report = base.index_build_report();

        OverlayIndex {
            source_alias: AliasTable::new(&[w_base, w_r, w_s]),
            r_ins_alias: AliasTable::new(&mu_f),
            s_ins_alias: AliasTable::new(&nu_f),
            r_ins_mu,
            total_weight: w_base + w_r + w_s,
            rejection_limit: config.max_consecutive_rejections,
            half_extent: config.half_extent,
            s_grid: Arc::clone(&support.s_grid),
            r_grid: Arc::clone(&support.r_grid),
            base,
            delta,
            build_report,
        }
    }

    /// The unchanged base index underneath.
    pub fn base(&self) -> &Arc<I> {
        &self.base
    }

    /// The pending mutations this snapshot serves.
    pub fn delta(&self) -> &DeltaSet {
        &self.delta
    }

    /// One base-source iteration: base draw + tombstone filter. The
    /// base's own accounting runs against a scratch report so a
    /// tombstone rejection is not miscounted as an accepted sample.
    fn try_draw_base<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        scratch: &mut I::Scratch,
        stats: &mut PhaseReport,
    ) -> Result<Option<JoinPair>, SampleError> {
        let mut sub = PhaseReport::default();
        let drawn = self.base.try_draw(rng, scratch, &mut sub)?;
        stats.iterations += sub.iterations;
        match drawn {
            Some(p)
                if !self.delta.r_deleted.contains(&p.r) && !self.delta.s_deleted.contains(&p.s) =>
            {
                stats.samples += 1;
                Ok(Some(p))
            }
            _ => Ok(None),
        }
    }

    /// One inserted-`R` iteration: `r⁺ ∝ µ`, uniform candidate from the
    /// base-S 3×3 block, accept iff in-window and live.
    fn try_draw_r_ins<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        stats: &mut PhaseReport,
    ) -> Option<JoinPair> {
        stats.iterations += 1;
        let alias = self.r_ins_alias.as_ref()?;
        let i = alias.sample(rng);
        let rp = self.delta.r_inserted[i];
        let mu = self.r_ins_mu[i];
        debug_assert!(mu > 0, "alias drew a zero-weight insert");
        let k = rng.gen_range(0..mu) as usize;
        let sid = kth_neighborhood_member(&self.s_grid, rp, k);
        let sp = self.s_grid.point(sid);
        if Rect::window(rp, self.half_extent).contains(sp) && !self.delta.s_deleted.contains(&sid) {
            stats.samples += 1;
            return Some(JoinPair::new((self.delta.base_r_len + i) as PointId, sid));
        }
        None
    }

    /// One inserted-`S` iteration: `s⁺ ∝ ν`, uniform candidate from the
    /// base-R 3×3 block ⊎ the inserted-R buffer, accept iff in-window
    /// and live.
    fn try_draw_s_ins<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        stats: &mut PhaseReport,
    ) -> Option<JoinPair> {
        stats.iterations += 1;
        let alias = self.s_ins_alias.as_ref()?;
        let j = alias.sample(rng);
        let sp = self.delta.s_inserted[j];
        let pop = self.r_grid.neighborhood_population(sp);
        let total = pop + self.delta.r_inserted.len();
        debug_assert!(total > 0, "alias drew an insert with no candidates");
        let k = rng.gen_range(0..total as u64) as usize;
        let (rid, rp) = if k < pop {
            let rid = kth_neighborhood_member(&self.r_grid, sp, k);
            (rid, self.r_grid.point(rid))
        } else {
            let i = k - pop;
            (
                (self.delta.base_r_len + i) as PointId,
                self.delta.r_inserted[i],
            )
        };
        if Rect::window(rp, self.half_extent).contains(sp) && !self.delta.r_deleted.contains(&rid) {
            stats.samples += 1;
            return Some(JoinPair::new(rid, (self.delta.base_s_len + j) as PointId));
        }
        None
    }
}

impl<I: SamplerIndex> SamplerIndex for OverlayIndex<I> {
    type Scratch = I::Scratch;

    fn algorithm_name(&self) -> &'static str {
        self.base.algorithm_name()
    }

    /// One iteration: source `∝ (W_base, W_R, W_S)` — re-picked every
    /// iteration, exactly like the sharded composition — then one
    /// iteration of that source.
    fn try_draw<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        scratch: &mut Self::Scratch,
        stats: &mut PhaseReport,
    ) -> Result<Option<JoinPair>, SampleError> {
        let alias = self.source_alias.as_ref().ok_or(SampleError::EmptyJoin)?;
        match alias.sample(rng) {
            0 => self.try_draw_base(rng, scratch, stats),
            1 => Ok(self.try_draw_r_ins(rng, stats)),
            _ => Ok(self.try_draw_s_ins(rng, stats)),
        }
    }

    fn rejection_limit(&self) -> u64 {
        self.rejection_limit
    }

    fn total_weight(&self) -> f64 {
        self.total_weight
    }

    fn cell_count(&self) -> usize {
        // The overlay's scratch IS the base's scratch, so base draws
        // keep attributing rejections to their cells through the
        // overlay; size the counters accordingly.
        self.base.cell_count()
    }

    fn drain_cell_rejections(scratch: &mut Self::Scratch, out: &mut Vec<u32>) {
        I::drain_cell_rejections(scratch, out);
    }

    fn set_buffers(scratch: &mut Self::Scratch, enabled: bool) {
        // The overlay's scratch IS the base's scratch: base-source
        // draws keep their buffered fast path through the overlay.
        I::set_buffers(scratch, enabled);
    }

    fn warm_buffers(scratch: &mut Self::Scratch, slots: &[u32]) {
        I::warm_buffers(scratch, slots);
    }

    fn seed_buffers(scratch: &mut Self::Scratch, seed: u64) {
        I::seed_buffers(scratch, seed);
    }

    fn drain_buffer_stats(scratch: &mut Self::Scratch) -> BufferStats {
        I::drain_buffer_stats(scratch)
    }

    fn index_build_report(&self) -> PhaseReport {
        self.build_report
    }

    fn index_memory_bytes(&self) -> usize {
        self.base.index_memory_bytes()
            + self.s_grid.memory_bytes()
            + self.r_grid.memory_bytes()
            + self.delta.memory_bytes()
            + self.r_ins_mu.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BbstIndex, Cursor, JoinSampler, KdsIndex, KdsRejectionIndex};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn pseudo_points(n: usize, seed: u64, extent: f64) -> Vec<Point> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(next() * extent, next() * extent))
            .collect()
    }

    /// Brute-force current join over a delta'd dataset.
    fn live_join(base_r: &[Point], base_s: &[Point], delta: &DeltaSet, l: f64) -> Vec<JoinPair> {
        let mut rs: Vec<(PointId, Point)> = Vec::new();
        for (i, &p) in base_r.iter().enumerate() {
            rs.push((i as PointId, p));
        }
        for (i, &p) in delta.r_inserted.iter().enumerate() {
            rs.push(((delta.base_r_len + i) as PointId, p));
        }
        let mut ss: Vec<(PointId, Point)> = Vec::new();
        for (j, &p) in base_s.iter().enumerate() {
            ss.push((j as PointId, p));
        }
        for (j, &p) in delta.s_inserted.iter().enumerate() {
            ss.push(((delta.base_s_len + j) as PointId, p));
        }
        let mut out = Vec::new();
        for &(rid, rp) in rs.iter().filter(|(id, _)| !delta.r_deleted.contains(id)) {
            let w = Rect::window(rp, l);
            for &(sid, sp) in ss.iter().filter(|(id, _)| !delta.s_deleted.contains(id)) {
                if w.contains(sp) {
                    out.push(JoinPair::new(rid, sid));
                }
            }
        }
        out
    }

    fn mutated_delta(base_r: &[Point], base_s: &[Point], seed: u64) -> DeltaSet {
        let mut delta = DeltaSet::for_base(base_r.len(), base_s.len());
        let extra_r = pseudo_points(25, seed, 60.0);
        let extra_s = pseudo_points(30, seed + 1, 60.0);
        delta.r_inserted = extra_r;
        delta.s_inserted = extra_s;
        // tombstone a spread of base points and one inserted point per side
        for id in (0..base_r.len() as u32).step_by(7) {
            delta.r_deleted.insert(id);
        }
        for id in (0..base_s.len() as u32).step_by(9) {
            delta.s_deleted.insert(id);
        }
        delta.r_deleted.insert((base_r.len() + 3) as PointId);
        delta.s_deleted.insert((base_s.len() + 5) as PointId);
        delta
    }

    /// Chi-squared over the full pair space must not reject uniformity
    /// (threshold mirrors tests/uniformity.rs: p ≈ 0.001).
    fn assert_uniform(counts: &HashMap<JoinPair, u64>, join: &[JoinPair], draws: u64) {
        let k = join.len() as f64;
        let expected = draws as f64 / k;
        assert!(expected >= 5.0, "test underpowered: expected {expected}");
        let chi2: f64 = join
            .iter()
            .map(|p| {
                let o = *counts.get(p).unwrap_or(&0) as f64;
                (o - expected) * (o - expected) / expected
            })
            .sum();
        let dof = k - 1.0;
        // Wilson–Hilferty normal approximation of the chi² 99.9th pct.
        let z = 3.09;
        let cut = dof * (1.0 - 2.0 / (9.0 * dof) + z * (2.0 / (9.0 * dof)).sqrt()).powi(3);
        assert!(
            chi2 < cut,
            "chi2 {chi2:.1} over cutoff {cut:.1} (dof {dof})"
        );
    }

    fn overlay_uniformity_case<I, F>(build: F, seed: u64)
    where
        I: SamplerIndex,
        F: Fn(&[Point], &[Point], &SampleConfig) -> I,
    {
        let l = 6.0;
        let cfg = SampleConfig::new(l);
        let base_r = pseudo_points(60, 100 + seed, 50.0);
        let base_s = pseudo_points(80, 200 + seed, 50.0);
        let delta = mutated_delta(&base_r, &base_s, 300 + seed);
        let join = live_join(&base_r, &base_s, &delta, l);
        assert!(join.len() > 30, "workload too sparse: {}", join.len());

        let support = OverlaySupport::build(&base_r, &base_s, l);
        let base = Arc::new(build(&base_r, &base_s, &cfg));
        let overlay = Arc::new(OverlayIndex::new(
            Arc::clone(&base),
            delta.clone(),
            &support,
            &cfg,
        ));

        let draws = (join.len() as u64 * 60).max(20_000);
        let mut cursor = Cursor::new(Arc::clone(&overlay));
        let mut rng = SmallRng::seed_from_u64(9 + seed);
        let mut counts: HashMap<JoinPair, u64> = HashMap::new();
        let join_set: std::collections::HashSet<JoinPair> = join.iter().copied().collect();
        for _ in 0..draws {
            let p = cursor.sample_one(&mut rng).unwrap();
            assert!(join_set.contains(&p), "emitted non-join / dead pair {p:?}");
            *counts.entry(p).or_insert(0) += 1;
        }
        assert_uniform(&counts, &join, draws);
        // accounting: accepted samples equal the draws, iterations ≥
        let rep = cursor.report();
        assert_eq!(rep.samples, draws);
        assert!(rep.iterations >= draws);
    }

    #[test]
    fn overlay_uniform_over_kds_base() {
        overlay_uniformity_case(KdsIndex::build, 1);
    }

    #[test]
    fn overlay_uniform_over_kds_rejection_base() {
        overlay_uniformity_case(KdsRejectionIndex::build, 2);
    }

    #[test]
    fn overlay_uniform_over_bbst_base() {
        overlay_uniformity_case(BbstIndex::build, 3);
    }

    #[test]
    fn empty_delta_matches_base_weight() {
        let cfg = SampleConfig::new(5.0);
        let r = pseudo_points(50, 5, 40.0);
        let s = pseudo_points(50, 6, 40.0);
        let base = Arc::new(BbstIndex::build(&r, &s, &cfg));
        let support = OverlaySupport::build(&r, &s, 5.0);
        let delta = DeltaSet::for_base(r.len(), s.len());
        let overlay = OverlayIndex::new(Arc::clone(&base), delta, &support, &cfg);
        assert_eq!(overlay.total_weight(), base.total_weight());
    }

    #[test]
    fn everything_deleted_is_rejection_limited() {
        let cfg = SampleConfig::new(5.0).with_rejection_limit(2_000);
        let r = pseudo_points(20, 7, 20.0);
        let s = pseudo_points(20, 8, 20.0);
        let base = Arc::new(KdsRejectionIndex::build(&r, &s, &cfg));
        let support = OverlaySupport::build(&r, &s, 5.0);
        let mut delta = DeltaSet::for_base(r.len(), s.len());
        for id in 0..r.len() as u32 {
            delta.r_deleted.insert(id);
        }
        let overlay = Arc::new(OverlayIndex::new(base, delta, &support, &cfg));
        let mut cursor = Cursor::new(overlay);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(
            cursor.sample_one(&mut rng),
            Err(SampleError::RejectionLimit)
        );
    }

    #[test]
    fn empty_base_with_inserts_still_serves() {
        // The base join is empty; all pairs come from the delta sources.
        let cfg = SampleConfig::new(5.0);
        let r: Vec<Point> = Vec::new();
        let s: Vec<Point> = Vec::new();
        let base = Arc::new(BbstIndex::build(&r, &s, &cfg));
        let support = OverlaySupport::build(&r, &s, 5.0);
        let mut delta = DeltaSet::for_base(0, 0);
        delta.r_inserted = pseudo_points(10, 11, 10.0);
        delta.s_inserted = pseudo_points(15, 12, 10.0);
        let join = live_join(&r, &s, &delta, 5.0);
        assert!(!join.is_empty());
        let overlay = Arc::new(OverlayIndex::new(base, delta, &support, &cfg));
        let mut cursor = Cursor::new(overlay);
        let mut rng = SmallRng::seed_from_u64(2);
        let join_set: std::collections::HashSet<JoinPair> = join.into_iter().collect();
        for _ in 0..500 {
            let p = cursor.sample_one(&mut rng).unwrap();
            assert!(join_set.contains(&p));
        }
    }

    #[test]
    fn dirty_s_cells_match_what_a_patch_would_touch() {
        let base_s = vec![Point::new(5.0, 5.0), Point::new(25.0, 25.0)];
        let mut delta = DeltaSet::for_base(0, base_s.len());
        // Insert into an empty coordinate, delete a base point, and
        // insert-then-delete into a third coordinate (which a patch
        // never materialises and must NOT count as dirty).
        delta.s_inserted.push(Point::new(45.0, 45.0)); // id 2
        delta.s_inserted.push(Point::new(95.0, 95.0)); // id 3
        delta.s_deleted.insert(0); // base delete: dirties (0,0)
        delta.s_deleted.insert(3); // insert-then-delete: no cell touched
        let dirty = delta.dirty_s_cells(&base_s, 10.0);
        assert!(dirty.contains(&(4, 4)), "live insert's cell is dirty");
        assert!(dirty.contains(&(0, 0)), "base delete's cell is dirty");
        assert!(
            !dirty.contains(&(9, 9)),
            "insert-then-delete must not dirty its would-be cell"
        );
        assert_eq!(dirty.len(), 2);
    }

    #[test]
    fn live_len_accounting() {
        let mut delta = DeltaSet::for_base(10, 20);
        delta.r_inserted.push(Point::new(0.0, 0.0));
        delta.r_deleted.insert(0);
        delta.r_deleted.insert(10); // the inserted one
        assert_eq!(delta.live_r_len(), 9);
        assert_eq!(delta.live_s_len(), 20);
        assert!(!delta.is_r_live(0));
        assert!(!delta.is_r_live(10));
        assert!(delta.is_r_live(1));
        assert!(!delta.is_r_live(11), "never-inserted id is not live");
        assert_eq!(delta.pending_ops(), 3);
    }
}
