use std::time::Instant;

use rand::{Rng, RngCore};
use srj_geom::Point;
use srj_join::{grid_join, IdPair};

use crate::config::{JoinPair, PhaseReport, SampleConfig, SampleError};
use crate::traits::JoinSampler;

/// The strawman the paper's introduction rules out: **run the join, then
/// sample** from the materialised result.
///
/// Trivially uniform, but costs `Ω(|J|)` time *and* `Ω(|J|)` memory —
/// `|J|` can be `Θ(nm)`, and the paper notes this approach "tends to
/// have run out of memory" at their scales (§V footnote 5). Kept as a
/// sanity comparator for small-scale experiments and tests.
pub struct JoinThenSample {
    pairs: Vec<IdPair>,
    report: PhaseReport,
}

impl JoinThenSample {
    /// Materialises `J` with the grid index nested-loop join.
    pub fn build(r: &[Point], s: &[Point], config: &SampleConfig) -> Self {
        let t0 = Instant::now();
        let pairs = if r.is_empty() || s.is_empty() {
            Vec::new()
        } else {
            grid_join(r, s, config.half_extent)
        };
        let grid_mapping = t0.elapsed();
        JoinThenSample {
            pairs,
            report: PhaseReport {
                grid_mapping,
                ..PhaseReport::default()
            },
        }
    }

    /// Exact join size (free after materialisation).
    pub fn join_size(&self) -> u64 {
        self.pairs.len() as u64
    }
}

impl JoinSampler for JoinThenSample {
    fn name(&self) -> &'static str {
        "join-then-sample"
    }

    fn sample_one(&mut self, rng: &mut dyn RngCore) -> Result<JoinPair, SampleError> {
        if self.pairs.is_empty() {
            return Err(SampleError::EmptyJoin);
        }
        let t = Instant::now();
        self.report.iterations += 1;
        self.report.samples += 1;
        let (r, s) = self.pairs[rng.gen_range(0..self.pairs.len())];
        self.report.sampling += t.elapsed();
        Ok(JoinPair::new(r, s))
    }

    fn report(&self) -> PhaseReport {
        self.report
    }

    fn memory_bytes(&self) -> usize {
        self.pairs.capacity() * std::mem::size_of::<IdPair>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_over_materialized_join() {
        let r = vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)];
        let s = vec![
            Point::new(0.5, 0.5),
            Point::new(1.5, 1.5),
            Point::new(9.0, 9.0),
        ];
        let cfg = SampleConfig::new(1.0);
        let mut sampler = JoinThenSample::build(&r, &s, &cfg);
        assert_eq!(
            sampler.join_size(),
            srj_join::nested_loop_join(&r, &s, 1.0).len() as u64
        );
        let mut rng = SmallRng::seed_from_u64(5);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..40_000 {
            let p = sampler.sample_one(&mut rng).unwrap();
            *counts.entry(p).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len() as u64, sampler.join_size());
        let expected = 40_000.0 / sampler.join_size() as f64;
        for (&pair, &c) in &counts {
            let rel = (c as f64 - expected).abs() / expected;
            assert!(rel < 0.1, "{pair:?}: {c} vs {expected}");
        }
    }

    #[test]
    fn empty_join() {
        let mut sampler = JoinThenSample::build(&[], &[], &SampleConfig::new(1.0));
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(sampler.sample_one(&mut rng), Err(SampleError::EmptyJoin));
    }
}
