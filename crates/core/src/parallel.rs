//! Dependency-free chunked parallel map for the build phases.
//!
//! The per-`r` upper-bounding loops of every index builder are
//! embarrassingly data-parallel: each element's output depends only on
//! that element and on immutable shared structures (a kd-tree, a grid,
//! per-cell BBSTs). This module supplies the one splitting primitive
//! they all use — a contiguous-chunk map over [`std::thread::scope`] —
//! so the workspace needs no external thread-pool crate (the build
//! environment is offline; see `vendor/`).
//!
//! **Determinism:** the input is split into contiguous chunks and the
//! per-chunk outputs are re-concatenated in order, so for any pure
//! per-element function the result is bit-identical to the serial map
//! regardless of the thread count. Index builds therefore produce the
//! same weights, the same alias tables, and the same sample streams at
//! every `build_threads` setting (covered by `tests/parallel_build.rs`).

use std::time::{Duration, Instant};

/// Hard ceiling on spawned worker threads, regardless of the requested
/// count: a caller-controlled `--threads 200000` must degrade to a
/// bounded spawn, not abort the process when OS thread creation fails.
/// Far above any sane core count, far below any spawn limit.
pub const MAX_THREADS: usize = 256;

/// Resolves a requested thread count: `0` means "use every available
/// core" ([`std::thread::available_parallelism`]); anything else is
/// taken literally up to [`MAX_THREADS`].
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested.min(MAX_THREADS)
    }
}

/// Balanced contiguous partition of `n` items into `k` parts: the
/// `(start, end)` bounds of each part, in order, first `n % k` parts
/// one longer. `k` is clamped to `[1, max(n, 1)]`, so no part is empty
/// unless `n == 0` (which yields the single part `(0, 0)`).
///
/// This is the one chunking rule shared by [`par_map`] and the
/// engine's `R`-sharding, so the partition contract (balance,
/// exhaustiveness, order) lives in exactly one place.
pub fn chunk_bounds(n: usize, k: usize) -> Vec<(usize, usize)> {
    let k = k.clamp(1, n.max(1));
    let base = n / k;
    let rem = n % k;
    let mut bounds = Vec::with_capacity(k);
    let mut start = 0usize;
    for i in 0..k {
        let len = base + usize::from(i < rem);
        bounds.push((start, start + len));
        start += len;
    }
    bounds
}

/// Timing of one [`par_map`] call: wall-clock of the whole map, the
/// aggregate CPU time summed over worker threads, and how many threads
/// actually ran. `cpu / wall` is the achieved speedup; `cpu == wall`
/// for serial runs.
#[derive(Clone, Copy, Debug, Default)]
pub struct ParMapReport {
    /// Elapsed wall-clock time of the whole map.
    pub wall: Duration,
    /// Sum of per-chunk busy times across worker threads.
    pub cpu: Duration,
    /// Number of chunks/threads the input was split into.
    pub threads: usize,
}

/// Maps `f(index, &item)` over `items` on up to `threads` scoped
/// threads (`0` = all cores), preserving input order.
///
/// Each worker gets one contiguous chunk; outputs are concatenated in
/// chunk order, so the result equals the serial
/// `items.iter().enumerate().map(..).collect()` for any pure `f`.
/// Falls back to a plain serial loop when one thread (or fewer than two
/// items) is requested, so callers never pay thread spawn overhead for
/// trivial inputs. Panics in `f` are propagated to the caller.
pub fn par_map<T, U, F>(items: &[T], threads: usize, f: F) -> (Vec<U>, ParMapReport)
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    let threads = effective_threads(threads).min(n).max(1);
    let start = Instant::now();
    if threads == 1 {
        let out: Vec<U> = items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        let wall = start.elapsed();
        return (
            out,
            ParMapReport {
                wall,
                cpu: wall,
                threads: 1,
            },
        );
    }

    let bounds = chunk_bounds(n, threads);
    let mut chunks: Vec<(Vec<U>, Duration)> = Vec::with_capacity(bounds.len());
    std::thread::scope(|scope| {
        let f = &f;
        let mut handles = Vec::with_capacity(bounds.len());
        for &(lo, hi) in &bounds {
            let chunk = &items[lo..hi];
            let chunk_offset = lo;
            handles.push(scope.spawn(move || {
                let t0 = Instant::now();
                let out: Vec<U> = chunk
                    .iter()
                    .enumerate()
                    .map(|(i, t)| f(chunk_offset + i, t))
                    .collect();
                (out, t0.elapsed())
            }));
        }
        for h in handles {
            match h.join() {
                Ok(r) => chunks.push(r),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });

    let cpu = chunks.iter().map(|(_, d)| *d).sum();
    let mut out = Vec::with_capacity(n);
    for (chunk, _) in chunks {
        out.extend(chunk);
    }
    (
        out,
        ParMapReport {
            wall: start.elapsed(),
            cpu,
            threads: bounds.len(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_map_exactly() {
        let items: Vec<u64> = (0..10_001).collect();
        let serial: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| x.wrapping_mul(31).wrapping_add(i as u64))
            .collect();
        for threads in [1, 2, 3, 4, 7, 16] {
            let (par, rep) = par_map(&items, threads, |i, &x| {
                x.wrapping_mul(31).wrapping_add(i as u64)
            });
            assert_eq!(par, serial, "threads = {threads}");
            assert!(rep.threads >= 1 && rep.threads <= threads.max(1));
        }
    }

    #[test]
    fn indices_are_global_not_per_chunk() {
        let items = vec![(); 1000];
        let (out, _) = par_map(&items, 4, |i, ()| i);
        assert_eq!(out, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let (out, rep) = par_map::<u8, u8, _>(&[], 8, |_, &x| x);
        assert!(out.is_empty());
        assert_eq!(rep.threads, 1);
        let (out, _) = par_map(&[5u8], 8, |_, &x| x * 2);
        assert_eq!(out, vec![10]);
    }

    #[test]
    fn zero_means_all_cores() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
        // zero threads on a real input must still compute everything
        let items: Vec<u32> = (0..100).collect();
        let (out, rep) = par_map(&items, 0, |_, &x| x + 1);
        assert_eq!(out, (1..101).collect::<Vec<_>>());
        assert!(rep.cpu >= Duration::ZERO);
    }

    #[test]
    fn more_threads_than_items_is_clamped() {
        let items: Vec<u32> = (0..3).collect();
        let (out, rep) = par_map(&items, 64, |_, &x| x);
        assert_eq!(out, items);
        assert!(rep.threads <= 3);
    }

    #[test]
    fn absurd_thread_requests_are_capped() {
        assert_eq!(effective_threads(usize::MAX), MAX_THREADS);
        // a huge request over a huge input must not try to spawn
        // hundreds of thousands of OS threads
        let items = vec![1u8; 100_000];
        let (out, rep) = par_map(&items, 200_000, |_, &x| x);
        assert_eq!(out.len(), items.len());
        assert!(rep.threads <= MAX_THREADS);
    }

    #[test]
    fn chunk_bounds_balance_and_exhaustiveness() {
        for (n, k) in [(10, 3), (9, 3), (1, 4), (0, 2), (100, 1), (7, 7)] {
            let b = chunk_bounds(n, k);
            assert_eq!(b.first().unwrap().0, 0);
            assert_eq!(b.last().unwrap().1, n);
            for w in b.windows(2) {
                assert_eq!(w[0].1, w[1].0, "gap for n={n} k={k}");
            }
            let sizes: Vec<usize> = b.iter().map(|(lo, hi)| hi - lo).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "unbalanced: {sizes:?}");
        }
    }
}
