use std::time::Instant;

use rand::RngCore;
use srj_alias::AliasTable;
use srj_geom::{Point, Rect};
use srj_rangetree::RangeTree;

use crate::config::{JoinPair, PhaseReport, SampleConfig, SampleError};
use crate::traits::JoinSampler;

/// The footnote-4 comparator: KDS's pipeline with the kd-tree replaced
/// by a **2-D range tree**.
///
/// Counting drops from `O(n√m)` to `O(n log² m)` and each draw from
/// `O(√m)` to `O(log² m)` — but the index needs `Θ(m log m)` memory,
/// which is why the paper reports it "ran out of memory before
/// completing the index building" at its 168M–324M-point scales. The
/// `footnote4` experiment measures exactly this trade-off.
pub struct RangeTreeSampler {
    r_points: Vec<Point>,
    tree: RangeTree,
    alias: Option<AliasTable>,
    join_size: u64,
    config: SampleConfig,
    report: PhaseReport,
}

impl RangeTreeSampler {
    /// Builds the sampler: range tree (pre-processing) + exact counts
    /// and alias (UB).
    pub fn build(r: &[Point], s: &[Point], config: &SampleConfig) -> Self {
        let t0 = Instant::now();
        let tree = RangeTree::build(s);
        let preprocessing = t0.elapsed();

        let t1 = Instant::now();
        let weights: Vec<f64> = r
            .iter()
            .map(|&rp| tree.range_count(&Rect::window(rp, config.half_extent)) as f64)
            .collect();
        let join_size = weights.iter().sum::<f64>() as u64;
        let alias = AliasTable::new(&weights);
        let upper_bounding = t1.elapsed();

        RangeTreeSampler {
            r_points: r.to_vec(),
            tree,
            alias,
            join_size,
            config: *config,
            report: PhaseReport {
                preprocessing,
                upper_bounding,
                ..PhaseReport::default()
            },
        }
    }

    /// Exact join cardinality (by-product of the counting step).
    pub fn join_size(&self) -> u64 {
        self.join_size
    }

    fn draw_one(&mut self, rng: &mut dyn RngCore) -> Result<JoinPair, SampleError> {
        let alias = self.alias.as_ref().ok_or(SampleError::EmptyJoin)?;
        self.report.iterations += 1;
        let ridx = alias.sample(rng);
        let w = Rect::window(self.r_points[ridx], self.config.half_extent);
        let (sid, _count) = self
            .tree
            .sample_in_range(&w, rng)
            .expect("alias returned an r with zero range count");
        self.report.samples += 1;
        Ok(JoinPair::new(ridx as u32, sid))
    }
}

impl JoinSampler for RangeTreeSampler {
    fn name(&self) -> &'static str {
        "RangeTree"
    }

    fn sample_one(&mut self, rng: &mut dyn RngCore) -> Result<JoinPair, SampleError> {
        let t = Instant::now();
        let out = self.draw_one(rng);
        self.report.sampling += t.elapsed();
        out
    }

    fn sample(&mut self, t: usize, rng: &mut dyn RngCore) -> Result<Vec<JoinPair>, SampleError> {
        let start = Instant::now();
        let mut out = Vec::with_capacity(t);
        for _ in 0..t {
            match self.draw_one(rng) {
                Ok(p) => out.push(p),
                Err(e) => {
                    self.report.sampling += start.elapsed();
                    return Err(e);
                }
            }
        }
        self.report.sampling += start.elapsed();
        Ok(out)
    }

    fn report(&self) -> PhaseReport {
        self.report
    }

    fn memory_bytes(&self) -> usize {
        self.r_points.capacity() * std::mem::size_of::<Point>()
            + self.tree.memory_bytes()
            + self.alias.as_ref().map_or(0, AliasTable::memory_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn pseudo_points(n: usize, seed: u64, extent: f64) -> Vec<Point> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(next() * extent, next() * extent))
            .collect()
    }

    #[test]
    fn samples_are_genuine_and_never_rejected() {
        let r = pseudo_points(60, 1, 50.0);
        let s = pseudo_points(100, 2, 50.0);
        let cfg = SampleConfig::new(5.0);
        let mut sampler = RangeTreeSampler::build(&r, &s, &cfg);
        assert_eq!(
            sampler.join_size(),
            srj_join::nested_loop_join(&r, &s, 5.0).len() as u64
        );
        let mut rng = SmallRng::seed_from_u64(3);
        let samples = sampler.sample(300, &mut rng).unwrap();
        for p in samples {
            let w = Rect::window(r[p.r as usize], 5.0);
            assert!(w.contains(s[p.s as usize]));
        }
        let rep = sampler.report();
        assert_eq!(rep.iterations, rep.samples);
    }

    #[test]
    fn empty_join() {
        let r = vec![Point::new(0.0, 0.0)];
        let s = vec![Point::new(800.0, 800.0)];
        let mut sampler = RangeTreeSampler::build(&r, &s, &SampleConfig::new(1.0));
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(sampler.sample_one(&mut rng), Err(SampleError::EmptyJoin));
    }

    #[test]
    fn memory_exceeds_kds_at_scale() {
        let r = pseudo_points(100, 5, 100.0);
        let s = pseudo_points(20_000, 6, 100.0);
        let cfg = SampleConfig::new(5.0);
        let rt = RangeTreeSampler::build(&r, &s, &cfg);
        let kds = crate::KdsSampler::build(&r, &s, &cfg);
        assert!(
            rt.memory_bytes() > 2 * kds.memory_bytes(),
            "range tree {} vs kd {}",
            rt.memory_bytes(),
            kds.memory_bytes()
        );
    }
}
