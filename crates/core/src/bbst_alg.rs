use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

use rand::{Rng, RngCore};
use srj_alias::{AliasTable, CumulativeRow9};
use srj_bbst::{bucket_capacity, CellBbsts, MassMode};
use srj_geom::{Point, PointId, Rect};
use srj_grid::{case_of, CellCase, Grid};

use crate::buffer::{BufferStats, DrawBuffers};
use crate::cellstore::{BbstCellCtx, CellStore, PatchReport};
use crate::config::{JoinPair, PhaseReport, SampleConfig, SampleError};
use crate::cursor::{Cursor, SamplerIndex};
use crate::decompose::{case12_count, case12_run, quadrant_query};
use crate::parallel::par_map;
use crate::traits::JoinSampler;

/// Immutable build product of the paper's proposed algorithm
/// (Section IV, Algorithm 1): `Õ(n + m + t)` expected time,
/// `O(n + m)` space.
///
/// **Phase 1 — online data-structure building** (`GRID-MAPPING` +
/// `BBST-BUILDING`): map `S` onto a grid of cell side `l`, keep each
/// cell's ids in x order (inherited from the offline pre-sort) and in a
/// y-sorted copy, and build the two per-cell BBSTs. `O(m log m)`
/// (Lemma 3).
///
/// **Phase 2 — approximate range counting** (`UPPER-BOUNDING` +
/// `ALIAS-BUILDING`): for every `r`, decompose `w(r)` over the 3×3 cell
/// block — exact counts for the fully-covered centre (case 1) and the
/// 1-sided edge cells (case 2), BBST quadrant bounds for the 2-sided
/// corner cells (case 3) — then build the per-`r` cell distribution
/// `A_r` and the global alias `A` over `µ(r)`. `O(n log m)` (Lemma 4),
/// with `|S(w(r))| ≤ µ(r) ≤ max{O(log m)·|S(w(r))|, O(log m)}`
/// (Lemma 5).
///
/// Both phases happen once, in [`BbstIndex::build`]; the result is
/// `Send + Sync` and never mutated, so any number of threads can run
/// **phase 3 — sampling** against it concurrently through their own
/// [`BbstCursor`]s: draw `r ∼ A`, a cell `∼ A_r`, then a point by case
/// (uniform pick / 1-sided run pick / BBST quadrant descent); accept iff
/// `s ∈ w(r)`. Cases 1–2 never reject; case 3 rejects with the bounded
/// probability of Lemma 5, so a sample costs `Õ(1)` expected time
/// (Lemma 6) and every pair of `J` is emitted with probability exactly
/// `1/Σµ` per iteration (Theorem 3) — i.e. accepted samples are uniform
/// and independent.
pub struct BbstIndex {
    r_points: Vec<Point>,
    /// The `S`-side: grid + per-cell BBST pairs behind one `Arc`-shared,
    /// cell-granular [`CellStore`]. A sharded engine builds it once and
    /// shares it across every shard ([`BbstIndex::build_shared`]); an
    /// epoch engine patches it cell by cell across rebuilds.
    store: Arc<CellStore<CellBbsts>>,
    /// Per-cell mass mode, parallel to the store's cells. All cells
    /// start at the build config's mode; the repair path
    /// ([`BbstIndex::with_exact_cells`]) tightens individual loose
    /// cells to [`MassMode::Exact`]. The UB rows and the draw use the
    /// same per-cell mode, so Theorem 3's `1/µ(r,c)` accounting — and
    /// with it exact uniformity — is preserved per cell.
    modes: Vec<MassMode>,
    /// Per-`r` cell distributions (`A_r` in Algorithm 1).
    rows: Vec<CumulativeRow9>,
    /// Global alias over `µ(r)` (`A` in Algorithm 1).
    alias: Option<AliasTable>,
    config: SampleConfig,
    build_report: PhaseReport,
}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<BbstIndex>();
};

/// The `S`-side of a [`BbstIndex`] (phase 1 of Algorithm 1): the grid
/// and the per-cell BBSTs behind one [`CellStore`], `Arc`-held so many
/// indexes — e.g. the shards of a sharded engine — can be built over
/// one copy, and patchable cell by cell across epochs. Produced by
/// [`BbstIndex::build_s_structures`], consumed by
/// [`BbstIndex::build_shared`].
pub struct BbstSStructures {
    store: Arc<CellStore<CellBbsts>>,
    /// Wall-clock of the offline x-sort.
    pub preprocessing: std::time::Duration,
    /// Wall-clock of grid construction + per-cell BBST builds.
    pub grid_mapping: std::time::Duration,
}

impl BbstSStructures {
    /// The cell store underneath.
    pub fn store(&self) -> &Arc<CellStore<CellBbsts>> {
        &self.store
    }

    /// Heap bytes of the shared structures.
    pub fn memory_bytes(&self) -> usize {
        self.store.memory_bytes()
    }

    /// Rebuilds only the cells touched by `inserted`/`deleted`,
    /// structurally sharing every clean cell with this `S`-side (see
    /// [`CellStore::patch`]). The patch cost is charged to the returned
    /// structure's `grid_mapping`.
    pub fn patch(
        &self,
        inserted: &[Point],
        deleted: &HashSet<PointId>,
    ) -> (BbstSStructures, PatchReport) {
        let t0 = Instant::now();
        let (store, report) = self.store.patch(inserted, deleted);
        (
            BbstSStructures {
                store: Arc::new(store),
                preprocessing: std::time::Duration::ZERO,
                grid_mapping: t0.elapsed(),
            },
            report,
        )
    }
}

impl BbstIndex {
    /// Runs phases 1 and 2 of Algorithm 1.
    pub fn build(r: &[Point], s: &[Point], config: &SampleConfig) -> Self {
        let s_side = Self::build_s_structures(s, config);
        Self::build_inner(
            r,
            Arc::clone(&s_side.store),
            config,
            s_side.preprocessing,
            s_side.grid_mapping,
        )
    }

    /// Like [`BbstIndex::build`], but reuses a grid the caller already
    /// built over `S` with cell side `config.half_extent` (e.g. the
    /// planner's estimation grid — `srj-engine` uses this to avoid
    /// paying the grid-mapping phase twice on the auto path). The
    /// offline x-sort is skipped entirely (the grid's cells already
    /// carry x-sorted ids); `grid_build_time` is charged to the GM
    /// phase so the decomposition stays truthful.
    ///
    /// # Panics
    /// Panics if the grid's cell side differs from `config.half_extent`
    /// — the window decomposition assumes cell side = `l`, so a
    /// mismatched grid would make parts of `J` unreachable.
    pub fn build_with_grid(
        r: &[Point],
        config: &SampleConfig,
        grid: Grid,
        grid_build_time: std::time::Duration,
    ) -> Self {
        assert!(
            grid.cell_side().to_bits() == config.half_extent.to_bits(),
            "grid cell side ({}) must equal the window half-extent ({})",
            grid.cell_side(),
            config.half_extent
        );
        let t1 = Instant::now();
        let ctx = BbstCellCtx {
            cap: bucket_capacity(grid.num_points()),
            cascading: config.use_cascading,
        };
        let store = Arc::new(CellStore::from_grid(
            Arc::new(grid),
            ctx,
            config.build_threads,
        ));
        let grid_mapping = grid_build_time + t1.elapsed();
        Self::build_inner(r, store, config, std::time::Duration::ZERO, grid_mapping)
    }

    /// Builds only the `S`-side structures (grid + per-cell BBSTs,
    /// behind one patchable [`CellStore`]) and records what phase 1
    /// cost. A sharded engine calls this once and hands the result to
    /// every per-shard [`BbstIndex::build_shared`], so the `S`-side is
    /// built — and held in memory — exactly once; an epoch engine
    /// patches it cell by cell instead of rebuilding.
    ///
    /// The per-cell BBSTs build on `config.build_threads` threads; each
    /// cell depends only on its own x-sorted ids and the immutable
    /// point slice, so the parallel build is bit-identical to serial.
    pub fn build_s_structures(s: &[Point], config: &SampleConfig) -> BbstSStructures {
        let t0 = Instant::now();
        let mut x_order: Vec<PointId> = (0..s.len() as u32).collect();
        x_order.sort_unstable_by(|&a, &b| s[a as usize].x.total_cmp(&s[b as usize].x));
        let preprocessing = t0.elapsed();

        let t1 = Instant::now();
        let grid = Grid::build_from_sorted(s, &x_order, config.half_extent);
        drop(x_order);
        let ctx = BbstCellCtx {
            cap: bucket_capacity(grid.num_points()),
            cascading: config.use_cascading,
        };
        let store = CellStore::from_grid(Arc::new(grid), ctx, config.build_threads);
        BbstSStructures {
            store: Arc::new(store),
            preprocessing,
            grid_mapping: t1.elapsed(),
        }
    }

    /// Like [`BbstIndex::build`], but over already-built `S`-side
    /// structures (from [`BbstIndex::build_s_structures`]). Their build
    /// time is charged to whoever built them, so this index's report
    /// records zero preprocessing / grid-mapping.
    ///
    /// # Panics
    /// Panics if the structures were built for a different
    /// configuration — a grid whose cell side differs from
    /// `config.half_extent` would silently undercount windows (the 3×3
    /// decomposition assumes cell side = `l`), and a cascading
    /// mismatch would bound with the wrong mass mode.
    pub fn build_shared(r: &[Point], config: &SampleConfig, s_side: &BbstSStructures) -> Self {
        let zero = std::time::Duration::ZERO;
        Self::build_inner(r, Arc::clone(&s_side.store), config, zero, zero)
    }

    /// Phase 2 over a ready `S`-side store.
    fn build_inner(
        r: &[Point],
        store: Arc<CellStore<CellBbsts>>,
        config: &SampleConfig,
        preprocessing: std::time::Duration,
        grid_mapping: std::time::Duration,
    ) -> Self {
        assert!(
            store.grid().cell_side().to_bits() == config.half_extent.to_bits(),
            "shared grid cell side ({}) must equal the window half-extent ({})",
            store.grid().cell_side(),
            config.half_extent
        );
        assert!(
            store.ctx().cascading == config.use_cascading,
            "shared per-cell BBSTs were built with the opposite cascading mode"
        );
        let modes = vec![config.mass_mode; store.num_cells()];
        let (rows, alias, upper_bounding, upper_bounding_cpu) =
            Self::build_rows(r, &store, &modes, config);
        BbstIndex {
            r_points: r.to_vec(),
            store,
            modes,
            rows,
            alias,
            config: *config,
            build_report: PhaseReport {
                preprocessing,
                grid_mapping,
                upper_bounding,
                upper_bounding_cpu,
                ..PhaseReport::default()
            },
        }
    }

    /// Phase 2 proper: upper bounds, per-`r` rows, global alias, with
    /// each corner cell bounded under **its own** mass mode. The per-r
    /// loop (Lemma 4's `O(n log m)` — the dominant build phase) runs on
    /// `config.build_threads` threads; each element reads only the
    /// immutable store, so the parallel result is bit-identical to the
    /// serial one.
    #[allow(clippy::type_complexity)]
    fn build_rows(
        r: &[Point],
        store: &CellStore<CellBbsts>,
        modes: &[MassMode],
        config: &SampleConfig,
    ) -> (
        Vec<CumulativeRow9>,
        Option<AliasTable>,
        std::time::Duration,
        std::time::Duration,
    ) {
        let grid = store.grid();
        let t2 = Instant::now();
        let (rows, par) = par_map(r, config.build_threads, |_, &rp| {
            let w = Rect::window(rp, config.half_extent);
            let slots = grid.neighborhood_slots(rp);
            let mut cell_w = [0.0f64; 9];
            for (i, slot) in slots.into_iter().enumerate() {
                let Some(slot) = slot else { continue };
                let cell = grid.cell(slot);
                let mu = match case_of(i) {
                    CellCase::Quadrant { x_is_min, y_is_min } => {
                        let q = quadrant_query(x_is_min, y_is_min, &w);
                        store.unit(slot).count_quadrant(&q, modes[slot as usize])
                    }
                    case => case12_count(cell, grid.points(), case, &w)
                        .expect("non-corner case must yield an exact count"),
                };
                cell_w[i] = mu as f64;
            }
            CumulativeRow9::new(cell_w)
        });
        let weights: Vec<f64> = rows.iter().map(CumulativeRow9::total).collect();
        let alias = AliasTable::new(&weights);
        let upper_bounding = t2.elapsed();
        let upper_bounding_cpu = par.cpu + upper_bounding.saturating_sub(par.wall);
        (rows, alias, upper_bounding, upper_bounding_cpu)
    }

    /// Re-tightens the given cells to [`MassMode::Exact`] bounds — the
    /// targeted repair for cells whose Virtual-mass bound turned out
    /// loose (measured per-cell rejections) — and recomputes the UB
    /// rows against the unchanged, fully shared `S`-side. `None` when
    /// every named cell is already exact (nothing would change).
    ///
    /// Uniformity is preserved: rows and draws both read the per-cell
    /// mode, so every pair keeps per-iteration probability `1/Σµ` with
    /// the new (smaller) `Σµ`.
    pub fn with_exact_cells(&self, slots: &[u32]) -> Option<BbstIndex> {
        let mut modes = self.modes.clone();
        let mut changed = false;
        for &slot in slots {
            if let Some(m) = modes.get_mut(slot as usize) {
                if *m != MassMode::Exact {
                    *m = MassMode::Exact;
                    changed = true;
                }
            }
        }
        if !changed {
            return None;
        }
        let (rows, alias, upper_bounding, upper_bounding_cpu) =
            Self::build_rows(&self.r_points, &self.store, &modes, &self.config);
        Some(BbstIndex {
            r_points: self.r_points.clone(),
            store: Arc::clone(&self.store),
            modes,
            rows,
            alias,
            config: self.config,
            build_report: PhaseReport {
                // The S-side is untouched; the repair pays only a UB
                // pass, charged here.
                preprocessing: std::time::Duration::ZERO,
                grid_mapping: std::time::Duration::ZERO,
                upper_bounding,
                upper_bounding_cpu,
                ..PhaseReport::default()
            },
        })
    }

    /// How many cells are still bounded with the Virtual mass (repair
    /// candidates).
    pub fn virtual_cells(&self) -> usize {
        self.modes.iter().filter(|m| **m != MassMode::Exact).count()
    }

    /// Sum of the upper bounds `Σ_r µ(r)`.
    ///
    /// The paper's accuracy metric (§V-B) is `Σµ / |J|`; on the real
    /// datasets it reports 1.04–1.19, far below the `O(log m)` worst
    /// case of Lemma 5.
    pub fn mu_total(&self) -> f64 {
        self.alias.as_ref().map_or(0.0, AliasTable::total_weight)
    }

    /// Upper bound `µ(r)` for one query point.
    pub fn mu_of(&self, ridx: usize) -> f64 {
        self.rows[ridx].total()
    }

    /// The bucket capacity `⌈log₂ m⌉` in use.
    pub fn bucket_cap(&self) -> u32 {
        self.store.ctx().cap
    }

    /// The `Arc`-shared `S`-side structures (grid + per-cell BBSTs),
    /// for rebuilding an index over a mutated `R` without re-paying the
    /// `S`-side build, or for patching cell by cell when `S` mutated
    /// (epoch-based rebuilds hand these — or their
    /// [`BbstSStructures::patch`] — straight back to
    /// [`BbstIndex::build_shared`]). The returned structure's phase
    /// durations are zero: the build cost was charged to this index's
    /// report.
    pub fn s_structures(&self) -> BbstSStructures {
        BbstSStructures {
            store: Arc::clone(&self.store),
            preprocessing: std::time::Duration::ZERO,
            grid_mapping: std::time::Duration::ZERO,
        }
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &SampleConfig {
        &self.config
    }

    /// Build-phase timing (preprocessing + GM + UB).
    pub fn build_report(&self) -> PhaseReport {
        self.build_report
    }

    /// Approximate heap footprint of the retained structures.
    pub fn memory_bytes(&self) -> usize {
        self.r_points.capacity() * std::mem::size_of::<Point>()
            + self.store.memory_bytes()
            + self.modes.capacity() * std::mem::size_of::<MassMode>()
            + self.rows.capacity() * std::mem::size_of::<CumulativeRow9>()
            + self.alias.as_ref().map_or(0, AliasTable::memory_bytes)
    }
}

/// Per-cursor scratch of the BBST draw: the per-cell rejection records
/// this cursor accumulated (drained by the serving layer into shared
/// per-cell counters — the signal behind targeted cell repairs), plus
/// the buffered-draw fast path state (off by default).
#[derive(Default)]
pub struct BbstScratch {
    rejected_cells: Vec<u32>,
    /// Buffered fully-covered-cell draw state.
    pub buffers: DrawBuffers,
}

impl SamplerIndex for BbstIndex {
    /// Per-cell rejection records; the draw needs no other scratch.
    type Scratch = BbstScratch;

    fn algorithm_name(&self) -> &'static str {
        "BBST"
    }

    /// One iteration of Algorithm 1's sampling phase (lines 12–15).
    fn try_draw<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        scratch: &mut BbstScratch,
        stats: &mut PhaseReport,
    ) -> Result<Option<JoinPair>, SampleError> {
        let alias = self.alias.as_ref().ok_or(SampleError::EmptyJoin)?;
        stats.iterations += 1;
        let grid = self.store.grid();
        // Line 12: r ~ A.
        let ridx = alias.sample(rng);
        let rp = self.r_points[ridx];
        let w = Rect::window(rp, self.config.half_extent);
        // Line 13: cell ~ A_r (weight > 0 because µ(r) > 0).
        let cell_idx = self.rows[ridx]
            .sample(rng)
            .expect("alias returned r with zero µ(r)");
        let slot =
            grid.neighborhood_slots(rp)[cell_idx].expect("positive cell weight for an empty cell");
        let cell = grid.cell(slot);
        // Line 14: s from the cell, by case.
        let accepted: Option<PointId> = match case_of(cell_idx) {
            CellCase::Quadrant { x_is_min, y_is_min } => {
                let q = quadrant_query(x_is_min, y_is_min, &w);
                self.store
                    .unit(slot)
                    .sample_quadrant(&q, self.modes[slot as usize], rng)
                    .map(|pos| cell.by_x[pos as usize])
                    // Line 15: accept iff w(r) ∩ s.
                    .filter(|&sid| w.contains(grid.point(sid)))
            }
            case => {
                if scratch.buffers.enabled() && w.contains_rect(&cell.rect) {
                    // Fully covered exact cell (the center cell of the
                    // 3×3 neighborhood, always, since the cell side
                    // equals the window half-extent): its case-1/2
                    // weight equals the member count, so a uniform
                    // member draw — buffered for hot cells — replaces
                    // the run materialisation.
                    let token = Arc::as_ptr(self.store.unit_arc(slot)) as usize;
                    let sid = scratch.buffers.draw_covered(slot, token, &cell.by_x, || {
                        rng.gen_range(0..cell.by_x.len())
                    });
                    Some(sid)
                } else {
                    let run = case12_run(cell, grid.points(), case, &w)
                        .expect("non-corner case must yield a run");
                    // Exact cases never reject; the run is non-empty
                    // because its UB-phase count was positive.
                    let sid = run[rng.gen_range(0..run.len())];
                    debug_assert!(
                        w.contains(grid.point(sid)),
                        "case-1/2 sample escaped the window"
                    );
                    Some(sid)
                }
            }
        };
        if let Some(sid) = accepted {
            stats.samples += 1;
            return Ok(Some(JoinPair::new(ridx as u32, sid)));
        }
        // Rejections happen only in the corner (case-3) cells — a dud
        // virtual slot or a candidate outside the window — so the
        // rejected slot identifies exactly the cell whose bound was
        // loose: the per-cell feedback driving targeted repairs.
        scratch.rejected_cells.push(slot);
        Ok(None)
    }

    fn rejection_limit(&self) -> u64 {
        self.config.max_consecutive_rejections
    }

    fn total_weight(&self) -> f64 {
        self.mu_total()
    }

    fn cell_count(&self) -> usize {
        self.store.num_cells()
    }

    fn drain_cell_rejections(scratch: &mut BbstScratch, out: &mut Vec<u32>) {
        out.append(&mut scratch.rejected_cells);
    }

    fn set_buffers(scratch: &mut BbstScratch, enabled: bool) {
        scratch.buffers.set_enabled(enabled);
    }

    fn warm_buffers(scratch: &mut BbstScratch, slots: &[u32]) {
        scratch.buffers.warm(slots);
    }

    fn seed_buffers(scratch: &mut BbstScratch, seed: u64) {
        scratch.buffers.seed_rng(seed);
    }

    fn drain_buffer_stats(scratch: &mut BbstScratch) -> BufferStats {
        scratch.buffers.drain_stats()
    }

    fn index_build_report(&self) -> PhaseReport {
        self.build_report
    }

    fn index_memory_bytes(&self) -> usize {
        self.memory_bytes()
    }

    fn shared_memory_bytes(&self) -> usize {
        self.store.memory_bytes()
    }

    fn shared_memory_token(&self) -> usize {
        // The grid and the per-cell BBSTs live behind one store Arc, so
        // one token covers both.
        Arc::as_ptr(&self.store) as usize
    }
}

/// Cheap per-thread query state over a shared [`BbstIndex`] (see
/// [`Cursor`]): just the sampling-phase statistics — the BBST draw
/// needs no scratch memory.
pub type BbstCursor = Cursor<BbstIndex>;

impl Cursor<BbstIndex> {
    /// Unbiased estimate of the join cardinality `|J|` from this
    /// cursor's sampling statistics, or `None` before any sampling
    /// iteration ran.
    ///
    /// Each sampling iteration accepts with probability exactly
    /// `|J| / Σµ` (Theorem 3's accounting), so
    /// `|J| ≈ Σµ · accepted / iterations`. The estimator sharpens as
    /// more samples are drawn; the `cardinality_training` example uses
    /// it to label selectivity models without ever running the join.
    pub fn estimate_join_size(&self) -> Option<f64> {
        let stats = self.sampling_stats();
        (stats.iterations > 0)
            .then(|| self.index().mu_total() * stats.samples as f64 / stats.iterations as f64)
    }
}

/// The paper's proposed algorithm as a self-contained single-threaded
/// sampler (owned [`BbstIndex`] + one [`BbstCursor`]), preserving the
/// pre-split `build`/`sample` API. Concurrent callers should use
/// [`BbstIndex`] + [`BbstCursor`] (or the `srj-engine` crate) directly.
pub struct BbstSampler {
    cursor: BbstCursor,
}

impl BbstSampler {
    /// Runs phases 1 and 2 of Algorithm 1 and attaches a private cursor.
    pub fn build(r: &[Point], s: &[Point], config: &SampleConfig) -> Self {
        BbstSampler {
            cursor: BbstCursor::new(Arc::new(BbstIndex::build(r, s, config))),
        }
    }

    /// Sum of the upper bounds `Σ_r µ(r)` (see [`BbstIndex::mu_total`]).
    pub fn mu_total(&self) -> f64 {
        self.cursor.index().mu_total()
    }

    /// Upper bound `µ(r)` for one query point.
    pub fn mu_of(&self, ridx: usize) -> f64 {
        self.cursor.index().mu_of(ridx)
    }

    /// Unbiased `|J|` estimate (see [`BbstCursor::estimate_join_size`]).
    pub fn estimate_join_size(&self) -> Option<f64> {
        self.cursor.estimate_join_size()
    }

    /// The bucket capacity `⌈log₂ m⌉` in use.
    pub fn bucket_cap(&self) -> u32 {
        self.cursor.index().bucket_cap()
    }

    /// The shared index, for handing to additional cursors.
    pub fn index(&self) -> &Arc<BbstIndex> {
        self.cursor.index()
    }
}

impl JoinSampler for BbstSampler {
    fn name(&self) -> &'static str {
        self.cursor.name()
    }

    fn sample_one(&mut self, rng: &mut dyn RngCore) -> Result<JoinPair, SampleError> {
        self.cursor.sample_one(rng)
    }

    fn sample(&mut self, t: usize, rng: &mut dyn RngCore) -> Result<Vec<JoinPair>, SampleError> {
        self.cursor.sample(t, rng)
    }

    fn report(&self) -> PhaseReport {
        self.cursor.report()
    }

    fn memory_bytes(&self) -> usize {
        self.cursor.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use srj_bbst::MassMode;

    fn pseudo_points(n: usize, seed: u64, extent: f64) -> Vec<Point> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(next() * extent, next() * extent))
            .collect()
    }

    #[test]
    fn samples_are_genuine_join_pairs() {
        let r = pseudo_points(90, 31, 70.0);
        let s = pseudo_points(140, 32, 70.0);
        for mode in [MassMode::Virtual, MassMode::Exact] {
            let cfg = SampleConfig::new(5.0).with_mass_mode(mode);
            let mut sampler = BbstSampler::build(&r, &s, &cfg);
            let mut rng = SmallRng::seed_from_u64(33);
            let samples = sampler.sample(600, &mut rng).unwrap();
            assert_eq!(samples.len(), 600);
            for p in samples {
                let w = Rect::window(r[p.r as usize], 5.0);
                assert!(w.contains(s[p.s as usize]), "{mode:?}");
            }
        }
    }

    #[test]
    fn mu_bounds_sandwich_lemma5() {
        let r = pseudo_points(60, 41, 50.0);
        let s = pseudo_points(400, 42, 50.0);
        let cfg = SampleConfig::new(6.0);
        let sampler = BbstSampler::build(&r, &s, &cfg);
        let cap = sampler.bucket_cap() as f64;
        for (i, &rp) in r.iter().enumerate() {
            let w = Rect::window(rp, 6.0);
            let exact = s.iter().filter(|p| w.contains(**p)).count() as f64;
            let mu = sampler.mu_of(i);
            assert!(mu >= exact, "r{i}: µ {mu} < exact {exact}");
            // Lemma 5: µ ≤ max{O(log m)·exact, O(log m)} — the constant
            // accounts for the 4 corner cells and their straddlers.
            assert!(
                mu <= (cap * exact).max(cap) + 4.0 * 2.0 * cap,
                "r{i}: µ {mu} too loose vs exact {exact} (cap {cap})"
            );
        }
        let join = srj_join::nested_loop_join(&r, &s, 6.0).len() as f64;
        assert!(sampler.mu_total() >= join);
    }

    #[test]
    fn exact_mode_is_tighter_than_virtual() {
        let r = pseudo_points(80, 51, 60.0);
        let s = pseudo_points(600, 52, 60.0);
        let virt = BbstSampler::build(&r, &s, &SampleConfig::new(5.0));
        let tight = BbstSampler::build(
            &r,
            &s,
            &SampleConfig::new(5.0).with_mass_mode(MassMode::Exact),
        );
        assert!(tight.mu_total() <= virt.mu_total());
        let join = srj_join::nested_loop_join(&r, &s, 5.0).len() as f64;
        assert!(tight.mu_total() >= join);
    }

    #[test]
    fn empty_join_is_reported() {
        let r = vec![Point::new(0.0, 0.0)];
        let s = vec![Point::new(500.0, 500.0)];
        let mut sampler = BbstSampler::build(&r, &s, &SampleConfig::new(1.0));
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(sampler.sample_one(&mut rng), Err(SampleError::EmptyJoin));
    }

    #[test]
    fn near_miss_join_trips_safety_valve() {
        // a point in a corner cell whose bucket matches but which lies
        // outside every window ⇒ µ > 0, |J| = 0
        let r = vec![Point::new(10.0, 10.0)];
        let s = vec![Point::new(13.0, 13.0)];
        let cfg = SampleConfig::new(2.0).with_rejection_limit(2_000);
        let mut sampler = BbstSampler::build(&r, &s, &cfg);
        let mut rng = SmallRng::seed_from_u64(0);
        if sampler.mu_total() > 0.0 {
            assert_eq!(
                sampler.sample_one(&mut rng),
                Err(SampleError::RejectionLimit)
            );
        } else {
            assert_eq!(sampler.sample_one(&mut rng), Err(SampleError::EmptyJoin));
        }
    }

    #[test]
    fn empty_inputs() {
        let mut rng = SmallRng::seed_from_u64(0);
        let cfg = SampleConfig::new(1.0);
        let mut a = BbstSampler::build(&[], &pseudo_points(10, 1, 10.0), &cfg);
        assert_eq!(a.sample_one(&mut rng), Err(SampleError::EmptyJoin));
        let mut b = BbstSampler::build(&pseudo_points(10, 1, 10.0), &[], &cfg);
        assert_eq!(b.sample_one(&mut rng), Err(SampleError::EmptyJoin));
    }

    #[test]
    fn iteration_overhead_tracks_mu_ratio() {
        // #iterations / #samples ≈ Σµ / |J| (Table IV's relationship)
        let r = pseudo_points(100, 61, 60.0);
        let s = pseudo_points(800, 62, 60.0);
        let cfg = SampleConfig::new(6.0);
        let mut sampler = BbstSampler::build(&r, &s, &cfg);
        let join = srj_join::nested_loop_join(&r, &s, 6.0).len() as f64;
        let expected_ratio = sampler.mu_total() / join;
        let mut rng = SmallRng::seed_from_u64(63);
        let t = 20_000;
        sampler.sample(t, &mut rng).unwrap();
        let rep = sampler.report();
        let observed = rep.iterations as f64 / rep.samples as f64;
        assert!(
            (observed - expected_ratio).abs() / expected_ratio < 0.1,
            "observed {observed:.3} vs expected {expected_ratio:.3}"
        );
    }

    #[test]
    fn report_and_memory_populated() {
        let r = pseudo_points(50, 71, 40.0);
        let s = pseudo_points(50, 72, 40.0);
        let mut sampler = BbstSampler::build(&r, &s, &SampleConfig::new(5.0));
        let mut rng = SmallRng::seed_from_u64(7);
        sampler.sample(50, &mut rng).unwrap();
        let rep = sampler.report();
        assert_eq!(rep.samples, 50);
        assert!(rep.iterations >= 50);
        assert!(rep.grid_mapping > std::time::Duration::ZERO);
        assert!(sampler.memory_bytes() > 0);
    }

    #[test]
    fn many_cursors_one_index_deterministic_streams() {
        let r = pseudo_points(80, 81, 50.0);
        let s = pseudo_points(200, 82, 50.0);
        let index = Arc::new(BbstIndex::build(&r, &s, &SampleConfig::new(5.0)));
        let draws: Vec<Vec<JoinPair>> = (0..3)
            .map(|_| {
                let mut cursor = BbstCursor::new(Arc::clone(&index));
                let mut rng = SmallRng::seed_from_u64(1234);
                cursor.sample(100, &mut rng).unwrap()
            })
            .collect();
        assert_eq!(draws[0], draws[1]);
        assert_eq!(draws[1], draws[2]);
    }
}
