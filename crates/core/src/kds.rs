use std::sync::Arc;
use std::time::Instant;

use rand::{Rng, RngCore};
use srj_alias::AliasTable;
use srj_geom::{Point, Rect};

use crate::buffer::{BufferStats, KdsScratch};
use crate::cellstore::KdCellStore;
use crate::config::{JoinPair, PhaseReport, SampleConfig, SampleError};
use crate::cursor::{Cursor, SamplerIndex};
use crate::parallel::par_map;
use crate::traits::JoinSampler;

/// Immutable build product of Baseline 1 — **KDS** (paper Section III-A).
///
/// 1. Build the `S`-side structure offline: per-cell kd-trees behind a
///    cell-granular [`KdCellStore`] (cell side = `l`, so a window
///    overlaps ≤ 9 cells — the `O(√m)` query bound of the monolithic
///    kd-tree is preserved, and the structure becomes patchable cell by
///    cell).
/// 2. Run an exact range count `|S(w(r))|` for every `r ∈ R`
///    (`O(n√m)` — this is the baseline's bottleneck).
/// 3. Build a Walker alias over the counts; the alias picks `r` with
///    probability `|S(w(r))| / |J|`.
///
/// The index is `Send + Sync` and never mutated after
/// [`KdsIndex::build`]; wrap it in an [`Arc`] and hand every serving
/// thread its own [`KdsCursor`]. Per sample, a cursor draws `r` from the
/// alias and one uniform point from `S ∩ w(r)` via spatial independent
/// range sampling (`O(√m)`). Every pair of `J` is emitted with
/// probability exactly `1/|J|`; no rejections ever occur
/// (`iterations == samples`).
///
/// Total: `O((n + t)√m)` time, `O(n + m)` space.
pub struct KdsIndex {
    r_points: Vec<Point>,
    /// `Arc`-held so a sharded engine can build the `S`-side once and
    /// share it across every shard (see [`KdsIndex::build_shared`]),
    /// and an epoch engine can patch it cell by cell.
    s_cells: Arc<KdCellStore>,
    alias: Option<AliasTable>,
    join_size: u64,
    config: SampleConfig,
    build_report: PhaseReport,
}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<KdsIndex>();
};

impl KdsIndex {
    /// Runs the build phases: kd-tree (pre-processing) + exact counts
    /// and alias (upper-bounding phase, in the paper's table terminology
    /// — for KDS the "bounds" are exact).
    ///
    /// The per-`r` counting loop — the baseline's `O(n√m)` bottleneck —
    /// runs on [`SampleConfig::build_threads`] threads; results are
    /// bit-identical at any thread count (see [`crate::parallel`]).
    pub fn build(r: &[Point], s: &[Point], config: &SampleConfig) -> Self {
        let (s_cells, preprocessing) = Self::build_s_structure(s, config);
        Self::build_inner(r, s_cells, config, preprocessing)
    }

    /// Builds only the `S`-side structure (the per-cell kd-trees) and
    /// reports how long it took. A sharded engine calls this once and
    /// hands `Arc` clones to every per-shard [`KdsIndex::build_shared`],
    /// so the structure is built — and held in memory — exactly once.
    pub fn build_s_structure(
        s: &[Point],
        config: &SampleConfig,
    ) -> (Arc<KdCellStore>, std::time::Duration) {
        let t0 = Instant::now();
        let s_cells = Arc::new(KdCellStore::build(
            s,
            config.half_extent,
            config.build_threads,
        ));
        (s_cells, t0.elapsed())
    }

    /// Like [`KdsIndex::build`], but over an already-built `S`-side
    /// (from [`KdsIndex::build_s_structure`], or a
    /// [`KdCellStore::patch`] of one). Its build time is charged to
    /// whoever built it, so this index's report records zero
    /// preprocessing.
    pub fn build_shared(r: &[Point], s_cells: Arc<KdCellStore>, config: &SampleConfig) -> Self {
        Self::build_inner(r, s_cells, config, std::time::Duration::ZERO)
    }

    fn build_inner(
        r: &[Point],
        s_cells: Arc<KdCellStore>,
        config: &SampleConfig,
        preprocessing: std::time::Duration,
    ) -> Self {
        assert!(
            s_cells.grid().cell_side().to_bits() == config.half_extent.to_bits(),
            "S-side cell side ({}) must equal the window half-extent ({})",
            s_cells.grid().cell_side(),
            config.half_extent
        );
        let t1 = Instant::now();
        let (weights, par) = par_map(r, config.build_threads, |_, &rp| {
            s_cells.count_window(&Rect::window(rp, config.half_extent)) as f64
        });
        let join_size = weights.iter().sum::<f64>() as u64;
        let alias = AliasTable::new(&weights);
        let upper_bounding = t1.elapsed();
        // Alias construction is serial; charge it to CPU too so that
        // cpu/wall stays the honest speedup ratio.
        let upper_bounding_cpu = par.cpu + upper_bounding.saturating_sub(par.wall);

        KdsIndex {
            r_points: r.to_vec(),
            s_cells,
            alias,
            join_size,
            config: *config,
            build_report: PhaseReport {
                preprocessing,
                upper_bounding,
                upper_bounding_cpu,
                ..PhaseReport::default()
            },
        }
    }

    /// The `Arc`-shared `S`-side over `S`, for rebuilding an index over
    /// a mutated `R` without re-paying the `S`-side build, or for
    /// patching cell by cell when `S` mutated (epoch-based rebuilds
    /// hand this — or its [`KdCellStore::patch`] — straight back to
    /// [`KdsIndex::build_shared`]).
    pub fn s_cells(&self) -> Arc<KdCellStore> {
        Arc::clone(&self.s_cells)
    }

    /// Exact join cardinality `|J| = Σ_r |S(w(r))|` (free by-product of
    /// the counting step — one of KDS's few advantages).
    pub fn join_size(&self) -> u64 {
        self.join_size
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &SampleConfig {
        &self.config
    }

    /// Build-phase timing (preprocessing + upper bounding).
    pub fn build_report(&self) -> PhaseReport {
        self.build_report
    }

    /// Approximate heap footprint of the retained structures.
    pub fn memory_bytes(&self) -> usize {
        self.r_points.capacity() * std::mem::size_of::<Point>()
            + self.s_cells.memory_bytes()
            + self.alias.as_ref().map_or(0, AliasTable::memory_bytes)
    }
}

impl SamplerIndex for KdsIndex {
    type Scratch = KdsScratch;

    fn algorithm_name(&self) -> &'static str {
        "KDS"
    }

    /// KDS counts exactly, so every iteration accepts: `try_draw` never
    /// returns `Ok(None)`.
    fn try_draw<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        scratch: &mut KdsScratch,
        stats: &mut PhaseReport,
    ) -> Result<Option<JoinPair>, SampleError> {
        let alias = self.alias.as_ref().ok_or(SampleError::EmptyJoin)?;
        stats.iterations += 1;
        let ridx = alias.sample(rng);
        let w = Rect::window(self.r_points[ridx], self.config.half_extent);
        // The alias only returns r with a positive count, so the window
        // is non-empty and the draw cannot fail.
        let (sid, _count) = if scratch.buffers.enabled() {
            self.s_cells
                .sample_in_window_buffered(&w, rng, &mut scratch.kd, &mut scratch.buffers)
        } else {
            self.s_cells.sample_in_window(&w, rng, &mut scratch.kd)
        }
        .expect("alias returned an r with zero range count");
        stats.samples += 1;
        Ok(Some(JoinPair::new(ridx as u32, sid)))
    }

    fn set_buffers(scratch: &mut KdsScratch, enabled: bool) {
        scratch.buffers.set_enabled(enabled);
    }

    fn warm_buffers(scratch: &mut KdsScratch, slots: &[u32]) {
        scratch.buffers.warm(slots);
    }

    fn seed_buffers(scratch: &mut KdsScratch, seed: u64) {
        scratch.buffers.seed_rng(seed);
    }

    fn drain_buffer_stats(scratch: &mut KdsScratch) -> BufferStats {
        scratch.buffers.drain_stats()
    }

    fn total_weight(&self) -> f64 {
        self.alias.as_ref().map_or(0.0, AliasTable::total_weight)
    }

    fn cell_count(&self) -> usize {
        self.s_cells.store().num_cells()
    }

    fn index_build_report(&self) -> PhaseReport {
        self.build_report
    }

    fn index_memory_bytes(&self) -> usize {
        self.memory_bytes()
    }

    fn shared_memory_bytes(&self) -> usize {
        self.s_cells.memory_bytes()
    }

    fn shared_memory_token(&self) -> usize {
        Arc::as_ptr(&self.s_cells) as usize
    }
}

/// Cheap per-thread query state over a shared [`KdsIndex`]: a kd-tree
/// descent scratch buffer plus sampling-phase statistics (see
/// [`Cursor`]).
pub type KdsCursor = Cursor<KdsIndex>;

/// Baseline 1 — **KDS** — as a self-contained single-threaded sampler:
/// an owned [`KdsIndex`] plus one [`KdsCursor`], preserving the
/// pre-split `build`/`sample` API. New concurrent callers should use
/// [`KdsIndex`] + [`KdsCursor`] (or the `srj-engine` crate) directly.
pub struct KdsSampler {
    cursor: KdsCursor,
}

impl KdsSampler {
    /// Builds the index and attaches a private cursor.
    pub fn build(r: &[Point], s: &[Point], config: &SampleConfig) -> Self {
        KdsSampler {
            cursor: KdsCursor::new(Arc::new(KdsIndex::build(r, s, config))),
        }
    }

    /// Exact join cardinality `|J|` (see [`KdsIndex::join_size`]).
    pub fn join_size(&self) -> u64 {
        self.cursor.index().join_size()
    }

    /// The shared index, for handing to additional cursors.
    pub fn index(&self) -> &Arc<KdsIndex> {
        self.cursor.index()
    }
}

impl JoinSampler for KdsSampler {
    fn name(&self) -> &'static str {
        self.cursor.name()
    }

    fn sample_one(&mut self, rng: &mut dyn RngCore) -> Result<JoinPair, SampleError> {
        self.cursor.sample_one(rng)
    }

    fn sample(&mut self, t: usize, rng: &mut dyn RngCore) -> Result<Vec<JoinPair>, SampleError> {
        self.cursor.sample(t, rng)
    }

    fn report(&self) -> PhaseReport {
        self.cursor.report()
    }

    fn memory_bytes(&self) -> usize {
        self.cursor.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn pseudo_points(n: usize, seed: u64, extent: f64) -> Vec<Point> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(next() * extent, next() * extent))
            .collect()
    }

    #[test]
    fn samples_are_genuine_join_pairs() {
        let r = pseudo_points(80, 1, 50.0);
        let s = pseudo_points(120, 2, 50.0);
        let cfg = SampleConfig::new(6.0);
        let mut sampler = KdsSampler::build(&r, &s, &cfg);
        let mut rng = SmallRng::seed_from_u64(3);
        let samples = sampler.sample(500, &mut rng).unwrap();
        assert_eq!(samples.len(), 500);
        for p in samples {
            let w = Rect::window(r[p.r as usize], 6.0);
            assert!(w.contains(s[p.s as usize]));
        }
        // KDS never rejects
        assert_eq!(sampler.report().iterations, sampler.report().samples);
    }

    #[test]
    fn join_size_matches_brute_force() {
        let r = pseudo_points(40, 5, 30.0);
        let s = pseudo_points(60, 6, 30.0);
        let cfg = SampleConfig::new(4.0);
        let sampler = KdsSampler::build(&r, &s, &cfg);
        let brute = srj_join::nested_loop_join(&r, &s, 4.0).len() as u64;
        assert_eq!(sampler.join_size(), brute);
    }

    #[test]
    fn empty_join_is_reported() {
        let r = vec![Point::new(0.0, 0.0)];
        let s = vec![Point::new(1000.0, 1000.0)];
        let cfg = SampleConfig::new(1.0);
        let mut sampler = KdsSampler::build(&r, &s, &cfg);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(sampler.sample_one(&mut rng), Err(SampleError::EmptyJoin));
        assert_eq!(sampler.join_size(), 0);
    }

    #[test]
    fn empty_inputs() {
        let cfg = SampleConfig::new(1.0);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut a = KdsSampler::build(&[], &pseudo_points(10, 1, 10.0), &cfg);
        assert_eq!(a.sample_one(&mut rng), Err(SampleError::EmptyJoin));
        let mut b = KdsSampler::build(&pseudo_points(10, 1, 10.0), &[], &cfg);
        assert_eq!(b.sample_one(&mut rng), Err(SampleError::EmptyJoin));
    }

    #[test]
    fn phase_report_populated() {
        let r = pseudo_points(50, 9, 20.0);
        let s = pseudo_points(50, 10, 20.0);
        let cfg = SampleConfig::new(3.0);
        let mut sampler = KdsSampler::build(&r, &s, &cfg);
        let mut rng = SmallRng::seed_from_u64(4);
        let _ = sampler.sample(100, &mut rng).unwrap();
        let rep = sampler.report();
        assert_eq!(rep.samples, 100);
        assert_eq!(rep.grid_mapping, std::time::Duration::ZERO); // KDS has no GM
        assert!(rep.total() >= rep.sampling);
        assert!(sampler.memory_bytes() > 0);
    }

    #[test]
    fn two_cursors_share_one_index() {
        let r = pseudo_points(60, 21, 40.0);
        let s = pseudo_points(90, 22, 40.0);
        let index = Arc::new(KdsIndex::build(&r, &s, &SampleConfig::new(5.0)));
        let mut a = KdsCursor::new(Arc::clone(&index));
        let mut b = KdsCursor::new(Arc::clone(&index));
        let mut rng_a = SmallRng::seed_from_u64(7);
        let mut rng_b = SmallRng::seed_from_u64(7);
        // identical seeds over the same index ⇒ identical streams
        let pa = a.sample(50, &mut rng_a).unwrap();
        let pb = b.sample(50, &mut rng_b).unwrap();
        assert_eq!(pa, pb);
        // per-cursor stats are independent
        assert_eq!(a.report().samples, 50);
        assert_eq!(b.report().samples, 50);
        // both cursors carry the index's build phases
        assert_eq!(a.report().preprocessing, index.build_report().preprocessing);
    }
}
