use std::fmt;
use std::time::Duration;

use srj_bbst::MassMode;
use srj_geom::PointId;

/// One sampled join result: ids into the `R` and `S` slices the sampler
/// was built from.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, PartialOrd, Ord)]
pub struct JoinPair {
    /// Index into `R`.
    pub r: PointId,
    /// Index into `S`.
    pub s: PointId,
}

impl JoinPair {
    /// Creates a pair.
    #[inline]
    pub const fn new(r: PointId, s: PointId) -> Self {
        JoinPair { r, s }
    }
}

/// Configuration shared by every sampler.
#[derive(Clone, Copy, Debug)]
pub struct SampleConfig {
    /// Window half-extent `l`: `w(r) = [r.x−l, r.x+l] × [r.y−l, r.y+l]`
    /// (paper §V-A; default there is 100 on a 10000² domain).
    pub half_extent: f64,
    /// How the BBST computes the case-3 upper bound (paper-faithful
    /// [`MassMode::Virtual`] by default; see `srj-bbst`).
    pub mass_mode: MassMode,
    /// Enable fractional cascading in the per-cell BBSTs (the optional
    /// `O(log m)` refinement of Lemma 4; off by default to match the
    /// paper's analysed configuration).
    pub use_cascading: bool,
    /// Safety valve: abort sampling after this many consecutive rejected
    /// iterations. The paper assumes `|J| ≥ 1`; with `|J| = 0` but
    /// positive upper bounds, rejection sampling would never terminate.
    /// The default (10 million) is far beyond any realistic expected
    /// iteration count (`Σµ/|J| ≲ log m`) and exists only to convert a
    /// pathological hang into [`SampleError::RejectionLimit`].
    pub max_consecutive_rejections: u64,
    /// Threads for the per-`r` upper-bounding loop of the index builds
    /// (the dominant build cost — `O(n√m)` for KDS, `O(n log m)` for
    /// BBST). `1` (the default) keeps the historical serial build; `0`
    /// means one thread per available core. The parallel build is
    /// bit-identical to the serial one (see [`crate::parallel`]), so
    /// this knob changes wall-clock only, never results.
    pub build_threads: usize,
}

impl SampleConfig {
    /// Default configuration for half-extent `l`.
    pub fn new(half_extent: f64) -> Self {
        assert!(
            half_extent.is_finite() && half_extent > 0.0,
            "half_extent must be positive and finite, got {half_extent}"
        );
        SampleConfig {
            half_extent,
            mass_mode: MassMode::Virtual,
            use_cascading: false,
            max_consecutive_rejections: 10_000_000,
            build_threads: 1,
        }
    }

    /// Overrides the BBST mass mode.
    pub fn with_mass_mode(mut self, mode: MassMode) -> Self {
        self.mass_mode = mode;
        self
    }

    /// Enables fractional cascading in the BBSTs.
    pub fn with_cascading(mut self) -> Self {
        self.use_cascading = true;
        self
    }

    /// Overrides the rejection safety valve.
    pub fn with_rejection_limit(mut self, limit: u64) -> Self {
        assert!(limit > 0, "rejection limit must be positive");
        self.max_consecutive_rejections = limit;
        self
    }

    /// Sets the build-phase thread count (`0` = all available cores;
    /// see [`SampleConfig::build_threads`]).
    pub fn with_build_threads(mut self, threads: usize) -> Self {
        self.build_threads = threads;
        self
    }
}

/// Why a sampler could not produce the requested samples.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SampleError {
    /// The join result is provably empty (total sampling weight is zero):
    /// no pair exists to sample. Definition 2 assumes `|J| ≥ 1`.
    EmptyJoin,
    /// The rejection safety valve tripped
    /// ([`SampleConfig::max_consecutive_rejections`] consecutive
    /// failures). Either `|J| = 0` with non-zero upper bounds, or the
    /// limit was configured too low for the bound looseness.
    RejectionLimit,
}

impl fmt::Display for SampleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SampleError::EmptyJoin => write!(f, "the spatial range join is empty"),
            SampleError::RejectionLimit => {
                write!(
                    f,
                    "rejection sampling exceeded the configured iteration limit"
                )
            }
        }
    }
}

impl std::error::Error for SampleError {}

/// Wall-clock decomposition of a sampler's work, following the paper's
/// reporting (Tables II–IV):
///
/// * `preprocessing` — offline work (kd-tree build for the baselines,
///   x-sort for BBST; Table II),
/// * `grid_mapping` — "GM": grid construction, for BBST including the
///   per-cell structures (online data-structure building phase),
/// * `upper_bounding` — "UB": per-`r` range counts / upper bounds plus
///   alias construction (approximate range counting phase),
/// * `sampling` — cumulative time spent inside `sample*` calls,
/// * `iterations` — sampling-loop iterations (Table IV; rejections make
///   `iterations > samples`),
/// * `samples` — accepted samples produced so far.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseReport {
    /// Offline pre-processing time (Table II).
    pub preprocessing: Duration,
    /// Grid-mapping / structure-building time ("GM", Table III).
    pub grid_mapping: Duration,
    /// Upper-bounding / range-counting time ("UB", Table III). This is
    /// **wall-clock**: with `build_threads > 1` it shrinks with the
    /// achieved parallel speedup.
    pub upper_bounding: Duration,
    /// Aggregate **CPU** time of the upper-bounding phase, summed over
    /// the build worker threads. Equals [`PhaseReport::upper_bounding`]
    /// for serial builds; `upper_bounding_cpu / upper_bounding` is the
    /// achieved build speedup.
    pub upper_bounding_cpu: Duration,
    /// Cumulative sampling time (Table IV).
    pub sampling: Duration,
    /// Sampling-loop iterations including rejections (Table IV).
    pub iterations: u64,
    /// Accepted samples.
    pub samples: u64,
}

impl PhaseReport {
    /// Build-side total (everything except sampling): what the paper
    /// calls the algorithm's cost before the sampling phase.
    pub fn build_total(&self) -> Duration {
        self.preprocessing + self.grid_mapping + self.upper_bounding
    }

    /// Grand total including sampling.
    pub fn total(&self) -> Duration {
        self.build_total() + self.sampling
    }

    /// Combines an index's build-phase report with a cursor's
    /// sampling-phase report into the classic single-sampler view.
    ///
    /// The index/cursor split (build once, sample from many cursors)
    /// stores the build phases on the shared immutable index and the
    /// sampling phases on each cursor; this reassembles the report shape
    /// the paper's tables — and the pre-split `JoinSampler::report()`
    /// contract — expect.
    pub fn with_sampling_from(&self, sampling: &PhaseReport) -> PhaseReport {
        PhaseReport {
            preprocessing: self.preprocessing,
            grid_mapping: self.grid_mapping,
            upper_bounding: self.upper_bounding,
            upper_bounding_cpu: self.upper_bounding_cpu,
            sampling: sampling.sampling,
            iterations: sampling.iterations,
            samples: sampling.samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults() {
        let c = SampleConfig::new(100.0);
        assert_eq!(c.half_extent, 100.0);
        assert_eq!(c.mass_mode, MassMode::Virtual);
        assert!(c.max_consecutive_rejections > 0);
    }

    #[test]
    #[should_panic(expected = "half_extent must be positive")]
    fn zero_half_extent_rejected() {
        SampleConfig::new(0.0);
    }

    #[test]
    #[should_panic(expected = "half_extent must be positive")]
    fn nan_half_extent_rejected() {
        SampleConfig::new(f64::NAN);
    }

    #[test]
    fn builder_overrides() {
        let c = SampleConfig::new(5.0)
            .with_mass_mode(MassMode::Exact)
            .with_cascading()
            .with_rejection_limit(42)
            .with_build_threads(4);
        assert_eq!(c.mass_mode, MassMode::Exact);
        assert!(c.use_cascading);
        assert_eq!(c.max_consecutive_rejections, 42);
        assert_eq!(c.build_threads, 4);
    }

    #[test]
    fn report_totals() {
        let r = PhaseReport {
            preprocessing: Duration::from_millis(1),
            grid_mapping: Duration::from_millis(2),
            upper_bounding: Duration::from_millis(3),
            upper_bounding_cpu: Duration::from_millis(3),
            sampling: Duration::from_millis(4),
            iterations: 10,
            samples: 8,
        };
        assert_eq!(r.build_total(), Duration::from_millis(6));
        assert_eq!(r.total(), Duration::from_millis(10));
    }

    #[test]
    fn error_display() {
        assert!(SampleError::EmptyJoin.to_string().contains("empty"));
        assert!(SampleError::RejectionLimit.to_string().contains("limit"));
    }
}
