use std::collections::HashSet;
use std::sync::Arc;

use srj_geom::{Point, PointId, Rect};

use crate::cell::Cell;
use crate::fx::FxHashMap;
use crate::offsets::NEIGHBOR_OFFSETS;

/// What a [`Grid::patch`] did: which cells of the patched grid were
/// structurally shared with the pre-patch grid and which were rebuilt.
#[derive(Clone, Debug, Default)]
pub struct GridPatch {
    /// For each slot of the patched grid: the pre-patch slot whose
    /// [`Cell`] was `Arc`-shared into it, or `None` when the cell was
    /// rebuilt (dirty) or is brand new.
    pub shared_from: Vec<Option<u32>>,
    /// Cells rebuilt or newly created — the work the patch actually
    /// paid for (includes cells that vanished because every member was
    /// deleted).
    pub cells_rebuilt: usize,
    /// Cells carried over by `Arc` clone (zero rebuild cost).
    pub cells_shared: usize,
}

/// Non-empty hash grid over a point set (`GRID-MAPPING(S, l)`).
///
/// The grid owns a copy of the point coordinates (the algorithms index by
/// [`PointId`]), a hash map from discrete cell coordinates to cell slots,
/// and one [`Cell`] per non-empty cell with x- and y-sorted id arrays.
///
/// Total space is `O(m)`: each point id appears in exactly one cell's
/// `by_x` and `by_y`.
///
/// ```
/// use srj_geom::{Point, Rect};
/// use srj_grid::Grid;
///
/// let pts = vec![Point::new(1.0, 1.0), Point::new(12.0, 3.0), Point::new(13.0, 4.0)];
/// let grid = Grid::build(&pts, 10.0); // cell side = window half-extent
/// assert_eq!(grid.num_cells(), 2);    // only non-empty cells exist
/// assert_eq!(grid.coord_of(pts[1]), (1, 0));
/// assert_eq!(grid.exact_window_count(&Rect::new(0.0, 0.0, 12.5, 5.0)), 2);
/// ```
#[derive(Clone, Debug)]
pub struct Grid {
    cell_side: f64,
    points: Vec<Point>,
    lookup: FxHashMap<(i32, i32), u32>,
    /// `Arc`-held so [`Grid::patch`] can carry clean cells into the
    /// patched grid by reference instead of copying them.
    cells: Vec<Arc<Cell>>,
}

impl Grid {
    /// Builds the grid with the given cell side (the paper uses cell side
    /// = window half-extent `l`, i.e. half the window side).
    ///
    /// `O(m log m)` time (dominated by the per-cell sorts), `O(m)` space.
    ///
    /// # Panics
    ///
    /// Panics if `cell_side` is not strictly positive and finite, or if a
    /// coordinate divided by `cell_side` overflows `i32` (cannot happen
    /// for the paper's normalised `[0, 10000]²` domain with any sane `l`).
    pub fn build(points: &[Point], cell_side: f64) -> Self {
        Self::build_inner(points, None, None, cell_side)
    }

    /// Builds the grid over `points` but **indexes only** the ids not in
    /// `skip`. The skipped points stay in the grid's point array (ids
    /// keep their meaning — `Grid::point(id)` still resolves them) but
    /// belong to no cell, so they are invisible to every count, run, and
    /// neighborhood query. This is how structures over an epoch base
    /// with tombstoned ("dead") ids are built without renumbering.
    pub fn build_subset(points: &[Point], skip: &HashSet<PointId>, cell_side: f64) -> Self {
        Self::build_inner(points, None, Some(skip), cell_side)
    }

    /// Builds the grid from a **pre-sorted** x-order of the points (the
    /// paper's offline preprocessing: "points in S are pre-sorted based
    /// on the x-dimension", Lemma 1 / footnote 2).
    ///
    /// `x_order` must be a permutation of `0..points.len()` sorted by
    /// ascending x. Appending ids in this order makes every cell's
    /// `by_x` sorted for free, so the grid-mapping phase only sorts the
    /// y copies (`S_y(c)`) — exactly Algorithm 1 lines 1–4.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `x_order` is not x-sorted; panics if its
    /// length differs from `points`.
    pub fn build_from_sorted(points: &[Point], x_order: &[PointId], cell_side: f64) -> Self {
        assert_eq!(x_order.len(), points.len(), "x_order must cover all points");
        debug_assert!(
            x_order
                .windows(2)
                .all(|w| points[w[0] as usize].x <= points[w[1] as usize].x),
            "x_order must be sorted by x"
        );
        Self::build_inner(points, Some(x_order), None, cell_side)
    }

    fn build_inner(
        points: &[Point],
        x_order: Option<&[PointId]>,
        skip: Option<&HashSet<PointId>>,
        cell_side: f64,
    ) -> Self {
        assert!(
            cell_side.is_finite() && cell_side > 0.0,
            "cell_side must be positive and finite, got {cell_side}"
        );
        assert!(points.len() <= u32::MAX as usize, "too many points");
        assert!(
            points.iter().all(|p| p.x.is_finite() && p.y.is_finite()),
            "points must have finite coordinates"
        );

        let mut lookup: FxHashMap<(i32, i32), u32> = FxHashMap::default();
        let mut members: Vec<Vec<PointId>> = Vec::new();
        let mut insert = |id: PointId| {
            if skip.is_some_and(|s| s.contains(&id)) {
                return;
            }
            let coord = coord_of_raw(points[id as usize], cell_side);
            let slot = *lookup.entry(coord).or_insert_with(|| {
                members.push(Vec::new());
                (members.len() - 1) as u32
            });
            members[slot as usize].push(id);
        };
        match x_order {
            Some(order) => order.iter().for_each(|&id| insert(id)),
            None => (0..points.len() as u32).for_each(&mut insert),
        }
        let presorted = x_order.is_some();

        // Recover each cell's coordinate from the lookup (avoids a second
        // pass over the points).
        let mut coords: Vec<(i32, i32)> = vec![(0, 0); members.len()];
        for (&coord, &slot) in &lookup {
            coords[slot as usize] = coord;
        }

        let cells: Vec<Arc<Cell>> = members
            .into_iter()
            .zip(coords)
            .map(|(mut ids, coord)| {
                if !presorted {
                    ids.sort_unstable_by(|&a, &b| {
                        points[a as usize].x.total_cmp(&points[b as usize].x)
                    });
                }
                Arc::new(make_cell(points, coord, ids, cell_side))
            })
            .collect();

        Grid {
            cell_side,
            points: points.to_vec(),
            lookup,
            cells,
        }
    }

    /// Rebuilds **only the dirty cells** for a set of point mutations,
    /// structurally sharing every clean cell's `Arc` with this grid.
    ///
    /// `inserted` points are appended to the point array and get ids
    /// `self.points().len()..`; `deleted` ids (base or just-inserted)
    /// are removed from their cells but stay resolvable through
    /// [`Grid::point`] — ids are **stable** across a patch, which is
    /// exactly what lets clean cells be shared verbatim. A cell is
    /// dirty iff it gains or loses at least one member; everything else
    /// is carried over by `Arc` clone. Cost: one flat copy of the point
    /// array plus `O(|c| log |c|)` per dirty cell.
    pub fn patch(&self, inserted: &[Point], deleted: &HashSet<PointId>) -> (Grid, GridPatch) {
        let base_len = self.points.len();
        assert!(
            base_len + inserted.len() <= u32::MAX as usize,
            "too many points"
        );
        assert!(
            inserted.iter().all(|p| p.x.is_finite() && p.y.is_finite()),
            "points must have finite coordinates"
        );
        let mut points = Vec::with_capacity(base_len + inserted.len());
        points.extend_from_slice(&self.points);
        points.extend_from_slice(inserted);

        // Live inserted ids grouped by destination cell coordinate
        // (an id inserted and deleted within the same patch never
        // materialises).
        let mut added: FxHashMap<(i32, i32), Vec<PointId>> = FxHashMap::default();
        for (i, &p) in inserted.iter().enumerate() {
            let id = (base_len + i) as PointId;
            if deleted.contains(&id) {
                continue;
            }
            added
                .entry(coord_of_raw(p, self.cell_side))
                .or_default()
                .push(id);
        }
        // Dirty coordinates: every cell that gains or loses a member.
        let mut dirty: HashSet<(i32, i32)> = added.keys().copied().collect();
        for &id in deleted {
            if (id as usize) < base_len {
                dirty.insert(coord_of_raw(self.points[id as usize], self.cell_side));
            }
        }

        let mut lookup: FxHashMap<(i32, i32), u32> = FxHashMap::default();
        let mut cells: Vec<Arc<Cell>> = Vec::with_capacity(self.cells.len() + added.len());
        let mut shared_from: Vec<Option<u32>> = Vec::new();
        let mut cells_rebuilt = 0usize;
        for (old_slot, cell) in self.cells.iter().enumerate() {
            let coord = cell.coord;
            if !dirty.contains(&coord) {
                lookup.insert(coord, cells.len() as u32);
                shared_from.push(Some(old_slot as u32));
                cells.push(Arc::clone(cell));
                continue;
            }
            cells_rebuilt += 1;
            let mut ids: Vec<PointId> = cell
                .by_x
                .iter()
                .copied()
                .filter(|id| !deleted.contains(id))
                .collect();
            if let Some(mut extra) = added.remove(&coord) {
                ids.append(&mut extra);
            }
            if ids.is_empty() {
                continue; // every member deleted: the cell vanishes
            }
            lookup.insert(coord, cells.len() as u32);
            shared_from.push(None);
            ids.sort_unstable_by(|&a, &b| points[a as usize].x.total_cmp(&points[b as usize].x));
            cells.push(Arc::new(make_cell(&points, coord, ids, self.cell_side)));
        }
        // Brand-new cells: inserts into previously empty coordinates
        // (sorted for a deterministic slot order).
        let mut fresh: Vec<((i32, i32), Vec<PointId>)> = added.into_iter().collect();
        fresh.sort_unstable_by_key(|&(c, _)| c);
        for (coord, mut ids) in fresh {
            cells_rebuilt += 1;
            lookup.insert(coord, cells.len() as u32);
            shared_from.push(None);
            ids.sort_unstable_by(|&a, &b| points[a as usize].x.total_cmp(&points[b as usize].x));
            cells.push(Arc::new(make_cell(&points, coord, ids, self.cell_side)));
        }
        let cells_shared = shared_from.iter().filter(|s| s.is_some()).count();
        (
            Grid {
                cell_side: self.cell_side,
                points,
                lookup,
                cells,
            },
            GridPatch {
                shared_from,
                cells_rebuilt,
                cells_shared,
            },
        )
    }

    /// Cell side length the grid was built with.
    #[inline]
    pub fn cell_side(&self) -> f64 {
        self.cell_side
    }

    /// Number of indexed points (`m`).
    #[inline]
    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    /// Number of non-empty cells.
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// All indexed points, indexable by [`PointId`].
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Coordinates of point `id`.
    #[inline]
    pub fn point(&self, id: PointId) -> Point {
        self.points[id as usize]
    }

    /// All non-empty cells (iteration order is unspecified but stable).
    /// The `Arc` wrappers are the unit of structural sharing across
    /// [`Grid::patch`]es: `Arc::ptr_eq` on two grids' cells proves a
    /// cell was carried over untouched.
    #[inline]
    pub fn cells(&self) -> &[Arc<Cell>] {
        &self.cells
    }

    /// Number of points currently indexed by some cell. Equal to
    /// [`Grid::num_points`] for a plain build; smaller when the grid
    /// was built with [`Grid::build_subset`] or [`Grid::patch`] left
    /// dead ids behind.
    pub fn live_points(&self) -> usize {
        self.cells.iter().map(|c| c.len()).sum()
    }

    /// Discrete cell coordinate containing `p`.
    #[inline]
    pub fn coord_of(&self, p: Point) -> (i32, i32) {
        coord_of_raw(p, self.cell_side)
    }

    /// The cell at `coord`, if non-empty.
    #[inline]
    pub fn cell_at(&self, coord: (i32, i32)) -> Option<&Cell> {
        self.lookup
            .get(&coord)
            .map(|&slot| &*self.cells[slot as usize])
    }

    /// Slot index of the cell at `coord`, if non-empty. Slots index
    /// [`Grid::cells`] and stay stable for the grid's lifetime, letting
    /// callers attach per-cell side structures (e.g. the BBST pair).
    #[inline]
    pub fn cell_slot_at(&self, coord: (i32, i32)) -> Option<u32> {
        self.lookup.get(&coord).copied()
    }

    /// The cell stored at `slot` (see [`Grid::cell_slot_at`]).
    #[inline]
    pub fn cell(&self, slot: u32) -> &Cell {
        &self.cells[slot as usize]
    }

    /// The `Arc` holding the cell at `slot` — the sharing token a
    /// cell-granular store compares across epochs.
    #[inline]
    pub fn cell_arc(&self, slot: u32) -> &Arc<Cell> {
        &self.cells[slot as usize]
    }

    /// Slot indices of the ≤ 9 cells of the 3×3 block around the cell
    /// containing `p`, in [`NEIGHBOR_OFFSETS`] order.
    pub fn neighborhood_slots(&self, p: Point) -> [Option<u32>; 9] {
        let (cx, cy) = self.coord_of(p);
        let mut out = [None; 9];
        for (slot, &(dx, dy)) in out.iter_mut().zip(NEIGHBOR_OFFSETS.iter()) {
            let coord = (cx.saturating_add(dx), cy.saturating_add(dy));
            *slot = self.cell_slot_at(coord);
        }
        out
    }

    /// The ≤ 9 cells of the 3×3 block around the cell containing `p`, in
    /// [`NEIGHBOR_OFFSETS`] order (`None` where the cell is empty).
    pub fn neighborhood(&self, p: Point) -> [Option<&Cell>; 9] {
        let (cx, cy) = self.coord_of(p);
        let mut out = [None; 9];
        for (slot, &(dx, dy)) in out.iter_mut().zip(NEIGHBOR_OFFSETS.iter()) {
            // Windows at the domain edge may index coordinates one step
            // outside the populated range; saturating keeps them empty.
            let coord = (cx.saturating_add(dx), cy.saturating_add(dy));
            *slot = self.cell_at(coord);
        }
        out
    }

    /// Sum of `|S(c)|` over the 3×3 block around `p` — the loose
    /// upper bound `µ(r)` of KDS-rejection (Section III-B), `O(1)`.
    pub fn neighborhood_population(&self, p: Point) -> usize {
        self.neighborhood(p).iter().flatten().map(|c| c.len()).sum()
    }

    /// Exact number of indexed points inside the closed rectangle `w`.
    ///
    /// Visits every cell overlapping `w`; fully-covered cells contribute
    /// `|S(c)|` in `O(1)`, boundary cells contribute an x-binary-search
    /// plus a scan of the x-run. Used as ground truth (`|S(w(r))|`, and
    /// `|J| = Σ_r |S(w(r))|`).
    pub fn exact_window_count(&self, w: &Rect) -> usize {
        let (lo_cx, lo_cy) = coord_of_raw(Point::new(w.min_x, w.min_y), self.cell_side);
        let (hi_cx, hi_cy) = coord_of_raw(Point::new(w.max_x, w.max_y), self.cell_side);
        let span = (hi_cx as i64 - lo_cx as i64 + 1) * (hi_cy as i64 - lo_cy as i64 + 1);
        if span > self.cells.len() as i64 {
            // Wide window: iterating the non-empty cells is cheaper.
            return self
                .cells
                .iter()
                .map(|c| self.count_cell_in_window(c, w))
                .sum();
        }
        let mut total = 0usize;
        for cx in lo_cx..=hi_cx {
            for cy in lo_cy..=hi_cy {
                if let Some(c) = self.cell_at((cx, cy)) {
                    total += self.count_cell_in_window(c, w);
                }
            }
        }
        total
    }

    #[inline]
    fn count_cell_in_window(&self, c: &Cell, w: &Rect) -> usize {
        if w.contains_rect(&c.rect) {
            c.len()
        } else {
            c.count_in_rect(&self.points, w)
        }
    }

    /// Approximate heap footprint in bytes (Fig. 4 experiment).
    pub fn memory_bytes(&self) -> usize {
        let map_entry = std::mem::size_of::<((i32, i32), u32)>() + 1;
        self.points.capacity() * std::mem::size_of::<Point>()
            + self.lookup.capacity() * map_entry
            + self.cells.capacity() * std::mem::size_of::<Arc<Cell>>()
            + self
                .cells
                .iter()
                .map(|c| std::mem::size_of::<Cell>() + c.memory_bytes())
                .sum::<usize>()
    }
}

/// Assembles one cell from its member ids, **already sorted by x**.
fn make_cell(points: &[Point], coord: (i32, i32), by_x: Vec<PointId>, cell_side: f64) -> Cell {
    debug_assert!(by_x
        .windows(2)
        .all(|w| points[w[0] as usize].x <= points[w[1] as usize].x));
    let mut by_y = by_x.clone();
    by_y.sort_unstable_by(|&a, &b| points[a as usize].y.total_cmp(&points[b as usize].y));
    let rect = Rect::new(
        coord.0 as f64 * cell_side,
        coord.1 as f64 * cell_side,
        (coord.0 as f64 + 1.0) * cell_side,
        (coord.1 as f64 + 1.0) * cell_side,
    );
    Cell {
        coord,
        rect,
        by_x,
        by_y,
    }
}

#[inline]
fn coord_of_raw(p: Point, cell_side: f64) -> (i32, i32) {
    let cx = (p.x / cell_side).floor();
    let cy = (p.y / cell_side).floor();
    debug_assert!(
        cx >= i32::MIN as f64 && cx <= i32::MAX as f64,
        "cell x coordinate overflow"
    );
    debug_assert!(
        cy >= i32::MIN as f64 && cy <= i32::MAX as f64,
        "cell y coordinate overflow"
    );
    (cx as i32, cy as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize, seed: u64) -> Vec<Point> {
        // Deterministic pseudo-random points without pulling in rand here.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect()
    }

    #[test]
    fn every_point_in_exactly_one_cell() {
        let pts = cluster(500, 3);
        let g = Grid::build(&pts, 7.0);
        let mut seen = vec![0u32; pts.len()];
        for c in g.cells() {
            assert!(!c.is_empty(), "empty cell materialised");
            assert_eq!(c.by_x.len(), c.by_y.len());
            for &id in &c.by_x {
                seen[id as usize] += 1;
                assert_eq!(g.coord_of(pts[id as usize]), c.coord);
            }
        }
        assert!(seen.iter().all(|&s| s == 1));
        assert_eq!(g.cells().iter().map(|c| c.len()).sum::<usize>(), pts.len());
    }

    #[test]
    fn cell_arrays_are_sorted() {
        let pts = cluster(300, 11);
        let g = Grid::build(&pts, 10.0);
        for c in g.cells() {
            assert!(c
                .by_x
                .windows(2)
                .all(|w| pts[w[0] as usize].x <= pts[w[1] as usize].x));
            assert!(c
                .by_y
                .windows(2)
                .all(|w| pts[w[0] as usize].y <= pts[w[1] as usize].y));
        }
    }

    #[test]
    fn point_on_cell_boundary_goes_to_upper_cell() {
        let pts = vec![Point::new(10.0, 10.0), Point::new(9.999, 9.999)];
        let g = Grid::build(&pts, 10.0);
        assert_eq!(g.coord_of(pts[0]), (1, 1));
        assert_eq!(g.coord_of(pts[1]), (0, 0));
        assert_eq!(g.num_cells(), 2);
    }

    #[test]
    fn negative_coordinates() {
        let pts = vec![Point::new(-0.5, -0.5), Point::new(0.5, 0.5)];
        let g = Grid::build(&pts, 1.0);
        assert_eq!(g.coord_of(pts[0]), (-1, -1));
        assert_eq!(g.coord_of(pts[1]), (0, 0));
        assert!(g.cell_at((-1, -1)).is_some());
    }

    #[test]
    fn neighborhood_layout_and_population() {
        // one point per cell of a 3x3 block centred at cell (1,1)
        let mut pts = Vec::new();
        for cx in 0..3 {
            for cy in 0..3 {
                pts.push(Point::new(cx as f64 + 0.5, cy as f64 + 0.5));
            }
        }
        let g = Grid::build(&pts, 1.0);
        let center = Point::new(1.5, 1.5);
        let hood = g.neighborhood(center);
        assert!(hood.iter().all(|c| c.is_some()));
        assert_eq!(g.neighborhood_population(center), 9);
        // at the corner of the populated block only 4 cells exist
        let corner = Point::new(0.5, 0.5);
        assert_eq!(g.neighborhood(corner).iter().flatten().count(), 4);
        assert_eq!(g.neighborhood_population(corner), 4);
    }

    #[test]
    fn exact_window_count_matches_brute_force() {
        let pts = cluster(800, 17);
        let g = Grid::build(&pts, 9.0);
        let windows = [
            Rect::new(0.0, 0.0, 100.0, 100.0),
            Rect::new(13.0, 22.0, 31.0, 40.0),
            Rect::new(50.0, 50.0, 50.0, 50.0),
            Rect::new(-20.0, -20.0, -1.0, -1.0),
            Rect::new(95.0, 0.0, 200.0, 200.0),
        ];
        for w in &windows {
            let brute = pts.iter().filter(|p| w.contains(**p)).count();
            assert_eq!(g.exact_window_count(w), brute, "window {w:?}");
        }
    }

    #[test]
    fn wide_window_path_matches_narrow_path() {
        // tiny cell side forces the "span > num_cells" fallback
        let pts = cluster(100, 23);
        let g = Grid::build(&pts, 0.01);
        let w = Rect::new(0.0, 0.0, 100.0, 100.0);
        let brute = pts.iter().filter(|p| w.contains(**p)).count();
        assert_eq!(g.exact_window_count(&w), brute);
    }

    #[test]
    #[should_panic(expected = "cell_side must be positive")]
    fn zero_cell_side_panics() {
        Grid::build(&[], 0.0);
    }

    #[test]
    fn empty_grid() {
        let g = Grid::build(&[], 5.0);
        assert_eq!(g.num_cells(), 0);
        assert_eq!(g.num_points(), 0);
        assert_eq!(g.exact_window_count(&Rect::new(0.0, 0.0, 1.0, 1.0)), 0);
        assert_eq!(g.neighborhood_population(Point::new(0.0, 0.0)), 0);
    }

    #[test]
    fn memory_accounting_scales() {
        let small = Grid::build(&cluster(100, 1), 10.0);
        let large = Grid::build(&cluster(10_000, 1), 10.0);
        assert!(large.memory_bytes() > small.memory_bytes());
    }

    #[test]
    fn build_from_sorted_matches_unsorted_build() {
        let pts = cluster(600, 29);
        let mut order: Vec<u32> = (0..pts.len() as u32).collect();
        order.sort_by(|&a, &b| pts[a as usize].x.total_cmp(&pts[b as usize].x));
        let a = Grid::build(&pts, 8.0);
        let b = Grid::build_from_sorted(&pts, &order, 8.0);
        assert_eq!(a.num_cells(), b.num_cells());
        for cell in b.cells() {
            // by_x sorted without an explicit per-cell sort
            assert!(cell
                .by_x
                .windows(2)
                .all(|w| pts[w[0] as usize].x <= pts[w[1] as usize].x));
            let other = a.cell_at(cell.coord).unwrap();
            let mut lhs = cell.by_x.clone();
            let mut rhs = other.by_x.clone();
            lhs.sort_unstable();
            rhs.sort_unstable();
            assert_eq!(lhs, rhs, "cell {:?} membership differs", cell.coord);
        }
        let w = Rect::new(10.0, 10.0, 60.0, 55.0);
        assert_eq!(a.exact_window_count(&w), b.exact_window_count(&w));
    }

    #[test]
    fn neighborhood_slots_agree_with_neighborhood() {
        let pts = cluster(400, 31);
        let g = Grid::build(&pts, 12.0);
        for probe in [Point::new(50.0, 50.0), Point::new(3.0, 97.0), pts[7]] {
            let cells = g.neighborhood(probe);
            let slots = g.neighborhood_slots(probe);
            for (c, s) in cells.iter().zip(slots.iter()) {
                match (c, s) {
                    (Some(cell), Some(slot)) => assert_eq!(cell.coord, g.cell(*slot).coord),
                    (None, None) => {}
                    _ => panic!("neighborhood and slots disagree"),
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "x_order must cover all points")]
    fn build_from_sorted_rejects_short_order() {
        let pts = cluster(10, 1);
        Grid::build_from_sorted(&pts, &[0, 1], 5.0);
    }

    #[test]
    fn build_subset_hides_skipped_ids_without_renumbering() {
        let pts = cluster(200, 37);
        let skip: HashSet<PointId> = (0..200).step_by(5).collect();
        let g = Grid::build_subset(&pts, &skip, 10.0);
        assert_eq!(g.num_points(), 200, "point array keeps every id");
        assert_eq!(g.live_points(), 200 - skip.len());
        for c in g.cells() {
            for &id in &c.by_x {
                assert!(!skip.contains(&id), "skipped id {id} indexed");
            }
        }
        // Skipped points still resolve by id.
        assert_eq!(g.point(0), pts[0]);
        let w = Rect::new(0.0, 0.0, 100.0, 100.0);
        let live = pts
            .iter()
            .enumerate()
            .filter(|(i, p)| !skip.contains(&(*i as u32)) && w.contains(**p))
            .count();
        assert_eq!(g.exact_window_count(&w), live);
    }

    #[test]
    fn patch_rebuilds_only_dirty_cells_and_shares_the_rest() {
        let pts = cluster(600, 41);
        let g = Grid::build(&pts, 10.0);
        // One insert and one delete, far apart.
        let ins = vec![Point::new(5.0, 5.0)];
        let del_id = pts.iter().position(|p| p.x > 80.0 && p.y > 80.0).unwrap() as PointId;
        let deleted: HashSet<PointId> = [del_id].into_iter().collect();
        let (p, rep) = g.patch(&ins, &deleted);

        // Ids: stable base ids, appended insert id.
        assert_eq!(p.num_points(), 601);
        assert_eq!(p.point(600), ins[0]);
        assert_eq!(p.live_points(), 600); // +1 insert, −1 delete
        assert_eq!(rep.shared_from.len(), p.num_cells());
        // rebuilt counts vanished cells too, so shared + rebuilt covers
        // at least every surviving cell.
        assert!(rep.cells_shared + rep.cells_rebuilt >= p.num_cells());

        // Exactly the two touched coordinates were rebuilt.
        let dirty_a = g.coord_of(ins[0]);
        let dirty_b = g.coord_of(pts[del_id as usize]);
        for (slot, from) in rep.shared_from.iter().enumerate() {
            let cell = p.cell(slot as u32);
            if cell.coord == dirty_a || cell.coord == dirty_b {
                assert!(from.is_none(), "dirty cell {:?} was shared", cell.coord);
            } else {
                let old_slot = from.expect("clean cell not shared");
                assert!(
                    Arc::ptr_eq(p.cell_arc(slot as u32), g.cell_arc(old_slot)),
                    "clean cell {:?} not Arc-shared",
                    cell.coord
                );
            }
        }
        assert!(rep.cells_rebuilt <= 2);
        assert!(rep.cells_shared >= g.num_cells() - 2);

        // Deleted id is out of every cell; membership is otherwise intact.
        for c in p.cells() {
            assert!(!c.by_x.contains(&del_id));
            assert!(c
                .by_x
                .windows(2)
                .all(|w| p.points()[w[0] as usize].x <= p.points()[w[1] as usize].x));
        }
        // Window counts agree with a brute force over the live set.
        let w = Rect::new(20.0, 20.0, 70.0, 90.0);
        let live = (0..601u32)
            .filter(|&id| id != del_id)
            .filter(|&id| w.contains(p.point(id)))
            .count();
        assert_eq!(p.exact_window_count(&w), live);
    }

    #[test]
    fn patch_drops_emptied_cells_and_creates_fresh_ones() {
        let pts = vec![Point::new(1.0, 1.0), Point::new(55.0, 55.0)];
        let g = Grid::build(&pts, 10.0);
        assert_eq!(g.num_cells(), 2);
        // Delete the only member of cell (0,0); insert into empty (9,9).
        let deleted: HashSet<PointId> = [0u32].into_iter().collect();
        let (p, rep) = g.patch(&[Point::new(95.0, 95.0)], &deleted);
        assert_eq!(p.num_cells(), 2);
        assert!(p.cell_at((0, 0)).is_none(), "emptied cell survived");
        assert!(p.cell_at((9, 9)).is_some(), "fresh cell missing");
        assert!(Arc::ptr_eq(
            p.cell_arc(p.cell_slot_at((5, 5)).unwrap()),
            g.cell_arc(g.cell_slot_at((5, 5)).unwrap())
        ));
        assert_eq!(rep.cells_shared, 1);
        // Both the emptied and the fresh cell count as rebuilt work.
        assert_eq!(rep.cells_rebuilt, 2);
        // Insert-then-delete within one patch never materialises (the
        // new point's id is p.num_points() == 3).
        let deleted: HashSet<PointId> = [3u32].into_iter().collect();
        let (q, _) = p.patch(&[Point::new(15.0, 15.0)], &deleted);
        assert!(q.cell_at((1, 1)).is_none());
    }
}
