//! Non-empty hash grid over a static 2-D point set.
//!
//! Both `KDS-rejection` (Section III-B) and the proposed `BBST` algorithm
//! (Section IV) map the inner point set `S` onto a grid whose cell side
//! equals **half** the query-window side. The window of any `r` then
//! overlaps at most the 3×3 block of cells around the cell containing `r`
//! (paper Fig. 1), and each overlapped cell falls into one of three cases:
//!
//! * **case 1** (centre): fully covered, 0-sided — exact count is `|S(c)|`;
//! * **case 2** (edges): covered along one axis, 1-sided — exact count by
//!   a single binary search on a coordinate-sorted array;
//! * **case 3** (corners): 2-sided — handled by the BBST structure
//!   (crate `srj-bbst`).
//!
//! Only non-empty cells are materialised (`GRID-MAPPING(S, l)` in
//! Algorithm 1, `O(m)` time and space). Every cell keeps its member point
//! ids sorted by x (`S(c)`) and by y (`S_y(c)`), which is precisely the
//! state Algorithm 1 lines 2–4 build.
//!
//! The hash map uses a from-scratch Fx-style hasher ([`fx`]) because cell
//! coordinates are short integer keys for which SipHash is needlessly
//! slow (Rust Performance Book, "Hashing").

mod cell;
pub mod fx;
mod grid_map;
mod offsets;

pub use cell::Cell;
pub use grid_map::{Grid, GridPatch};
pub use offsets::{case_of, CellCase, NeighborOffset, CENTER_IDX, NEIGHBOR_OFFSETS};
