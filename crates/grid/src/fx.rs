//! A from-scratch Fx-style hasher for short integer keys.
//!
//! Grid cell coordinates are `(i32, i32)` pairs; the default SipHash 1-3
//! is collision-hardened but slow for such keys. This is the classic
//! multiply-mix used by rustc's `FxHasher`: each 8-byte word is folded in
//! with a rotate-xor-multiply. Implemented locally (rather than pulling a
//! crate) per the workspace's from-scratch policy.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant (from FxHash / Firefox; a 64-bit odd constant
/// close to 2^64 / φ).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fx-style streaming hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_i32(&mut self, v: i32) {
        self.add_to_hash(v as u32 as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_one(&(3i32, 4i32)), hash_one(&(3i32, 4i32)));
    }

    #[test]
    fn distinguishes_keys() {
        assert_ne!(hash_one(&(3i32, 4i32)), hash_one(&(4i32, 3i32)));
        assert_ne!(hash_one(&(0i32, 0i32)), hash_one(&(0i32, 1i32)));
        assert_ne!(hash_one(&(-1i32, 0i32)), hash_one(&(1i32, 0i32)));
    }

    #[test]
    fn spreads_sequential_keys() {
        // Sequential cell coordinates should land in distinct 12-bit
        // buckets reasonably often (sanity check against degenerate mixing).
        let mut buckets = std::collections::HashSet::new();
        for i in 0..1000i32 {
            buckets.insert(hash_one(&(i, i + 1)) >> 52);
        }
        assert!(buckets.len() > 500, "poor spread: {}", buckets.len());
    }

    #[test]
    fn map_works_end_to_end() {
        let mut m: FxHashMap<(i32, i32), u32> = FxHashMap::default();
        for i in -50..50 {
            for j in -50..50 {
                m.insert((i, j), (i * 1000 + j) as u32);
            }
        }
        assert_eq!(m.len(), 10_000);
        assert_eq!(m[&(-3, 17)], (-3i32 * 1000 + 17) as u32);
    }

    #[test]
    fn odd_length_bytes() {
        let b = FxBuildHasher::default();
        let mut h1 = b.build_hasher();
        h1.write(&[1, 2, 3]);
        let mut h2 = b.build_hasher();
        h2.write(&[1, 2, 4]);
        assert_ne!(h1.finish(), h2.finish());
    }
}
