use srj_geom::{Point, PointId, Rect};

/// One non-empty grid cell.
///
/// Holds the member point ids twice, sorted by x (`S(c)` — the paper
/// pre-sorts `S` by x, so this order is "inherited") and sorted by y
/// (`S_y(c)`, the copy built in Algorithm 1 lines 3–4). Both orders are
/// needed for the exact 1-sided (case 2) counts and runs.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Discrete cell coordinate `(⌊x/side⌋, ⌊y/side⌋)`.
    pub coord: (i32, i32),
    /// Geometric extent of the cell (half-open in space, but stored as a
    /// closed rect for intersection tests; membership is decided by the
    /// coordinate formula, not this rect).
    pub rect: Rect,
    /// Member ids sorted by ascending x coordinate.
    pub by_x: Vec<PointId>,
    /// Member ids sorted by ascending y coordinate.
    pub by_y: Vec<PointId>,
}

impl Cell {
    /// Number of points in the cell (`|S(c)|`).
    #[inline]
    pub fn len(&self) -> usize {
        self.by_x.len()
    }

    /// `true` iff the cell holds no points (never stored, but kept for
    /// API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.by_x.is_empty()
    }

    /// First index in `by_x` whose point has `x >= x0`.
    #[inline]
    pub fn lower_bound_x(&self, points: &[Point], x0: f64) -> usize {
        self.by_x.partition_point(|&id| points[id as usize].x < x0)
    }

    /// First index in `by_x` whose point has `x > x0`.
    #[inline]
    pub fn upper_bound_x(&self, points: &[Point], x0: f64) -> usize {
        self.by_x.partition_point(|&id| points[id as usize].x <= x0)
    }

    /// First index in `by_y` whose point has `y >= y0`.
    #[inline]
    pub fn lower_bound_y(&self, points: &[Point], y0: f64) -> usize {
        self.by_y.partition_point(|&id| points[id as usize].y < y0)
    }

    /// First index in `by_y` whose point has `y > y0`.
    #[inline]
    pub fn upper_bound_y(&self, points: &[Point], y0: f64) -> usize {
        self.by_y.partition_point(|&id| points[id as usize].y <= y0)
    }

    /// Exact count of members with `x >= x0` (case 2, cell `c←`):
    /// `µ(r, c←) = |{s ∈ S(c←) : w(r).xmin ≤ s.x}|`.
    #[inline]
    pub fn count_x_at_least(&self, points: &[Point], x0: f64) -> usize {
        self.len() - self.lower_bound_x(points, x0)
    }

    /// Exact count of members with `x <= x0` (case 2, cell `c→`).
    #[inline]
    pub fn count_x_at_most(&self, points: &[Point], x0: f64) -> usize {
        self.upper_bound_x(points, x0)
    }

    /// Exact count of members with `y >= y0` (case 2, cell `c↓`).
    #[inline]
    pub fn count_y_at_least(&self, points: &[Point], y0: f64) -> usize {
        self.len() - self.lower_bound_y(points, y0)
    }

    /// Exact count of members with `y <= y0` (case 2, cell `c↑`).
    #[inline]
    pub fn count_y_at_most(&self, points: &[Point], y0: f64) -> usize {
        self.upper_bound_y(points, y0)
    }

    /// Ids of members with `x >= x0`, as a contiguous run of `by_x`.
    #[inline]
    pub fn run_x_at_least(&self, points: &[Point], x0: f64) -> &[PointId] {
        &self.by_x[self.lower_bound_x(points, x0)..]
    }

    /// Ids of members with `x <= x0`, as a contiguous run of `by_x`.
    #[inline]
    pub fn run_x_at_most(&self, points: &[Point], x0: f64) -> &[PointId] {
        &self.by_x[..self.upper_bound_x(points, x0)]
    }

    /// Ids of members with `y >= y0`, as a contiguous run of `by_y`.
    #[inline]
    pub fn run_y_at_least(&self, points: &[Point], y0: f64) -> &[PointId] {
        &self.by_y[self.lower_bound_y(points, y0)..]
    }

    /// Ids of members with `y <= y0`, as a contiguous run of `by_y`.
    #[inline]
    pub fn run_y_at_most(&self, points: &[Point], y0: f64) -> &[PointId] {
        &self.by_y[..self.upper_bound_y(points, y0)]
    }

    /// Exact count of members inside the closed rectangle `w`.
    ///
    /// Binary-searches the x range, then filters by y — `O(log |S(c)| + k)`
    /// where `k` is the x-run length. Used by the exact window counter
    /// (ground truth for `|J|` and for KDS-rejection acceptance tests).
    pub fn count_in_rect(&self, points: &[Point], w: &Rect) -> usize {
        let lo = self.lower_bound_x(points, w.min_x);
        let hi = self.upper_bound_x(points, w.max_x);
        self.by_x[lo..hi]
            .iter()
            .filter(|&&id| {
                let y = points[id as usize].y;
                w.min_y <= y && y <= w.max_y
            })
            .count()
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        (self.by_x.capacity() + self.by_y.capacity()) * std::mem::size_of::<PointId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_cell(points: &[Point]) -> Cell {
        let mut by_x: Vec<PointId> = (0..points.len() as u32).collect();
        by_x.sort_by(|&a, &b| points[a as usize].x.total_cmp(&points[b as usize].x));
        let mut by_y: Vec<PointId> = (0..points.len() as u32).collect();
        by_y.sort_by(|&a, &b| points[a as usize].y.total_cmp(&points[b as usize].y));
        Cell {
            coord: (0, 0),
            rect: Rect::new(0.0, 0.0, 10.0, 10.0),
            by_x,
            by_y,
        }
    }

    fn pts() -> Vec<Point> {
        vec![
            Point::new(1.0, 9.0),
            Point::new(2.0, 8.0),
            Point::new(3.0, 7.0),
            Point::new(4.0, 6.0),
            Point::new(5.0, 5.0),
            Point::new(5.0, 4.0), // duplicate x
            Point::new(7.0, 3.0),
            Point::new(8.0, 2.0),
        ]
    }

    #[test]
    fn one_sided_counts_are_exact() {
        let points = pts();
        let c = make_cell(&points);
        assert_eq!(c.count_x_at_least(&points, 5.0), 4); // 5,5,7,8
        assert_eq!(c.count_x_at_least(&points, 5.1), 2); // 7,8
        assert_eq!(c.count_x_at_most(&points, 5.0), 6);
        assert_eq!(c.count_x_at_most(&points, 0.5), 0);
        assert_eq!(c.count_y_at_least(&points, 6.0), 4); // 6,7,8,9
        assert_eq!(c.count_y_at_most(&points, 3.0), 2); // 2,3
    }

    #[test]
    fn runs_match_counts_and_predicates() {
        let points = pts();
        let c = make_cell(&points);
        let run = c.run_x_at_least(&points, 5.0);
        assert_eq!(run.len(), c.count_x_at_least(&points, 5.0));
        assert!(run.iter().all(|&id| points[id as usize].x >= 5.0));
        let run = c.run_y_at_most(&points, 7.0);
        assert_eq!(run.len(), c.count_y_at_most(&points, 7.0));
        assert!(run.iter().all(|&id| points[id as usize].y <= 7.0));
    }

    #[test]
    fn count_in_rect_matches_brute_force() {
        let points = pts();
        let c = make_cell(&points);
        let windows = [
            Rect::new(0.0, 0.0, 10.0, 10.0),
            Rect::new(2.0, 2.0, 5.0, 8.0),
            Rect::new(4.5, 0.0, 7.5, 4.5),
            Rect::new(9.0, 9.0, 10.0, 10.0),
        ];
        for w in &windows {
            let brute = points.iter().filter(|p| w.contains(**p)).count();
            assert_eq!(c.count_in_rect(&points, w), brute, "window {w:?}");
        }
    }

    #[test]
    fn boundary_inclusive() {
        let points = pts();
        let c = make_cell(&points);
        // closed predicate: x >= 1.0 includes the point at x == 1.0
        assert_eq!(c.count_x_at_least(&points, 1.0), 8);
        assert_eq!(c.count_x_at_most(&points, 8.0), 8);
    }

    #[test]
    fn empty_cell() {
        let points: Vec<Point> = vec![];
        let c = make_cell(&points);
        assert!(c.is_empty());
        assert_eq!(c.count_x_at_least(&points, 0.0), 0);
        assert_eq!(c.count_in_rect(&points, &Rect::new(0.0, 0.0, 1.0, 1.0)), 0);
    }
}
