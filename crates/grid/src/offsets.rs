//! The 3×3 neighbourhood layout of Fig. 1 and the case classification of
//! Section IV-A.

/// Offset `(dx, dy)` of a neighbour cell relative to the centre cell.
pub type NeighborOffset = (i32, i32);

/// Fixed enumeration order of the ≤ 9 cells overlapping a window, indexed
/// `(dy + 1) * 3 + (dx + 1)`:
///
/// ```text
///   index:   6 7 8        paper Fig. 1:   3 6 9
///            3 4 5                        2 5 8
///            0 1 2                        1 4 7
/// ```
///
/// Index 4 is the centre cell (case 1); indices 1, 3, 5, 7 are the edge
/// cells (case 2); indices 0, 2, 6, 8 are the corner cells (case 3).
pub const NEIGHBOR_OFFSETS: [NeighborOffset; 9] = [
    (-1, -1),
    (0, -1),
    (1, -1),
    (-1, 0),
    (0, 0),
    (1, 0),
    (-1, 1),
    (0, 1),
    (1, 1),
];

/// Index of the centre cell in [`NEIGHBOR_OFFSETS`].
pub const CENTER_IDX: usize = 4;

/// How the window covers a neighbour cell (Section IV-A).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CellCase {
    /// Case 1: the cell is fully covered (0-sided).
    Full,
    /// Case 2: fully covered along y, bounded on the left by
    /// `w(r).xmin` (cell `c←`).
    XMinSided,
    /// Case 2: fully covered along y, bounded on the right by
    /// `w(r).xmax` (cell `c→`).
    XMaxSided,
    /// Case 2: fully covered along x, bounded below by `w(r).ymin`
    /// (cell `c↓`).
    YMinSided,
    /// Case 2: fully covered along x, bounded above by `w(r).ymax`
    /// (cell `c↑`).
    YMaxSided,
    /// Case 3: bounded by `w(r).xmin` and `w(r).ymin` (cell `c↙`).
    Quadrant { x_is_min: bool, y_is_min: bool },
}

/// Classifies neighbour index `i` (into [`NEIGHBOR_OFFSETS`]) per
/// Section IV-A.
///
/// The quadrant flags follow the paper's arrows: `c↙` (index 0) is
/// bounded by `xmin`/`ymin`, `c↗` (index 8) by `xmax`/`ymax`, etc.
pub const fn case_of(i: usize) -> CellCase {
    match i {
        0 => CellCase::Quadrant {
            x_is_min: true,
            y_is_min: true,
        }, // c↙
        1 => CellCase::YMinSided, // c↓
        2 => CellCase::Quadrant {
            x_is_min: false,
            y_is_min: true,
        }, // c↘
        3 => CellCase::XMinSided, // c←
        4 => CellCase::Full,      // c
        5 => CellCase::XMaxSided, // c→
        6 => CellCase::Quadrant {
            x_is_min: true,
            y_is_min: false,
        }, // c↖
        7 => CellCase::YMaxSided, // c↑
        8 => CellCase::Quadrant {
            x_is_min: false,
            y_is_min: false,
        }, // c↗
        _ => panic!("neighbour index out of range"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_cover_3x3_once() {
        let mut seen = std::collections::HashSet::new();
        for &(dx, dy) in &NEIGHBOR_OFFSETS {
            assert!((-1..=1).contains(&dx) && (-1..=1).contains(&dy));
            assert!(seen.insert((dx, dy)));
        }
        assert_eq!(seen.len(), 9);
        assert_eq!(NEIGHBOR_OFFSETS[CENTER_IDX], (0, 0));
    }

    #[test]
    fn index_formula_matches_layout() {
        for (i, &(dx, dy)) in NEIGHBOR_OFFSETS.iter().enumerate() {
            assert_eq!(i, ((dy + 1) * 3 + (dx + 1)) as usize);
        }
    }

    #[test]
    fn case_classification() {
        assert_eq!(case_of(CENTER_IDX), CellCase::Full);
        // edges
        assert_eq!(case_of(3), CellCase::XMinSided);
        assert_eq!(case_of(5), CellCase::XMaxSided);
        assert_eq!(case_of(1), CellCase::YMinSided);
        assert_eq!(case_of(7), CellCase::YMaxSided);
        // corners carry the right boundary flags
        assert_eq!(
            case_of(0),
            CellCase::Quadrant {
                x_is_min: true,
                y_is_min: true
            }
        );
        assert_eq!(
            case_of(2),
            CellCase::Quadrant {
                x_is_min: false,
                y_is_min: true
            }
        );
        assert_eq!(
            case_of(6),
            CellCase::Quadrant {
                x_is_min: true,
                y_is_min: false
            }
        );
        assert_eq!(
            case_of(8),
            CellCase::Quadrant {
                x_is_min: false,
                y_is_min: false
            }
        );
    }

    #[test]
    fn corner_flags_match_offsets() {
        // a corner at (dx, dy) is bounded by xmin iff dx == -1, by ymin
        // iff dy == -1
        for (i, &(dx, dy)) in NEIGHBOR_OFFSETS.iter().enumerate() {
            if let CellCase::Quadrant { x_is_min, y_is_min } = case_of(i) {
                assert_eq!(x_is_min, dx == -1);
                assert_eq!(y_is_min, dy == -1);
            }
        }
    }
}
