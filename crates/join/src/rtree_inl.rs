use srj_geom::{Point, Rect};
use srj_rtree::RTree;

use crate::IdPair;

/// R-tree index nested-loop join: bulk-loads an STR R-tree over `S`,
/// then probes one window query per `r ∈ R`.
///
/// This is the classic INL instantiation the paper's related-work
/// section calls "a simple yet still state-of-the-art approach"
/// \[Jacox & Samet 2007; Gu et al. 2023\]. Compared with [`crate::grid_join`]
/// it pays tree traversal per probe but needs no tuning to the window
/// size.
pub fn rtree_join(r: &[Point], s: &[Point], half_extent: f64) -> Vec<IdPair> {
    assert!(half_extent > 0.0, "half_extent must be positive");
    let tree = RTree::build(s);
    let mut out = Vec::new();
    let mut hits = Vec::new();
    for (i, &rp) in r.iter().enumerate() {
        hits.clear();
        tree.range_report(&Rect::window(rp, half_extent), &mut hits);
        out.extend(hits.iter().map(|&sid| (i as u32, sid)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nested::nested_loop_join;
    use crate::sort_pairs;

    fn pseudo_points(n: usize, seed: u64, extent: f64) -> Vec<Point> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(next() * extent, next() * extent))
            .collect()
    }

    #[test]
    fn matches_nested_loop() {
        let r = pseudo_points(110, 41, 70.0);
        let s = pseudo_points(140, 42, 70.0);
        for l in [1.0, 6.0, 25.0, 150.0] {
            let mut a = rtree_join(&r, &s, l);
            let mut b = nested_loop_join(&r, &s, l);
            sort_pairs(&mut a);
            sort_pairs(&mut b);
            assert_eq!(a, b, "half_extent {l}");
        }
    }

    #[test]
    fn empty_sides() {
        assert!(rtree_join(&[], &pseudo_points(10, 1, 10.0), 1.0).is_empty());
        assert!(rtree_join(&pseudo_points(10, 1, 10.0), &[], 1.0).is_empty());
    }

    #[test]
    fn boundary_points_join() {
        let r = vec![Point::new(5.0, 5.0)];
        let s = vec![
            Point::new(3.0, 5.0),
            Point::new(7.0, 5.0),
            Point::new(5.0, 3.0),
        ];
        assert_eq!(rtree_join(&r, &s, 2.0).len(), 3);
    }
}
