use srj_geom::{Point, Rect};
use srj_grid::Grid;

/// Exact per-`r` range counts `|S(w(r))|` over a pre-built grid on `S`.
///
/// Used by the accuracy experiment (§V-B) and by tests; also exactly the
/// quantity the KDS baseline computes with its kd-tree in step 1.
pub fn per_r_counts(r: &[Point], s_grid: &Grid, half_extent: f64) -> Vec<u64> {
    r.iter()
        .map(|&rp| s_grid.exact_window_count(&Rect::window(rp, half_extent)) as u64)
        .collect()
}

/// Exact join cardinality `|J| = Σ_r |S(w(r))|` without materialising
/// the pairs.
///
/// `O(m log m)` grid build plus `O(n (log m + boundary scans))` probes —
/// far cheaper than `Ω(|J|)` when the join is large, which is what makes
/// the accuracy metric computable at the paper's scales.
pub fn join_count(r: &[Point], s: &[Point], half_extent: f64) -> u64 {
    assert!(half_extent > 0.0, "half_extent must be positive");
    let grid = Grid::build(s, half_extent);
    per_r_counts(r, &grid, half_extent).into_iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nested::nested_loop_join;

    fn pseudo_points(n: usize, seed: u64, extent: f64) -> Vec<Point> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(next() * extent, next() * extent))
            .collect()
    }

    #[test]
    fn count_matches_materialized_join() {
        let r = pseudo_points(100, 21, 80.0);
        let s = pseudo_points(140, 22, 80.0);
        for l in [2.0, 8.0, 30.0] {
            assert_eq!(
                join_count(&r, &s, l),
                nested_loop_join(&r, &s, l).len() as u64,
                "half_extent {l}"
            );
        }
    }

    #[test]
    fn per_r_counts_sum_to_join_count() {
        let r = pseudo_points(60, 31, 40.0);
        let s = pseudo_points(60, 32, 40.0);
        let grid = Grid::build(&s, 5.0);
        let counts = per_r_counts(&r, &grid, 5.0);
        assert_eq!(counts.len(), r.len());
        assert_eq!(counts.iter().sum::<u64>(), join_count(&r, &s, 5.0));
    }

    #[test]
    fn empty_join() {
        let r = vec![Point::new(0.0, 0.0)];
        let s = vec![Point::new(100.0, 100.0)];
        assert_eq!(join_count(&r, &s, 1.0), 0);
    }
}
