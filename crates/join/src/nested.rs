use srj_geom::{Point, Rect};

use crate::IdPair;

/// Brute-force nested-loop spatial range join: `O(nm)` time.
///
/// The obviously-correct oracle used to validate the other join
/// algorithms and the samplers on small inputs.
pub fn nested_loop_join(r: &[Point], s: &[Point], half_extent: f64) -> Vec<IdPair> {
    let mut out = Vec::new();
    for (i, &rp) in r.iter().enumerate() {
        let w = Rect::window(rp, half_extent);
        for (j, &sp) in s.iter().enumerate() {
            if w.contains(sp) {
                out.push((i as u32, j as u32));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_predicate() {
        // Definition 1: w(r) ∩ s  ⇔  r ∩ w(s) for a common range size.
        let r = vec![Point::new(0.0, 0.0), Point::new(10.0, 10.0)];
        let s = vec![Point::new(3.0, 4.0), Point::new(8.0, 8.0)];
        let forward = nested_loop_join(&r, &s, 5.0);
        let backward = nested_loop_join(&s, &r, 5.0);
        let mut flipped: Vec<_> = backward.into_iter().map(|(a, b)| (b, a)).collect();
        flipped.sort_unstable();
        let mut fwd = forward;
        fwd.sort_unstable();
        assert_eq!(fwd, flipped);
    }

    #[test]
    fn small_example() {
        let r = vec![Point::new(5.0, 5.0)];
        let s = vec![
            Point::new(4.0, 4.0), // inside
            Point::new(6.0, 6.0), // inside
            Point::new(5.0, 7.0), // on edge (closed) — inside
            Point::new(5.0, 7.1), // outside
        ];
        let j = nested_loop_join(&r, &s, 2.0);
        assert_eq!(j, vec![(0, 0), (0, 1), (0, 2)]);
    }

    #[test]
    fn empty_inputs() {
        assert!(nested_loop_join(&[], &[Point::new(0.0, 0.0)], 1.0).is_empty());
        assert!(nested_loop_join(&[Point::new(0.0, 0.0)], &[], 1.0).is_empty());
    }
}
