//! Exact spatial range join algorithms.
//!
//! The paper's problem statement rules these out as a *solution* — any
//! join algorithm pays `Ω(|J|)` \[Wang & Tao 2024\], and `|J|` can be
//! `Θ(nm)` — but they are needed three ways:
//!
//! 1. as the **"join then sample" strawman** the introduction dismisses
//!    (implemented in `srj-core::JoinThenSample`),
//! 2. as **ground truth** for correctness tests (every sampler may only
//!    emit pairs the join emits),
//! 3. to compute **`|J|`** for the paper's accuracy metric
//!    `Σ_r µ(r) / |J|` (§V-B) without materialising the pairs.
//!
//! Three algorithms are provided, mirroring the related-work section:
//! the index nested-loop join over a grid ([`grid_join`], the "simple yet
//! still state-of-the-art" approach \[77, 78\]), a plane-sweep join
//! ([`plane_sweep_join`], \[79\]), and the brute-force nested loop
//! ([`nested_loop_join`]) as the obviously-correct oracle for tests.

mod count;
mod grid_inl;
mod nested;
mod rtree_inl;
mod sweep;

pub use count::{join_count, per_r_counts};
pub use grid_inl::grid_join;
pub use nested::nested_loop_join;
pub use rtree_inl::rtree_join;
pub use sweep::plane_sweep_join;

/// A join result pair: ids into the `R` and `S` slices.
pub type IdPair = (srj_geom::PointId, srj_geom::PointId);

/// Canonical ordering for comparing join outputs in tests.
pub fn sort_pairs(pairs: &mut [IdPair]) {
    pairs.sort_unstable();
}
