use srj_geom::{Point, Rect};
use srj_grid::Grid;

use crate::IdPair;

/// Grid index nested-loop join: builds a grid over `S` with cell side
/// equal to the window half-extent, then reports, for every `r`, the
/// points of the ≤ 9 overlapping cells that pass the window predicate.
///
/// `O(m log m)` build + `O(n + |J| + boundary scans)` probe. This is the
/// "index nested-loop" state-of-the-art family \[Jacox & Samet 2007;
/// Šidlauskas & Jensen 2014\] specialised to the fixed-size-window join.
pub fn grid_join(r: &[Point], s: &[Point], half_extent: f64) -> Vec<IdPair> {
    assert!(half_extent > 0.0, "half_extent must be positive");
    let grid = Grid::build(s, half_extent);
    let mut out = Vec::new();
    for (i, &rp) in r.iter().enumerate() {
        let w = Rect::window(rp, half_extent);
        for cell in grid.neighborhood(rp).into_iter().flatten() {
            if w.contains_rect(&cell.rect) {
                // case-1 style: the whole cell qualifies
                for &sid in &cell.by_x {
                    out.push((i as u32, sid));
                }
            } else {
                // boundary cell: x-binary search then y filter
                let lo = cell.lower_bound_x(grid.points(), w.min_x);
                let hi = cell.upper_bound_x(grid.points(), w.max_x);
                for &sid in &cell.by_x[lo..hi] {
                    let y = grid.point(sid).y;
                    if w.min_y <= y && y <= w.max_y {
                        out.push((i as u32, sid));
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nested::nested_loop_join;
    use crate::sort_pairs;

    fn pseudo_points(n: usize, seed: u64, extent: f64) -> Vec<Point> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(next() * extent, next() * extent))
            .collect()
    }

    #[test]
    fn matches_nested_loop() {
        let r = pseudo_points(120, 1, 100.0);
        let s = pseudo_points(150, 2, 100.0);
        for l in [1.0, 5.0, 20.0, 60.0, 200.0] {
            let mut a = grid_join(&r, &s, l);
            let mut b = nested_loop_join(&r, &s, l);
            sort_pairs(&mut a);
            sort_pairs(&mut b);
            assert_eq!(a, b, "half_extent {l}");
        }
    }

    #[test]
    fn points_on_cell_boundaries() {
        // integer lattice points sit exactly on cell boundaries for l = 1
        let r: Vec<Point> = (0..5)
            .flat_map(|i| (0..5).map(move |j| Point::new(i as f64, j as f64)))
            .collect();
        let s = r.clone();
        let mut a = grid_join(&r, &s, 1.0);
        let mut b = nested_loop_join(&r, &s, 1.0);
        sort_pairs(&mut a);
        sort_pairs(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_sides() {
        assert!(grid_join(&[], &pseudo_points(10, 3, 10.0), 1.0).is_empty());
        assert!(grid_join(&pseudo_points(10, 3, 10.0), &[], 1.0).is_empty());
    }
}
