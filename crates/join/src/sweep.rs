use srj_geom::Point;

use crate::IdPair;

/// Plane-sweep spatial range join \[Patel & DeWitt 1996 family\]:
/// sorts both sets by x and sweeps a vertical strip of width `2l`,
/// checking the y predicate inside the strip.
///
/// `O((n + m) log(n + m) + strip scans)`; on point data with small
/// windows the strip scans are near-output-sensitive. Used as the second
/// "state-of-the-art join" comparator (paper §VI cites the plane-sweep
/// family as one of the two leading in-memory approaches).
pub fn plane_sweep_join(r: &[Point], s: &[Point], half_extent: f64) -> Vec<IdPair> {
    let mut r_ids: Vec<u32> = (0..r.len() as u32).collect();
    r_ids.sort_unstable_by(|&a, &b| r[a as usize].x.total_cmp(&r[b as usize].x));
    let mut s_ids: Vec<u32> = (0..s.len() as u32).collect();
    s_ids.sort_unstable_by(|&a, &b| s[a as usize].x.total_cmp(&s[b as usize].x));

    let mut out = Vec::new();
    let mut strip_start = 0usize; // first s whose x ≥ r.x − l
    for &ri in &r_ids {
        let rp = r[ri as usize];
        let x_lo = rp.x - half_extent;
        let x_hi = rp.x + half_extent;
        while strip_start < s_ids.len() && s[s_ids[strip_start] as usize].x < x_lo {
            strip_start += 1;
        }
        let y_lo = rp.y - half_extent;
        let y_hi = rp.y + half_extent;
        for &si in &s_ids[strip_start..] {
            let sp = s[si as usize];
            if sp.x > x_hi {
                break;
            }
            if y_lo <= sp.y && sp.y <= y_hi {
                out.push((ri, si));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nested::nested_loop_join;
    use crate::sort_pairs;

    fn pseudo_points(n: usize, seed: u64, extent: f64) -> Vec<Point> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(next() * extent, next() * extent))
            .collect()
    }

    #[test]
    fn matches_nested_loop() {
        let r = pseudo_points(130, 7, 50.0);
        let s = pseudo_points(90, 8, 50.0);
        for l in [0.5, 3.0, 10.0, 100.0] {
            let mut a = plane_sweep_join(&r, &s, l);
            let mut b = nested_loop_join(&r, &s, l);
            sort_pairs(&mut a);
            sort_pairs(&mut b);
            assert_eq!(a, b, "half_extent {l}");
        }
    }

    #[test]
    fn duplicate_x_coordinates() {
        let r: Vec<Point> = (0..20).map(|i| Point::new(5.0, i as f64)).collect();
        let s: Vec<Point> = (0..20).map(|i| Point::new(5.0, (i as f64) + 0.5)).collect();
        let mut a = plane_sweep_join(&r, &s, 2.0);
        let mut b = nested_loop_join(&r, &s, 2.0);
        sort_pairs(&mut a);
        sort_pairs(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn strip_boundaries_are_closed() {
        let r = vec![Point::new(10.0, 10.0)];
        let s = vec![
            Point::new(8.0, 10.0),  // exactly on x_lo
            Point::new(12.0, 10.0), // exactly on x_hi
            Point::new(10.0, 12.0), // exactly on y_hi
        ];
        let j = plane_sweep_join(&r, &s, 2.0);
        assert_eq!(j.len(), 3);
    }
}
