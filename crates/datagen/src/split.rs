use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use srj_geom::Point;

/// Randomly assigns each point to `R` (with probability `r_fraction`) or
/// `S`, mirroring the paper's setup: "For each dataset, we randomly
/// assigned each point to R or S. By default, |R| ≈ |S|" (§V-A), and the
/// Fig. 8 sweep over `n / (n + m)`.
///
/// Deterministic for a given seed.
pub fn split_rs(points: &[Point], r_fraction: f64, seed: u64) -> (Vec<Point>, Vec<Point>) {
    assert!(
        (0.0..=1.0).contains(&r_fraction),
        "r_fraction must be within [0, 1], got {r_fraction}"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let expected_r = (points.len() as f64 * r_fraction) as usize;
    let mut r = Vec::with_capacity(expected_r + 1);
    let mut s = Vec::with_capacity(points.len().saturating_sub(expected_r) + 1);
    for &p in points {
        if rng.gen::<f64>() < r_fraction {
            r.push(p);
        } else {
            s.push(p);
        }
    }
    (r, s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new(i as f64, (i * 3) as f64))
            .collect()
    }

    #[test]
    fn partition_is_exact() {
        let points = pts(10_000);
        let (r, s) = split_rs(&points, 0.5, 9);
        assert_eq!(r.len() + s.len(), points.len());
        // every point lands on exactly one side, in order
        let mut merged: Vec<(u64, u64)> = Vec::new();
        for p in r.iter().chain(s.iter()) {
            merged.push((p.x.to_bits(), p.y.to_bits()));
        }
        merged.sort_unstable();
        let mut orig: Vec<(u64, u64)> = points
            .iter()
            .map(|p| (p.x.to_bits(), p.y.to_bits()))
            .collect();
        orig.sort_unstable();
        assert_eq!(merged, orig);
    }

    #[test]
    fn fraction_is_respected() {
        let points = pts(50_000);
        for frac in [0.1, 0.3, 0.5] {
            let (r, _) = split_rs(&points, frac, 4);
            let got = r.len() as f64 / points.len() as f64;
            assert!((got - frac).abs() < 0.02, "frac {frac}: got {got}");
        }
    }

    #[test]
    fn deterministic() {
        let points = pts(1000);
        assert_eq!(split_rs(&points, 0.4, 8), split_rs(&points, 0.4, 8));
    }

    #[test]
    fn extreme_fractions() {
        let points = pts(100);
        let (r, s) = split_rs(&points, 0.0, 1);
        assert!(r.is_empty());
        assert_eq!(s.len(), 100);
        let (r, s) = split_rs(&points, 1.0, 1);
        assert_eq!(r.len(), 100);
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "r_fraction must be within")]
    fn bad_fraction_panics() {
        split_rs(&[], 1.5, 0);
    }
}
