use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use srj_geom::{normalize_to_domain, Point, DEFAULT_DOMAIN};

/// Which synthetic dataset family to generate (stand-ins for the paper's
/// four real datasets; see the crate docs and DESIGN.md §4).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum DatasetKind {
    /// Uniform noise over the domain (not in the paper; useful baseline
    /// for tests and ablations).
    Uniform,
    /// CaStreet stand-in: points along a random planar polyline network.
    RoadLike,
    /// Foursquare stand-in: Gaussian mixture with log-normal cluster
    /// sizes (city-like POI clusters).
    PoiClusters,
    /// IMIS stand-in: correlated random-walk trajectories (ship tracks).
    TrajectoryLike,
    /// NYC stand-in: power-law hotspot mixture plus uniform background
    /// (taxi pick-up/drop-off concentration).
    TaxiHotspots,
}

impl DatasetKind {
    /// All kinds that stand in for a paper dataset, in the paper's
    /// presentation order (CaStreet, Foursquare, IMIS, NYC).
    pub const PAPER_ORDER: [DatasetKind; 4] = [
        DatasetKind::RoadLike,
        DatasetKind::PoiClusters,
        DatasetKind::TrajectoryLike,
        DatasetKind::TaxiHotspots,
    ];

    /// The paper dataset this kind substitutes for (`None` for
    /// [`DatasetKind::Uniform`]).
    pub fn paper_name(&self) -> Option<&'static str> {
        match self {
            DatasetKind::Uniform => None,
            DatasetKind::RoadLike => Some("CaStreet"),
            DatasetKind::PoiClusters => Some("Foursquare"),
            DatasetKind::TrajectoryLike => Some("IMIS"),
            DatasetKind::TaxiHotspots => Some("NYC"),
        }
    }

    /// Short label used by the experiment harness.
    pub fn label(&self) -> &'static str {
        match self {
            DatasetKind::Uniform => "Uniform",
            DatasetKind::RoadLike => "RoadLike(CaStreet)",
            DatasetKind::PoiClusters => "PoiClusters(Foursquare)",
            DatasetKind::TrajectoryLike => "TrajectoryLike(IMIS)",
            DatasetKind::TaxiHotspots => "TaxiHotspots(NYC)",
        }
    }
}

/// A fully-specified synthetic dataset: kind, cardinality, seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DatasetSpec {
    /// Dataset family.
    pub kind: DatasetKind,
    /// Number of points to generate.
    pub n: usize,
    /// RNG seed; equal specs generate identical datasets.
    pub seed: u64,
}

impl DatasetSpec {
    /// Creates a spec.
    pub fn new(kind: DatasetKind, n: usize, seed: u64) -> Self {
        DatasetSpec { kind, n, seed }
    }
}

/// Generates the dataset described by `spec`, normalised to the paper's
/// `[0, 10000]²` domain.
pub fn generate(spec: &DatasetSpec) -> Vec<Point> {
    let mut rng = SmallRng::seed_from_u64(spec.seed ^ (spec.kind as u64) << 32);
    let mut pts = match spec.kind {
        DatasetKind::Uniform => uniform(spec.n, &mut rng),
        DatasetKind::RoadLike => road_like(spec.n, &mut rng),
        DatasetKind::PoiClusters => poi_clusters(spec.n, &mut rng),
        DatasetKind::TrajectoryLike => trajectory_like(spec.n, &mut rng),
        DatasetKind::TaxiHotspots => taxi_hotspots(spec.n, &mut rng),
    };
    normalize_to_domain(&mut pts, DEFAULT_DOMAIN);
    pts
}

/// Standard normal via Box–Muller (keeps us off `rand_distr`).
fn gaussian(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn uniform(n: usize, rng: &mut SmallRng) -> Vec<Point> {
    (0..n)
        .map(|_| {
            Point::new(
                rng.gen::<f64>() * DEFAULT_DOMAIN,
                rng.gen::<f64>() * DEFAULT_DOMAIN,
            )
        })
        .collect()
}

/// Points sampled along a network of random polylines ("roads"): each
/// polyline starts uniformly, walks with a slowly-drifting heading, and
/// sheds points with small lateral jitter. Produces the 1-D-filament
/// structure of road data: most grid cells empty, populated cells thin
/// and elongated.
fn road_like(n: usize, rng: &mut SmallRng) -> Vec<Point> {
    let mut pts = Vec::with_capacity(n);
    // ~1000 points per road, ≥ 8 roads
    let roads = (n / 1000).max(8);
    let per_road = n.div_ceil(roads);
    while pts.len() < n {
        let mut x = rng.gen::<f64>() * DEFAULT_DOMAIN;
        let mut y = rng.gen::<f64>() * DEFAULT_DOMAIN;
        let mut heading = rng.gen::<f64>() * std::f64::consts::TAU;
        let step = 4.0;
        for _ in 0..per_road {
            if pts.len() >= n {
                break;
            }
            heading += gaussian(rng) * 0.08; // gentle curvature
            x += heading.cos() * step;
            y += heading.sin() * step;
            // reflect at the domain boundary so roads stay inside
            if !(0.0..=DEFAULT_DOMAIN).contains(&x) {
                heading = std::f64::consts::PI - heading;
                x = x.clamp(0.0, DEFAULT_DOMAIN);
            }
            if !(0.0..=DEFAULT_DOMAIN).contains(&y) {
                heading = -heading;
                y = y.clamp(0.0, DEFAULT_DOMAIN);
            }
            pts.push(Point::new(x + gaussian(rng) * 1.5, y + gaussian(rng) * 1.5));
        }
    }
    pts
}

/// Gaussian mixture with log-normal cluster weights: POI check-ins pile
/// up around a heavy-tailed set of urban cores.
fn poi_clusters(n: usize, rng: &mut SmallRng) -> Vec<Point> {
    let k = ((n as f64).sqrt() as usize / 4).clamp(16, 400);
    let centers: Vec<(f64, f64, f64, f64)> = (0..k)
        .map(|_| {
            let cx = rng.gen::<f64>() * DEFAULT_DOMAIN;
            let cy = rng.gen::<f64>() * DEFAULT_DOMAIN;
            let sigma = 20.0 * (1.0 + gaussian(rng).abs() * 3.0);
            let weight = (gaussian(rng) * 1.2).exp(); // log-normal
            (cx, cy, sigma, weight)
        })
        .collect();
    let total_w: f64 = centers.iter().map(|c| c.3).sum();
    // cumulative weights for cluster choice
    let mut cum = Vec::with_capacity(k);
    let mut acc = 0.0;
    for c in &centers {
        acc += c.3 / total_w;
        cum.push(acc);
    }
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen();
            let idx = cum.partition_point(|&c| c < u).min(k - 1);
            let (cx, cy, sigma, _) = centers[idx];
            Point::new(cx + gaussian(rng) * sigma, cy + gaussian(rng) * sigma)
        })
        .collect()
}

/// Correlated random-walk trajectories: many "vessels" each contributing
/// a long dense streak, leaving most of the domain empty — the defining
/// property of AIS data.
fn trajectory_like(n: usize, rng: &mut SmallRng) -> Vec<Point> {
    let walkers = (n / 5000).clamp(4, 200);
    let per_walker = n.div_ceil(walkers);
    let mut pts = Vec::with_capacity(n);
    while pts.len() < n {
        let mut x = rng.gen::<f64>() * DEFAULT_DOMAIN;
        let mut y = rng.gen::<f64>() * DEFAULT_DOMAIN;
        let mut vx = gaussian(rng) * 1.5;
        let mut vy = gaussian(rng) * 1.5;
        for _ in 0..per_walker {
            if pts.len() >= n {
                break;
            }
            vx = 0.98 * vx + gaussian(rng) * 0.2;
            vy = 0.98 * vy + gaussian(rng) * 0.2;
            x += vx;
            y += vy;
            if !(0.0..=DEFAULT_DOMAIN).contains(&x) {
                vx = -vx;
                x = x.clamp(0.0, DEFAULT_DOMAIN);
            }
            if !(0.0..=DEFAULT_DOMAIN).contains(&y) {
                vy = -vy;
                y = y.clamp(0.0, DEFAULT_DOMAIN);
            }
            pts.push(Point::new(x, y));
        }
    }
    pts
}

/// Power-law hotspots plus uniform background: a handful of "taxi stand"
/// hotspots receive most of the mass (hotspot `i` has weight
/// `∝ 1/(i+1)^1.2`), the rest of the city a thin uniform drizzle.
fn taxi_hotspots(n: usize, rng: &mut SmallRng) -> Vec<Point> {
    let hotspots = 64usize;
    let centers: Vec<(f64, f64, f64)> = (0..hotspots)
        .map(|_| {
            (
                rng.gen::<f64>() * DEFAULT_DOMAIN,
                rng.gen::<f64>() * DEFAULT_DOMAIN,
                5.0 + rng.gen::<f64>() * 60.0,
            )
        })
        .collect();
    let weights: Vec<f64> = (0..hotspots)
        .map(|i| 1.0 / ((i + 1) as f64).powf(1.2))
        .collect();
    let total_w: f64 = weights.iter().sum();
    let mut cum = Vec::with_capacity(hotspots);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total_w;
        cum.push(acc);
    }
    (0..n)
        .map(|_| {
            if rng.gen::<f64>() < 0.1 {
                // background traffic
                Point::new(
                    rng.gen::<f64>() * DEFAULT_DOMAIN,
                    rng.gen::<f64>() * DEFAULT_DOMAIN,
                )
            } else {
                let u: f64 = rng.gen();
                let idx = cum.partition_point(|&c| c < u).min(hotspots - 1);
                let (cx, cy, sigma) = centers[idx];
                Point::new(cx + gaussian(rng) * sigma, cy + gaussian(rng) * sigma)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use srj_geom::bounding_rect;

    fn all_kinds() -> [DatasetKind; 5] {
        [
            DatasetKind::Uniform,
            DatasetKind::RoadLike,
            DatasetKind::PoiClusters,
            DatasetKind::TrajectoryLike,
            DatasetKind::TaxiHotspots,
        ]
    }

    #[test]
    fn right_cardinality_and_domain() {
        for kind in all_kinds() {
            let pts = generate(&DatasetSpec::new(kind, 5000, 7));
            assert_eq!(pts.len(), 5000, "{kind:?}");
            let bb = bounding_rect(&pts).unwrap();
            assert!(bb.min_x >= 0.0 && bb.min_y >= 0.0, "{kind:?}");
            assert!(
                bb.max_x <= DEFAULT_DOMAIN + 1e-6 && bb.max_y <= DEFAULT_DOMAIN + 1e-6,
                "{kind:?}"
            );
            // normalization stretches to the full domain
            assert!(bb.max_x - bb.min_x > DEFAULT_DOMAIN * 0.99, "{kind:?}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        for kind in all_kinds() {
            let a = generate(&DatasetSpec::new(kind, 1000, 42));
            let b = generate(&DatasetSpec::new(kind, 1000, 42));
            assert_eq!(a, b, "{kind:?}");
            let c = generate(&DatasetSpec::new(kind, 1000, 43));
            assert_ne!(a, c, "{kind:?} should differ across seeds");
        }
    }

    /// Cell-occupancy skew: the skewed families must concentrate points
    /// in far fewer cells than the uniform baseline does.
    #[test]
    fn skewed_kinds_have_fewer_occupied_cells_than_uniform() {
        let n = 20_000;
        let occupied = |kind: DatasetKind| {
            let pts = generate(&DatasetSpec::new(kind, n, 5));
            let mut cells = std::collections::HashSet::new();
            for p in pts {
                cells.insert(((p.x / 100.0) as i64, (p.y / 100.0) as i64));
            }
            cells.len()
        };
        let uni = occupied(DatasetKind::Uniform);
        for kind in [
            DatasetKind::RoadLike,
            DatasetKind::PoiClusters,
            DatasetKind::TrajectoryLike,
            DatasetKind::TaxiHotspots,
        ] {
            let occ = occupied(kind);
            assert!(
                occ < uni,
                "{kind:?}: occupied {occ} should be below uniform {uni}"
            );
        }
    }

    #[test]
    fn hotspots_are_heavier_than_clusters() {
        // NYC-like data concentrates harder than POI data: compare the
        // max single-cell population.
        let n = 30_000;
        let max_cell = |kind: DatasetKind| {
            let pts = generate(&DatasetSpec::new(kind, n, 11));
            let mut cells: std::collections::HashMap<(i64, i64), usize> =
                std::collections::HashMap::new();
            for p in pts {
                *cells
                    .entry(((p.x / 100.0) as i64, (p.y / 100.0) as i64))
                    .or_default() += 1;
            }
            *cells.values().max().unwrap()
        };
        assert!(max_cell(DatasetKind::TaxiHotspots) > max_cell(DatasetKind::Uniform) * 5);
    }

    #[test]
    fn paper_order_and_names() {
        let names: Vec<_> = DatasetKind::PAPER_ORDER
            .iter()
            .map(|k| k.paper_name().unwrap())
            .collect();
        assert_eq!(names, ["CaStreet", "Foursquare", "IMIS", "NYC"]);
        assert!(DatasetKind::Uniform.paper_name().is_none());
    }

    #[test]
    fn tiny_datasets() {
        for kind in all_kinds() {
            assert_eq!(generate(&DatasetSpec::new(kind, 0, 1)).len(), 0);
            assert_eq!(generate(&DatasetSpec::new(kind, 1, 1)).len(), 1);
            assert_eq!(generate(&DatasetSpec::new(kind, 17, 1)).len(), 17);
        }
    }
}
