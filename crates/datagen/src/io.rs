//! Plain-text point I/O, so the harness can run on the paper's real
//! datasets when the user obtains them (CaStreet and IMIS from
//! chorochronos.org, Foursquare from the LBSN2Vec release, NYC from the
//! city's open-data portal — see README).
//!
//! Format: one point per line, `x<sep>y`, where `<sep>` is a comma,
//! semicolon, tab, or spaces. Lines starting with `#` and blank lines
//! are skipped. Extra columns are ignored (the NYC export carries many).

use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

use srj_geom::Point;

/// Errors from point-file parsing.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line that could not be parsed (1-based line number, content).
    Parse(usize, String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse(line, text) => {
                write!(f, "line {line}: cannot parse point from {text:?}")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Parses points from a reader (see the module docs for the format).
pub fn read_points<R: BufRead>(reader: R) -> Result<Vec<Point>, IoError> {
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed
            .split(|c: char| c == ',' || c == ';' || c.is_whitespace())
            .filter(|f| !f.is_empty());
        let (Some(xs), Some(ys)) = (fields.next(), fields.next()) else {
            return Err(IoError::Parse(i + 1, line.clone()));
        };
        let (Ok(x), Ok(y)) = (xs.parse::<f64>(), ys.parse::<f64>()) else {
            return Err(IoError::Parse(i + 1, line.clone()));
        };
        if !x.is_finite() || !y.is_finite() {
            return Err(IoError::Parse(i + 1, line.clone()));
        }
        out.push(Point::new(x, y));
    }
    Ok(out)
}

/// Reads points from a file path.
pub fn read_points_file<P: AsRef<Path>>(path: P) -> Result<Vec<Point>, IoError> {
    let file = std::fs::File::open(path)?;
    read_points(std::io::BufReader::new(file))
}

/// Writes points as `x,y` lines (full `f64` round-trip precision).
pub fn write_points<W: Write>(writer: W, points: &[Point]) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    for p in points {
        // `{:?}`-style shortest round-trip formatting for f64
        writeln!(w, "{},{}", p.x, p.y)?;
    }
    w.flush()
}

/// Writes points to a file path.
pub fn write_points_file<P: AsRef<Path>>(path: P, points: &[Point]) -> std::io::Result<()> {
    write_points(std::fs::File::create(path)?, points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_common_separators() {
        let input = "1.5,2.5\n3 4\n5;6\n7\t8\n";
        let pts = read_points(input.as_bytes()).unwrap();
        assert_eq!(
            pts,
            vec![
                Point::new(1.5, 2.5),
                Point::new(3.0, 4.0),
                Point::new(5.0, 6.0),
                Point::new(7.0, 8.0),
            ]
        );
    }

    #[test]
    fn skips_comments_blanks_and_extra_columns() {
        let input = "# header\n\n1,2,extra,columns\n  \n3,4\n";
        let pts = read_points(input.as_bytes()).unwrap();
        assert_eq!(pts, vec![Point::new(1.0, 2.0), Point::new(3.0, 4.0)]);
    }

    #[test]
    fn reports_bad_lines_with_position() {
        let input = "1,2\nnot-a-point\n";
        match read_points(input.as_bytes()) {
            Err(IoError::Parse(2, text)) => assert_eq!(text, "not-a-point"),
            other => panic!("expected parse error, got {other:?}"),
        }
        // NaN is data corruption, not a point
        assert!(read_points("NaN,1\n".as_bytes()).is_err());
    }

    #[test]
    fn roundtrip_preserves_values() {
        let pts = vec![
            Point::new(0.1 + 0.2, -1.0e-300),
            Point::new(9999.999999999999, 42.0),
        ];
        let mut buf = Vec::new();
        write_points(&mut buf, &pts).unwrap();
        let back = read_points(buf.as_slice()).unwrap();
        assert_eq!(pts, back);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("srj-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pts.csv");
        let pts = vec![Point::new(1.0, 2.0), Point::new(3.5, -4.5)];
        write_points_file(&path, &pts).unwrap();
        assert_eq!(read_points_file(&path).unwrap(), pts);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        match read_points_file("/definitely/not/a/file.csv") {
            Err(IoError::Io(_)) => {}
            other => panic!("expected io error, got {other:?}"),
        }
    }
}
