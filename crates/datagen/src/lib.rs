//! Synthetic spatial dataset generators.
//!
//! The paper evaluates on four real datasets (CaStreet, Foursquare, IMIS,
//! NYC) that cannot be redistributed here. Each generator below is a
//! documented stand-in that preserves the spatial character the
//! algorithms are sensitive to — grid-cell occupancy skew, cluster
//! structure, and local density — on the same normalised
//! `[0, 10000]²` domain (§V-A). See DESIGN.md §4 for the substitution
//! rationale per dataset.
//!
//! | Paper dataset | Stand-in | Character preserved |
//! |---|---|---|
//! | CaStreet (road MBRs) | [`DatasetKind::RoadLike`] | 1-D filaments in 2-D: sparse cells along polylines |
//! | Foursquare (POIs) | [`DatasetKind::PoiClusters`] | Gaussian urban clusters, heavy-tailed cell occupancy |
//! | IMIS (ship AIS) | [`DatasetKind::TrajectoryLike`] | dense correlated-walk streaks, huge empty regions |
//! | NYC (taxi GPS) | [`DatasetKind::TaxiHotspots`] | few ultra-dense hotspots over a weak background |
//!
//! All generators are deterministic given a seed. [`split_rs`] performs
//! the paper's random assignment of each point to `R` or `S`.

pub mod io;
mod kinds;
mod split;

pub use io::{read_points, read_points_file, write_points, write_points_file, IoError};
pub use kinds::{generate, DatasetKind, DatasetSpec};
pub use split::split_rs;
