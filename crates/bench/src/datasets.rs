//! Scaled stand-ins for the paper's evaluation datasets.

use srj_datagen::{generate, split_rs, DatasetKind, DatasetSpec};
use srj_geom::Point;

/// Default number of samples `t` at scale 1.0 (the paper's default is
/// 10⁶ at 2.2M–324M points; the harness default keeps the same order of
/// magnitude relative to the scaled dataset sizes).
pub const DEFAULT_T: usize = 1_000_000;

/// Base cardinalities at scale 1.0, preserving the paper's ordering
/// CaStreet < Foursquare < IMIS < NYC (2.2M / 11.2M / 168M / 324M in the
/// paper; here 250k / 400k / 700k / 1M).
pub fn base_size(kind: DatasetKind) -> usize {
    match kind {
        DatasetKind::Uniform => 300_000,
        DatasetKind::RoadLike => 250_000,
        DatasetKind::PoiClusters => 400_000,
        DatasetKind::TrajectoryLike => 700_000,
        DatasetKind::TaxiHotspots => 1_000_000,
    }
}

/// A generated-and-split dataset ready for the samplers.
pub struct ScaledDataset {
    /// Which paper dataset this stands in for.
    pub kind: DatasetKind,
    /// The outer set `R`.
    pub r: Vec<Point>,
    /// The inner set `S`.
    pub s: Vec<Point>,
}

impl ScaledDataset {
    /// Total cardinality `n + m`.
    pub fn total(&self) -> usize {
        self.r.len() + self.s.len()
    }
}

/// Generates `kind` at `scale × base_size(kind)` points and splits with
/// `r_fraction` (paper default 0.5).
pub fn scaled_spec(kind: DatasetKind, scale: f64, r_fraction: f64, seed: u64) -> ScaledDataset {
    assert!(scale > 0.0, "scale must be positive");
    let n = ((base_size(kind) as f64 * scale) as usize).max(16);
    let points = generate(&DatasetSpec::new(kind, n, seed));
    let (r, s) = split_rs(&points, r_fraction, seed ^ 0xDEAD_BEEF);
    ScaledDataset { kind, r, s }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_preserve_paper_ordering() {
        let order = DatasetKind::PAPER_ORDER;
        for w in order.windows(2) {
            assert!(base_size(w[0]) < base_size(w[1]));
        }
    }

    #[test]
    fn scaling_and_split() {
        let d = scaled_spec(DatasetKind::RoadLike, 0.01, 0.5, 1);
        assert_eq!(d.total(), 2_500);
        let ratio = d.r.len() as f64 / d.total() as f64;
        assert!((ratio - 0.5).abs() < 0.1);
        let d = scaled_spec(DatasetKind::RoadLike, 0.01, 0.2, 1);
        let ratio = d.r.len() as f64 / d.total() as f64;
        assert!((ratio - 0.2).abs() < 0.1);
    }
}
