//! One function per table/figure of the paper's evaluation (Section V).
//!
//! Every function returns the formatted rows it printed, so the
//! experiments binary can tee them into EXPERIMENTS.md and tests can
//! assert on structure.

use std::fmt::Write as _;

use srj_core::JoinSampler;
use srj_datagen::DatasetKind;

use crate::datasets::{scaled_spec, ScaledDataset, DEFAULT_T};
use crate::runner::{
    build_bbst, build_bbst_with, build_kds, build_kds_with, build_rejection, build_rejection_with,
    build_variant, run_sampler, RunOutcome,
};

/// Experiment-wide knobs (defaults mirror the paper's §V-A).
#[derive(Clone, Copy, Debug)]
pub struct ExpConfig {
    /// Dataset scale multiplier (1.0 = the harness base sizes).
    pub scale: f64,
    /// Number of samples `t` (paper default 10⁶).
    pub t: usize,
    /// Window half-extent `l` (paper default 100).
    pub l: f64,
    /// Master seed.
    pub seed: u64,
    /// Index-build threads (`SampleConfig::build_threads`; `0` = all
    /// cores, `1` = the paper's serial build).
    pub threads: usize,
    /// `R`-shard count for the sharded-engine measurements.
    pub shards: usize,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            scale: 1.0,
            t: DEFAULT_T,
            l: 100.0,
            seed: 42,
            threads: 1,
            shards: 1,
        }
    }
}

impl ExpConfig {
    /// The sampler config these knobs describe.
    pub fn sample_config(&self) -> srj_core::SampleConfig {
        srj_core::SampleConfig::new(self.l).with_build_threads(self.threads)
    }
}

fn secs(d: std::time::Duration) -> f64 {
    d.as_secs_f64()
}

/// The three-algorithm run on one dataset that Tables II–IV and the
/// accuracy metric all read from.
pub struct DatasetRun {
    /// Which dataset.
    pub kind: DatasetKind,
    /// Outcomes in order KDS, KDS-rejection, BBST.
    pub outcomes: Vec<RunOutcome>,
    /// `Σ_r µ(r)` of the BBST run.
    pub mu_total: f64,
    /// Exact `|J|`.
    pub join_size: u64,
}

/// Runs KDS, KDS-rejection and BBST with the default setting on every
/// paper dataset.
pub fn default_runs(cfg: &ExpConfig) -> Vec<DatasetRun> {
    let sc = cfg.sample_config();
    DatasetKind::PAPER_ORDER
        .iter()
        .map(|&kind| {
            let d = scaled_spec(kind, cfg.scale, 0.5, cfg.seed);
            let mut outcomes = Vec::with_capacity(3);
            let mut kds = build_kds_with(&d.r, &d.s, &sc);
            let join_size = kds.join_size();
            outcomes.push(run_sampler(&mut kds, cfg.t, cfg.seed));
            drop(kds);
            let mut rej = build_rejection_with(&d.r, &d.s, &sc);
            outcomes.push(run_sampler(&mut rej, cfg.t, cfg.seed));
            drop(rej);
            let mut bbst = build_bbst_with(&d.r, &d.s, &sc);
            let mu_total = bbst.mu_total();
            outcomes.push(run_sampler(&mut bbst, cfg.t, cfg.seed));
            DatasetRun {
                kind,
                outcomes,
                mu_total,
                join_size,
            }
        })
        .collect()
}

/// Table II — pre-processing time per algorithm and dataset.
///
/// Paper: KDS builds a kd-tree, BBST only sorts; BBST is ~2× faster.
pub fn table2(runs: &[DatasetRun]) -> String {
    let mut out = String::new();
    writeln!(out, "## Table II: pre-processing time [sec]").unwrap();
    write!(out, "{:<14}", "Algorithm").unwrap();
    for run in runs {
        write!(out, "{:>26}", run.kind.label()).unwrap();
    }
    writeln!(out).unwrap();
    for (row, name) in [(0usize, "KDS"), (2usize, "BBST")] {
        write!(out, "{name:<14}").unwrap();
        for run in runs {
            write!(
                out,
                "{:>26.4}",
                secs(run.outcomes[row].report.preprocessing)
            )
            .unwrap();
        }
        writeln!(out).unwrap();
    }
    out
}

/// Table III — total and decomposed times (GM = grid mapping /
/// structure building, UB = upper bounding / range counting).
pub fn table3(runs: &[DatasetRun]) -> String {
    let mut out = String::new();
    writeln!(out, "## Table III: total and decomposed times [sec]").unwrap();
    for run in runs {
        writeln!(
            out,
            "dataset: {}  (|J| = {})",
            run.kind.label(),
            run.join_size
        )
        .unwrap();
        writeln!(
            out,
            "  {:<16}{:>10}{:>10}{:>10}",
            "Algorithm", "Total", "GM", "UB"
        )
        .unwrap();
        for o in &run.outcomes {
            writeln!(
                out,
                "  {:<16}{:>10.3}{:>10.3}{:>10.3}",
                o.name,
                o.total_secs(),
                secs(o.report.grid_mapping),
                secs(o.report.upper_bounding),
            )
            .unwrap();
        }
    }
    out
}

/// Table IV — sampling time and number of sampling iterations.
pub fn table4(runs: &[DatasetRun], t: usize) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "## Table IV: sampling time [sec] and #iterations (t = {t})"
    )
    .unwrap();
    for run in runs {
        writeln!(out, "dataset: {}", run.kind.label()).unwrap();
        writeln!(
            out,
            "  {:<16}{:>12}{:>14}",
            "Algorithm", "Sampling", "#iterations"
        )
        .unwrap();
        for o in &run.outcomes {
            writeln!(
                out,
                "  {:<16}{:>12.3}{:>14}",
                o.name,
                secs(o.report.sampling),
                o.report.iterations,
            )
            .unwrap();
        }
    }
    out
}

/// §V-B accuracy of approximate range counting: `Σµ / |J|`.
///
/// Paper reports 1.19 / 1.04 / 1.07 / 1.17 on CaStreet / Foursquare /
/// IMIS / NYC.
pub fn accuracy(runs: &[DatasetRun]) -> String {
    let mut out = String::new();
    writeln!(out, "## Accuracy of approximate range counting (Σµ / |J|)").unwrap();
    for run in runs {
        writeln!(
            out,
            "  {:<26}{:.4}",
            run.kind.label(),
            run.mu_total / run.join_size as f64
        )
        .unwrap();
    }
    out
}

/// Fig. 4 — memory usage vs dataset size (fractions 0.2 … 1.0).
pub fn fig4(cfg: &ExpConfig) -> String {
    let mut out = String::new();
    writeln!(out, "## Fig. 4: memory usage [MiB] vs dataset fraction").unwrap();
    for &kind in &DatasetKind::PAPER_ORDER {
        writeln!(out, "dataset: {}", kind.label()).unwrap();
        writeln!(
            out,
            "  {:<10}{:>12}{:>16}{:>12}",
            "fraction", "KDS", "KDS-rejection", "BBST"
        )
        .unwrap();
        for frac in [0.2, 0.4, 0.6, 0.8, 1.0] {
            let d = scaled_spec(kind, cfg.scale * frac, 0.5, cfg.seed);
            let mib = |b: usize| b as f64 / (1 << 20) as f64;
            let kds = build_kds(&d.r, &d.s, cfg.l);
            let rej = build_rejection(&d.r, &d.s, cfg.l);
            let bbst = build_bbst(&d.r, &d.s, cfg.l);
            writeln!(
                out,
                "  {:<10}{:>12.2}{:>16.2}{:>12.2}",
                frac,
                mib(kds.memory_bytes()),
                mib(rej.memory_bytes()),
                mib(bbst.memory_bytes()),
            )
            .unwrap();
        }
    }
    out
}

/// Fig. 5 — running time vs range (window half-extent) `l ∈ [1, 500]`.
pub fn fig5(cfg: &ExpConfig) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "## Fig. 5: running time [sec] vs range l (t = {})",
        cfg.t
    )
    .unwrap();
    for &kind in &DatasetKind::PAPER_ORDER {
        let d = scaled_spec(kind, cfg.scale, 0.5, cfg.seed);
        writeln!(out, "dataset: {}", kind.label()).unwrap();
        writeln!(
            out,
            "  {:<8}{:>12}{:>16}{:>12}",
            "l", "KDS", "KDS-rejection", "BBST"
        )
        .unwrap();
        for l in [1.0, 10.0, 50.0, 100.0, 250.0, 500.0] {
            let times = run_trio(&d, l, cfg.t, cfg.seed);
            writeln!(
                out,
                "  {:<8}{:>12.3}{:>16.3}{:>12.3}",
                l, times[0], times[1], times[2]
            )
            .unwrap();
        }
    }
    out
}

/// Runs the three algorithms on one dataset and returns total seconds.
/// Skips a run (reported as NaN) only if the join is empty.
fn run_trio(d: &ScaledDataset, l: f64, t: usize, seed: u64) -> [f64; 3] {
    let mut kds = build_kds(&d.r, &d.s, l);
    let a = run_sampler(&mut kds, t, seed).total_secs();
    drop(kds);
    let mut rej = build_rejection(&d.r, &d.s, l);
    let b = run_sampler(&mut rej, t, seed).total_secs();
    drop(rej);
    let mut bbst = build_bbst(&d.r, &d.s, l);
    let c = run_sampler(&mut bbst, t, seed).total_secs();
    [a, b, c]
}

/// Fig. 6 — running time vs number of samples `t`.
///
/// The paper sweeps `t` to 10⁹ and aborts the baselines after two weeks;
/// the harness sweeps `t/100 … t×10` and, mirroring that abort, skips
/// the baselines above `t` (printed as `-`). BBST's flat build cost and
/// tiny per-sample cost reproduce the paper's "gradually increasing"
/// curve against the baselines' linear growth.
pub fn fig6(cfg: &ExpConfig) -> String {
    let mut out = String::new();
    writeln!(out, "## Fig. 6: running time [sec] vs #samples t").unwrap();
    let sweep = [cfg.t / 100, cfg.t / 10, cfg.t, cfg.t * 10];
    for &kind in &DatasetKind::PAPER_ORDER {
        let d = scaled_spec(kind, cfg.scale, 0.5, cfg.seed);
        writeln!(out, "dataset: {}", kind.label()).unwrap();
        writeln!(
            out,
            "  {:<10}{:>12}{:>16}{:>12}",
            "t", "KDS", "KDS-rejection", "BBST"
        )
        .unwrap();
        for &t in &sweep {
            let t = t.max(1);
            let (a, b) = if t <= cfg.t {
                let mut kds = build_kds(&d.r, &d.s, cfg.l);
                let a = run_sampler(&mut kds, t, cfg.seed).total_secs();
                drop(kds);
                let mut rej = build_rejection(&d.r, &d.s, cfg.l);
                let b = run_sampler(&mut rej, t, cfg.seed).total_secs();
                (format!("{a:>12.3}"), format!("{b:>16.3}"))
            } else {
                (format!("{:>12}", "-"), format!("{:>16}", "-"))
            };
            let mut bbst = build_bbst(&d.r, &d.s, cfg.l);
            let c = run_sampler(&mut bbst, t, cfg.seed).total_secs();
            writeln!(out, "  {t:<10}{a}{b}{c:>12.3}").unwrap();
        }
    }
    out
}

/// Fig. 7 — running time vs dataset size (fractions 0.2 … 1.0).
pub fn fig7(cfg: &ExpConfig) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "## Fig. 7: running time [sec] vs dataset fraction (t = {})",
        cfg.t
    )
    .unwrap();
    for &kind in &DatasetKind::PAPER_ORDER {
        writeln!(out, "dataset: {}", kind.label()).unwrap();
        writeln!(
            out,
            "  {:<10}{:>12}{:>16}{:>12}",
            "fraction", "KDS", "KDS-rejection", "BBST"
        )
        .unwrap();
        for frac in [0.2, 0.4, 0.6, 0.8, 1.0] {
            let d = scaled_spec(kind, cfg.scale * frac, 0.5, cfg.seed);
            let times = run_trio(&d, cfg.l, cfg.t, cfg.seed);
            writeln!(
                out,
                "  {:<10}{:>12.3}{:>16.3}{:>12.3}",
                frac, times[0], times[1], times[2]
            )
            .unwrap();
        }
    }
    out
}

/// Fig. 8 — BBST running time vs `n / (n + m)` (0.1 … 0.5).
pub fn fig8(cfg: &ExpConfig) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "## Fig. 8: BBST running time [sec] vs n/(n+m) (t = {})",
        cfg.t
    )
    .unwrap();
    write!(out, "{:<10}", "ratio").unwrap();
    for &kind in &DatasetKind::PAPER_ORDER {
        write!(out, "{:>26}", kind.label()).unwrap();
    }
    writeln!(out).unwrap();
    for ratio in [0.1, 0.2, 0.3, 0.4, 0.5] {
        write!(out, "{ratio:<10}").unwrap();
        for &kind in &DatasetKind::PAPER_ORDER {
            let d = scaled_spec(kind, cfg.scale, ratio, cfg.seed);
            let mut bbst = build_bbst(&d.r, &d.s, cfg.l);
            let t = run_sampler(&mut bbst, cfg.t, cfg.seed).total_secs();
            write!(out, "{t:>26.3}").unwrap();
        }
        writeln!(out).unwrap();
    }
    out
}

/// Fig. 9 — BBST vs the per-cell kd-tree variant.
pub fn fig9(cfg: &ExpConfig) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "## Fig. 9: BBST vs kd-tree-per-cell variant [sec] (t = {})",
        cfg.t
    )
    .unwrap();
    writeln!(
        out,
        "{:<26}{:>10}{:>10}{:>10}",
        "dataset", "BBST", "Variant", "speedup"
    )
    .unwrap();
    for &kind in &DatasetKind::PAPER_ORDER {
        let d = scaled_spec(kind, cfg.scale, 0.5, cfg.seed);
        let mut bbst = build_bbst(&d.r, &d.s, cfg.l);
        let a = run_sampler(&mut bbst, cfg.t, cfg.seed).total_secs();
        drop(bbst);
        let mut var = build_variant(&d.r, &d.s, cfg.l);
        let b = run_sampler(&mut var, cfg.t, cfg.seed).total_secs();
        writeln!(out, "{:<26}{a:>10.3}{b:>10.3}{:>9.2}x", kind.label(), b / a).unwrap();
    }
    out
}

/// Extension ablation — fractional cascading on/off: build (UB-heavy)
/// and total times plus memory, on every dataset.
pub fn ablation_cascading(cfg: &ExpConfig) -> String {
    use srj_core::{BbstSampler, SampleConfig};
    let mut out = String::new();
    writeln!(out, "## Ablation: fractional cascading (t = {})", cfg.t).unwrap();
    writeln!(
        out,
        "{:<26}{:>12}{:>12}{:>14}{:>14}",
        "dataset", "plain [s]", "casc [s]", "plain MiB", "casc MiB"
    )
    .unwrap();
    for &kind in &DatasetKind::PAPER_ORDER {
        let d = scaled_spec(kind, cfg.scale, 0.5, cfg.seed);
        let mut row = [0f64; 4];
        for (i, casc) in [false, true].into_iter().enumerate() {
            let mut sc = SampleConfig::new(cfg.l);
            if casc {
                sc = sc.with_cascading();
            }
            let mut sampler = BbstSampler::build(&d.r, &d.s, &sc);
            let outcome = run_sampler(&mut sampler, cfg.t, cfg.seed);
            row[i] = outcome.total_secs();
            row[2 + i] = outcome.memory_bytes as f64 / (1 << 20) as f64;
        }
        writeln!(
            out,
            "{:<26}{:>12.3}{:>12.3}{:>14.2}{:>14.2}",
            kind.label(),
            row[0],
            row[1],
            row[2],
            row[3]
        )
        .unwrap();
    }
    out
}

/// Extension ablation — virtual (paper) vs exact (tighter) bucket mass:
/// accuracy ratio and total time on every dataset.
pub fn ablation_mass(cfg: &ExpConfig) -> String {
    use srj_core::{BbstSampler, MassMode, SampleConfig};
    let mut out = String::new();
    writeln!(out, "## Ablation: case-3 mass mode (t = {})", cfg.t).unwrap();
    writeln!(
        out,
        "{:<26}{:>14}{:>14}{:>12}{:>12}",
        "dataset", "Σµ/|J| virt", "Σµ/|J| exact", "virt [s]", "exact [s]"
    )
    .unwrap();
    for &kind in &DatasetKind::PAPER_ORDER {
        let d = scaled_spec(kind, cfg.scale, 0.5, cfg.seed);
        let join = srj_join::join_count(&d.r, &d.s, cfg.l) as f64;
        let mut row = [0f64; 4];
        for (i, mode) in [MassMode::Virtual, MassMode::Exact].into_iter().enumerate() {
            let sc = SampleConfig::new(cfg.l).with_mass_mode(mode);
            let mut sampler = BbstSampler::build(&d.r, &d.s, &sc);
            row[i] = sampler.mu_total() / join;
            row[2 + i] = run_sampler(&mut sampler, cfg.t, cfg.seed).total_secs();
        }
        writeln!(
            out,
            "{:<26}{:>14.4}{:>14.4}{:>12.3}{:>12.3}",
            kind.label(),
            row[0],
            row[1],
            row[2],
            row[3]
        )
        .unwrap();
    }
    out
}

/// Footnote-4 reproduction — the range-tree comparator: faster queries
/// than the kd-tree but `Θ(m log m)` memory. The paper reports it "ran
/// out of memory before completing the index building" at 168M–324M
/// points; at laptop scale we measure the same trend: memory per point
/// grows with `log m` while every other structure stays flat.
pub fn footnote4(cfg: &ExpConfig) -> String {
    use srj_core::{RangeTreeSampler, SampleConfig};
    let mut out = String::new();
    writeln!(out, "## Footnote 4: range-tree comparator (t = {})", cfg.t).unwrap();
    writeln!(
        out,
        "{:<10}{:>14}{:>14}{:>14}{:>12}{:>12}",
        "fraction", "RT mem MiB", "KDS mem MiB", "BBST mem MiB", "RT [s]", "BBST [s]"
    )
    .unwrap();
    let kind = DatasetKind::TaxiHotspots;
    for frac in [0.25, 0.5, 1.0] {
        let d = scaled_spec(kind, cfg.scale * frac, 0.5, cfg.seed);
        let mib = |b: usize| b as f64 / (1 << 20) as f64;
        let mut rt = RangeTreeSampler::build(&d.r, &d.s, &SampleConfig::new(cfg.l));
        let rt_mem = mib(rt.memory_bytes());
        let rt_time = run_sampler(&mut rt, cfg.t, cfg.seed).total_secs();
        drop(rt);
        let kds = build_kds(&d.r, &d.s, cfg.l);
        let kds_mem = mib(kds.memory_bytes());
        drop(kds);
        let mut bbst = build_bbst(&d.r, &d.s, cfg.l);
        let bbst_mem = mib(bbst.memory_bytes());
        let bbst_time = run_sampler(&mut bbst, cfg.t, cfg.seed).total_secs();
        writeln!(
            out,
            "{frac:<10}{rt_mem:>14.2}{kds_mem:>14.2}{bbst_mem:>14.2}{rt_time:>12.3}{bbst_time:>12.3}"
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            scale: 0.004,
            t: 500,
            l: 100.0,
            seed: 7,
            threads: 1,
            shards: 1,
        }
    }

    #[test]
    fn threaded_default_runs_match_serial_join_sizes() {
        // --threads must never change results, only wall-clock.
        let serial = tiny();
        let threaded = ExpConfig {
            threads: 4,
            ..tiny()
        };
        let a = default_runs(&serial);
        let b = default_runs(&threaded);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.join_size, y.join_size, "{:?}", x.kind);
            assert_eq!(x.mu_total, y.mu_total, "{:?}", x.kind);
        }
    }

    #[test]
    fn tables_have_expected_structure() {
        let cfg = tiny();
        let runs = default_runs(&cfg);
        assert_eq!(runs.len(), 4);
        let t2 = table2(&runs);
        assert!(t2.contains("KDS") && t2.contains("BBST"));
        let t3 = table3(&runs);
        assert!(t3.contains("KDS-rejection") && t3.contains("GM"));
        let t4 = table4(&runs, cfg.t);
        assert!(t4.contains("#iterations"));
        let acc = accuracy(&runs);
        assert!(acc.contains("CaStreet"));
        // accuracy ratios are ≥ 1 by Lemma 5
        for run in &runs {
            assert!(run.mu_total >= run.join_size as f64, "{:?}", run.kind);
        }
    }

    #[test]
    fn figures_render() {
        let cfg = tiny();
        for s in [fig4(&cfg), fig8(&cfg), fig9(&cfg)] {
            assert!(s.contains("NYC"), "{s}");
        }
    }
}
