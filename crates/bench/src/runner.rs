//! Build-and-run helpers shared by the experiments binary and the
//! Criterion benches.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use srj_core::{
    BbstKdVariantSampler, BbstSampler, JoinSampler, KdsRejectionSampler, KdsSampler, PhaseReport,
    SampleConfig,
};
use srj_geom::Point;

/// Builds the KDS baseline (single-threaded build; use
/// [`build_kds_with`] to pass a full config).
pub fn build_kds(r: &[Point], s: &[Point], l: f64) -> KdsSampler {
    build_kds_with(r, s, &SampleConfig::new(l))
}

/// Builds the KDS baseline with an explicit config (e.g. a
/// `build_threads` override).
pub fn build_kds_with(r: &[Point], s: &[Point], cfg: &SampleConfig) -> KdsSampler {
    KdsSampler::build(r, s, cfg)
}

/// Builds the KDS-rejection baseline (single-threaded build; use
/// [`build_rejection_with`] to pass a full config).
pub fn build_rejection(r: &[Point], s: &[Point], l: f64) -> KdsRejectionSampler {
    build_rejection_with(r, s, &SampleConfig::new(l))
}

/// Builds the KDS-rejection baseline with an explicit config.
pub fn build_rejection_with(r: &[Point], s: &[Point], cfg: &SampleConfig) -> KdsRejectionSampler {
    KdsRejectionSampler::build(r, s, cfg)
}

/// Builds the proposed BBST sampler (single-threaded build; use
/// [`build_bbst_with`] to pass a full config).
pub fn build_bbst(r: &[Point], s: &[Point], l: f64) -> BbstSampler {
    build_bbst_with(r, s, &SampleConfig::new(l))
}

/// Builds the proposed BBST sampler with an explicit config.
pub fn build_bbst_with(r: &[Point], s: &[Point], cfg: &SampleConfig) -> BbstSampler {
    BbstSampler::build(r, s, cfg)
}

/// Builds the Fig. 9 per-cell kd-tree variant.
pub fn build_variant(r: &[Point], s: &[Point], l: f64) -> BbstKdVariantSampler {
    BbstKdVariantSampler::build(r, s, &SampleConfig::new(l))
}

/// Everything one experiment row needs about one algorithm run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Algorithm name as reported in the paper's tables.
    pub name: &'static str,
    /// Phase decomposition after `t` samples.
    pub report: PhaseReport,
    /// Retained-structure footprint.
    pub memory_bytes: usize,
}

impl RunOutcome {
    /// `seconds` helper for table formatting.
    pub fn total_secs(&self) -> f64 {
        self.report.total().as_secs_f64()
    }
}

/// Draws `t` samples with a deterministic RNG and returns the combined
/// outcome. Panics on sampling errors (experiment datasets always have
/// non-empty joins).
pub fn run_sampler(sampler: &mut dyn JoinSampler, t: usize, seed: u64) -> RunOutcome {
    let mut rng = SmallRng::seed_from_u64(seed);
    sampler
        .sample(t, &mut rng)
        .unwrap_or_else(|e| panic!("{} failed: {e}", sampler.name()));
    RunOutcome {
        name: sampler.name(),
        report: sampler.report(),
        memory_bytes: sampler.memory_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::scaled_spec;
    use srj_datagen::DatasetKind;

    #[test]
    fn run_all_algorithms_smoke() {
        let d = scaled_spec(DatasetKind::Uniform, 0.02, 0.5, 3);
        let l = 100.0;
        let t = 2_000;
        let mut outcomes = Vec::new();
        let mut kds = build_kds(&d.r, &d.s, l);
        outcomes.push(run_sampler(&mut kds, t, 1));
        let mut rej = build_rejection(&d.r, &d.s, l);
        outcomes.push(run_sampler(&mut rej, t, 1));
        let mut bbst = build_bbst(&d.r, &d.s, l);
        outcomes.push(run_sampler(&mut bbst, t, 1));
        let mut var = build_variant(&d.r, &d.s, l);
        outcomes.push(run_sampler(&mut var, t, 1));
        for o in outcomes {
            assert_eq!(o.report.samples, t as u64, "{}", o.name);
            assert!(o.memory_bytes > 0);
            assert!(o.total_secs() > 0.0);
        }
    }
}
