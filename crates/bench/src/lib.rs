//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (Section V) at laptop scale.
//!
//! The binary `experiments` prints the same rows/series the paper
//! reports; the Criterion benches in `benches/` track the same
//! quantities as regressions. See EXPERIMENTS.md for the recorded
//! paper-vs-measured comparison.
//!
//! Scaling: the paper's datasets range up to 324 M points and its default
//! `t` is 10⁶. The harness keeps the paper's *relative* dataset sizes and
//! parameters but divides absolute sizes by a configurable scale so the
//! full suite completes in minutes. All algorithms are `O(n + m)` space
//! and near-linear time, so the comparison shape survives scaling (the
//! baselines' `√m` terms shrink *in their favour* — measured gaps are
//! conservative).

pub mod datasets;
pub mod experiments;
pub mod runner;
pub mod scaling;

pub use datasets::{scaled_spec, ScaledDataset, DEFAULT_T};
pub use runner::{
    build_bbst, build_bbst_with, build_kds, build_kds_with, build_rejection, build_rejection_with,
    build_variant, run_sampler, RunOutcome,
};
pub use scaling::{bench_pr2, build_sweep, host_cores, percentile_sorted, serving_throughput};
