//! CLI regenerating every table and figure of the paper, plus the PR-2
//! multi-core scaling suite.
//!
//! ```sh
//! cargo run -p srj-bench --release --bin experiments -- all --scale 0.5
//! cargo run -p srj-bench --release --bin experiments -- table3 --threads 4
//! cargo run -p srj-bench --release --bin experiments -- fig5 --t 100000
//! cargo run -p srj-bench --release --bin experiments -- bench-pr2 --scale 0.2 --shards 4
//! ```
//!
//! `bench-pr2` writes the machine-readable `BENCH_PR2.json` summary
//! (build ms per phase at 1/2/4 build threads, samples/sec per
//! algorithm, sharded-engine throughput at 1/2/4/8 serving threads) to
//! the current directory and echoes it on stdout.

use srj_bench::experiments::{
    ablation_cascading, ablation_mass, accuracy, default_runs, fig4, fig5, fig6, fig7, fig8, fig9,
    footnote4, table2, table3, table4, ExpConfig,
};
use srj_bench::scaling::bench_pr2;

const USAGE: &str =
    "usage: experiments <exp> [--scale F] [--t N] [--l F] [--seed N] [--threads N] [--shards N]
  exp: table2 | table3 | table4 | accuracy | fig4 | fig5 | fig6 | fig7 | fig8 | fig9 | ablation | footnote4 | bench-pr2 | all
  --threads N  index-build threads (0 = all cores; default 1, the paper's serial build)
  --shards N   R-shard count for the sharded-engine measurements (default 1)";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(exp) = args.first() else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    let mut cfg = ExpConfig::default();
    let mut i = 1;
    // Each flag takes one value; a missing or unparsable value is a
    // clean usage error, not a panic.
    let flag_value = |i: &mut usize, flag: &str| -> String {
        let Some(v) = args.get(*i + 1) else {
            eprintln!("{flag} requires a value\n{USAGE}");
            std::process::exit(2);
        };
        *i += 2;
        v.clone()
    };
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                cfg.scale = flag_value(&mut i, "--scale").parse().unwrap_or_else(|_| {
                    eprintln!("--scale takes a float\n{USAGE}");
                    std::process::exit(2);
                });
            }
            "--t" => {
                cfg.t = flag_value(&mut i, "--t").parse().unwrap_or_else(|_| {
                    eprintln!("--t takes an integer\n{USAGE}");
                    std::process::exit(2);
                });
            }
            "--l" => {
                cfg.l = flag_value(&mut i, "--l").parse().unwrap_or_else(|_| {
                    eprintln!("--l takes a float\n{USAGE}");
                    std::process::exit(2);
                });
            }
            "--seed" => {
                cfg.seed = flag_value(&mut i, "--seed").parse().unwrap_or_else(|_| {
                    eprintln!("--seed takes an integer\n{USAGE}");
                    std::process::exit(2);
                });
            }
            "--threads" => {
                cfg.threads = flag_value(&mut i, "--threads").parse().unwrap_or_else(|_| {
                    eprintln!("--threads takes an integer\n{USAGE}");
                    std::process::exit(2);
                });
            }
            "--shards" => {
                cfg.shards = flag_value(&mut i, "--shards").parse().unwrap_or_else(|_| {
                    eprintln!("--shards takes an integer\n{USAGE}");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown flag {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    eprintln!(
        "# config: scale = {}, t = {}, l = {}, seed = {}, threads = {}, shards = {}",
        cfg.scale, cfg.t, cfg.l, cfg.seed, cfg.threads, cfg.shards
    );

    let run_default_tables = || {
        let runs = default_runs(&cfg);
        format!(
            "{}\n{}\n{}\n{}",
            table2(&runs),
            table3(&runs),
            table4(&runs, cfg.t),
            accuracy(&runs)
        )
    };

    let out = match exp.as_str() {
        "table2" | "table3" | "table4" | "accuracy" => {
            let runs = default_runs(&cfg);
            match exp.as_str() {
                "table2" => table2(&runs),
                "table3" => table3(&runs),
                "table4" => table4(&runs, cfg.t),
                _ => accuracy(&runs),
            }
        }
        "fig4" => fig4(&cfg),
        "fig5" => fig5(&cfg),
        "fig6" => fig6(&cfg),
        "fig7" => fig7(&cfg),
        "fig8" => fig8(&cfg),
        "fig9" => fig9(&cfg),
        "ablation" => {
            let mut s = ablation_mass(&cfg);
            s.push('\n');
            s.push_str(&ablation_cascading(&cfg));
            s
        }
        "footnote4" => footnote4(&cfg),
        "bench-pr2" => {
            let json = bench_pr2(&cfg);
            if let Err(e) = std::fs::write("BENCH_PR2.json", &json) {
                eprintln!("warning: could not write BENCH_PR2.json: {e}");
            } else {
                eprintln!("# wrote BENCH_PR2.json");
            }
            json
        }
        "all" => {
            let mut s = run_default_tables();
            for part in [
                fig4(&cfg),
                fig5(&cfg),
                fig6(&cfg),
                fig7(&cfg),
                fig8(&cfg),
                fig9(&cfg),
                ablation_mass(&cfg),
                ablation_cascading(&cfg),
                footnote4(&cfg),
            ] {
                s.push('\n');
                s.push_str(&part);
            }
            s
        }
        other => {
            eprintln!("unknown experiment {other}\n{USAGE}");
            std::process::exit(2);
        }
    };
    println!("{out}");
}
