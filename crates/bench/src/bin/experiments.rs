//! CLI regenerating every table and figure of the paper.
//!
//! ```sh
//! cargo run -p srj-bench --release --bin experiments -- all --scale 0.5
//! cargo run -p srj-bench --release --bin experiments -- table3
//! cargo run -p srj-bench --release --bin experiments -- fig5 --t 100000
//! ```

use srj_bench::experiments::{
    ablation_cascading, ablation_mass, accuracy, default_runs, fig4, fig5, fig6, fig7, fig8, fig9, footnote4,
    table2, table3, table4, ExpConfig,
};

const USAGE: &str = "usage: experiments <exp> [--scale F] [--t N] [--l F] [--seed N]
  exp: table2 | table3 | table4 | accuracy | fig4 | fig5 | fig6 | fig7 | fig8 | fig9 | ablation | footnote4 | all";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(exp) = args.first() else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    let mut cfg = ExpConfig::default();
    let mut i = 1;
    while i + 1 < args.len() + 1 {
        match args.get(i).map(String::as_str) {
            Some("--scale") => {
                cfg.scale = args[i + 1].parse().expect("--scale takes a float");
                i += 2;
            }
            Some("--t") => {
                cfg.t = args[i + 1].parse().expect("--t takes an integer");
                i += 2;
            }
            Some("--l") => {
                cfg.l = args[i + 1].parse().expect("--l takes a float");
                i += 2;
            }
            Some("--seed") => {
                cfg.seed = args[i + 1].parse().expect("--seed takes an integer");
                i += 2;
            }
            Some(other) => {
                eprintln!("unknown flag {other}\n{USAGE}");
                std::process::exit(2);
            }
            None => break,
        }
    }
    eprintln!(
        "# config: scale = {}, t = {}, l = {}, seed = {}",
        cfg.scale, cfg.t, cfg.l, cfg.seed
    );

    let run_default_tables = || {
        let runs = default_runs(&cfg);
        format!(
            "{}\n{}\n{}\n{}",
            table2(&runs),
            table3(&runs),
            table4(&runs, cfg.t),
            accuracy(&runs)
        )
    };

    let out = match exp.as_str() {
        "table2" | "table3" | "table4" | "accuracy" => {
            let runs = default_runs(&cfg);
            match exp.as_str() {
                "table2" => table2(&runs),
                "table3" => table3(&runs),
                "table4" => table4(&runs, cfg.t),
                _ => accuracy(&runs),
            }
        }
        "fig4" => fig4(&cfg),
        "fig5" => fig5(&cfg),
        "fig6" => fig6(&cfg),
        "fig7" => fig7(&cfg),
        "fig8" => fig8(&cfg),
        "fig9" => fig9(&cfg),
        "ablation" => {
            let mut s = ablation_mass(&cfg);
            s.push('\n');
            s.push_str(&ablation_cascading(&cfg));
            s
        }
        "footnote4" => footnote4(&cfg),
        "all" => {
            let mut s = run_default_tables();
            for part in [
                fig4(&cfg),
                fig5(&cfg),
                fig6(&cfg),
                fig7(&cfg),
                fig8(&cfg),
                fig9(&cfg),
                ablation_mass(&cfg),
                ablation_cascading(&cfg),
                footnote4(&cfg),
            ] {
                s.push('\n');
                s.push_str(&part);
            }
            s
        }
        other => {
            eprintln!("unknown experiment {other}\n{USAGE}");
            std::process::exit(2);
        }
    };
    println!("{out}");
}
