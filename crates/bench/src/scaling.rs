//! Multi-core scaling measurements (PR 2): build wall-time vs
//! `build_threads`, and serving throughput vs thread count through the
//! `srj-engine` path — plus the machine-readable `BENCH_PR2.json`
//! summary that tracks the perf trajectory from this PR onward.
//!
//! The JSON is hand-rolled (the build environment is offline, so no
//! serde); the format is append-friendly: one top-level object with
//! `build` (per-algorithm, per-thread-count phase times) and `serving`
//! (per-algorithm samples/sec, plus the sharded engine swept over
//! serving thread counts).

use std::fmt::Write as _;
use std::time::Instant;

use srj_core::{PhaseReport, SampleConfig};
use srj_datagen::DatasetKind;
use srj_engine::{Algorithm, Engine};

use crate::datasets::scaled_spec;
use crate::experiments::ExpConfig;

/// Build-thread counts the build sweep measures.
pub const BUILD_THREAD_SWEEP: [usize; 3] = [1, 2, 4];

/// Serving-thread counts the engine throughput sweep measures.
pub const SERVE_THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Available cores on this host — recorded in every machine-readable
/// bench summary (`BENCH_PR2.json`, `BENCH_PR3.json`) so throughput
/// and speedup claims measured on single-core CI boxes stay honest.
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Nearest-rank percentile over an ascending-sorted sample (`q` in
/// `[0, 1]`); `0` for an empty sample. Shared by the loadgen's
/// client-observed latency reporting.
pub fn percentile_sorted(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// One algorithm's build measured at one `build_threads` setting.
pub struct BuildPoint {
    /// `build_threads` used.
    pub threads: usize,
    /// Phase decomposition (UB wall vs CPU carry the scaling signal).
    pub report: PhaseReport,
}

/// Measures one algorithm's build across [`BUILD_THREAD_SWEEP`].
pub fn build_sweep(
    algorithm: Algorithm,
    r: &[srj_geom::Point],
    s: &[srj_geom::Point],
    l: f64,
) -> Vec<BuildPoint> {
    BUILD_THREAD_SWEEP
        .iter()
        .map(|&threads| {
            let cfg = SampleConfig::new(l).with_build_threads(threads);
            let engine = Engine::build(r, s, &cfg, algorithm);
            BuildPoint {
                threads,
                report: engine.build_report(),
            }
        })
        .collect()
}

/// Serving throughput: `total_samples` drawn with replacement, split
/// evenly over `threads` scoped threads each holding its own
/// [`srj_engine::SamplerHandle`]; returns samples/sec of the whole run.
pub fn serving_throughput(engine: &Engine, threads: usize, total_samples: usize) -> f64 {
    let per_thread = (total_samples / threads.max(1)).max(1);
    let start = Instant::now();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|tid| {
                let mut handle = engine.handle_seeded(0x5EED ^ tid as u64);
                scope.spawn(move || {
                    handle
                        .sample(per_thread)
                        .expect("bench datasets have non-empty joins")
                        .len()
                })
            })
            .collect();
        let drawn: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
        drawn as f64 / start.elapsed().as_secs_f64()
    })
}

fn build_json(points: &[BuildPoint]) -> String {
    let base_wall = points
        .first()
        .map_or(1.0, |p| ms(p.report.upper_bounding).max(1e-9));
    let entries: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"threads\": {}, \"preprocessing_ms\": {:.3}, \"grid_mapping_ms\": {:.3}, \
                 \"upper_bounding_wall_ms\": {:.3}, \"upper_bounding_cpu_ms\": {:.3}, \
                 \"ub_speedup_vs_1t\": {:.3}}}",
                p.threads,
                ms(p.report.preprocessing),
                ms(p.report.grid_mapping),
                ms(p.report.upper_bounding),
                ms(p.report.upper_bounding_cpu),
                base_wall / ms(p.report.upper_bounding).max(1e-9),
            )
        })
        .collect();
    format!("[{}]", entries.join(", "))
}

/// Runs the full PR-2 scaling suite on one `datagen` dataset and
/// renders the `BENCH_PR2.json` text: per-algorithm build sweeps over
/// [`BUILD_THREAD_SWEEP`], single-thread serving throughput per
/// algorithm, and the `R`-sharded engine's throughput over
/// [`SERVE_THREAD_SWEEP`].
pub fn bench_pr2(cfg: &ExpConfig) -> String {
    let kind = DatasetKind::Uniform;
    let d = scaled_spec(kind, cfg.scale, 0.5, cfg.seed);
    let l = cfg.l;
    // `--shards 1` is honoured (the "sharded" sweep then measures the
    // unsharded baseline across thread counts).
    let shards = cfg.shards.max(1);

    let mut out = String::new();
    writeln!(out, "{{").unwrap();
    writeln!(out, "  \"pr\": 2,").unwrap();
    writeln!(out, "  \"host_cores\": {},", host_cores()).unwrap();
    writeln!(
        out,
        "  \"dataset\": {{\"kind\": \"{}\", \"scale\": {}, \"n\": {}, \"m\": {}, \"l\": {}}},",
        kind.label(),
        cfg.scale,
        d.r.len(),
        d.s.len(),
        l
    )
    .unwrap();
    writeln!(out, "  \"t\": {},", cfg.t).unwrap();

    // Build sweep: wall vs cpu per algorithm per thread count.
    writeln!(out, "  \"build\": {{").unwrap();
    let algos = [
        (Algorithm::Kds, "KDS"),
        (Algorithm::KdsRejection, "KDS-rejection"),
        (Algorithm::Bbst, "BBST"),
    ];
    for (i, (algo, name)) in algos.iter().enumerate() {
        let sweep = build_sweep(*algo, &d.r, &d.s, l);
        let comma = if i + 1 < algos.len() { "," } else { "" };
        writeln!(out, "    \"{name}\": {}{comma}", build_json(&sweep)).unwrap();
    }
    writeln!(out, "  }},").unwrap();

    // Serving: single-handle throughput per algorithm, then the
    // sharded engine swept over serving thread counts.
    writeln!(out, "  \"serving\": {{").unwrap();
    for (algo, name) in algos {
        let engine = Engine::build(&d.r, &d.s, &SampleConfig::new(l), algo);
        let sps = serving_throughput(&engine, 1, cfg.t);
        writeln!(out, "    \"{name}\": {{\"samples_per_sec\": {sps:.0}}},").unwrap();
    }
    let sharded = Engine::build_sharded(
        &d.r,
        &d.s,
        &SampleConfig::new(l).with_build_threads(0),
        Algorithm::Bbst,
        shards,
    );
    let sharded_entries: Vec<String> = SERVE_THREAD_SWEEP
        .iter()
        .map(|&threads| {
            let sps = serving_throughput(&sharded, threads, cfg.t);
            format!(
                "{{\"shards\": {}, \"threads\": {threads}, \"samples_per_sec\": {sps:.0}}}",
                sharded.shards()
            )
        })
        .collect();
    writeln!(
        out,
        "    \"sharded_bbst\": [{}]",
        sharded_entries.join(", ")
    )
    .unwrap();
    writeln!(out, "  }}").unwrap();
    writeln!(out, "}}").unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_sweep_covers_thread_counts_and_speedup_is_sane() {
        let d = scaled_spec(DatasetKind::Uniform, 0.01, 0.5, 3);
        let sweep = build_sweep(Algorithm::Bbst, &d.r, &d.s, 100.0);
        assert_eq!(sweep.len(), BUILD_THREAD_SWEEP.len());
        for p in &sweep {
            assert!(p.report.upper_bounding > std::time::Duration::ZERO);
            assert!(p.report.upper_bounding_cpu > std::time::Duration::ZERO);
        }
    }

    #[test]
    fn serving_throughput_is_positive_across_thread_counts() {
        let d = scaled_spec(DatasetKind::Uniform, 0.01, 0.5, 3);
        let engine =
            Engine::build_sharded(&d.r, &d.s, &SampleConfig::new(100.0), Algorithm::Bbst, 2);
        for threads in [1, 4] {
            assert!(serving_throughput(&engine, threads, 2_000) > 0.0);
        }
    }

    #[test]
    fn bench_pr2_json_has_expected_shape() {
        let cfg = ExpConfig {
            scale: 0.004,
            t: 500,
            l: 100.0,
            seed: 7,
            threads: 1,
            shards: 2,
        };
        let json = bench_pr2(&cfg);
        for key in [
            "\"pr\": 2",
            "\"host_cores\"",
            "\"build\"",
            "\"KDS\"",
            "\"KDS-rejection\"",
            "\"BBST\"",
            "\"upper_bounding_wall_ms\"",
            "\"upper_bounding_cpu_ms\"",
            "\"ub_speedup_vs_1t\"",
            "\"serving\"",
            "\"samples_per_sec\"",
            "\"sharded_bbst\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        // crude structural sanity: balanced braces/brackets
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
