//! RNG dispatch-shape micro-bench: what a `next_u64` costs per call
//! depending on how the sampler reaches the generator.
//!
//! The serving hot loop burns one or two RNG words per draw, so the
//! dispatch shape is a first-order cost:
//!
//! * `concrete` — monomorphised `SmallRng`, the engine's batch path
//!   (`Cursor::sample_batch`): the compiler sees the xoshiro kernel
//!   and inlines it into the loop.
//! * `dyn_ref` — `&mut dyn RngCore`, the object-safe `JoinSampler`
//!   path: one virtual call per word.
//! * `boxed_dyn` — `&mut dyn RngCore` *over* a `Box<dyn RngCore>`,
//!   the shape a type-erased cursor holding a boxed RNG produces: the
//!   outer vtable lands in the `Box<R>` forwarding impl, which
//!   re-enters the vtable for the inner generator — two virtual calls
//!   per word.
//! * `buffered_over_boxed_dyn` — the same double-forwarded generator
//!   flattened through [`BufferedRng`]: the stash refill pays the two
//!   virtual calls once per 64 words and every other draw is a pop
//!   from a local array, which is how the type-erased overlay cursor
//!   keeps batched RNG cost without giving up object safety.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::{BufferedRng, SmallRng};
use rand::{RngCore, SeedableRng};
use std::hint::black_box;

/// Words per measured iteration: enough that loop overhead and the
/// amortised `BufferedRng` refill reach steady state.
const WORDS: usize = 4096;

fn draw_words<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
    let mut acc = 0u64;
    for _ in 0..WORDS {
        acc = acc.wrapping_add(rng.next_u64());
    }
    acc
}

/// Boxes the generator behind a call LLVM cannot see through —
/// without it the optimiser devirtualises the `dyn` cases (the
/// concrete type is visible in the bench body) and every shape
/// measures identical.
#[inline(never)]
fn opaque_boxed(seed: u64) -> Box<dyn RngCore> {
    Box::new(SmallRng::seed_from_u64(black_box(seed)))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng_dispatch");
    g.throughput(criterion::Throughput::Elements(WORDS as u64));

    g.bench_function("concrete", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| black_box(draw_words(&mut rng)));
    });

    g.bench_function("dyn_ref", |b| {
        let mut boxed = opaque_boxed(2);
        let dyn_rng: &mut dyn RngCore = &mut *boxed;
        b.iter(|| black_box(draw_words(dyn_rng)));
    });

    g.bench_function("boxed_dyn", |b| {
        let mut boxed = opaque_boxed(3);
        // Coercing `&mut Box<dyn RngCore>` to `&mut dyn RngCore` routes
        // every call through the `Box<R>` forwarding impl first — the
        // double indirection this bench exists to expose.
        let dyn_rng: &mut dyn RngCore = &mut boxed;
        b.iter(|| black_box(draw_words(dyn_rng)));
    });

    g.bench_function("buffered_over_boxed_dyn", |b| {
        let mut boxed = opaque_boxed(4);
        let dyn_rng: &mut dyn RngCore = &mut boxed;
        let mut buffered = BufferedRng::new(dyn_rng);
        b.iter(|| black_box(draw_words(&mut buffered)));
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
