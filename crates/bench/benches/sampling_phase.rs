//! Table IV — sampling-phase cost in isolation: per-batch draw time on
//! pre-built samplers (the paper's "known selectivity" comparison).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use srj_bench::{build_bbst, build_kds, build_rejection, scaled_spec};
use srj_core::JoinSampler;
use srj_datagen::DatasetKind;

const SCALE: f64 = 0.04;
const BATCH: usize = 1_000;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_sampling");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(BATCH as u64));
    for &kind in &DatasetKind::PAPER_ORDER {
        let d = scaled_spec(kind, SCALE, 0.5, 13);
        let mut kds = build_kds(&d.r, &d.s, 100.0);
        let mut rej = build_rejection(&d.r, &d.s, 100.0);
        let mut bbst = build_bbst(&d.r, &d.s, 100.0);
        let mut rng = SmallRng::seed_from_u64(2);
        g.bench_function(BenchmarkId::new("KDS", kind.label()), |b| {
            b.iter(|| kds.sample(BATCH, &mut rng).unwrap());
        });
        g.bench_function(BenchmarkId::new("KDS-rejection", kind.label()), |b| {
            b.iter(|| rej.sample(BATCH, &mut rng).unwrap());
        });
        g.bench_function(BenchmarkId::new("BBST", kind.label()), |b| {
            b.iter(|| bbst.sample(BATCH, &mut rng).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
