//! Fig. 9 — effectiveness of the BBST structure: the full Algorithm 1
//! pipeline with per-cell BBSTs vs per-cell kd-trees ("Variant").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use srj_bench::{build_bbst, build_variant, scaled_spec};
use srj_core::JoinSampler;
use srj_datagen::DatasetKind;

const SCALE: f64 = 0.03;
const BATCH: usize = 10_000;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_bbst_vs_kd_cell");
    g.sample_size(10);
    for &kind in &DatasetKind::PAPER_ORDER {
        let d = scaled_spec(kind, SCALE, 0.5, 18);
        let mut bbst = build_bbst(&d.r, &d.s, 100.0);
        let mut variant = build_variant(&d.r, &d.s, 100.0);
        let mut rng = SmallRng::seed_from_u64(4);
        g.bench_function(BenchmarkId::new("BBST", kind.label()), |b| {
            b.iter(|| bbst.sample(BATCH, &mut rng).unwrap());
        });
        g.bench_function(BenchmarkId::new("Variant", kind.label()), |b| {
            b.iter(|| variant.sample(BATCH, &mut rng).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
