//! Figs. 4 & 7 — impact of dataset size: full-pipeline time at dataset
//! fractions 0.25 / 0.5 / 1.0 (Fig. 7's time series; Fig. 4's memory
//! series is reported by the experiments binary, since Criterion
//! measures time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srj_bench::{build_bbst, build_kds, build_rejection, run_sampler, scaled_spec};
use srj_datagen::DatasetKind;

const SCALE: f64 = 0.03;
const T: usize = 10_000;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_scalability");
    g.sample_size(10);
    for frac in [0.25, 0.5, 1.0] {
        let d = scaled_spec(DatasetKind::TaxiHotspots, SCALE * frac, 0.5, 16);
        let points = d.total() as u64;
        g.bench_with_input(BenchmarkId::new("KDS", points), &d, |b, d| {
            b.iter(|| {
                let mut s = build_kds(&d.r, &d.s, 100.0);
                run_sampler(&mut s, T, 1)
            });
        });
        g.bench_with_input(BenchmarkId::new("KDS-rejection", points), &d, |b, d| {
            b.iter(|| {
                let mut s = build_rejection(&d.r, &d.s, 100.0);
                run_sampler(&mut s, T, 1)
            });
        });
        g.bench_with_input(BenchmarkId::new("BBST", points), &d, |b, d| {
            b.iter(|| {
                let mut s = build_bbst(&d.r, &d.s, 100.0);
                run_sampler(&mut s, T, 1)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
