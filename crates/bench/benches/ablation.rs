//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. case-3 mass mode — the paper's virtual bucket mass vs the tighter
//!    exact-mass extension (sampling throughput),
//! 2. the raw BBST quadrant-count primitive vs a brute scan of the cell,
//!    isolating the structure's `Õ(1)` claim from the pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use srj_bbst::{bucket_capacity, CellBbsts, MassMode, QuadrantQuery};
use srj_bench::scaled_spec;
use srj_core::{BbstSampler, JoinSampler, SampleConfig};
use srj_datagen::DatasetKind;
use srj_geom::Point;

const SCALE: f64 = 0.03;
const BATCH: usize = 10_000;

fn mass_mode(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_bucket_mass");
    g.sample_size(10);
    let d = scaled_spec(DatasetKind::TaxiHotspots, SCALE, 0.5, 19);
    for mode in [MassMode::Virtual, MassMode::Exact] {
        let cfg = SampleConfig::new(100.0).with_mass_mode(mode);
        let mut sampler = BbstSampler::build(&d.r, &d.s, &cfg);
        let mut rng = SmallRng::seed_from_u64(5);
        g.bench_function(BenchmarkId::new("sample", format!("{mode:?}")), |b| {
            b.iter(|| sampler.sample(BATCH, &mut rng).unwrap());
        });
    }
    g.finish();
}

fn cascading(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_fractional_cascading");
    g.sample_size(10);
    let d = scaled_spec(DatasetKind::TaxiHotspots, SCALE, 0.5, 21);
    for (label, casc) in [("plain", false), ("cascading", true)] {
        let mut cfg = SampleConfig::new(100.0);
        if casc {
            cfg = cfg.with_cascading();
        }
        // build (UB phase runs the case-3 counting n times)
        g.bench_function(BenchmarkId::new("build", label), |b| {
            b.iter(|| BbstSampler::build(&d.r, &d.s, &cfg));
        });
        let mut sampler = BbstSampler::build(&d.r, &d.s, &cfg);
        let mut rng = SmallRng::seed_from_u64(6);
        g.bench_function(BenchmarkId::new("sample", label), |b| {
            b.iter(|| sampler.sample(BATCH, &mut rng).unwrap());
        });
    }
    g.finish();
}

fn quadrant_count(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_quadrant_count");
    g.sample_size(10);
    // one large cell worth of points
    let pts: Vec<Point> = scaled_spec(DatasetKind::Uniform, 0.05, 1.0, 20).r;
    let mut by_x: Vec<u32> = (0..pts.len() as u32).collect();
    by_x.sort_by(|&a, &b| pts[a as usize].x.total_cmp(&pts[b as usize].x));
    let cb = CellBbsts::build(&pts, &by_x, bucket_capacity(pts.len()));
    let queries: Vec<QuadrantQuery> = (0..64)
        .map(|i| QuadrantQuery {
            x_is_min: i % 2 == 0,
            y_is_min: i % 4 < 2,
            x0: (i * 157 % 10_000) as f64,
            y0: (i * 211 % 10_000) as f64,
        })
        .collect();
    g.bench_function("bbst", |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|q| cb.count_quadrant(q, MassMode::Virtual))
                .sum::<u64>()
        });
    });
    g.bench_function("brute_scan", |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|q| pts.iter().filter(|p| q.contains(**p)).count() as u64)
                .sum::<u64>()
        });
    });
    g.finish();
}

criterion_group!(benches, mass_mode, cascading, quadrant_count);
criterion_main!(benches);
