//! Table III — total time (build + t samples) for the three algorithms
//! on every dataset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srj_bench::{build_bbst, build_kds, build_rejection, run_sampler, scaled_spec};
use srj_datagen::DatasetKind;

const SCALE: f64 = 0.02;
const T: usize = 10_000;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_total");
    g.sample_size(10);
    for &kind in &DatasetKind::PAPER_ORDER {
        let d = scaled_spec(kind, SCALE, 0.5, 12);
        g.bench_with_input(BenchmarkId::new("KDS", kind.label()), &d, |b, d| {
            b.iter(|| {
                let mut s = build_kds(&d.r, &d.s, 100.0);
                run_sampler(&mut s, T, 1)
            });
        });
        g.bench_with_input(
            BenchmarkId::new("KDS-rejection", kind.label()),
            &d,
            |b, d| {
                b.iter(|| {
                    let mut s = build_rejection(&d.r, &d.s, 100.0);
                    run_sampler(&mut s, T, 1)
                });
            },
        );
        g.bench_with_input(BenchmarkId::new("BBST", kind.label()), &d, |b, d| {
            b.iter(|| {
                let mut s = build_bbst(&d.r, &d.s, 100.0);
                run_sampler(&mut s, T, 1)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
