//! Engine-path scaling (PR 2): build wall-time vs `build_threads`, and
//! serving throughput (samples/sec) vs serving-thread count through
//! `srj-engine` — the multi-thread companion to the single-threaded
//! sampler benches, tracking the ROADMAP "engine-path benches" item.
//!
//! The same quantities are recorded machine-readably by
//! `experiments -- bench-pr2` into `BENCH_PR2.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srj_bench::{scaled_spec, serving_throughput};
use srj_core::SampleConfig;
use srj_datagen::DatasetKind;
use srj_engine::{Algorithm, Engine};

const SCALE: f64 = 0.05;
const L: f64 = 100.0;
const T: usize = 20_000;

/// Build wall-time at 1/2/4 build threads, per algorithm. The per-`r`
/// upper-bounding loop dominates, so wall-time should fall with the
/// thread count on multi-core hosts (results are bit-identical at any
/// setting).
fn bench_build_threads(c: &mut Criterion) {
    let d = scaled_spec(DatasetKind::Uniform, SCALE, 0.5, 17);
    let mut g = c.benchmark_group("build_vs_threads");
    g.sample_size(10);
    for algo in [Algorithm::Kds, Algorithm::KdsRejection, Algorithm::Bbst] {
        for threads in [1usize, 2, 4] {
            g.bench_with_input(
                BenchmarkId::new(format!("{algo}"), threads),
                &threads,
                |b, &threads| {
                    let cfg = SampleConfig::new(L).with_build_threads(threads);
                    b.iter(|| Engine::build(&d.r, &d.s, &cfg, algo));
                },
            );
        }
    }
    g.finish();
}

/// Serving throughput vs thread count (1/2/4/8) through the sharded
/// engine: each serving thread owns a `SamplerHandle` over the shared
/// immutable index, so throughput should scale with cores.
fn bench_serving_threads(c: &mut Criterion) {
    let d = scaled_spec(DatasetKind::Uniform, SCALE, 0.5, 17);
    let mut g = c.benchmark_group("serving_vs_threads");
    g.sample_size(10);
    for (name, engine) in [
        (
            "bbst_unsharded",
            Engine::build(&d.r, &d.s, &SampleConfig::new(L), Algorithm::Bbst),
        ),
        (
            "bbst_sharded4",
            Engine::build_sharded(
                &d.r,
                &d.s,
                &SampleConfig::new(L).with_build_threads(0),
                Algorithm::Bbst,
                4,
            ),
        ),
    ] {
        for threads in [1usize, 2, 4, 8] {
            g.bench_with_input(BenchmarkId::new(name, threads), &threads, |b, &threads| {
                b.iter(|| serving_throughput(&engine, threads, T));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_build_threads, bench_serving_threads);
criterion_main!(benches);
