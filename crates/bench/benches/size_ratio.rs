//! Fig. 8 — impact of the dataset size ratio `n/(n+m)` on BBST
//! (0.1 … 0.5; R and S are symmetric, so 0.5 is the midpoint).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srj_bench::{build_bbst, run_sampler, scaled_spec};
use srj_datagen::DatasetKind;

const SCALE: f64 = 0.03;
const T: usize = 10_000;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_size_ratio");
    g.sample_size(10);
    for ratio in [0.1, 0.3, 0.5] {
        let d = scaled_spec(DatasetKind::TrajectoryLike, SCALE, ratio, 17);
        g.bench_with_input(BenchmarkId::new("BBST", format!("{ratio}")), &d, |b, d| {
            b.iter(|| {
                let mut s = build_bbst(&d.r, &d.s, 100.0);
                run_sampler(&mut s, T, 1)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
