//! Table II — pre-processing time: kd-tree construction (KDS and
//! KDS-rejection) vs x-sorting (BBST), per dataset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srj_bench::scaled_spec;
use srj_datagen::DatasetKind;
use srj_kdtree::KdTree;

const SCALE: f64 = 0.04;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_preprocessing");
    g.sample_size(10);
    for &kind in &DatasetKind::PAPER_ORDER {
        let d = scaled_spec(kind, SCALE, 0.5, 11);
        g.bench_with_input(
            BenchmarkId::new("kds_kdtree_build", kind.label()),
            &d,
            |b, d| {
                b.iter(|| KdTree::build(&d.s));
            },
        );
        g.bench_with_input(BenchmarkId::new("bbst_xsort", kind.label()), &d, |b, d| {
            b.iter(|| {
                let mut order: Vec<u32> = (0..d.s.len() as u32).collect();
                order.sort_unstable_by(|&x, &y| d.s[x as usize].x.total_cmp(&d.s[y as usize].x));
                order
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
