//! Substrate-level microbenchmarks: the building blocks whose constants
//! the paper's Lemmas bound (alias draws, grid mapping, per-cell BBST
//! construction, kd-tree range counting). Regression guards for the
//! pieces the pipeline benches aggregate.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use srj_alias::AliasTable;
use srj_bbst::{bucket_capacity, CellBbsts};
use srj_bench::scaled_spec;
use srj_datagen::DatasetKind;
use srj_geom::Rect;
use srj_grid::Grid;
use srj_kdtree::KdTree;

fn alias(c: &mut Criterion) {
    let mut g = c.benchmark_group("component_alias");
    g.sample_size(20);
    let weights: Vec<f64> = (0..100_000)
        .map(|i| ((i * 7919) % 1000) as f64 + 1.0)
        .collect();
    g.bench_function("build_100k", |b| {
        b.iter(|| AliasTable::new(&weights).unwrap());
    });
    let table = AliasTable::new(&weights).unwrap();
    let mut rng = SmallRng::seed_from_u64(1);
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("draw_1k", |b| {
        b.iter(|| (0..1_000).map(|_| table.sample(&mut rng)).sum::<usize>());
    });
    g.finish();
}

fn grid_and_trees(c: &mut Criterion) {
    let mut g = c.benchmark_group("component_structures");
    g.sample_size(10);
    let d = scaled_spec(DatasetKind::PoiClusters, 0.1, 0.5, 7);
    g.bench_function("grid_build", |b| {
        b.iter(|| Grid::build(&d.s, 100.0));
    });
    g.bench_function("kdtree_build", |b| {
        b.iter(|| KdTree::build(&d.s));
    });
    let grid = Grid::build(&d.s, 100.0);
    let cap = bucket_capacity(d.s.len());
    g.bench_function("bbst_build_all_cells", |b| {
        b.iter(|| {
            grid.cells()
                .iter()
                .map(|c| CellBbsts::build(grid.points(), &c.by_x, cap).capacity())
                .sum::<u32>()
        });
    });
    let tree = KdTree::build(&d.s);
    let windows: Vec<Rect> = d.r[..256].iter().map(|&p| Rect::window(p, 100.0)).collect();
    g.throughput(Throughput::Elements(windows.len() as u64));
    g.bench_function("kdtree_range_count_256", |b| {
        b.iter(|| windows.iter().map(|w| tree.range_count(w)).sum::<usize>());
    });
    g.bench_function("grid_exact_count_256", |b| {
        b.iter(|| {
            windows
                .iter()
                .map(|w| grid.exact_window_count(w))
                .sum::<usize>()
        });
    });
    g.finish();
}

fn datagen(c: &mut Criterion) {
    let mut g = c.benchmark_group("component_datagen");
    g.sample_size(10);
    for &kind in &DatasetKind::PAPER_ORDER {
        g.bench_function(kind.label(), |b| {
            b.iter(|| srj_datagen::generate(&srj_datagen::DatasetSpec::new(kind, 50_000, 3)).len());
        });
    }
    g.finish();
}

criterion_group!(benches, alias, grid_and_trees, datagen);
criterion_main!(benches);
