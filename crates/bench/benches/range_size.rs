//! Fig. 5 — impact of the range (window half-extent) `l`: total time
//! (build + samples) as `l` sweeps 1 … 500. BBST should be nearly flat;
//! the kd-tree baselines degrade with `l`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srj_bench::{build_bbst, build_kds, run_sampler, scaled_spec};
use srj_datagen::DatasetKind;

const SCALE: f64 = 0.02;
const T: usize = 10_000;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_range_size");
    g.sample_size(10);
    let d = scaled_spec(DatasetKind::RoadLike, SCALE, 0.5, 14);
    for l in [1.0, 10.0, 100.0, 500.0] {
        g.bench_with_input(BenchmarkId::new("KDS", l as u64), &l, |b, &l| {
            b.iter(|| {
                let mut s = build_kds(&d.r, &d.s, l);
                run_sampler(&mut s, T, 1)
            });
        });
        g.bench_with_input(BenchmarkId::new("BBST", l as u64), &l, |b, &l| {
            b.iter(|| {
                let mut s = build_bbst(&d.r, &d.s, l);
                run_sampler(&mut s, T, 1)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
