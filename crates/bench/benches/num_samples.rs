//! Fig. 6 — impact of `t`: sampling time as the number of samples grows.
//! The baselines grow linearly in `t` with a large constant (`O(√m)` per
//! draw); BBST's per-draw cost is polylogarithmic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use srj_bench::{build_bbst, build_kds, scaled_spec};
use srj_core::JoinSampler;
use srj_datagen::DatasetKind;

const SCALE: f64 = 0.04;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_num_samples");
    g.sample_size(10);
    let d = scaled_spec(DatasetKind::PoiClusters, SCALE, 0.5, 15);
    let mut kds = build_kds(&d.r, &d.s, 100.0);
    let mut bbst = build_bbst(&d.r, &d.s, 100.0);
    let mut rng = SmallRng::seed_from_u64(3);
    for t in [1_000usize, 10_000, 100_000] {
        g.bench_with_input(BenchmarkId::new("KDS", t), &t, |b, &t| {
            b.iter(|| kds.sample(t, &mut rng).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("BBST", t), &t, |b, &t| {
            b.iter(|| bbst.sample(t, &mut rng).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
