//! **BBST — Bucket-based Binary Search Tree** (paper Section IV-B).
//!
//! The proposed data structure of *Random Sampling over Spatial Range
//! Joins* (ICDE 2025). For one grid cell holding `N` points out of a set
//! of `m`, a pair of BBSTs answers **2-sided (quadrant) queries** — the
//! "case 3" corner cells of the window decomposition — with:
//!
//! * `O(N)` space (Lemma 2),
//! * `O(N)` construction given x-sorted points (Lemma 1),
//! * `Õ(1)`-approximate range counting in `O(log² N)` time (Lemma 4),
//! * one uniform candidate draw in `O(log² N)` time (Lemma 6).
//!
//! ## How it works
//!
//! The cell's x-sorted points are chopped into consecutive **buckets** of
//! `⌈log₂ m⌉` points ([`Bucket`], Definition 3). A balanced binary search
//! tree is built over the buckets' x-keys; each node stores the buckets
//! of its subtree **twice more**, sorted by bucket min-y and max-y (the
//! `A` arrays), plus the equal-key buckets (`B` lists). A 2-sided query
//! `[x₀, ∞) × [y₀, ∞)` walks the x-dimension like an ordinary BST —
//! collecting `O(log N)` canonical nodes — and resolves the y-dimension
//! with one binary search per canonical node.
//!
//! Because the x-key of a bucket can be its minimum **or** its maximum x
//! coordinate depending on which window side bounds the cell, each cell
//! carries two trees: `T_min` (keyed by bucket min-x, for `xmax`-bounded
//! quadrants `c↘`, `c↗`) and `T_max` (keyed by bucket max-x, for
//! `xmin`-bounded quadrants `c↙`, `c↖`). See [`CellBbsts`].
//!
//! ## Counting modes
//!
//! The paper counts `log m ×` (number of matched buckets)
//! ([`MassMode::Virtual`]). A matched bucket with fewer than `log m`
//! points would break per-point uniformity when sampling, so the sampler
//! draws a *virtual slot* and treats out-of-range slots as rejections —
//! per-point probability stays exactly `1/µ` (DESIGN.md §2.2). As an
//! extension this crate also offers [`MassMode::Exact`], which stores
//! per-node prefix sums of true bucket sizes for a strictly tighter upper
//! bound at identical asymptotic cost (benchmarked as an ablation).

mod bucket;
mod cell;
mod tree;

pub use bucket::{bucket_capacity, partition_into_buckets, Bucket};
pub use cell::{CellBbsts, MassMode, QuadrantQuery};
pub use tree::Bbst;
