use rand::Rng;
use srj_geom::{Point, PointId};

use crate::bucket::{partition_into_buckets, Bucket};
use crate::tree::{Bbst, KeyKind, YPred};

/// A 2-sided (quadrant) query against one cell (case 3 of Section IV-A).
///
/// The query region is the product of two half-lines:
/// `x_is_min == true` means the region is `[x0, ∞)` in x (the cell is
/// bounded by `w(r).xmin`, i.e. cells `c↙`/`c↖`), otherwise `(−∞, x0]`
/// (bounded by `w(r).xmax`, cells `c↘`/`c↗`); `y_is_min` likewise for y.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuadrantQuery {
    /// `true` ⇒ x region is `[x0, ∞)`; `false` ⇒ `(−∞, x0]`.
    pub x_is_min: bool,
    /// `true` ⇒ y region is `[y0, ∞)`; `false` ⇒ `(−∞, y0]`.
    pub y_is_min: bool,
    /// The x boundary (`w(r).xmin` or `w(r).xmax`).
    pub x0: f64,
    /// The y boundary (`w(r).ymin` or `w(r).ymax`).
    pub y0: f64,
}

impl QuadrantQuery {
    /// `true` iff `p` lies inside the quadrant region.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        let x_ok = if self.x_is_min {
            p.x >= self.x0
        } else {
            p.x <= self.x0
        };
        let y_ok = if self.y_is_min {
            p.y >= self.y0
        } else {
            p.y <= self.y0
        };
        x_ok && y_ok
    }

    #[inline]
    fn y_pred(&self) -> YPred {
        if self.y_is_min {
            YPred::MaxAtLeast
        } else {
            YPred::MinAtMost
        }
    }
}

/// How the matched buckets are converted into the upper bound `µ(r, c)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MassMode {
    /// The paper's bound: every matched bucket contributes the full
    /// bucket capacity `⌈log₂ m⌉` (Section IV-D, Eq. 2). Slots beyond a
    /// short bucket's true size become rejections during sampling, which
    /// preserves exact per-point uniformity.
    #[default]
    Virtual,
    /// Extension (ablation): every matched bucket contributes its true
    /// size, using per-node prefix sums. Strictly tighter (fewer
    /// rejections), same asymptotic cost, slightly more memory traffic.
    Exact,
}

/// The per-cell pair of BBSTs (`T^min_c`, `T^max_c` in Algorithm 1
/// line 5) plus the bucket partition they index.
///
/// ```
/// use srj_bbst::{bucket_capacity, CellBbsts, MassMode, QuadrantQuery};
/// use srj_geom::Point;
///
/// let pts: Vec<Point> = (0..64).map(|i| Point::new(i as f64, (i * 7 % 64) as f64)).collect();
/// let mut by_x: Vec<u32> = (0..64).collect(); // already x-sorted here
/// let cell = CellBbsts::build(&pts, &by_x, bucket_capacity(pts.len()));
///
/// // c↙-style 2-sided query: [32, ∞) × [32, ∞)
/// let q = QuadrantQuery { x_is_min: true, y_is_min: true, x0: 32.0, y0: 32.0 };
/// let exact = pts.iter().filter(|p| q.contains(**p)).count() as u64;
/// let mu = cell.count_quadrant(&q, MassMode::Virtual);
/// assert!(mu >= exact); // Lemma 5: µ is an upper bound
/// ```
#[derive(Clone, Debug)]
pub struct CellBbsts {
    buckets: Vec<Bucket>,
    /// Keyed by bucket `min_x`; serves `xmax`-bounded quadrants.
    t_min: Bbst,
    /// Keyed by bucket `max_x`; serves `xmin`-bounded quadrants.
    t_max: Bbst,
    /// Bucket capacity `⌈log₂ m⌉` used for the virtual mass.
    cap: u32,
}

impl CellBbsts {
    /// Builds both BBSTs for a cell whose members are `by_x` (ids into
    /// `points`, sorted by x). `O(N)` time for `N = by_x.len()`
    /// (Lemma 1, ×2 for the two trees).
    pub fn build(points: &[Point], by_x: &[PointId], cap: u32) -> Self {
        Self::build_inner(points, by_x, cap, false)
    }

    /// Builds with fractional cascading (Lemma 4's optional `O(log m)`
    /// refinement; extra memory for the rank bridges).
    pub fn build_cascading(points: &[Point], by_x: &[PointId], cap: u32) -> Self {
        Self::build_inner(points, by_x, cap, true)
    }

    fn build_inner(points: &[Point], by_x: &[PointId], cap: u32, cascading: bool) -> Self {
        let buckets = partition_into_buckets(points, by_x, cap);
        let (t_min, t_max) = if cascading {
            (
                Bbst::build_cascading(&buckets, KeyKind::MinX),
                Bbst::build_cascading(&buckets, KeyKind::MaxX),
            )
        } else {
            (
                Bbst::build(&buckets, KeyKind::MinX),
                Bbst::build(&buckets, KeyKind::MaxX),
            )
        };
        CellBbsts {
            buckets,
            t_min,
            t_max,
            cap,
        }
    }

    /// `true` iff the cell's trees carry fractional-cascading bridges.
    pub fn is_cascading(&self) -> bool {
        self.t_min.is_cascading()
    }

    /// The bucket partition (for inspection and tests).
    #[inline]
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Bucket capacity used for the virtual mass.
    #[inline]
    pub fn capacity(&self) -> u32 {
        self.cap
    }

    #[inline]
    fn tree_for(&self, q: &QuadrantQuery) -> &Bbst {
        // Quadrants bounded below in x (by w.xmin) need buckets with
        // max_x ≥ x0 ⇒ T_max; quadrants bounded above need min_x ≤ x0 ⇒
        // T_min (paper Section IV-D).
        if q.x_is_min {
            &self.t_max
        } else {
            &self.t_min
        }
    }

    /// Upper bound `µ(r, c)` of the number of cell points inside the
    /// quadrant (`UPPER-BOUNDING`, case 3). `O(log² N)` time: `O(log N)`
    /// matched segments, one binary search each.
    ///
    /// Guarantees (Lemma 5): `exact ≤ µ(r, c)`, and in `Virtual` mode
    /// `µ(r, c) ≤ cap · (matched buckets)` where at most one matched
    /// bucket can be empty of qualifying points.
    pub fn count_quadrant(&self, q: &QuadrantQuery, mode: MassMode) -> u64 {
        let tree = self.tree_for(q);
        let y_pred = q.y_pred();
        let mut total = 0u64;
        tree.for_each_matched_run(q.x0, y_pred, q.y0, &self.buckets, |seg, lo, hi| {
            total += match mode {
                MassMode::Virtual => (hi - lo) as u64 * self.cap as u64,
                MassMode::Exact => tree.run_mass(seg, lo, hi),
            };
        });
        total
    }

    /// Draws one candidate point for the quadrant (sampling phase,
    /// case 3). Returns the index **into the cell's `by_x` array**, or
    /// `None` for a *dud* draw (a virtual slot beyond a short bucket's
    /// true size — counts as a rejected iteration, exactly as the paper's
    /// "s may not have w(r) ∩ s" case).
    ///
    /// Each point of a matched bucket is returned with probability
    /// exactly `1 / µ(r, c)` where `µ(r, c) = count_quadrant(q, mode)`,
    /// which is what Theorem 3's correctness argument requires. The
    /// caller must still verify the window predicate on the returned
    /// point.
    pub fn sample_quadrant<R: Rng + ?Sized>(
        &self,
        q: &QuadrantQuery,
        mode: MassMode,
        rng: &mut R,
    ) -> Option<u32> {
        let total = self.count_quadrant(q, mode);
        if total == 0 {
            return None;
        }
        let mut rank = rng.gen_range(0..total);
        let tree = self.tree_for(q);
        let y_pred = q.y_pred();
        let mut picked: Option<u32> = None;
        tree.for_each_matched_run(q.x0, y_pred, q.y0, &self.buckets, |seg, lo, hi| {
            if picked.is_some() {
                return;
            }
            match mode {
                MassMode::Virtual => {
                    let seg_mass = (hi - lo) as u64 * self.cap as u64;
                    if rank < seg_mass {
                        let bucket_off = (rank / self.cap as u64) as u32;
                        let slot = (rank % self.cap as u64) as u32;
                        let b = &self.buckets[tree.bucket_at(lo + bucket_off) as usize];
                        if slot < b.len() {
                            picked = Some(b.lo + slot);
                        } else {
                            // Dud slot: mark completion with a sentinel
                            // so later segments are skipped; caller sees
                            // None via the dud flag below.
                            picked = Some(u32::MAX);
                        }
                        return;
                    }
                    rank -= seg_mass;
                }
                MassMode::Exact => {
                    let seg_mass = tree.run_mass(seg, lo, hi);
                    if rank < seg_mass {
                        // Binary search the cumulative mass inside the
                        // run to locate the bucket owning this rank.
                        let (mut a, mut b) = (lo, hi);
                        while a < b {
                            let mid = a + (b - a) / 2;
                            if tree.run_mass(seg, lo, mid + 1) <= rank {
                                a = mid + 1;
                            } else {
                                b = mid;
                            }
                        }
                        let before = tree.run_mass(seg, lo, a);
                        let bucket = &self.buckets[tree.bucket_at(a) as usize];
                        let slot = (rank - before) as u32;
                        debug_assert!(slot < bucket.len());
                        picked = Some(bucket.lo + slot);
                        return;
                    }
                    rank -= seg_mass;
                }
            }
        });
        match picked {
            Some(u32::MAX) => None,
            Some(idx) => Some(idx),
            None => unreachable!("rank exceeded total quadrant mass"),
        }
    }

    /// Approximate heap footprint in bytes (Fig. 4 experiment).
    pub fn memory_bytes(&self) -> usize {
        self.buckets.capacity() * std::mem::size_of::<Bucket>()
            + self.t_min.memory_bytes()
            + self.t_max.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn make_cell(points: &[Point], cap: u32) -> (Vec<PointId>, CellBbsts) {
        let mut by_x: Vec<PointId> = (0..points.len() as u32).collect();
        by_x.sort_by(|&a, &b| points[a as usize].x.total_cmp(&points[b as usize].x));
        let cb = CellBbsts::build(points, &by_x, cap);
        (by_x, cb)
    }

    fn spread_points(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new((i % 41) as f64, ((i * 17) % 31) as f64))
            .collect()
    }

    fn all_quadrants(x0: f64, y0: f64) -> [QuadrantQuery; 4] {
        [
            QuadrantQuery {
                x_is_min: true,
                y_is_min: true,
                x0,
                y0,
            },
            QuadrantQuery {
                x_is_min: true,
                y_is_min: false,
                x0,
                y0,
            },
            QuadrantQuery {
                x_is_min: false,
                y_is_min: true,
                x0,
                y0,
            },
            QuadrantQuery {
                x_is_min: false,
                y_is_min: false,
                x0,
                y0,
            },
        ]
    }

    #[test]
    fn count_is_upper_bound_and_lemma5_tight() {
        let points = spread_points(300);
        let (_, cb) = make_cell(&points, 8);
        for q in all_quadrants(13.0, 11.0)
            .into_iter()
            .chain(all_quadrants(0.0, 0.0))
            .chain(all_quadrants(40.0, 30.0))
        {
            let exact = points.iter().filter(|p| q.contains(**p)).count() as u64;
            let virt = cb.count_quadrant(&q, MassMode::Virtual);
            let tight = cb.count_quadrant(&q, MassMode::Exact);
            assert!(exact <= tight, "{q:?}: exact {exact} > tight {tight}");
            assert!(tight <= virt, "{q:?}: tight {tight} > virt {virt}");
            // Lemma 5 shape: virt ≤ cap · exact + cap (one straddling
            // bucket may be all-misses).
            assert!(
                virt <= 8 * exact + 8 * 2,
                "{q:?}: virt {virt} vs exact {exact}"
            );
        }
    }

    #[test]
    fn empty_cell_counts_zero() {
        let (_, cb) = make_cell(&[], 4);
        let q = QuadrantQuery {
            x_is_min: true,
            y_is_min: true,
            x0: 0.0,
            y0: 0.0,
        };
        assert_eq!(cb.count_quadrant(&q, MassMode::Virtual), 0);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(cb.sample_quadrant(&q, MassMode::Virtual, &mut rng), None);
    }

    #[test]
    fn exact_mode_equals_brute_bucket_mass() {
        let points = spread_points(157); // not a multiple of cap
        let (_, cb) = make_cell(&points, 8);
        let q = QuadrantQuery {
            x_is_min: true,
            y_is_min: true,
            x0: 17.0,
            y0: 9.0,
        };
        let brute: u64 = cb
            .buckets()
            .iter()
            .filter(|b| b.max_x >= q.x0 && b.max_y >= q.y0)
            .map(|b| b.len() as u64)
            .sum();
        assert_eq!(cb.count_quadrant(&q, MassMode::Exact), brute);
    }

    /// The crucial distributional property: after rejection (dud slots
    /// and the quadrant predicate), accepted samples are uniform over the
    /// exact qualifying set.
    fn assert_uniform(points: &[Point], cap: u32, q: QuadrantQuery, mode: MassMode) {
        let (by_x, cb) = make_cell(points, cap);
        let qualifying: Vec<u32> = (0..points.len() as u32)
            .filter(|&i| q.contains(points[i as usize]))
            .collect();
        assert!(!qualifying.is_empty(), "test needs a non-empty quadrant");
        let mut rng = SmallRng::seed_from_u64(1234);
        let mut freq: HashMap<u32, usize> = HashMap::new();
        let mut accepted = 0usize;
        let target = 40_000usize;
        let mut iterations = 0usize;
        while accepted < target {
            iterations += 1;
            assert!(
                iterations < target * 100,
                "acceptance rate pathologically low"
            );
            if let Some(idx) = cb.sample_quadrant(&q, mode, &mut rng) {
                let id = by_x[idx as usize];
                if q.contains(points[id as usize]) {
                    *freq.entry(id).or_default() += 1;
                    accepted += 1;
                }
            }
        }
        assert_eq!(
            freq.len(),
            qualifying.len(),
            "some qualifying point never sampled"
        );
        let expected = target as f64 / qualifying.len() as f64;
        for (&id, &c) in &freq {
            let rel = (c as f64 - expected).abs() / expected;
            assert!(rel < 0.15, "point {id}: expected {expected:.1}, got {c}");
        }
    }

    #[test]
    fn accepted_samples_are_uniform_virtual() {
        let points = spread_points(120);
        let q = QuadrantQuery {
            x_is_min: true,
            y_is_min: true,
            x0: 25.0,
            y0: 15.0,
        };
        assert_uniform(&points, 7, q, MassMode::Virtual);
    }

    #[test]
    fn accepted_samples_are_uniform_exact() {
        let points = spread_points(120);
        let q = QuadrantQuery {
            x_is_min: false,
            y_is_min: true,
            x0: 20.0,
            y0: 12.0,
        };
        assert_uniform(&points, 7, q, MassMode::Exact);
    }

    #[test]
    fn accepted_samples_are_uniform_other_quadrants() {
        let points = spread_points(90);
        assert_uniform(
            &points,
            5,
            QuadrantQuery {
                x_is_min: true,
                y_is_min: false,
                x0: 10.0,
                y0: 20.0,
            },
            MassMode::Virtual,
        );
        assert_uniform(
            &points,
            5,
            QuadrantQuery {
                x_is_min: false,
                y_is_min: false,
                x0: 30.0,
                y0: 25.0,
            },
            MassMode::Virtual,
        );
    }

    #[test]
    fn sample_never_returns_nonmatching_bucket_point() {
        // every returned candidate must come from a bucket whose bbox
        // matches the query (dud slots return None instead)
        let points = spread_points(200);
        let (by_x, cb) = make_cell(&points, 8);
        let q = QuadrantQuery {
            x_is_min: true,
            y_is_min: true,
            x0: 22.0,
            y0: 18.0,
        };
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..5_000 {
            if let Some(idx) = cb.sample_quadrant(&q, MassMode::Virtual, &mut rng) {
                let id = by_x[idx as usize];
                let p = points[id as usize];
                // candidate's bucket matched, so the candidate can only
                // fail on coordinates the bucket straddles
                let b = cb
                    .buckets()
                    .iter()
                    .find(|b| idx >= b.lo && idx < b.hi)
                    .unwrap();
                assert!(b.max_x >= q.x0 && b.max_y >= q.y0);
                // point coordinates are within bucket extrema
                assert!(p.x >= b.min_x && p.x <= b.max_x);
            }
        }
    }

    #[test]
    fn memory_accounting_scales() {
        let small = make_cell(&spread_points(50), 6).1;
        let large = make_cell(&spread_points(5000), 6).1;
        assert!(large.memory_bytes() > small.memory_bytes());
    }

    fn make_cell_cascading(points: &[Point], cap: u32) -> (Vec<PointId>, CellBbsts) {
        let mut by_x: Vec<PointId> = (0..points.len() as u32).collect();
        by_x.sort_by(|&a, &b| points[a as usize].x.total_cmp(&points[b as usize].x));
        let cb = CellBbsts::build_cascading(points, &by_x, cap);
        (by_x, cb)
    }

    /// The cascaded walk must return exactly the same counts as the
    /// per-node binary-search walk, for every quadrant shape, boundary
    /// position, and mass mode.
    #[test]
    fn cascading_counts_equal_plain_counts() {
        let points = spread_points(337); // odd size, short last bucket
        for cap in [1u32, 5, 9] {
            let (_, plain) = make_cell(&points, cap);
            let (_, casc) = make_cell_cascading(&points, cap);
            assert!(casc.is_cascading() && !plain.is_cascading());
            for x0 in [-1.0, 0.0, 7.5, 20.0, 40.0, 41.0] {
                for y0 in [-1.0, 0.0, 11.0, 15.5, 30.0, 31.0] {
                    for q in all_quadrants(x0, y0) {
                        for mode in [MassMode::Virtual, MassMode::Exact] {
                            assert_eq!(
                                plain.count_quadrant(&q, mode),
                                casc.count_quadrant(&q, mode),
                                "cap={cap} {q:?} {mode:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn cascading_sampling_is_uniform() {
        let points = spread_points(120);
        let q = QuadrantQuery {
            x_is_min: true,
            y_is_min: true,
            x0: 25.0,
            y0: 15.0,
        };
        let (by_x, cb) = make_cell_cascading(&points, 7);
        let qualifying: Vec<u32> = (0..points.len() as u32)
            .filter(|&i| q.contains(points[i as usize]))
            .collect();
        let mut rng = SmallRng::seed_from_u64(77);
        let mut freq: HashMap<u32, usize> = HashMap::new();
        let mut accepted = 0;
        while accepted < 40_000 {
            if let Some(idx) = cb.sample_quadrant(&q, MassMode::Virtual, &mut rng) {
                let id = by_x[idx as usize];
                if q.contains(points[id as usize]) {
                    *freq.entry(id).or_default() += 1;
                    accepted += 1;
                }
            }
        }
        assert_eq!(freq.len(), qualifying.len());
        let expected = 40_000.0 / qualifying.len() as f64;
        for (&id, &c) in &freq {
            let rel = (c as f64 - expected).abs() / expected;
            assert!(rel < 0.15, "point {id}: expected {expected:.1}, got {c}");
        }
    }

    #[test]
    fn cascading_costs_more_memory() {
        let points = spread_points(4000);
        let (_, plain) = make_cell(&points, 8);
        let (_, casc) = make_cell_cascading(&points, 8);
        assert!(casc.memory_bytes() > plain.memory_bytes());
    }
}
