use crate::bucket::Bucket;

/// Sentinel node index.
pub(crate) const NONE: u32 = u32::MAX;

/// Which extremum of a bucket serves as its x-key.
///
/// `T_min` (keyed by `min_x`) serves quadrants bounded by `w(r).xmax`
/// (`c↘`, `c↗`); `T_max` (keyed by `max_x`) serves quadrants bounded by
/// `w(r).xmin` (`c↙`, `c↖`). See paper Section IV-D.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KeyKind {
    /// Key = `min_{s ∈ B} s.x`.
    MinX,
    /// Key = `max_{s ∈ B} s.x`.
    MaxX,
}

/// Y-dimension ordering / predicate used by a quadrant query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum YPred {
    /// Match buckets with `max_y ≥ y0` (query bounded by `w(r).ymin`);
    /// resolved on the max-y-sorted arrays (`A_max`, `B_max`).
    MaxAtLeast,
    /// Match buckets with `min_y ≤ y0` (query bounded by `w(r).ymax`);
    /// resolved on the min-y-sorted arrays (`A_min`, `B_min`).
    MinAtMost,
}

/// Arena segment `[start, end)` of bucket indices.
type Seg = (u32, u32);

/// One BBST node (paper Section IV-B):
///
/// * `key` — the median x-key this node splits on,
/// * `b_min` / `b_max` — the buckets whose key **equals** `key`, sorted
///   by min-y / max-y (the `B^min_i` / `B^max_i` lists; they keep the
///   tree balanced under duplicate keys),
/// * `a_min` / `a_max` — **all** buckets of the subtree rooted here,
///   sorted by min-y / max-y (the `A^min_i` / `A^max_i` arrays; they
///   answer the y-dimension for canonical nodes).
#[derive(Clone, Debug)]
struct Node {
    key: f64,
    left: u32,
    right: u32,
    b_min: Seg,
    b_max: Seg,
    a_min: Seg,
    a_max: Seg,
}

/// A bucket-based binary search tree over one cell's buckets.
///
/// Space: the tree has `O(b)` nodes over `b` buckets and each bucket
/// appears in the `A` arrays of its `O(log b)` ancestors, so the arena
/// holds `O(b log b)` entries — `O(N)` for `b = N / log m` (Lemma 2).
/// Which partition a cascading rank refers to (equal-key `B` list, left
/// child, right child).
#[derive(Clone, Copy)]
enum RankOf {
    Eq = 0,
    Left = 1,
    Right = 2,
}

#[derive(Clone, Debug)]
pub struct Bbst {
    key_kind: KeyKind,
    nodes: Vec<Node>,
    /// Bucket indices, segmented per node array/list.
    arena: Vec<u32>,
    /// `mass[k]` = cumulative true point count within `k`'s segment up to
    /// and including position `k`. Powers [`crate::MassMode::Exact`].
    mass: Vec<u32>,
    /// Fractional-cascading bridges (Chazelle & Guibas \[62\], as the
    /// paper suggests for Lemma 4): for each position `k` of an `A`
    /// segment, the number of entries among the first `k+1` that belong
    /// to the node's equal-key `B` list / left child / right child.
    /// Because a child's `A` array is an order-preserving subsequence of
    /// the parent's, one binary search at the root plus these `O(1)`
    /// rank lookups replace the per-node binary searches — `O(log m)`
    /// case-3 queries instead of `O(log² m)`. Empty when cascading is
    /// disabled.
    ranks: Vec<[u32; 3]>,
    cascading: bool,
    root: u32,
}

impl Bbst {
    /// Builds a BBST over `buckets` keyed by `key_kind`
    /// (`BBST-BUILDING`, Algorithm 2), without fractional cascading —
    /// the paper's default analysis path.
    ///
    /// `buckets` must come from [`crate::partition_into_buckets`] — i.e.
    /// consecutive runs of an x-sorted array, so both `min_x` and `max_x`
    /// are non-decreasing across the slice.
    pub fn build(buckets: &[Bucket], key_kind: KeyKind) -> Self {
        Self::build_inner(buckets, key_kind, false)
    }

    /// Builds with fractional cascading enabled (the optional
    /// optimization of Lemma 4; ~3× extra arena memory for the rank
    /// triples, one binary search per quadrant query instead of one per
    /// visited node).
    pub fn build_cascading(buckets: &[Bucket], key_kind: KeyKind) -> Self {
        Self::build_inner(buckets, key_kind, true)
    }

    fn build_inner(buckets: &[Bucket], key_kind: KeyKind, cascading: bool) -> Self {
        let b = buckets.len();
        debug_assert!(
            buckets
                .windows(2)
                .all(|w| key_of(&w[0], key_kind) <= key_of(&w[1], key_kind)),
            "bucket keys must be non-decreasing"
        );
        let mut t = Bbst {
            key_kind,
            nodes: Vec::with_capacity(2 * b.max(1)),
            arena: Vec::new(),
            mass: Vec::new(),
            ranks: Vec::new(),
            cascading,
            root: NONE,
        };
        if b == 0 {
            return t;
        }
        // B: bucket indices sorted by key (already, by construction).
        let keys: Vec<u32> = (0..b as u32).collect();
        // Bcp1 / Bcp2: copies sorted by min-y / max-y (Algorithm 2 line 3).
        let mut by_min = keys.clone();
        by_min.sort_by(|&i, &j| {
            buckets[i as usize]
                .min_y
                .total_cmp(&buckets[j as usize].min_y)
        });
        let mut by_max = keys.clone();
        by_max.sort_by(|&i, &j| {
            buckets[i as usize]
                .max_y
                .total_cmp(&buckets[j as usize].max_y)
        });
        t.root = t.make_node(buckets, &keys, &by_min, &by_max);
        t
    }

    /// Recursive `MAKE-NODE` (Algorithm 2 lines 6–24).
    fn make_node(
        &mut self,
        buckets: &[Bucket],
        keys: &[u32],
        by_min: &[u32],
        by_max: &[u32],
    ) -> u32 {
        if keys.is_empty() {
            return NONE;
        }
        let kk = self.key_kind;
        let median = key_of(&buckets[keys[keys.len() / 2] as usize], kk);

        // A arrays: every bucket of this subtree, in both y orders —
        // with fractional-cascading rank triples when enabled (the rank
        // of each prefix within the equal/left/right partitions, which
        // lets a child's partition point be derived from the parent's
        // in O(1) instead of a fresh binary search).
        let a_min = self.push_a_segment(buckets, by_min, median);
        let a_max = self.push_a_segment(buckets, by_max, median);

        // B lists: equal-key buckets, in both y orders; remainders are
        // partitioned for the children (order-preserving).
        let mut b_min_ids = Vec::new();
        let mut min_l = Vec::new();
        let mut min_r = Vec::new();
        for &i in by_min {
            let k = key_of(&buckets[i as usize], kk);
            if k == median {
                b_min_ids.push(i);
            } else if k < median {
                min_l.push(i);
            } else {
                min_r.push(i);
            }
        }
        let mut b_max_ids = Vec::new();
        let mut max_l = Vec::new();
        let mut max_r = Vec::new();
        for &i in by_max {
            let k = key_of(&buckets[i as usize], kk);
            if k == median {
                b_max_ids.push(i);
            } else if k < median {
                max_l.push(i);
            } else {
                max_r.push(i);
            }
        }
        let b_min = self.push_segment(buckets, &b_min_ids);
        let b_max = self.push_segment(buckets, &b_max_ids);

        let me = self.nodes.len() as u32;
        self.nodes.push(Node {
            key: median,
            left: NONE,
            right: NONE,
            b_min,
            b_max,
            a_min,
            a_max,
        });

        // Leaf cut-off (Algorithm 2 line 22).
        if keys.len() > 1 {
            // `keys` is sorted by key, so the children's key slices are
            // the prefix strictly below and the suffix strictly above.
            let lo = keys.partition_point(|&i| key_of(&buckets[i as usize], kk) < median);
            let hi = keys.partition_point(|&i| key_of(&buckets[i as usize], kk) <= median);
            let left = self.make_node(buckets, &keys[..lo], &min_l, &max_l);
            let right = self.make_node(buckets, &keys[hi..], &min_r, &max_r);
            self.nodes[me as usize].left = left;
            self.nodes[me as usize].right = right;
        }
        me
    }

    /// Copies `ids` into the arena along with its running point-count
    /// prefix; returns the segment.
    fn push_segment(&mut self, buckets: &[Bucket], ids: &[u32]) -> Seg {
        let start = self.arena.len() as u32;
        let mut acc = 0u32;
        for &i in ids {
            self.arena.push(i);
            acc += buckets[i as usize].len();
            self.mass.push(acc);
            if self.cascading {
                // keep `ranks` aligned with `arena`; B-list entries are
                // never rank-queried
                self.ranks.push([0; 3]);
            }
        }
        (start, self.arena.len() as u32)
    }

    /// Like [`Bbst::push_segment`], but for the node's `A` arrays: also
    /// records the cascading rank triples against the split `median`.
    fn push_a_segment(&mut self, buckets: &[Bucket], ids: &[u32], median: f64) -> Seg {
        if !self.cascading {
            return self.push_segment(buckets, ids);
        }
        let start = self.arena.len() as u32;
        let mut acc = 0u32;
        let mut counts = [0u32; 3];
        let kk = self.key_kind;
        for &i in ids {
            self.arena.push(i);
            acc += buckets[i as usize].len();
            self.mass.push(acc);
            let k = key_of(&buckets[i as usize], kk);
            let class = if k == median {
                RankOf::Eq
            } else if k < median {
                RankOf::Left
            } else {
                RankOf::Right
            };
            counts[class as usize] += 1;
            self.ranks.push(counts);
        }
        (start, self.arena.len() as u32)
    }

    /// Rank of the first `pos` entries of `seg` within partition `of`
    /// (cascading only).
    #[inline]
    fn rank(&self, seg: Seg, pos: u32, of: RankOf) -> u32 {
        if pos == 0 {
            0
        } else {
            self.ranks[(seg.0 + pos - 1) as usize][of as usize]
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Key kind the tree was built with.
    #[inline]
    pub fn key_kind(&self) -> KeyKind {
        self.key_kind
    }

    /// `true` iff the tree carries fractional-cascading bridges.
    #[inline]
    pub fn is_cascading(&self) -> bool {
        self.cascading
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node>()
            + self.arena.capacity() * std::mem::size_of::<u32>()
            + self.mass.capacity() * std::mem::size_of::<u32>()
            + self.ranks.capacity() * std::mem::size_of::<[u32; 3]>()
    }

    /// Enumerates every matched `(segment, run_lo, run_hi)` of the
    /// quadrant query — the unified entry point for counting and
    /// sampling. Picks the cascaded walk when bridges are available,
    /// otherwise binary-searches each visited segment.
    pub(crate) fn for_each_matched_run(
        &self,
        x0: f64,
        y_pred: YPred,
        y0: f64,
        buckets: &[Bucket],
        mut visit: impl FnMut(Seg, u32, u32),
    ) {
        if self.cascading {
            self.cascaded_matched_runs(x0, y_pred, y0, buckets, visit);
        } else {
            self.for_each_matched_segment(x0, y_pred, |seg| {
                let (lo, hi) = self.matched_run(seg, y_pred, y0, buckets);
                visit(seg, lo, hi);
            });
        }
    }

    /// Converts a partition point `pos` (relative to `seg`) into the
    /// matched run: the suffix for `MaxAtLeast`, the prefix for
    /// `MinAtMost`.
    #[inline]
    fn run_from_pos(seg: Seg, pos: u32, y_pred: YPred) -> (u32, u32) {
        match y_pred {
            YPred::MaxAtLeast => (seg.0 + pos, seg.1),
            YPred::MinAtMost => (seg.0, seg.0 + pos),
        }
    }

    /// Relative partition point of `seg` for the y predicate (the count
    /// of entries *excluded* by `MaxAtLeast`, or *included* by
    /// `MinAtMost` — in both cases the boundary index).
    #[inline]
    fn partition_pos(&self, seg: Seg, y_pred: YPred, y0: f64, buckets: &[Bucket]) -> u32 {
        let slice = &self.arena[seg.0 as usize..seg.1 as usize];
        (match y_pred {
            YPred::MaxAtLeast => slice.partition_point(|&i| buckets[i as usize].max_y < y0),
            YPred::MinAtMost => slice.partition_point(|&i| buckets[i as usize].min_y <= y0),
        }) as u32
    }

    /// The fractional-cascading walk: one binary search at the root,
    /// then `O(1)` rank lookups per visited node. `O(log b)` total.
    fn cascaded_matched_runs(
        &self,
        x0: f64,
        y_pred: YPred,
        y0: f64,
        buckets: &[Bucket],
        mut visit: impl FnMut(Seg, u32, u32),
    ) {
        if self.root == NONE {
            return;
        }
        let ge = matches!(self.key_kind, KeyKind::MaxX);
        let a_of = |n: &Node| match y_pred {
            YPred::MaxAtLeast => n.a_max,
            YPred::MinAtMost => n.a_min,
        };
        let b_of = |n: &Node| match y_pred {
            YPred::MaxAtLeast => n.b_max,
            YPred::MinAtMost => n.b_min,
        };
        let mut cur = self.root;
        // the single binary search of the cascade
        let mut pos = self.partition_pos(a_of(&self.nodes[cur as usize]), y_pred, y0, buckets);
        loop {
            let node = &self.nodes[cur as usize];
            let a_seg = a_of(node);
            let excluded = if ge { node.key < x0 } else { node.key > x0 };
            if excluded {
                let child = if ge { node.right } else { node.left };
                if child == NONE {
                    return;
                }
                pos = self.rank(a_seg, pos, if ge { RankOf::Right } else { RankOf::Left });
                cur = child;
                continue;
            }
            // on-path node: its equal-key B list matches entirely in x
            let b_seg = b_of(node);
            let b_pos = self.rank(a_seg, pos, RankOf::Eq);
            let (lo, hi) = Self::run_from_pos(b_seg, b_pos, y_pred);
            visit(b_seg, lo, hi);
            // canonical far child
            let canonical = if ge { node.right } else { node.left };
            if canonical != NONE {
                let c_seg = a_of(&self.nodes[canonical as usize]);
                let c_pos = self.rank(a_seg, pos, if ge { RankOf::Right } else { RankOf::Left });
                let (lo, hi) = Self::run_from_pos(c_seg, c_pos, y_pred);
                visit(c_seg, lo, hi);
            }
            if node.key == x0 {
                return;
            }
            let next = if ge { node.left } else { node.right };
            if next == NONE {
                return;
            }
            pos = self.rank(a_seg, pos, if ge { RankOf::Left } else { RankOf::Right });
            cur = next;
        }
    }

    /// Walks the x-dimension of the tree for the 1-sided key predicate
    /// (`key ≥ x0` on a `MaxX` tree, `key ≤ x0` on a `MinX` tree) and
    /// invokes `visit` on each matched segment: the on-path node's `B`
    /// list and each canonical child's `A` array, both in the y-order
    /// selected by `y_pred`. `O(log b)` visits.
    pub(crate) fn for_each_matched_segment(
        &self,
        x0: f64,
        y_pred: YPred,
        mut visit: impl FnMut(Seg),
    ) {
        let ge = match self.key_kind {
            // `T_max` answers [x0, ∞): keep subtrees with key ≥ x0.
            KeyKind::MaxX => true,
            // `T_min` answers (−∞, x0]: keep subtrees with key ≤ x0.
            KeyKind::MinX => false,
        };
        let mut cur = self.root;
        while cur != NONE {
            let node = &self.nodes[cur as usize];
            let excluded = if ge { node.key < x0 } else { node.key > x0 };
            if excluded {
                // This node and its near subtree fail the predicate; only
                // the far side can still match.
                cur = if ge { node.right } else { node.left };
                continue;
            }
            // Node's own buckets all have key == node.key, which matches.
            visit(match y_pred {
                YPred::MaxAtLeast => node.b_max,
                YPred::MinAtMost => node.b_min,
            });
            // The far child is canonical: every key in it matches.
            let canonical = if ge { node.right } else { node.left };
            if canonical != NONE {
                let c = &self.nodes[canonical as usize];
                visit(match y_pred {
                    YPred::MaxAtLeast => c.a_max,
                    YPred::MinAtMost => c.a_min,
                });
            }
            if node.key == x0 {
                // Everything on the near side is strictly past x0.
                break;
            }
            cur = if ge { node.left } else { node.right };
        }
    }

    /// Within segment `seg` (sorted ascending by the `y_pred` ordinate),
    /// the contiguous run of buckets matching the y predicate against
    /// `y0`, as `(first, last_exclusive)` arena positions. One binary
    /// search.
    #[inline]
    pub(crate) fn matched_run(
        &self,
        seg: Seg,
        y_pred: YPred,
        y0: f64,
        buckets: &[Bucket],
    ) -> (u32, u32) {
        let slice = &self.arena[seg.0 as usize..seg.1 as usize];
        match y_pred {
            YPred::MaxAtLeast => {
                let lb = slice.partition_point(|&i| buckets[i as usize].max_y < y0);
                (seg.0 + lb as u32, seg.1)
            }
            YPred::MinAtMost => {
                let ub = slice.partition_point(|&i| buckets[i as usize].min_y <= y0);
                (seg.0, seg.0 + ub as u32)
            }
        }
    }

    /// Bucket index stored at arena position `pos`.
    #[inline]
    pub(crate) fn bucket_at(&self, pos: u32) -> u32 {
        self.arena[pos as usize]
    }

    /// True point count of the arena run `[first, last)` within the
    /// segment `seg` (uses the per-segment mass prefix).
    #[inline]
    pub(crate) fn run_mass(&self, seg: Seg, first: u32, last: u32) -> u64 {
        if first >= last {
            return 0;
        }
        let upto = |pos_exclusive: u32| -> u64 {
            if pos_exclusive == seg.0 {
                0
            } else {
                self.mass[(pos_exclusive - 1) as usize] as u64
            }
        };
        upto(last) - upto(first)
    }
}

#[inline]
pub(crate) fn key_of(b: &Bucket, kk: KeyKind) -> f64 {
    match kk {
        KeyKind::MinX => b.min_x,
        KeyKind::MaxX => b.max_x,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::partition_into_buckets;
    use srj_geom::{Point, PointId};

    fn make(points: &[Point], cap: u32) -> (Vec<PointId>, Vec<Bucket>) {
        let mut by_x: Vec<PointId> = (0..points.len() as u32).collect();
        by_x.sort_by(|&a, &b| points[a as usize].x.total_cmp(&points[b as usize].x));
        let buckets = partition_into_buckets(points, &by_x, cap);
        (by_x, buckets)
    }

    /// Collect matched bucket indices via the tree, for cross-checking.
    fn matched_buckets(t: &Bbst, buckets: &[Bucket], x0: f64, y_pred: YPred, y0: f64) -> Vec<u32> {
        let mut out = Vec::new();
        t.for_each_matched_segment(x0, y_pred, |seg| {
            let (lo, hi) = t.matched_run(seg, y_pred, y0, buckets);
            for pos in lo..hi {
                out.push(t.bucket_at(pos));
            }
        });
        out.sort_unstable();
        out
    }

    fn brute_matched(buckets: &[Bucket], kk: KeyKind, x0: f64, y_pred: YPred, y0: f64) -> Vec<u32> {
        (0..buckets.len() as u32)
            .filter(|&i| {
                let b = &buckets[i as usize];
                let xk = key_of(b, kk);
                let x_ok = match kk {
                    KeyKind::MaxX => xk >= x0,
                    KeyKind::MinX => xk <= x0,
                };
                let y_ok = match y_pred {
                    YPred::MaxAtLeast => b.max_y >= y0,
                    YPred::MinAtMost => b.min_y <= y0,
                };
                x_ok && y_ok
            })
            .collect()
    }

    fn spread_points(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new((i % 37) as f64, ((i * 13) % 29) as f64))
            .collect()
    }

    #[test]
    fn empty_tree() {
        let t = Bbst::build(&[], KeyKind::MaxX);
        assert_eq!(t.num_nodes(), 0);
        let mut visited = 0;
        t.for_each_matched_segment(0.0, YPred::MaxAtLeast, |_| visited += 1);
        assert_eq!(visited, 0);
    }

    #[test]
    fn single_bucket() {
        let pts = vec![Point::new(1.0, 2.0), Point::new(3.0, 4.0)];
        let (_, buckets) = make(&pts, 8);
        assert_eq!(buckets.len(), 1);
        let t = Bbst::build(&buckets, KeyKind::MaxX);
        assert_eq!(t.num_nodes(), 1);
        // key = max_x = 3.0; query x0 = 2.0 matches
        assert_eq!(
            matched_buckets(&t, &buckets, 2.0, YPred::MaxAtLeast, 0.0),
            vec![0]
        );
        // x0 past the key: no match
        assert!(matched_buckets(&t, &buckets, 3.5, YPred::MaxAtLeast, 0.0).is_empty());
        // y filter can reject
        assert!(matched_buckets(&t, &buckets, 2.0, YPred::MaxAtLeast, 5.0).is_empty());
    }

    #[test]
    fn tree_matches_brute_force_all_quadrant_shapes() {
        let pts = spread_points(200);
        for cap in [1u32, 3, 8] {
            let (_, buckets) = make(&pts, cap);
            let t_max = Bbst::build(&buckets, KeyKind::MaxX);
            let t_min = Bbst::build(&buckets, KeyKind::MinX);
            for x0 in [-1.0, 0.0, 5.5, 18.0, 36.0, 40.0] {
                for y0 in [-1.0, 0.0, 7.3, 14.0, 28.0, 31.0] {
                    for y_pred in [YPred::MaxAtLeast, YPred::MinAtMost] {
                        assert_eq!(
                            matched_buckets(&t_max, &buckets, x0, y_pred, y0),
                            brute_matched(&buckets, KeyKind::MaxX, x0, y_pred, y0),
                            "T_max cap={cap} x0={x0} y0={y0} {y_pred:?}"
                        );
                        assert_eq!(
                            matched_buckets(&t_min, &buckets, x0, y_pred, y0),
                            brute_matched(&buckets, KeyKind::MinX, x0, y_pred, y0),
                            "T_min cap={cap} x0={x0} y0={y0} {y_pred:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn duplicate_keys_stay_balanced() {
        // Many points share x — all buckets share the same key; the B
        // lists must absorb them without degenerating the tree.
        let pts: Vec<Point> = (0..64).map(|i| Point::new(7.0, i as f64)).collect();
        let (_, buckets) = make(&pts, 4);
        assert_eq!(buckets.len(), 16);
        let t = Bbst::build(&buckets, KeyKind::MaxX);
        // All keys equal ⇒ a single node holds every bucket in its B lists.
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(
            matched_buckets(&t, &buckets, 7.0, YPred::MaxAtLeast, 0.0).len(),
            16
        );
        assert!(matched_buckets(&t, &buckets, 7.1, YPred::MaxAtLeast, 0.0).is_empty());
    }

    #[test]
    fn visits_are_logarithmic() {
        let pts: Vec<Point> = (0..4096)
            .map(|i| Point::new(i as f64, (i % 64) as f64))
            .collect();
        let (_, buckets) = make(&pts, 8); // 512 buckets
        let t = Bbst::build(&buckets, KeyKind::MaxX);
        let mut visits = 0usize;
        t.for_each_matched_segment(2048.0, YPred::MaxAtLeast, |_| visits += 1);
        // ≤ 2 segments per level of a balanced tree over 512 buckets
        assert!(visits <= 2 * 11, "visits = {visits}");
    }

    #[test]
    fn run_mass_counts_true_points() {
        let pts = spread_points(50);
        let (_, buckets) = make(&pts, 7); // last bucket has 1 point
        let t = Bbst::build(&buckets, KeyKind::MaxX);
        // whole-root A segment: total mass = all points
        let mut total = 0u64;
        t.for_each_matched_segment(f64::NEG_INFINITY, YPred::MaxAtLeast, |seg| {
            let (lo, hi) = t.matched_run(seg, YPred::MaxAtLeast, f64::NEG_INFINITY, &buckets);
            total += t.run_mass(seg, lo, hi);
        });
        assert_eq!(total, 50);
    }

    #[test]
    fn memory_is_linear_ish() {
        // Lemma 2: arena entries ≤ O(N); with cap = log2(N) the ratio
        // stays bounded.
        let pts = spread_points(4096);
        let (_, buckets) = make(&pts, 12);
        let t = Bbst::build(&buckets, KeyKind::MaxX);
        // arena = 2 copies per ancestor + B lists ⇒ ≤ ~2·b·log2(b) + 2b
        let b = buckets.len() as f64;
        let max_entries = 2.0 * b * b.log2().ceil() + 2.0 * b;
        assert!((t.arena.len() as f64) <= max_entries + 1.0);
    }
}
