use srj_geom::{Point, PointId};

/// A bucket (paper Definition 3): a run of at most `⌈log₂ m⌉` points,
/// consecutive in the cell's x-sorted order, together with its coordinate
/// extrema.
///
/// Buckets do not own points — they address a contiguous range of the
/// owning cell's x-sorted id array (`S(c)` in the paper).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Bucket {
    /// Start of the range in the cell's x-sorted id array.
    pub lo: u32,
    /// One past the end of the range.
    pub hi: u32,
    /// `min_{s ∈ B} s.x`.
    pub min_x: f64,
    /// `max_{s ∈ B} s.x`.
    pub max_x: f64,
    /// `min_{s ∈ B} s.y`.
    pub min_y: f64,
    /// `max_{s ∈ B} s.y`.
    pub max_y: f64,
}

impl Bucket {
    /// Number of points in the bucket.
    #[inline]
    pub fn len(&self) -> u32 {
        self.hi - self.lo
    }

    /// `true` iff the bucket holds no points (never produced by
    /// [`partition_into_buckets`]).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }
}

/// Bucket capacity for a dataset of `m` points: `⌈log₂ m⌉`, at least 1.
///
/// The size is what balances the BBST's space (`O(N/log m)` nodes, each
/// storing its subtree's buckets ⇒ `O(N)` total, Lemma 2) against the
/// approximation error (`µ ≤ O(log m) · exact`, Lemma 5).
#[inline]
pub fn bucket_capacity(m: usize) -> u32 {
    if m <= 2 {
        1
    } else {
        (usize::BITS - (m - 1).leading_zeros()).max(1)
    }
}

/// Chops a cell's x-sorted id array into consecutive buckets of
/// `capacity` points (the last bucket may be shorter) and records each
/// bucket's coordinate extrema. `O(N)` time.
///
/// # Panics
///
/// Panics if `capacity == 0` or if `by_x` is not sorted by x
/// (debug builds only for the sortedness check).
pub fn partition_into_buckets(points: &[Point], by_x: &[PointId], capacity: u32) -> Vec<Bucket> {
    assert!(capacity >= 1, "bucket capacity must be at least 1");
    debug_assert!(
        by_x.windows(2)
            .all(|w| points[w[0] as usize].x <= points[w[1] as usize].x),
        "by_x must be sorted by x coordinate"
    );
    let n = by_x.len();
    let mut buckets = Vec::with_capacity(n.div_ceil(capacity as usize));
    let mut lo = 0usize;
    while lo < n {
        let hi = (lo + capacity as usize).min(n);
        let mut min_x = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        for &id in &by_x[lo..hi] {
            let p = points[id as usize];
            min_x = min_x.min(p.x);
            max_x = max_x.max(p.x);
            min_y = min_y.min(p.y);
            max_y = max_y.max(p.y);
        }
        buckets.push(Bucket {
            lo: lo as u32,
            hi: hi as u32,
            min_x,
            max_x,
            min_y,
            max_y,
        });
        lo = hi;
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_ceil_log2() {
        assert_eq!(bucket_capacity(0), 1);
        assert_eq!(bucket_capacity(1), 1);
        assert_eq!(bucket_capacity(2), 1);
        assert_eq!(bucket_capacity(3), 2);
        assert_eq!(bucket_capacity(4), 2);
        assert_eq!(bucket_capacity(5), 3);
        assert_eq!(bucket_capacity(1024), 10);
        assert_eq!(bucket_capacity(1025), 11);
        assert_eq!(bucket_capacity(1_000_000), 20);
    }

    fn sorted_ids(points: &[Point]) -> Vec<PointId> {
        let mut ids: Vec<PointId> = (0..points.len() as u32).collect();
        ids.sort_by(|&a, &b| points[a as usize].x.total_cmp(&points[b as usize].x));
        ids
    }

    #[test]
    fn buckets_cover_all_points_in_order() {
        let points: Vec<Point> = (0..23)
            .map(|i| Point::new(i as f64, (i * 7 % 23) as f64))
            .collect();
        let by_x = sorted_ids(&points);
        let buckets = partition_into_buckets(&points, &by_x, 5);
        assert_eq!(buckets.len(), 5); // 5+5+5+5+3
        assert_eq!(buckets.last().unwrap().len(), 3);
        let mut covered = 0u32;
        for b in &buckets {
            assert_eq!(b.lo, covered, "buckets must be consecutive");
            covered = b.hi;
            assert!(b.len() <= 5 && !b.is_empty());
        }
        assert_eq!(covered as usize, points.len());
    }

    #[test]
    fn extrema_are_tight() {
        let points = vec![
            Point::new(1.0, 10.0),
            Point::new(2.0, -5.0),
            Point::new(3.0, 7.0),
        ];
        let by_x = sorted_ids(&points);
        let b = &partition_into_buckets(&points, &by_x, 8)[0];
        assert_eq!((b.min_x, b.max_x), (1.0, 3.0));
        assert_eq!((b.min_y, b.max_y), (-5.0, 10.0));
    }

    #[test]
    fn bucket_x_keys_are_monotone() {
        // consecutive runs of an x-sorted array: min_x and max_x are both
        // non-decreasing across buckets — the invariant the BBST key
        // ordering relies on, and the reason at most one bucket can
        // straddle a query abscissa (Lemma 5's "+ log m" sub-case).
        let points: Vec<Point> = (0..100)
            .map(|i| Point::new((i / 3) as f64, (i % 10) as f64))
            .collect();
        let by_x = sorted_ids(&points);
        let buckets = partition_into_buckets(&points, &by_x, 7);
        for w in buckets.windows(2) {
            assert!(w[0].min_x <= w[1].min_x);
            assert!(w[0].max_x <= w[1].max_x);
        }
        // at most one bucket straddles any abscissa x0
        for x0 in [0.0, 3.3, 15.0, 33.0] {
            let straddling = buckets
                .iter()
                .filter(|b| b.min_x < x0 && x0 <= b.max_x)
                .count();
            assert!(
                straddling <= 1,
                "x0 = {x0}: {straddling} straddling buckets"
            );
        }
    }

    #[test]
    fn single_point_and_empty() {
        let points = vec![Point::new(4.0, 2.0)];
        let buckets = partition_into_buckets(&points, &[0], 3);
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].len(), 1);
        assert!(partition_into_buckets(&[], &[], 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "bucket capacity must be at least 1")]
    fn zero_capacity_panics() {
        partition_into_buckets(&[], &[], 0);
    }
}
