//! The TCP serving subsystem: a readiness-driven event loop owning
//! every connection, a fixed worker pool, bounded per-connection
//! response queues.
//!
//! ```text
//!             ┌──────────────────────────────────────────────────────┐
//!             │                     Server                           │
//!  TCP ─────► │ event loop (epoll) ── decode ──► JobQueue (global)   │
//!             │   accept · read · write · timers     │               │
//!             │        ▲        ▲              worker × W  (fixed)   │
//!             │        │        │                    │ one batch per │
//!             │        │   bounded OutQueue (frames) │ step, then    │
//!             │        │        ▲                    ▼ requeue       │
//!             │        └────────┴──── try_send ──────┘               │
//!             └──────────────────────────────────────────────────────┘
//! ```
//!
//! **Threading.** One event-loop thread (see `crate::event_loop`)
//! owns the listener and every connection socket — all nonblocking,
//! driven by `epoll(7)` readiness (with a `poll(2)` fallback) and a
//! timer wheel for every deadline; `workers` pool threads do the
//! sampling. No per-connection threads exist: ten thousand idle
//! keepalive connections cost ten thousand registered fds, not twenty
//! thousand parked stacks.
//!
//! **Batching.** A `SAMPLE` request becomes one job holding one
//! [`SamplerHandle`] for its whole lifetime — the engine/handle
//! acquisition is paid once per request, not per sample. Each worker
//! step drains one batch ([`ServerConfig::batch_pairs`] samples)
//! through [`SamplerHandle::stream`] into one `BATCH` frame, then
//! requeues the job at the back of the global queue, so concurrent
//! requests interleave fairly regardless of their `t`.
//!
//! **Backpressure.** Each connection owns a *bounded* frame queue
//! ([`ServerConfig::queue_frames`], the [`ConnShared`] out-queue)
//! drained by the event loop as the socket accepts bytes. Workers only
//! ever [`ConnShared::try_send`]: when a client stops reading and its
//! queue fills, the job *parks itself on the connection* and the
//! worker moves on — a slow reader stalls its own stream, never the
//! pool. The hand-back is lock-step safe: after parking, the worker
//! kicks the loop (a dirty mark + waker write), and the loop
//! re-queues parked jobs whenever a write frees queue room, so a
//! parked job is re-activated on the very next free slot and cannot
//! be lost to the park/drain race. The loop also stops *reading* (and
//! decoding) a connection whose out-queue is at capacity, so control
//! answers stay bounded and a flooding client is throttled by its own
//! TCP window.
//!
//! **Shutdown.** [`Server::shutdown`] (or a client `SHUTDOWN` frame)
//! wakes the event loop (which tears down every connection), closes
//! the job queue, and joins every thread the server ever spawned — no
//! leaks, asserted by the loopback tests.

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use srj_core::{JoinPair, SampleConfig, SampleError};
use srj_engine::{DatasetStore, EngineStats, EpochConfig, EpochEngine, SamplerHandle};
use srj_geom::Point;
use srj_obs::journal::EventKind;
use srj_obs::profiler::ALL_STATES;
use srj_obs::timeseries::{Recorder, SeriesStore};
use srj_obs::{
    trace, Counter, Gauge, Histogram, Profiler, Registry, SlowEntry, SlowLog, StateTag, WorkerState,
};

use crate::event_loop::{EventLoop, LoopNotify};
use crate::fault::FaultPlan;
use crate::protocol::{
    encode_response, EpochInfo, RequestStats, RequestStatus, Response, SampleRequest,
    ServerStatsFrame, Side, SlowLogEntry, TraceSpan, UpdateStats, MAX_FRAME_LEN,
};

/// `retry_after_ms` suggested on load-shed `BUSY` answers: long enough
/// for a worker step to drain queue headroom, short enough that a
/// shed client re-offers while the burst is still being absorbed.
pub(crate) const SHED_RETRY_MS: u32 = 50;

/// Fault-schedule roles: the decode (reader) and flush (writer) sides
/// of one connection draw from independent deterministic streams —
/// the same streams the old thread-per-connection layer drew, so a
/// chaos seed reproduces the same fault schedule across the rewrite.
pub(crate) const FAULT_ROLE_READER: u64 = 1;
pub(crate) const FAULT_ROLE_WRITER: u64 = 2;

/// Serving knobs. The defaults suit a loopback bench on a small host;
/// production would raise `workers` to the core count.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker-pool threads doing the actual sampling. Default 2.
    pub workers: usize,
    /// Bounded per-connection response-queue depth, in frames — the
    /// backpressure window. Default 8.
    pub queue_frames: usize,
    /// Samples per `BATCH` frame. Default 8192 (64 KiB frames).
    pub batch_pairs: usize,
    /// Retained serving engines per dataset (one per requested
    /// `(l, shards, algorithm)` shape). Default 16.
    pub cache_capacity: usize,
    /// `SampleConfig::build_threads` for engine builds triggered by
    /// cache misses. Default 0 (all cores).
    pub build_threads: usize,
    /// Epoch/re-plan knobs for every served dataset (rebuild
    /// threshold, re-plan divergence factor; the per-request shard
    /// count and forced algorithm override the corresponding fields).
    pub epoch: EpochConfig,
    /// Fraction of `SAMPLE` requests that get a trace id and record
    /// spans ([`srj_obs::trace`]). `0.0` (default) disables tracing —
    /// the instrumented call sites cost one relaxed load each.
    /// Applied process-wide by [`Server::start`].
    pub trace_sample_rate: f64,
    /// Deadline for the mandatory `HELLO` to arrive on a fresh
    /// connection; a peer that sends nothing inside it is dropped
    /// without a handshake answer. Default 10 s. Zero disables.
    pub handshake_timeout: Duration,
    /// Mid-frame read deadline: a peer that stalls *inside* a frame
    /// for this long is disconnected (a connection idle *between*
    /// frames is governed by `idle_timeout` instead). Default 30 s.
    /// Zero disables.
    pub read_timeout: Duration,
    /// Per-`write(2)` deadline on the response socket; a peer whose
    /// receive window stays closed this long is disconnected. Default
    /// 30 s. Zero disables.
    pub write_timeout: Duration,
    /// Idle-connection reap deadline: a connection with no received
    /// frame and no in-flight work for this long is closed by the
    /// event loop's sweep timer (journaled as `ConnReaped`). The
    /// sweep runs at half this interval, so reaping happens within
    /// 1.5× the deadline. Default 300 s. Zero disables.
    pub idle_timeout: Duration,
    /// Per-connection request-frame budget, frames/second (token
    /// bucket, burst = one second's budget); an exceeded budget
    /// answers `BUSY` without executing. `0` (default) = unlimited.
    pub rate_limit_rps: u32,
    /// Per-connection mutation-frame (`INSERT`/`DELETE`) budget,
    /// frames/second, applied on top of `rate_limit_rps`. `0`
    /// (default) = unlimited.
    pub mutation_rate_limit_rps: u32,
    /// Load-shed high-water mark: when the global job queue holds at
    /// least this many jobs — or the connection itself already has a
    /// parked (backpressured) request — new `SAMPLE` requests are
    /// answered `BUSY` instead of queued. `0` disables shedding.
    /// Default 256.
    pub shed_high_water: usize,
    /// Fault-injection plan for the chaos harness. The default is
    /// inert: nothing fires, the sites cost one branch per frame.
    pub fault_plan: FaultPlan,
    /// Loopback HTTP observability port (`/metrics`, `/healthz`,
    /// `/vars` on `127.0.0.1`; `0` = OS-assigned, see
    /// [`Server::http_addr`]). `None` (default) disables the listener.
    pub http_port: Option<u16>,
    /// Slow requests retained for forensics (`SLOWLOG` frame,
    /// `/vars`). Nonzero turns on always-record span rings
    /// ([`srj_obs::trace::set_always_record`]) so every request leaves
    /// a span trail the capture can snapshot. `0` disables tail-based
    /// capture entirely. Default 64.
    pub slow_log_capacity: usize,
    /// Latency threshold for slow-request capture, nanoseconds. `0`
    /// (default) derives the threshold from the live request-latency
    /// p99 once at least [`SLOW_AUTO_MIN_REQUESTS`] requests have been
    /// observed (nothing is captured before that).
    pub slow_threshold_ns: u64,
    /// Cadence of the in-process time-series recorder
    /// ([`srj_obs::timeseries`]), milliseconds. `0` disables the
    /// recorder (and `/vars` serves no series). Default 1000.
    pub timeseries_cadence_ms: u64,
    /// Whether the maintainer samples worker/reader/writer state tags
    /// into `srj_worker_state_samples_total{state=...}`. Default true.
    pub profiler: bool,
    /// `/healthz` reports `degraded` while the most recent distress
    /// signal (load shed, connection reap, handshake reject, engine
    /// re-plan) is younger than this window, milliseconds. Default
    /// 5000.
    pub health_degraded_window_ms: u64,
    /// Whether `SAMPLE` batches are drawn through the engines'
    /// buffered fast path ([`SamplerHandle::sample_batch`]:
    /// monomorphised RNG, pre-drawn per-cell sample buffers, one stats
    /// record per batch) instead of the per-item streaming draw.
    /// Default true; turn off to A/B the legacy path.
    pub buffers: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_frames: 8,
            batch_pairs: 8192,
            cache_capacity: 16,
            build_threads: 0,
            epoch: EpochConfig::default(),
            trace_sample_rate: 0.0,
            handshake_timeout: Duration::from_secs(10),
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            idle_timeout: Duration::from_secs(300),
            rate_limit_rps: 0,
            mutation_rate_limit_rps: 0,
            shed_high_water: 256,
            fault_plan: FaultPlan::inert(),
            http_port: None,
            slow_log_capacity: 64,
            slow_threshold_ns: 0,
            timeseries_cadence_ms: 1000,
            profiler: true,
            health_degraded_window_ms: 5000,
            buffers: true,
        }
    }
}

/// Requests the latency histogram must have seen before the automatic
/// (`slow_threshold_ns == 0`) p99-derived slow threshold engages — a
/// p99 of three requests is noise, not a baseline.
pub const SLOW_AUTO_MIN_REQUESTS: u64 = 32;

/// Most entries a `SLOWLOG` answer carries, and most spans one entry
/// retains — together they bound the response frame well under
/// [`MAX_FRAME_LEN`].
pub(crate) const SLOWLOG_MAX_ENTRIES: usize = 32;
pub(crate) const SLOWLOG_MAX_SPANS: usize = 512;

/// Zero means "no deadline" throughout the config; the event loop
/// arms a timer-wheel entry only for `Some` deadlines.
pub(crate) fn timeout_opt(d: Duration) -> Option<Duration> {
    (!d.is_zero()).then_some(d)
}

/// Identity of one serving engine of a dataset: the request shape.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct EngineKey {
    l_bits: u64,
    shards: usize,
    algorithm: Option<srj_engine::Algorithm>,
}

/// One registered workload: the mutable point store plus its serving
/// engines, one [`EpochEngine`] per requested `(l, shards, algorithm)`
/// shape. Updates mutate the store; every engine of the dataset
/// refreshes lazily on its next handle acquisition — a mutated dataset
/// is never answered from a stale index.
struct ServedDataset {
    store: Arc<DatasetStore>,
    engines: Mutex<Vec<(EngineKey, Arc<EpochEngine>)>>,
}

impl ServedDataset {
    fn new(store: Arc<DatasetStore>) -> Self {
        ServedDataset {
            store,
            engines: Mutex::new(Vec::new()),
        }
    }

    /// The engine for `key`, building it on a miss (outside the map
    /// lock, as with the engine cache: concurrent misses on different
    /// shapes must not serialise on one mutex for a whole build). The
    /// vector is kept in recency order — a hit moves its entry to the
    /// back — so eviction at capacity drops the least-recently-used
    /// shape, never a hot one; in-flight handles of an evicted engine
    /// keep serving through their `Arc`s.
    fn engine_for(
        &self,
        key: EngineKey,
        capacity: usize,
        build: impl FnOnce() -> EpochEngine,
        hits: &AtomicU64,
        misses: &AtomicU64,
    ) -> Arc<EpochEngine> {
        {
            let mut engines = self.engines.lock().expect("engine map poisoned");
            if let Some(i) = engines.iter().position(|(k, _)| *k == key) {
                hits.fetch_add(1, Ordering::Relaxed);
                let entry = engines.remove(i);
                let engine = Arc::clone(&entry.1);
                engines.push(entry);
                return engine;
            }
        }
        misses.fetch_add(1, Ordering::Relaxed);
        let engine = Arc::new(build());
        let mut engines = self.engines.lock().expect("engine map poisoned");
        if let Some(i) = engines.iter().position(|(k, _)| *k == key) {
            // Another thread built the same shape first; share its
            // engine (and swap cell) so epochs stay consistent.
            let entry = engines.remove(i);
            let shared = Arc::clone(&entry.1);
            engines.push(entry);
            return shared;
        }
        if engines.len() >= capacity.max(1) {
            engines.remove(0);
        }
        engines.push((key, Arc::clone(&engine)));
        engine
    }

    /// Longest recent swap across this dataset's engines.
    fn last_swap_ns(&self) -> u64 {
        self.engines
            .lock()
            .expect("engine map poisoned")
            .iter()
            .map(|(_, e)| e.last_swap().as_nanos().min(u128::from(u64::MAX)) as u64)
            .max()
            .unwrap_or(0)
    }

    fn engine_count(&self) -> usize {
        self.engines.lock().expect("engine map poisoned").len()
    }

    /// Cell-maintenance counters aggregated over this dataset's
    /// engines: `(patch_swaps, cells_patched, repairs, max last_swap_ns,
    /// Σµ)`.
    fn cell_stats(&self) -> (u64, u64, u64, u64, f64) {
        let engines = self.engines.lock().expect("engine map poisoned");
        let mut patch_swaps = 0u64;
        let mut cells_patched = 0u64;
        let mut repairs = 0u64;
        let mut last_swap_ns = 0u64;
        let mut mu_total = 0.0f64;
        for (_, e) in engines.iter() {
            // One consistent snapshot per engine: a request racing a
            // compaction must never pair the post-swap Σµ with the
            // pre-swap counters (or vice versa).
            let s = e.maintenance_snapshot();
            patch_swaps += s.patch_swaps;
            cells_patched += s.cells_patched;
            repairs += s.repairs;
            last_swap_ns = last_swap_ns.max(s.last_swap_ns);
            mu_total += s.mu_total;
        }
        (patch_swaps, cells_patched, repairs, last_swap_ns, mu_total)
    }

    /// Everything the `METRICS` exposition needs from this dataset's
    /// engines in one pass under the map lock, each engine read as one
    /// consistent [`srj_engine::MaintenanceSnapshot`].
    fn maintenance_stats(&self) -> MaintenanceStats {
        let engines = self.engines.lock().expect("engine map poisoned");
        let mut out = MaintenanceStats {
            engines: engines.len(),
            ..MaintenanceStats::default()
        };
        for (_, e) in engines.iter() {
            let s = e.maintenance_snapshot();
            out.minor_swaps += s.minor_swaps;
            out.major_swaps += s.major_swaps;
            out.patch_swaps += s.patch_swaps;
            out.cells_patched += s.cells_patched;
            out.repairs += s.repairs;
            out.replans += s.replans;
            out.mu_total += s.mu_total;
            out.epoch = out.epoch.max(s.epoch);
            out.buffer_hits += s.buffer_hits;
            out.buffer_refills += s.buffer_refills;
            out.buffer_invalidations += s.buffer_invalidations;
            let snap = e.stats();
            out.samples += snap.samples;
            out.iterations += snap.iterations;
        }
        out
    }
}

/// Aggregated per-dataset maintenance/rejection counters, summed over
/// the dataset's serving engines at scrape time.
#[derive(Default)]
struct MaintenanceStats {
    minor_swaps: u64,
    major_swaps: u64,
    patch_swaps: u64,
    cells_patched: u64,
    repairs: u64,
    replans: u64,
    mu_total: f64,
    samples: u64,
    iterations: u64,
    buffer_hits: u64,
    buffer_refills: u64,
    buffer_invalidations: u64,
    /// Serving epoch (max across engines), consistent with `mu_total`.
    epoch: u64,
    /// How many engines were aggregated (0 ⇒ fall back to the store's
    /// epoch for the `srj_epoch` gauge).
    engines: usize,
}

/// The datasets a server answers for, keyed by the `u64` ids clients
/// put in their requests. Registration happens before
/// [`Server::start`]; after that, clients mutate the registered
/// datasets over the wire (`INSERT`/`DELETE` frames) — the epoch
/// machinery keeps every serving engine consistent with the store.
#[derive(Default)]
pub struct DatasetRegistry {
    map: HashMap<u64, Arc<ServedDataset>>,
}

impl DatasetRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `(r, s)` under `id` as a fresh mutable store,
    /// replacing any previous entry.
    pub fn register(&mut self, id: u64, r: Vec<Point>, s: Vec<Point>) -> &mut Self {
        self.register_store(id, Arc::new(DatasetStore::new(r, s)))
    }

    /// Registers an existing store under `id` — e.g. one shared with
    /// in-process [`EpochEngine`]s, so local and remote mutations see
    /// one epoch history.
    pub fn register_store(&mut self, id: u64, store: Arc<DatasetStore>) -> &mut Self {
        self.map.insert(id, Arc::new(ServedDataset::new(store)));
        self
    }

    /// Registered ids, unordered.
    pub fn ids(&self) -> Vec<u64> {
        self.map.keys().copied().collect()
    }

    /// Number of registered datasets.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

// ---- jobs ----------------------------------------------------------------

/// What a queued job is doing.
pub(crate) enum JobState {
    /// Engine/handle not yet acquired (first worker step does it).
    Acquire,
    /// Streaming batches through an acquired handle.
    Stream(Box<SamplerHandle>),
    /// Pre-encoded frames only (stats answers, error frames).
    Respond,
}

/// One in-flight request. Lives in the global queue, on a worker, or
/// parked on its connection when the response queue is full.
pub(crate) struct Job {
    req: SampleRequest,
    conn: Arc<ConnShared>,
    state: JobState,
    /// Encoded frames not yet handed to the writer (front = next).
    outbox: VecDeque<Vec<u8>>,
    /// Set when the final `DONE` frame is in (or past) the outbox.
    done: Option<RequestStatus>,
    /// Samples delivered so far.
    sent: u64,
    /// Whether this job counts in the server's request statistics
    /// (stats/error answers don't).
    record: bool,
    /// Nonzero when this request won the trace-sampling coin flip; the
    /// id is echoed in the `DONE` frame so the client can fetch the
    /// spans.
    trace_id: u64,
    /// The id spans are recorded under on whichever worker thread steps
    /// the job: equal to `trace_id` for sampled requests, a forced id
    /// when slow-log capture is on (every request must leave a span
    /// trail the capture can snapshot), `0` otherwise. Never echoed —
    /// `DONE` semantics ride on `trace_id` alone.
    span_id: u64,
    started: Instant,
    /// Decode-to-first-worker-step delay, set on the first step — the
    /// queue-wait component of a slow-log capture.
    queue_wait: Option<Duration>,
}

impl Job {
    pub(crate) fn sample(
        req: SampleRequest,
        trace_id: u64,
        span_id: u64,
        conn: Arc<ConnShared>,
    ) -> Self {
        conn.inflight.fetch_add(1, Ordering::AcqRel);
        Job {
            req,
            conn,
            state: JobState::Acquire,
            outbox: VecDeque::new(),
            done: None,
            sent: 0,
            record: true,
            trace_id,
            span_id,
            started: Instant::now(),
            queue_wait: None,
        }
    }

    /// A job that only delivers pre-encoded frames (stats, errors).
    pub(crate) fn respond(frame: Vec<u8>, status: RequestStatus, conn: Arc<ConnShared>) -> Self {
        conn.inflight.fetch_add(1, Ordering::AcqRel);
        let mut outbox = VecDeque::with_capacity(1);
        outbox.push_back(frame);
        Job {
            req: SampleRequest {
                req_id: 0,
                dataset: 0,
                l: 1.0,
                algorithm: None,
                shards: 1,
                t: 0,
                seed: 0,
            },
            conn,
            state: JobState::Respond,
            outbox,
            done: Some(status),
            sent: 0,
            record: false,
            trace_id: 0,
            span_id: 0,
            started: Instant::now(),
            queue_wait: None,
        }
    }

    fn iterations(&self) -> u64 {
        match &self.state {
            JobState::Stream(handle) => handle.report().iterations,
            _ => 0,
        }
    }
}

impl Drop for Job {
    /// A job is in flight from construction until it is dropped —
    /// finished, abandoned, or drained at shutdown. The balanced
    /// counter is what keeps the reaper away from connections with
    /// pending work. The kick wakes the event loop so a half-closed
    /// connection whose last job just finished is torn down promptly.
    fn drop(&mut self) {
        self.conn.inflight.fetch_sub(1, Ordering::AcqRel);
        self.conn.kick();
    }
}

// ---- per-connection state ------------------------------------------------

/// The bounded response queue of one connection: workers `try_send`
/// into it, the event loop drains it to the socket. Capacity is the
/// backpressure window ([`ServerConfig::queue_frames`]); the loop's
/// control answers may exceed it by a bounded margin because frame
/// decoding pauses while the queue is at (or past) capacity.
struct OutQueue {
    frames: VecDeque<Vec<u8>>,
    capacity: usize,
    /// Set at teardown: the socket can never deliver another frame.
    disconnected: bool,
}

/// Why [`ConnShared::try_send`] refused a frame — mirrors the
/// `std::sync::mpsc::TrySendError` cases the old writer channel had.
pub(crate) enum SendError {
    /// Queue at capacity; the frame comes back for parking.
    Full(Vec<u8>),
    /// Connection torn down; the frame can never be delivered.
    Disconnected,
}

/// State shared by the event loop, the workers, and a connection's
/// jobs.
pub(crate) struct ConnShared {
    /// Accept-order id, unique per server — seeds the connection's
    /// deterministic fault schedules and names it on the event loop.
    pub(crate) id: u64,
    /// Clone of the socket, used only to `shutdown(2)` it.
    pub(crate) stream: TcpStream,
    /// Peer address, resolved once at accept — journal labels.
    pub(crate) peer: String,
    /// When the connection was accepted; the reference point for
    /// `last_activity_ns`.
    t0: Instant,
    /// Nanoseconds since `t0` of the last received frame (updated at
    /// frame dispatch); the sweep timer reaps connections idle past
    /// [`ServerConfig::idle_timeout`].
    last_activity_ns: AtomicU64,
    /// Requests alive on this connection (queued, on a worker, or
    /// parked) — the reaper never touches a connection with work in
    /// flight, and teardown waits for in-flight jobs to drain.
    pub(crate) inflight: AtomicU64,
    /// Jobs waiting for a free slot in the response queue (the
    /// backpressure parking lot).
    pub(crate) parked: Mutex<Vec<Job>>,
    /// Set by teardown and by server shutdown; parked/new frames for
    /// a closed connection are dropped.
    pub(crate) closed: AtomicBool,
    /// The bounded response queue (see [`OutQueue`]).
    out: Mutex<OutQueue>,
    /// The event loop's doorbell: dirty marks + waker writes.
    notify: Arc<LoopNotify>,
}

impl ConnShared {
    pub(crate) fn new(
        id: u64,
        stream: TcpStream,
        peer: String,
        capacity: usize,
        notify: Arc<LoopNotify>,
    ) -> ConnShared {
        ConnShared {
            id,
            stream,
            peer,
            t0: Instant::now(),
            last_activity_ns: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            parked: Mutex::new(Vec::new()),
            closed: AtomicBool::new(false),
            out: Mutex::new(OutQueue {
                frames: VecDeque::new(),
                capacity: capacity.max(1),
                disconnected: false,
            }),
            notify,
        }
    }

    /// Marks the connection active now.
    pub(crate) fn touch(&self) {
        let ns = self.t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        self.last_activity_ns.store(ns, Ordering::Release);
    }

    /// Nanoseconds the connection has been idle.
    pub(crate) fn idle_ns(&self) -> u64 {
        let now = self.t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        now.saturating_sub(self.last_activity_ns.load(Ordering::Acquire))
    }

    /// Worker-side bounded send: refuses at capacity (the caller
    /// parks) and after teardown (the caller finishes the job). On
    /// success the event loop is kicked to flush.
    pub(crate) fn try_send(&self, frame: Vec<u8>) -> Result<(), SendError> {
        {
            let mut out = self.out.lock().expect("out queue poisoned");
            if out.disconnected {
                return Err(SendError::Disconnected);
            }
            if out.frames.len() >= out.capacity {
                return Err(SendError::Full(frame));
            }
            out.frames.push_back(frame);
        }
        self.kick();
        Ok(())
    }

    /// Loop-side send for control answers (`WELCOME`/`PONG`/`BUSY`/
    /// `ERROR`): never refused at capacity — bounded anyway, because
    /// the loop stops decoding frames while the queue is full, so at
    /// most one control answer per decoded frame can overshoot.
    pub(crate) fn push_direct(&self, frame: Vec<u8>) {
        let mut out = self.out.lock().expect("out queue poisoned");
        if !out.disconnected {
            out.frames.push_back(frame);
        }
    }

    /// Next frame for the socket (event loop only).
    pub(crate) fn pop_out(&self) -> Option<Vec<u8>> {
        self.out
            .lock()
            .expect("out queue poisoned")
            .frames
            .pop_front()
    }

    /// Queued frames not yet handed to the socket.
    pub(crate) fn out_len(&self) -> usize {
        self.out.lock().expect("out queue poisoned").frames.len()
    }

    /// Whether the queue has a free worker-side slot.
    pub(crate) fn out_has_room(&self) -> bool {
        let out = self.out.lock().expect("out queue poisoned");
        !out.disconnected && out.frames.len() < out.capacity
    }

    /// Teardown half: refuse all future sends and drop what is queued.
    pub(crate) fn out_disconnect(&self) {
        let mut out = self.out.lock().expect("out queue poisoned");
        out.disconnected = true;
        out.frames.clear();
    }

    /// Rings the event loop's doorbell for this connection: marks it
    /// dirty (flush writes, re-examine parked jobs, maybe tear down)
    /// and wakes the poller.
    pub(crate) fn kick(&self) {
        self.notify.mark_dirty(self.id);
    }
}

// ---- global job queue ----------------------------------------------------

pub(crate) struct JobQueue {
    jobs: Mutex<VecDeque<Job>>,
    cv: Condvar,
    closed: AtomicBool,
}

impl JobQueue {
    fn new() -> Self {
        JobQueue {
            jobs: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            closed: AtomicBool::new(false),
        }
    }

    /// Enqueues a job; a closed queue (shutdown in progress) refuses
    /// and hands the job back so the caller can answer it.
    fn push(&self, job: Job) -> Option<Job> {
        if self.closed.load(Ordering::Acquire) {
            return Some(job);
        }
        self.jobs.lock().expect("job queue poisoned").push_back(job);
        self.cv.notify_one();
        None
    }

    /// Blocks for the next job; `None` once the queue is closed.
    fn pop(&self) -> Option<Job> {
        let mut jobs = self.jobs.lock().expect("job queue poisoned");
        loop {
            if let Some(job) = jobs.pop_front() {
                return Some(job);
            }
            if self.closed.load(Ordering::Acquire) {
                return None;
            }
            jobs = self.cv.wait(jobs).expect("job queue poisoned");
        }
    }

    fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.cv.notify_all();
    }

    fn drain(&self) -> Vec<Job> {
        self.jobs
            .lock()
            .expect("job queue poisoned")
            .drain(..)
            .collect()
    }

    /// Queue depth right now — the load-shed signal.
    fn len(&self) -> usize {
        self.jobs.lock().expect("job queue poisoned").len()
    }
}

// ---- per-connection rate limiting -----------------------------------------

/// A token bucket: `rate` tokens/second, burst capacity of one
/// second's budget, starting full.
pub(crate) struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    /// `None` when `rps` is zero (unlimited).
    pub(crate) fn new(rps: u32) -> Option<TokenBucket> {
        (rps > 0).then(|| TokenBucket {
            rate: f64::from(rps),
            burst: f64::from(rps),
            tokens: f64::from(rps),
            last: Instant::now(),
        })
    }

    /// `None` = admitted (one token consumed); `Some(ms)` = declined,
    /// with the time until a token accrues — the `retry_after_ms` for
    /// the `BUSY` answer.
    pub(crate) fn admit(&mut self) -> Option<u32> {
        let now = Instant::now();
        let dt = now.duration_since(self.last).as_secs_f64();
        self.tokens = (self.tokens + dt * self.rate).min(self.burst);
        self.last = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            return None;
        }
        let ms = ((1.0 - self.tokens) / self.rate * 1000.0).ceil().max(1.0);
        Some(ms.min(f64::from(u32::MAX)) as u32)
    }
}

// ---- metrics --------------------------------------------------------------

/// The five maintenance rungs, in escalation order — the `rung` label
/// values of `srj_maintenance_total`.
const RUNGS: [&str; 5] = [
    "minor_swap",
    "cell_patch",
    "full_rebuild",
    "repair",
    "replan",
];

/// Typed handles into the server's [`Registry`] for one dataset,
/// registered once at startup so recording is lock-free `fetch_add`s
/// (hot-path handles) or relaxed stores at scrape time (mirrors).
struct DatasetMetrics {
    /// `srj_requests_total` — finished `SAMPLE` requests (hot path).
    requests: Counter,
    /// `srj_samples_total` — join samples delivered (hot path).
    samples: Counter,
    /// `srj_request_errors_total` — non-`Ok` finishes (hot path).
    errors: Counter,
    /// `srj_request_latency_ns` — per-request wall time (hot path).
    latency: Histogram,
    /// `srj_rejection_iterations_total` — engine mirror at scrape.
    rejection_iterations: Counter,
    /// `srj_rejection_rate` — iterations/samples at scrape.
    rejection_rate: Gauge,
    /// `srj_mu_total` — Σµ across serving engines at scrape.
    mu_total: Gauge,
    /// `srj_epoch` — store epoch at scrape.
    epoch: Gauge,
    /// `srj_maintenance_total{rung=...}` in [`RUNGS`] order, mirrored
    /// from the engines at scrape.
    rungs: [Counter; 5],
    /// `srj_cells_patched_total` — cells rebuilt by patch swaps.
    cells_patched: Counter,
    /// `srj_buffer_hits_total` — draws served from pre-drawn sample
    /// buffers, engine mirror at scrape.
    buffer_hits: Counter,
    /// `srj_buffer_refills_total` — bulk buffer refills at scrape.
    buffer_refills: Counter,
    /// `srj_buffer_invalidations_total` — buffers dropped by token
    /// mismatches or retired by epoch swaps, at scrape.
    buffer_invalidations: Counter,
}

impl DatasetMetrics {
    fn register(reg: &Registry, dataset: u64) -> Self {
        let id = dataset.to_string();
        let labels: [(&str, &str); 1] = [("dataset", &id)];
        DatasetMetrics {
            requests: reg.counter("srj_requests_total", &labels),
            samples: reg.counter("srj_samples_total", &labels),
            errors: reg.counter("srj_request_errors_total", &labels),
            latency: reg.histogram("srj_request_latency_ns", &labels),
            rejection_iterations: reg.counter("srj_rejection_iterations_total", &labels),
            rejection_rate: reg.gauge("srj_rejection_rate", &labels),
            mu_total: reg.gauge("srj_mu_total", &labels),
            epoch: reg.gauge("srj_epoch", &labels),
            rungs: std::array::from_fn(|i| {
                reg.counter(
                    "srj_maintenance_total",
                    &[("dataset", &id), ("rung", RUNGS[i])],
                )
            }),
            cells_patched: reg.counter("srj_cells_patched_total", &labels),
            buffer_hits: reg.counter("srj_buffer_hits_total", &labels),
            buffer_refills: reg.counter("srj_buffer_refills_total", &labels),
            buffer_invalidations: reg.counter("srj_buffer_invalidations_total", &labels),
        }
    }
}

/// Server-wide metric handles (no `dataset` label).
pub(crate) struct ServerMetrics {
    /// `srj_connections_accepted_total` — mirror at scrape.
    connections_accepted: Counter,
    /// `srj_active_connections` gauge — mirror at scrape.
    active_connections: Gauge,
    /// `srj_engine_cache_hits_total` / `srj_engine_cache_misses_total`
    /// — mirrors at scrape.
    cache_hits: Counter,
    cache_misses: Counter,
    /// `srj_backpressure_parks_total` — jobs parked on a full
    /// connection queue (hot-path increment, rare event).
    backpressure_parks: Counter,
    /// `srj_requests_shed` — `SAMPLE`s answered `BUSY` because the job
    /// queue was past the high-water mark (hot-path increment).
    pub(crate) requests_shed: Counter,
    /// `srj_rate_limited` — requests answered `BUSY` by a token bucket
    /// (hot-path increment).
    pub(crate) rate_limited: Counter,
    /// `srj_conn_reaped` — idle connections closed by the event
    /// loop's sweep timer.
    pub(crate) conn_reaped: Counter,
    /// `srj_handshake_rejects_total` — connections refused at the
    /// handshake (bad version, or a request before `HELLO`).
    pub(crate) handshake_rejects: Counter,
    /// `srj_slow_requests_total` — requests captured into the slow log
    /// (hot-path increment, rare by construction).
    slow_captures: Counter,
    /// `srj_conn_open` gauge — connections registered on the event
    /// loop right now, maintained live by the loop itself.
    pub(crate) conn_open: Gauge,
    /// `srj_event_loop_wakeups_total` — poller returns (events or
    /// timer expiry), one per loop iteration.
    pub(crate) loop_wakeups: Counter,
    /// `srj_event_loop_dispatch_ns` — time spent servicing one wakeup
    /// (accepts + reads + decode + writes), excluding the wait itself.
    pub(crate) loop_dispatch: Histogram,
    /// `srj_accept_backoff_total` — accept(2) pauses after
    /// EMFILE/ENFILE fd exhaustion.
    pub(crate) accept_backoffs: Counter,
    /// `srj_worker_state_samples_total{state=...}` in
    /// [`ALL_STATES`] order — profiler mirror at scrape.
    worker_states: [Counter; 6],
}

impl ServerMetrics {
    fn register(reg: &Registry) -> Self {
        ServerMetrics {
            connections_accepted: reg.counter("srj_connections_accepted_total", &[]),
            active_connections: reg.gauge("srj_active_connections", &[]),
            cache_hits: reg.counter("srj_engine_cache_hits_total", &[]),
            cache_misses: reg.counter("srj_engine_cache_misses_total", &[]),
            backpressure_parks: reg.counter("srj_backpressure_parks_total", &[]),
            requests_shed: reg.counter("srj_requests_shed", &[]),
            rate_limited: reg.counter("srj_rate_limited", &[]),
            conn_reaped: reg.counter("srj_conn_reaped", &[]),
            handshake_rejects: reg.counter("srj_handshake_rejects_total", &[]),
            slow_captures: reg.counter("srj_slow_requests_total", &[]),
            conn_open: reg.gauge("srj_conn_open", &[]),
            loop_wakeups: reg.counter("srj_event_loop_wakeups_total", &[]),
            loop_dispatch: reg.histogram("srj_event_loop_dispatch_ns", &[]),
            accept_backoffs: reg.counter("srj_accept_backoff_total", &[]),
            worker_states: std::array::from_fn(|i| {
                reg.counter(
                    "srj_worker_state_samples_total",
                    &[("state", ALL_STATES[i].as_str())],
                )
            }),
        }
    }
}

// ---- shared server state -------------------------------------------------

/// Change detector behind `/healthz`: whenever the aggregate distress
/// signal moves, the incident clock restarts; the endpoint reports
/// `degraded` while the clock is younger than the configured window.
#[derive(Default)]
struct HealthState {
    last_signal: u64,
    last_change: Option<Instant>,
}

pub(crate) struct Shared {
    pub(crate) config: ServerConfig,
    registry: HashMap<u64, Arc<ServedDataset>>,
    /// Serving-engine lookup hits/misses (a miss pays an index build).
    engine_hits: AtomicU64,
    engine_misses: AtomicU64,
    pub(crate) queue: JobQueue,
    /// Per-request serving statistics (latency histogram reused from
    /// the engine crate — one `record_query` per finished request).
    request_stats: EngineStats,
    /// This server's metrics registry (a value, not a global — tests
    /// and embedded servers never share exposition state) plus the
    /// cached typed handles.
    metrics: Registry,
    pub(crate) server_metrics: ServerMetrics,
    dataset_metrics: HashMap<u64, DatasetMetrics>,
    pub(crate) accepted: AtomicU64,
    pub(crate) active: AtomicU64,
    pub(crate) conns: Mutex<Vec<Arc<ConnShared>>>,
    shutdown_flag: Mutex<bool>,
    shutdown_cv: Condvar,
    addr: SocketAddr,
    /// Tail-based slow-request retention (capacity 0 = disabled).
    pub(crate) slow_log: SlowLog,
    /// Worker/event-loop state tags, sampled by the maintainer.
    pub(crate) profiler: Profiler,
    /// The event loop's doorbell — worker kicks and shutdown wakeups
    /// land here.
    pub(crate) notify: Arc<LoopNotify>,
    /// The time-series store, set once when the recorder starts (the
    /// recorder itself lives on [`Server`] — storing it here would arc-
    /// cycle through its snapshot closure).
    tsdb: OnceLock<Arc<SeriesStore>>,
    /// `/healthz` change detector.
    health: Mutex<HealthState>,
}

impl Shared {
    pub(crate) fn is_shutting_down(&self) -> bool {
        *self.shutdown_flag.lock().expect("shutdown flag poisoned")
    }

    /// Flips the server into shutdown: idempotent, callable from any
    /// thread (including the event loop serving a `SHUTDOWN` frame).
    /// Thread joining is [`Server::shutdown`]'s half.
    pub(crate) fn begin_shutdown(&self) {
        {
            let mut flag = self.shutdown_flag.lock().expect("shutdown flag poisoned");
            if *flag {
                return;
            }
            *flag = true;
            self.shutdown_cv.notify_all();
        }
        self.queue.close();
        for conn in self.conns.lock().expect("conn list poisoned").iter() {
            conn.closed.store(true, Ordering::Release);
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        }
        // Wake the event loop out of its poller wait so it tears the
        // connections down and exits.
        self.notify.wake();
    }

    pub(crate) fn stats_frame(&self) -> ServerStatsFrame {
        let snap = self.request_stats.snapshot();
        let mut patch_swaps = 0u64;
        let mut cells_patched = 0u64;
        let mut repairs = 0u64;
        let mut last_swap_ns = 0u64;
        let mut mu_total = 0.0f64;
        for d in self.registry.values() {
            let (p, c, rep, swap, mu) = d.cell_stats();
            patch_swaps += p;
            cells_patched += c;
            repairs += rep;
            last_swap_ns = last_swap_ns.max(swap);
            mu_total += mu;
        }
        ServerStatsFrame {
            queries: snap.queries,
            samples: snap.samples,
            iterations: snap.iterations,
            errors: snap.errors,
            mean_ns: snap.mean_latency.as_nanos().min(u128::from(u64::MAX)) as u64,
            p50_ns: snap.p50_latency.as_nanos().min(u128::from(u64::MAX)) as u64,
            p99_ns: snap.p99_latency.as_nanos().min(u128::from(u64::MAX)) as u64,
            engines_cached: self
                .registry
                .values()
                .map(|d| d.engine_count() as u64)
                .sum(),
            cache_hits: self.engine_hits.load(Ordering::Relaxed),
            cache_misses: self.engine_misses.load(Ordering::Relaxed),
            connections_accepted: self.accepted.load(Ordering::Relaxed),
            active_connections: self.active.load(Ordering::Relaxed),
            patch_swaps,
            cells_patched,
            repairs,
            last_swap_ns,
            mu_total,
        }
    }

    /// The Prometheus text exposition behind the `METRICS` frame and
    /// `/metrics`: one mirror pass, then a render.
    pub(crate) fn metrics_text(&self) -> String {
        self.mirror_metrics();
        self.metrics.render()
    }

    /// Mirrors the engine-internal counters (maintenance rungs,
    /// rejection feedback, Σµ, epochs, connection counters, profiler
    /// state samples) into the registry so a render — or a time-series
    /// snapshot — observes current values. The hot-path metrics
    /// (requests, samples, errors, latency) are already current — they
    /// are recorded directly at request completion.
    fn mirror_metrics(&self) {
        let sm = &self.server_metrics;
        let counts = self.profiler.counts();
        for (i, c) in sm.worker_states.iter().enumerate() {
            c.store(counts[i]);
        }
        sm.connections_accepted
            .store(self.accepted.load(Ordering::Relaxed));
        sm.active_connections
            .set(self.active.load(Ordering::Relaxed) as f64);
        sm.cache_hits
            .store(self.engine_hits.load(Ordering::Relaxed));
        sm.cache_misses
            .store(self.engine_misses.load(Ordering::Relaxed));
        for (id, served) in self.registry.iter() {
            let Some(m) = self.dataset_metrics.get(id) else {
                continue;
            };
            let agg = served.maintenance_stats();
            m.rungs[0].store(agg.minor_swaps);
            m.rungs[1].store(agg.patch_swaps);
            // Major swaps split into patch swaps and full rebuilds.
            m.rungs[2].store(agg.major_swaps.saturating_sub(agg.patch_swaps));
            m.rungs[3].store(agg.repairs);
            m.rungs[4].store(agg.replans);
            m.cells_patched.store(agg.cells_patched);
            m.buffer_hits.store(agg.buffer_hits);
            m.buffer_refills.store(agg.buffer_refills);
            m.buffer_invalidations.store(agg.buffer_invalidations);
            m.rejection_iterations.store(agg.iterations);
            m.rejection_rate.set(if agg.samples == 0 {
                0.0
            } else {
                agg.iterations as f64 / agg.samples as f64
            });
            m.mu_total.set(agg.mu_total);
            // Prefer the engine-consistent epoch (taken under the same
            // snapshot as mu_total); a dataset no engine serves yet has
            // only the store's epoch to report.
            m.epoch.set(if agg.engines > 0 {
                agg.epoch as f64
            } else {
                served.store.epoch() as f64
            });
        }
    }

    /// The latency threshold slow-request capture compares against
    /// right now — the configured absolute value, or the live p99 once
    /// enough requests have been observed. `None` = capture nothing
    /// (auto mode still warming up).
    fn slow_threshold_ns(&self) -> Option<u64> {
        if self.config.slow_threshold_ns > 0 {
            return Some(self.config.slow_threshold_ns);
        }
        let snap = self.request_stats.snapshot();
        (snap.queries + snap.errors >= SLOW_AUTO_MIN_REQUESTS)
            .then(|| snap.p99_latency.as_nanos().min(u128::from(u64::MAX)) as u64)
    }

    /// Sum over every dataset's engines of re-plan escalations — the
    /// maintenance-ladder input to `/healthz`.
    fn replans_total(&self) -> u64 {
        self.registry
            .values()
            .map(|d| d.maintenance_stats().replans)
            .sum()
    }

    /// Evaluates `/healthz`: `(ready, body)`. The aggregate distress
    /// signal is the sum of the load-shed, connection-reap,
    /// handshake-reject, and engine-re-plan counters; any movement
    /// restarts the incident clock, and the server reports `degraded`
    /// until the clock outgrows the configured window.
    pub(crate) fn healthz(&self) -> (bool, String) {
        let sm = &self.server_metrics;
        let shed = sm.requests_shed.get();
        let reaped = sm.conn_reaped.get();
        let rejects = sm.handshake_rejects.get();
        let replans = self.replans_total();
        let signal = shed + reaped + rejects + replans;
        let now = Instant::now();
        let incident_age_ms = {
            let mut health = self.health.lock().expect("health state poisoned");
            if signal != health.last_signal {
                health.last_signal = signal;
                health.last_change = Some(now);
            }
            health
                .last_change
                .map(|t| now.duration_since(t).as_millis().min(u128::from(u64::MAX)) as u64)
        };
        let window = self.config.health_degraded_window_ms;
        let ready = incident_age_ms.is_none_or(|age| age >= window);
        let body = format!(
            "{{\"status\":{},\"shed\":{shed},\"reaped\":{reaped},\
             \"handshake_rejects\":{rejects},\"replans\":{replans},\
             \"window_ms\":{window},\"incident_age_ms\":{}}}",
            if ready { "\"ready\"" } else { "\"degraded\"" },
            match incident_age_ms {
                Some(age) => age.to_string(),
                None => "null".to_string(),
            },
        );
        (ready, body)
    }

    /// The `/vars` body: a JSON snapshot of every registered metric,
    /// the recent 1-minute time-series rollups (when the recorder is
    /// on), and the slow-log tail.
    pub(crate) fn vars_json(&self) -> String {
        use srj_obs::json::escape;
        use srj_obs::ValueSnapshot;
        self.mirror_metrics();
        let mut out = String::with_capacity(4096);
        out.push_str("{\"metrics\":[");
        for (i, m) in self.metrics.snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"labels\":{},",
                escape(&m.name),
                escape(&m.labels)
            ));
            match m.value {
                ValueSnapshot::Counter(v) => out.push_str(&format!("\"counter\":{v}}}")),
                ValueSnapshot::Gauge(v) => {
                    // Gauges are finite by construction; guard anyway so
                    // a rogue value cannot emit invalid JSON.
                    let v = if v.is_finite() { v } else { 0.0 };
                    out.push_str(&format!("\"gauge\":{v}}}"));
                }
                ValueSnapshot::Histogram { count, sum } => {
                    out.push_str(&format!("\"count\":{count},\"sum\":{sum}}}"));
                }
            }
        }
        out.push_str("],\"series\":[");
        if let Some(store) = self.tsdb.get() {
            let since = srj_obs::clock::now_ns().saturating_sub(srj_obs::timeseries::ROLLUP_5M_NS);
            for (i, (name, labels, kind)) in store.series_names().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"name\":{},\"labels\":{},\"kind\":\"{}\",\"rollup_1m\":[",
                    escape(name),
                    escape(labels),
                    kind.as_str()
                ));
                let rollups = store.rollup(name, labels, srj_obs::timeseries::ROLLUP_1M_NS, since);
                for (j, r) in rollups.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "{{\"start_ns\":{},\"min\":{},\"max\":{},\"avg\":{},\
                         \"last\":{},\"count\":{}}}",
                        r.start_ns, r.min, r.max, r.avg, r.last, r.count
                    ));
                }
                out.push_str("]}");
            }
        }
        out.push_str("],\"slow_log\":[");
        for (i, e) in self.slow_log.recent(8).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&e.to_json());
        }
        out.push_str("]}");
        out
    }
}

// ---- the server ----------------------------------------------------------

/// A running sampling server. Dropping it shuts it down cleanly (all
/// threads joined).
pub struct Server {
    shared: Arc<Shared>,
    event_loop: Option<JoinHandle<()>>,
    maintainer: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    /// The time-series recorder thread (owned here, not on [`Shared`]:
    /// its snapshot closure holds an `Arc<Shared>`).
    recorder: Option<Recorder>,
    /// The HTTP observability listener: resolved address + thread.
    http: Option<(SocketAddr, JoinHandle<()>)>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an OS-assigned port) and
    /// starts serving `registry` with `config`.
    pub fn start<A: ToSocketAddrs>(
        addr: A,
        registry: DatasetRegistry,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        assert!(config.cache_capacity > 0, "cache capacity must be positive");
        assert!(config.queue_frames > 0, "queue depth must be positive");
        let batch_cap = (MAX_FRAME_LEN - 16) / 8;
        let config = ServerConfig {
            workers: config.workers.max(1),
            batch_pairs: config.batch_pairs.clamp(1, batch_cap),
            ..config
        };
        let listener = TcpListener::bind(addr)?;
        // Tracing is a process-wide switch (the engine's instrumented
        // call sites have no server reference); the last-started
        // server's rate wins, which in practice is one server per
        // process. Slow-log capture needs every request to leave span
        // records, so it flips the always-record half of the switch.
        trace::set_sample_rate(config.trace_sample_rate);
        trace::set_always_record(config.slow_log_capacity > 0);
        // Label every store with its wire id so engine-internal
        // lifecycle events (swaps, patches, repairs, re-plans,
        // compactions) carry the dataset id clients know.
        for (id, served) in registry.map.iter() {
            served.store.set_obs_label(*id);
        }
        let metrics = Registry::new();
        let server_metrics = ServerMetrics::register(&metrics);
        let dataset_metrics = registry
            .map
            .keys()
            .map(|&id| (id, DatasetMetrics::register(&metrics, id)))
            .collect();
        let notify = Arc::new(LoopNotify::new()?);
        let shared = Arc::new(Shared {
            config,
            registry: registry.map,
            engine_hits: AtomicU64::new(0),
            engine_misses: AtomicU64::new(0),
            queue: JobQueue::new(),
            request_stats: EngineStats::new(),
            metrics,
            server_metrics,
            dataset_metrics,
            accepted: AtomicU64::new(0),
            active: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
            shutdown_flag: Mutex::new(false),
            shutdown_cv: Condvar::new(),
            addr: listener.local_addr()?,
            slow_log: SlowLog::new(config.slow_log_capacity),
            profiler: Profiler::new(),
            notify,
            tsdb: OnceLock::new(),
            health: Mutex::new(HealthState::default()),
        });

        let recorder = (config.timeseries_cadence_ms > 0).then(|| {
            let snap_shared = Arc::clone(&shared);
            let recorder = Recorder::start(
                Duration::from_millis(config.timeseries_cadence_ms),
                srj_obs::timeseries::DEFAULT_CAPACITY,
                move || {
                    snap_shared.mirror_metrics();
                    snap_shared.metrics.snapshot()
                },
            );
            let _ = shared.tsdb.set(recorder.store());
            recorder
        });
        let http = match config.http_port {
            Some(port) => Some(crate::http::start(Arc::clone(&shared), port)?),
            None => None,
        };

        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("srj-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        // One event-loop thread owns the listener, every connection
        // socket, and all the connection timers. Construction happens
        // here (not on the thread) so bind/epoll errors surface from
        // start() instead of killing a detached thread.
        let event_loop = {
            let mut el = EventLoop::new(listener, Arc::clone(&shared))?;
            std::thread::Builder::new()
                .name("srj-event-loop".into())
                .spawn(move || el.run())
                .expect("spawn event loop")
        };
        // The maintainer only samples the profiler now — idle reaping
        // moved onto the event loop's sweep timer.
        let maintainer = config.profiler.then(|| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("srj-maintainer".into())
                .spawn(move || maintainer_loop(&shared))
                .expect("spawn maintainer")
        });

        Ok(Server {
            shared,
            event_loop: Some(event_loop),
            maintainer,
            workers,
            recorder,
            http,
        })
    }

    /// The HTTP observability listener's resolved address (with an
    /// OS-assigned port filled in), when one is configured.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http.as_ref().map(|(addr, _)| *addr)
    }

    /// The bound address (with the OS-assigned port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Server-wide aggregate statistics (same numbers a `STATS` request
    /// returns).
    pub fn stats(&self) -> ServerStatsFrame {
        self.shared.stats_frame()
    }

    /// The Prometheus text exposition (same text a `METRICS` request
    /// returns) — for embedded servers and the loadgen overhead bench.
    pub fn metrics_text(&self) -> String {
        self.shared.metrics_text()
    }

    /// Blocks until shutdown is requested (by [`Server::shutdown`] or a
    /// client `SHUTDOWN` frame).
    pub fn wait_shutdown(&self) {
        let mut flag = self
            .shared
            .shutdown_flag
            .lock()
            .expect("shutdown flag poisoned");
        while !*flag {
            flag = self
                .shared
                .shutdown_cv
                .wait(flag)
                .expect("shutdown flag poisoned");
        }
    }

    /// Graceful shutdown: stop accepting, close every connection, and
    /// join every thread the server spawned. Idempotent; also runs on
    /// drop.
    pub fn shutdown(&mut self) {
        self.shared.begin_shutdown();
        if let Some(mut recorder) = self.recorder.take() {
            recorder.stop();
        }
        if let Some((addr, handle)) = self.http.take() {
            // Wake the HTTP listener out of its blocking accept() so it
            // observes the shutdown flag.
            let _ = TcpStream::connect(addr);
            let _ = handle.join();
        }
        // The event loop observes the shutdown flag on its next wakeup
        // (begin_shutdown rang its waker), tears every connection down,
        // and exits; after the join the connection list is final.
        if let Some(event_loop) = self.event_loop.take() {
            let _ = event_loop.join();
        }
        if let Some(maintainer) = self.maintainer.take() {
            let _ = maintainer.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Workers are gone: drop every job still queued or parked so
        // no response can outlive the server.
        drop(self.shared.queue.drain());
        for conn in self.shared.conns.lock().expect("conn list poisoned").iter() {
            conn.parked.lock().expect("parked list poisoned").clear();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---- admission -----------------------------------------------------------

/// Whether a new `SAMPLE` should be declined with `BUSY` instead of
/// queued: the global queue is past the high-water mark, or this
/// connection already has a request parked on a full response queue
/// (more concurrent streams cannot help a client that isn't reading).
pub(crate) fn should_shed(shared: &Arc<Shared>, conn: &Arc<ConnShared>) -> bool {
    let hw = shared.config.shed_high_water;
    if hw == 0 {
        return false;
    }
    if !conn.parked.lock().expect("parked list poisoned").is_empty() {
        return true;
    }
    shared.queue.len() >= hw
}

// ---- maintainer ------------------------------------------------------------

/// Takes one profiler sample every 50 ms until shutdown flips. Idle
/// reaping — the maintainer's other historic duty — now lives on the
/// event loop's sweep timer, so this thread only exists when the
/// profiler is on.
fn maintainer_loop(shared: &Arc<Shared>) {
    let sweep = Duration::from_millis(50);
    let mut flag = shared.shutdown_flag.lock().expect("shutdown flag poisoned");
    while !*flag {
        let (guard, _) = shared
            .shutdown_cv
            .wait_timeout(flag, sweep)
            .expect("shutdown flag poisoned");
        flag = guard;
        if *flag {
            return;
        }
        drop(flag);
        shared.profiler.sample();
        flag = shared.shutdown_flag.lock().expect("shutdown flag poisoned");
    }
}

/// Enqueues a job; when shutdown has already closed the queue, answers
/// the request with a best-effort `DONE{ShuttingDown}` instead (the
/// connection is being torn down, so a full queue just drops it).
pub(crate) fn enqueue(shared: &Arc<Shared>, job: Job) {
    let Some(mut job) = shared.queue.push(job) else {
        return;
    };
    if job.done.is_none() {
        let frame = encode_response(&Response::Done {
            req_id: job.req.req_id,
            status: RequestStatus::ShuttingDown,
            stats: RequestStats {
                samples: job.sent,
                iterations: job.iterations(),
                elapsed_ns: job.started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
                trace_id: job.trace_id,
            },
        });
        let _ = job.conn.try_send(frame);
        job.done = Some(RequestStatus::ShuttingDown);
    }
    finish(shared, &job, false);
}

// ---- workers -------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>) {
    let tag = shared.profiler.register();
    while let Some(job) = shared.queue.pop() {
        step(shared, job, &tag);
        tag.set(WorkerState::Idle);
    }
}

/// Outcome of flushing a job's outbox.
enum Flushed {
    /// Everything sent; the job continues.
    Clear(Job),
    /// The job parked, finished, or was dropped — it left this worker.
    Gone,
}

/// Sends queued frames until the outbox is empty or the connection's
/// queue is full. Full ⇒ park on the connection (with a kick so the
/// event loop always notices); disconnected ⇒ drop; empty + done ⇒
/// finish.
fn flush_outbox(shared: &Arc<Shared>, mut job: Job, tag: &StateTag) -> Flushed {
    while let Some(frame) = job.outbox.pop_front() {
        match job.conn.try_send(frame) {
            Ok(()) => {}
            Err(SendError::Full(frame)) => {
                job.outbox.push_front(frame);
                if job.conn.closed.load(Ordering::Acquire) {
                    finish(shared, &job, false);
                    return Flushed::Gone;
                }
                // The client stopped reading and its window filled:
                // the request parks on its connection. A rare
                // control-plane condition, so it goes to the journal
                // (and the park counter) rather than the trace ring.
                tag.set(WorkerState::Park);
                let peer = job.conn.peer.clone();
                shared.server_metrics.backpressure_parks.inc();
                srj_obs::journal::event(EventKind::BackpressurePark)
                    .dataset(job.record.then_some(job.req.dataset))
                    .label(peer)
                    .emit();
                trace::event("batch_write", "park");
                let conn = Arc::clone(&job.conn);
                conn.parked.lock().expect("parked list poisoned").push(job);
                // The park happens-before this kick; the event loop
                // re-examines the parking lot on every dirty mark and
                // after every socket write, so either the kick lands
                // (loop will see the job) or the out-queue is still
                // draining (loop will pop a frame and see the job).
                conn.kick();
                if conn.closed.load(Ordering::Acquire) {
                    // The connection tore down (and drained the lot)
                    // between our closed-check above and the park:
                    // nobody will ever re-queue what we just parked —
                    // reclaim it.
                    let stranded: Vec<Job> = conn
                        .parked
                        .lock()
                        .expect("parked list poisoned")
                        .drain(..)
                        .collect();
                    for job in &stranded {
                        finish(shared, job, false);
                    }
                }
                return Flushed::Gone;
            }
            Err(SendError::Disconnected) => {
                finish(shared, &job, false);
                return Flushed::Gone;
            }
        }
    }
    if job.done.is_some() {
        finish(shared, &job, true);
        return Flushed::Gone;
    }
    Flushed::Clear(job)
}

/// Records an *abandoned* request (client gone before its `DONE` was
/// produced) into the server stats. Normally finished requests are
/// recorded in [`push_done`] instead — before their `DONE` frame can
/// reach the client — so a `STATS` request issued right after a `DONE`
/// always observes the request it followed.
pub(crate) fn finish(shared: &Arc<Shared>, job: &Job, _delivered: bool) {
    if !job.record {
        return;
    }
    shared
        .request_stats
        .record_error(job.iterations(), job.started.elapsed());
    if let Some(m) = shared.dataset_metrics.get(&job.req.dataset) {
        m.requests.inc();
        m.errors.inc();
        m.latency.observe_duration(job.started.elapsed());
    }
}

/// One worker step: flush, produce at most one batch, flush, requeue.
fn step(shared: &Arc<Shared>, mut job: Job, tag: &StateTag) {
    // Make the job's span id current for everything this step does —
    // including the engine-internal draw-loop events, which only see
    // the thread-local id.
    let _trace = trace::set_current(job.span_id);
    if job.queue_wait.is_none() {
        job.queue_wait = Some(job.started.elapsed());
    }
    tag.set(WorkerState::Write);
    let mut job = match flush_outbox(shared, job, tag) {
        Flushed::Clear(job) => job,
        Flushed::Gone => return,
    };

    match &mut job.state {
        JobState::Acquire => {
            tag.set(WorkerState::Acquire);
            trace::event("acquire", "begin");
            match acquire_handle(shared, &job.req) {
                Ok(handle) => {
                    trace::event("acquire", "handle_ready");
                    job.state = JobState::Stream(Box::new(handle));
                    tag.set(WorkerState::Draw);
                    produce_batch(shared, &mut job);
                }
                Err(status) => {
                    trace::event("acquire", "failed");
                    push_done(shared, &mut job, status);
                }
            }
        }
        JobState::Stream(_) => {
            tag.set(WorkerState::Draw);
            produce_batch(shared, &mut job);
        }
        // Respond jobs carry only pre-encoded frames; with the outbox
        // clear they are finished by flush_outbox, never reach here.
        JobState::Respond => {}
    }

    tag.set(WorkerState::Write);
    if let Flushed::Clear(job) = flush_outbox(shared, job, tag) {
        enqueue(shared, job);
    }
}

/// Engine acquisition via the per-dataset epoch-engine map: the
/// expensive index build happens at most once per
/// `(dataset, l, shards, algorithm)` shape across all requests and
/// connections; every request then gets its own O(1) serving handle.
/// The handle acquisition is also where pending mutations are folded
/// in — `EpochEngine::handle` refreshes the swap cell first, so a
/// mutated dataset is never served from a stale index, while requests
/// already streaming keep their pinned epoch.
fn acquire_handle(
    shared: &Arc<Shared>,
    req: &SampleRequest,
) -> Result<SamplerHandle, RequestStatus> {
    let served = shared
        .registry
        .get(&req.dataset)
        .ok_or(RequestStatus::UnknownDataset)?;
    let shards = (req.shards.max(1) as usize).min(srj_core::parallel::MAX_THREADS);
    let config = SampleConfig::new(req.l).with_build_threads(shared.config.build_threads);
    let key = EngineKey {
        l_bits: req.l.to_bits(),
        shards,
        algorithm: req.algorithm,
    };
    let engine = served.engine_for(
        key,
        shared.config.cache_capacity,
        || {
            let epoch_cfg = EpochConfig {
                shards,
                algorithm: req.algorithm,
                ..shared.config.epoch
            };
            let engine = EpochEngine::with_store(Arc::clone(&served.store), &config, epoch_cfg);
            engine.set_buffers_enabled(shared.config.buffers);
            engine
        },
        &shared.engine_hits,
        &shared.engine_misses,
    );
    Ok(if req.seed != 0 {
        engine.handle_seeded(req.seed)
    } else {
        engine.handle()
    })
}

/// Applies an `INSERT` to the dataset's store — one atomic batch, so
/// the answered `first_id..first_id+applied` range and epoch are
/// consistent even while other connections mutate (or a refresh
/// compacts) concurrently. O(|points|); the serving engines fold the
/// new delta in on their next handle acquisition.
pub(crate) fn apply_insert(
    shared: &Arc<Shared>,
    dataset: u64,
    side: Side,
    points: &[Point],
) -> Result<UpdateStats, RequestStatus> {
    let served = shared
        .registry
        .get(&dataset)
        .ok_or(RequestStatus::UnknownDataset)?;
    let applied = match side {
        Side::R => served.store.insert_r_batch(points),
        Side::S => served.store.insert_s_batch(points),
    };
    Ok(UpdateStats {
        first_id: applied.first_id,
        applied: applied.applied,
        epoch: applied.epoch,
        version: applied.version,
    })
}

/// Applies a `DELETE` as one atomic batch; unknown or
/// already-tombstoned ids are skipped (not counted in `applied`), so
/// deletes are idempotent over the wire.
pub(crate) fn apply_delete(
    shared: &Arc<Shared>,
    dataset: u64,
    side: Side,
    ids: &[u32],
) -> Result<UpdateStats, RequestStatus> {
    let served = shared
        .registry
        .get(&dataset)
        .ok_or(RequestStatus::UnknownDataset)?;
    let applied = match side {
        Side::R => served.store.delete_r_batch(ids),
        Side::S => served.store.delete_s_batch(ids),
    };
    Ok(UpdateStats {
        first_id: 0,
        applied: applied.applied,
        epoch: applied.epoch,
        version: applied.version,
    })
}

/// Answers an `EPOCH` query from the store's counters.
pub(crate) fn epoch_info(shared: &Arc<Shared>, dataset: u64) -> Result<EpochInfo, RequestStatus> {
    let served = shared
        .registry
        .get(&dataset)
        .ok_or(RequestStatus::UnknownDataset)?;
    let store = &served.store;
    Ok(EpochInfo {
        epoch: store.epoch(),
        version: store.version(),
        live_r: store.live_r_len() as u64,
        live_s: store.live_s_len() as u64,
        pending_ops: store.pending_ops() as u64,
        last_swap_ns: served.last_swap_ns(),
    })
}

/// Draws one batch through the job's handle into a `BATCH` frame, plus
/// the `DONE` frame when the request completes or errors.
fn produce_batch(shared: &Arc<Shared>, job: &mut Job) {
    let JobState::Stream(handle) = &mut job.state else {
        unreachable!("produce_batch on a non-streaming job");
    };
    let remaining = job.req.t.saturating_sub(job.sent);
    let batch = remaining.min(shared.config.batch_pairs as u64) as usize;
    trace::event("draw_loop", "batch_begin");
    let (pairs, error) = if shared.config.buffers {
        // Buffered fast path: the whole batch is drawn with the
        // handle's concrete RNG (no per-draw virtual dispatch), hot
        // cells serve from pre-drawn buffers, and the engine records
        // one query per batch. An error forfeits the batch's partial
        // draws — the DONE status carries the error either way.
        match handle.sample_batch(batch) {
            Ok(pairs) => (pairs, None),
            Err(e) => (Vec::new(), Some(e)),
        }
    } else {
        let mut stream = handle.stream();
        let pairs: Vec<JoinPair> = stream.by_ref().take(batch).collect();
        let error = stream.error();
        drop(stream);
        (pairs, error)
    };
    trace::event("draw_loop", "batch_end");
    job.sent += pairs.len() as u64;
    if !pairs.is_empty() {
        job.outbox.push_back(encode_response(&Response::Batch {
            req_id: job.req.req_id,
            pairs,
        }));
        trace::event("batch_write", "batch_enqueued");
    }
    match error {
        Some(SampleError::EmptyJoin) => push_done(shared, job, RequestStatus::EmptyJoin),
        Some(SampleError::RejectionLimit) => push_done(shared, job, RequestStatus::RejectionLimit),
        None if job.sent >= job.req.t => push_done(shared, job, RequestStatus::Ok),
        None => {} // more batches to come
    }
}

fn push_done(shared: &Arc<Shared>, job: &mut Job, status: RequestStatus) {
    let iterations = job.iterations();
    let elapsed = job.started.elapsed();
    maybe_capture_slow(shared, job, iterations, elapsed);
    if job.record {
        // Record now, not at delivery: the DONE frame below reaches the
        // client strictly after this, so a follow-up STATS request can
        // never miss the request it chases.
        if status == RequestStatus::Ok {
            shared
                .request_stats
                .record_query(job.sent, iterations, elapsed);
        } else {
            shared.request_stats.record_error(iterations, elapsed);
        }
        // The per-dataset exposition counters (cached typed handles —
        // a few relaxed fetch_adds).
        if let Some(m) = shared.dataset_metrics.get(&job.req.dataset) {
            m.requests.inc();
            m.samples.add(job.sent);
            if status != RequestStatus::Ok {
                m.errors.inc();
            }
            m.latency.observe_duration(elapsed);
        }
        job.record = false;
    }
    job.outbox.push_back(encode_response(&Response::Done {
        req_id: job.req.req_id,
        status,
        stats: RequestStats {
            samples: job.sent,
            iterations,
            elapsed_ns: elapsed.as_nanos().min(u128::from(u64::MAX)) as u64,
            trace_id: job.trace_id,
        },
    }));
    job.done = Some(status);
    trace::event("batch_write", "done_enqueued");
}

/// Tail-based slow-request capture: when a finished request breached
/// the latency threshold, snapshot its span tree (still in the rings —
/// the capture races only ring wraparound, not a sampling decision)
/// plus the request context into the bounded slow log.
fn maybe_capture_slow(shared: &Arc<Shared>, job: &Job, iterations: u64, elapsed: Duration) {
    if !shared.slow_log.enabled() || job.span_id == 0 {
        return;
    }
    let elapsed_ns = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
    let Some(threshold) = shared.slow_threshold_ns() else {
        return;
    };
    if elapsed_ns < threshold {
        return;
    }
    let mut spans = SlowEntry::capture_spans(job.span_id);
    spans.truncate(SLOWLOG_MAX_SPANS);
    let epoch = shared
        .registry
        .get(&job.req.dataset)
        .map(|d| d.store.epoch())
        .unwrap_or(0);
    shared.server_metrics.slow_captures.inc();
    shared.slow_log.record(SlowEntry {
        trace_id: job.span_id,
        finished_ns: srj_obs::clock::now_ns(),
        dataset: job.req.dataset,
        t: job.req.t,
        algorithm: algorithm_name(job.req.algorithm).to_string(),
        epoch,
        iterations,
        queue_wait_ns: job
            .queue_wait
            .unwrap_or_default()
            .as_nanos()
            .min(u128::from(u64::MAX)) as u64,
        elapsed_ns,
        spans,
    });
}

/// Stable lower-case algorithm name for slow-log context (`auto` =
/// the planner chose).
fn algorithm_name(a: Option<srj_engine::Algorithm>) -> &'static str {
    match a {
        None => "auto",
        Some(srj_engine::Algorithm::Kds) => "kds",
        Some(srj_engine::Algorithm::KdsRejection) => "kds_rejection",
        Some(srj_engine::Algorithm::Bbst) => "bbst",
    }
}

/// Converts a retained [`SlowEntry`] into its wire form.
pub(crate) fn slow_entry_to_wire(e: SlowEntry) -> SlowLogEntry {
    SlowLogEntry {
        trace_id: e.trace_id,
        finished_ns: e.finished_ns,
        dataset: e.dataset,
        t: e.t,
        algorithm: e.algorithm,
        epoch: e.epoch,
        iterations: e.iterations,
        queue_wait_ns: e.queue_wait_ns,
        elapsed_ns: e.elapsed_ns,
        spans: e
            .spans
            .into_iter()
            .map(|s| TraceSpan {
                ns: s.ns,
                span: s.span,
                event: s.event,
            })
            .collect(),
    }
}
