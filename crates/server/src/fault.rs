//! Deterministic fault injection for the serving stack.
//!
//! A [`FaultPlan`] rides on `crate::ServerConfig` and is consulted by
//! the event loop's per-connection state machines: the decode side
//! draws from the `reader` stream, the flush side from the `writer`
//! stream — the same `(connection, role)` derivation the old
//! thread-per-connection layer used, so a chaos seed reproduces the
//! same fault schedule across the readiness rewrite. The default plan
//! is **inert**: every probability is zero and the injection sites
//! cost one branch on an [`FaultPlan::is_active`] flag. An active
//! plan derives one deterministic [`FaultRng`] per
//! `(connection, role)` from its seed, so a chaos soak with a fixed
//! seed injects the same fault schedule on every run — failures found
//! under chaos reproduce.
//!
//! What can be injected (each with its own probability, evaluated per
//! frame). Faults that used to block a thread (`sleep`) are now timer
//! perturbations of the state machine — the held frame or write gap
//! rides a timer-wheel entry while every other connection keeps
//! being served:
//!
//! * **delayed reads** — a decoded frame's dispatch is held for
//!   `delay_read_ms` (decoding pauses so frame order is preserved),
//!   simulating a stalled peer or congested path;
//! * **forced `BUSY`** — a request is answered `BUSY` instead of
//!   executed, simulating load shedding;
//! * **partial writes** — a response frame is flushed as two
//!   temporally separated halves, exercising client-side reassembly;
//! * **truncated frames** — a prefix of a response frame is emitted
//!   and the connection dropped, leaving the client mid-frame;
//! * **dropped connections** — the socket is shut down instead of
//!   dispatching a received frame.

/// Per-frame fault probabilities plus the seed their schedule derives
/// from. The [`Default`] (all zeros) is inert.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for the per-connection fault schedules; two servers with
    /// the same plan and connection order inject identically.
    pub seed: u64,
    /// Probability a received frame's processing is delayed by
    /// [`FaultPlan::delay_read_ms`].
    pub delay_read_prob: f64,
    /// Delay applied when a delayed read fires, milliseconds.
    pub delay_read_ms: u64,
    /// Probability a response frame is written as two delayed halves.
    pub partial_write_prob: f64,
    /// Probability a response frame is truncated mid-frame and the
    /// connection dropped.
    pub truncate_frame_prob: f64,
    /// Probability the connection is dropped before processing a
    /// received frame.
    pub drop_conn_prob: f64,
    /// Probability a request is answered `BUSY` instead of executed.
    pub busy_prob: f64,
    /// `retry_after_ms` carried on forced `BUSY` answers.
    pub busy_retry_after_ms: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::inert()
    }
}

impl FaultPlan {
    /// The all-zeros plan: compiled in, injects nothing.
    pub fn inert() -> Self {
        FaultPlan {
            seed: 0,
            delay_read_prob: 0.0,
            delay_read_ms: 0,
            partial_write_prob: 0.0,
            truncate_frame_prob: 0.0,
            drop_conn_prob: 0.0,
            busy_prob: 0.0,
            busy_retry_after_ms: 0,
        }
    }

    /// Whether any fault can ever fire. The injection sites gate on
    /// this so an inert plan costs one branch per frame.
    pub fn is_active(&self) -> bool {
        self.delay_read_prob > 0.0
            || self.partial_write_prob > 0.0
            || self.truncate_frame_prob > 0.0
            || self.drop_conn_prob > 0.0
            || self.busy_prob > 0.0
    }

    /// The deterministic fault schedule for one `(connection, role)`
    /// pair — reader and writer of the same connection get independent
    /// streams, and so does every connection.
    pub fn rng_for(&self, conn_id: u64, role: u64) -> FaultRng {
        FaultRng::new(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(conn_id.wrapping_mul(0xA24B_AED4_963E_E407))
                .wrapping_add(role.wrapping_mul(0x5851_F42D_4C95_7F2D)),
        )
    }
}

/// A seeded xorshift64* stream of fault decisions.
#[derive(Clone, Debug)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// A stream from an explicit seed (zero is mapped to a fixed
    /// non-zero state — xorshift has no zero orbit).
    pub fn new(seed: u64) -> Self {
        FaultRng {
            state: if seed == 0 {
                0x853C_49E6_748F_EA9B
            } else {
                seed
            },
        }
    }

    /// The next raw draw — also used for client backoff jitter.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// One Bernoulli draw: `true` with probability `p`.
    pub fn fires(&mut self, p: f64) -> bool {
        p > 0.0 && self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_never_fires() {
        let plan = FaultPlan::default();
        assert!(!plan.is_active());
        let mut rng = plan.rng_for(0, 0);
        for _ in 0..10_000 {
            assert!(!rng.fires(plan.drop_conn_prob));
            assert!(!rng.fires(plan.busy_prob));
        }
    }

    #[test]
    fn certain_fault_always_fires() {
        let mut rng = FaultRng::new(42);
        for _ in 0..1_000 {
            assert!(rng.fires(1.0));
        }
    }

    #[test]
    fn schedules_are_deterministic_and_role_independent() {
        let plan = FaultPlan {
            seed: 7,
            drop_conn_prob: 0.3,
            ..FaultPlan::inert()
        };
        assert!(plan.is_active());
        let draw = |mut rng: FaultRng| -> Vec<bool> {
            (0..256).map(|_| rng.fires(plan.drop_conn_prob)).collect()
        };
        // Same (conn, role) ⇒ same schedule.
        assert_eq!(draw(plan.rng_for(3, 1)), draw(plan.rng_for(3, 1)));
        // Different conn or role ⇒ a different schedule.
        assert_ne!(draw(plan.rng_for(3, 1)), draw(plan.rng_for(4, 1)));
        assert_ne!(draw(plan.rng_for(3, 1)), draw(plan.rng_for(3, 2)));
    }

    #[test]
    fn fire_rate_tracks_probability() {
        let mut rng = FaultRng::new(99);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.fires(0.1)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "observed rate {rate}");
    }
}
