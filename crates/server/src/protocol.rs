//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! Every frame is a little-endian `u32` payload length followed by the
//! payload; the first payload byte is the opcode. Integers are
//! little-endian, `l` travels as `f64` bits, and join pairs are two
//! `u32` point ids — the same representation the engine serves, so a
//! batch frame is one `memcpy`-shaped loop on both sides.
//!
//! ```text
//! request  frames: HELLO   { version, features }
//!                  SAMPLE  { req_id, dataset, l, algorithm, shards, t, seed }
//!                  STATS   { }
//!                  SHUTDOWN{ }
//!                  INSERT  { req_id, dataset, side, count, (x, y) × count }
//!                  DELETE  { req_id, dataset, side, count, id × count }
//!                  EPOCH   { req_id, dataset }
//!                  METRICS { }
//!                  TRACE   { trace_id }
//!                  SLOWLOG { max }
//!                  PING    { token }
//! response frames: WELCOME { version, features }
//!                  BATCH   { req_id, count, (r, s) × count }
//!                  DONE    { req_id, status, samples, iterations,
//!                            elapsed_ns, trace_id }
//!                  STATS   { queries, samples, iterations, errors,
//!                            mean_ns, p50_ns, p99_ns, engines_cached,
//!                            cache_hits, cache_misses,
//!                            connections_accepted, active_connections }
//!                  UPDATE  { req_id, status, first_id, applied, epoch, version }
//!                  EPOCH   { req_id, status, epoch, version, live_r, live_s,
//!                            pending_ops, last_swap_ns }
//!                  METRICS { len, utf8 text (Prometheus exposition) }
//!                  TRACE   { trace_id, count,
//!                            (ns, span_len, span, event_len, event) × count }
//!                  SLOWLOG { count, (trace_id, finished_ns, dataset, t,
//!                            epoch, iterations, queue_wait_ns, elapsed_ns,
//!                            algo_len, algo, span_count, spans...) × count }
//!                  PONG    { token }
//!                  BUSY    { req_id, retry_after_ms }
//!                  ERROR   { code, msg_len, utf8 msg }
//! ```
//!
//! A connection opens with a mandatory handshake: the client's first
//! frame must be `HELLO` carrying [`PROTOCOL_VERSION`] and its feature
//! bits; the server answers `WELCOME` (version + the feature bits it
//! supports) or a terminal `ERROR` frame (version mismatch, or a
//! legacy peer that sent any other frame first) and closes. `PING` is
//! answered with `PONG` directly from the connection's reader thread —
//! a keepalive that never queues behind worker jobs. `BUSY` answers a
//! request the server chose not to serve (rate limit or load shed);
//! the request was **not** executed and may be retried after
//! `retry_after_ms`.
//!
//! A `SAMPLE` answer is a stream: zero or more `BATCH` frames followed
//! by exactly one `DONE` (which also reports per-request serving
//! statistics). `req_id` is echoed on every frame of the answer so a
//! client may pipeline requests on one connection and demultiplex the
//! interleaved batches.
//!
//! `INSERT`/`DELETE` mutate a dataset's point sets (side `0` = `R`,
//! `1` = `S`); the `UPDATE` answer carries the first assigned id (for
//! inserts — ids are contiguous per frame), how many operations
//! applied, and the dataset's epoch/version after the mutation. Ids
//! are **epoch-relative**: a rebuild (observable via the `EPOCH`
//! request, or `UPDATE.epoch` bumping) renumbers them.

use std::io::{Read, Write};

use srj_core::JoinPair;
use srj_engine::Algorithm;
use srj_geom::Point;

/// Hard ceiling on a frame payload, enforced on both read and write: a
/// hostile or corrupt length prefix must fail fast, not allocate
/// gigabytes. Batches are sized well below this
/// (`crate::ServerConfig::batch_pairs` × 8 bytes + header).
pub const MAX_FRAME_LEN: usize = 1 << 22; // 4 MiB

/// The protocol version this build speaks, carried in `HELLO` and
/// `WELCOME`. A server rejects any other version with a clean `ERROR`
/// frame — never a hang or a silently-garbled stream.
pub const PROTOCOL_VERSION: u16 = 1;

/// Feature bit: the peer answers `PING` with `PONG`.
pub const FEAT_KEEPALIVE: u32 = 1 << 0;
/// Feature bit: the peer may answer any request with `BUSY` (rate
/// limiting / load shedding) instead of executing it.
pub const FEAT_BUSY: u32 = 1 << 1;
/// Feature bit: the peer serves `INSERT`/`DELETE`/`EPOCH` mutations.
pub const FEAT_MUTATIONS: u32 = 1 << 2;

/// Every feature bit this build implements.
pub const SERVER_FEATURES: u32 = FEAT_KEEPALIVE | FEAT_BUSY | FEAT_MUTATIONS;

/// Longest `ERROR` message the encoder emits / the decoder accepts.
pub const MAX_ERROR_MSG_LEN: usize = 512;

/// Request opcodes.
const OP_SAMPLE: u8 = 0x01;
const OP_STATS: u8 = 0x02;
const OP_SHUTDOWN: u8 = 0x03;
const OP_INSERT: u8 = 0x04;
const OP_DELETE: u8 = 0x05;
const OP_EPOCH: u8 = 0x06;
const OP_METRICS: u8 = 0x07;
const OP_TRACE: u8 = 0x08;
const OP_HELLO: u8 = 0x09;
const OP_PING: u8 = 0x0A;
const OP_SLOWLOG: u8 = 0x0B;
/// Response opcodes.
const OP_BATCH: u8 = 0x81;
const OP_DONE: u8 = 0x82;
const OP_SERVER_STATS: u8 = 0x83;
const OP_UPDATE: u8 = 0x84;
const OP_EPOCH_INFO: u8 = 0x85;
const OP_METRICS_TEXT: u8 = 0x86;
const OP_TRACE_SPANS: u8 = 0x87;
const OP_WELCOME: u8 = 0x88;
const OP_PONG: u8 = 0x89;
const OP_BUSY: u8 = 0x8A;
const OP_ERROR: u8 = 0x8B;
const OP_SLOWLOG_ENTRIES: u8 = 0x8C;

/// Why the server terminated a connection with an `ERROR` frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The `HELLO` carried a protocol version this server does not
    /// speak.
    VersionMismatch,
    /// The first frame on the connection was not `HELLO`.
    HandshakeRequired,
    /// The server rejected the frame for another terminal reason.
    Rejected,
}

impl ErrorCode {
    fn to_byte(self) -> u8 {
        match self {
            ErrorCode::VersionMismatch => 1,
            ErrorCode::HandshakeRequired => 2,
            ErrorCode::Rejected => 3,
        }
    }

    fn from_byte(b: u8) -> Result<Self, ProtocolError> {
        match b {
            1 => Ok(ErrorCode::VersionMismatch),
            2 => Ok(ErrorCode::HandshakeRequired),
            3 => Ok(ErrorCode::Rejected),
            _ => Err(ProtocolError::Malformed("unknown error code byte")),
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ErrorCode::VersionMismatch => "version mismatch",
            ErrorCode::HandshakeRequired => "handshake required",
            ErrorCode::Rejected => "rejected",
        })
    }
}

/// Which point set a mutation targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Side {
    /// The query set `R`.
    R,
    /// The data set `S`.
    S,
}

impl Side {
    fn to_byte(self) -> u8 {
        match self {
            Side::R => 0,
            Side::S => 1,
        }
    }

    fn from_byte(b: u8) -> Result<Self, ProtocolError> {
        match b {
            0 => Ok(Side::R),
            1 => Ok(Side::S),
            _ => Err(ProtocolError::Malformed("unknown side byte")),
        }
    }
}

impl std::fmt::Display for Side {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Side::R => "R",
            Side::S => "S",
        })
    }
}

/// How a finished request ended, carried in the `DONE` frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestStatus {
    /// All `t` samples were delivered.
    Ok,
    /// The request named a dataset id the server has not registered.
    UnknownDataset,
    /// The join is provably empty ([`srj_core::SampleError::EmptyJoin`]).
    EmptyJoin,
    /// The rejection safety valve tripped
    /// ([`srj_core::SampleError::RejectionLimit`]).
    RejectionLimit,
    /// The request frame could not be decoded.
    BadRequest,
    /// The server is shutting down.
    ShuttingDown,
}

impl RequestStatus {
    fn to_byte(self) -> u8 {
        match self {
            RequestStatus::Ok => 0,
            RequestStatus::UnknownDataset => 1,
            RequestStatus::EmptyJoin => 2,
            RequestStatus::RejectionLimit => 3,
            RequestStatus::BadRequest => 4,
            RequestStatus::ShuttingDown => 5,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        Some(match b {
            0 => RequestStatus::Ok,
            1 => RequestStatus::UnknownDataset,
            2 => RequestStatus::EmptyJoin,
            3 => RequestStatus::RejectionLimit,
            4 => RequestStatus::BadRequest,
            5 => RequestStatus::ShuttingDown,
            _ => return None,
        })
    }
}

impl std::fmt::Display for RequestStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RequestStatus::Ok => "ok",
            RequestStatus::UnknownDataset => "unknown dataset id",
            RequestStatus::EmptyJoin => "empty join",
            RequestStatus::RejectionLimit => "rejection limit exceeded",
            RequestStatus::BadRequest => "malformed request",
            RequestStatus::ShuttingDown => "server shutting down",
        })
    }
}

/// A `SAMPLE` request: draw `t` uniform join samples from the engine
/// for `(dataset, l, shards)` built with `algorithm` (`None` = let the
/// planner pick).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SampleRequest {
    /// Client-chosen id echoed on every response frame of the answer.
    pub req_id: u32,
    /// Registered dataset id (see `crate::DatasetRegistry`).
    pub dataset: u64,
    /// Window half-extent `l`.
    pub l: f64,
    /// Forced algorithm, or `None` for the planner's choice.
    pub algorithm: Option<Algorithm>,
    /// `R`-shard count for the engine build (`0`/`1` = unsharded).
    pub shards: u32,
    /// Number of samples to draw.
    pub t: u64,
    /// RNG seed for the serving handle; `0` = server-assigned (every
    /// request gets an independent stream).
    pub seed: u64,
}

/// Per-request serving statistics, carried in the `DONE` frame.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RequestStats {
    /// Samples actually delivered (may trail `t` on error).
    pub samples: u64,
    /// Sampling-loop iterations spent, rejections included.
    pub iterations: u64,
    /// Server-side wall time from dequeue to `DONE`, in nanoseconds.
    pub elapsed_ns: u64,
    /// Server-assigned trace id when the request was sampled for
    /// tracing (`0` = untraced); feed it to a `TRACE` request to pull
    /// the request's span records.
    pub trace_id: u64,
}

/// Server-wide aggregate statistics, answered to a `STATS` request.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ServerStatsFrame {
    /// `SAMPLE` requests finished (any status).
    pub queries: u64,
    /// Join samples delivered across all requests.
    pub samples: u64,
    /// Sampling-loop iterations across all requests (rejection-rate
    /// numerator, as in `srj_engine::StatsSnapshot`).
    pub iterations: u64,
    /// Requests that finished with a non-[`RequestStatus::Ok`] status.
    pub errors: u64,
    /// Mean per-request serving latency, nanoseconds.
    pub mean_ns: u64,
    /// Median per-request serving latency, nanoseconds (bucket
    /// resolution).
    pub p50_ns: u64,
    /// 99th-percentile per-request serving latency, nanoseconds.
    pub p99_ns: u64,
    /// Serving engines currently retained, summed over every dataset's
    /// per-`(l, shards, algorithm)` engine map.
    pub engines_cached: u64,
    /// Serving-engine lookup hits.
    pub cache_hits: u64,
    /// Serving-engine lookup misses (each paid an index build).
    pub cache_misses: u64,
    /// Connections accepted since the server started.
    pub connections_accepted: u64,
    /// Connections currently open.
    pub active_connections: u64,
    /// Major swaps that went through the cell-granular patch path,
    /// summed over every serving engine.
    pub patch_swaps: u64,
    /// `S`-cells rebuilt by patch-based swaps (clean cells were
    /// `Arc`-shared across the swap and cost nothing), summed over
    /// every serving engine.
    pub cells_patched: u64,
    /// Targeted per-cell repairs, summed over every serving engine.
    pub repairs: u64,
    /// Duration of the most recent epoch swap, nanoseconds (maximum
    /// across all serving engines) — the epoch-swap-cost signal.
    pub last_swap_ns: u64,
    /// `Σµ` summed over every serving engine — the quantity a
    /// delete-heavy workload must see shrink across an epoch swap.
    pub mu_total: f64,
}

/// A mutation outcome, carried in the `UPDATE` frame.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Id assigned to the first inserted point (inserts get contiguous
    /// ids per frame); `0` for deletes.
    pub first_id: u32,
    /// Operations actually applied (deletes skip unknown/tombstoned
    /// ids).
    pub applied: u32,
    /// Dataset epoch after the mutation (rebuilds renumber ids).
    pub epoch: u64,
    /// Dataset mutation version after the mutation.
    pub version: u64,
}

/// A dataset's epoch/version state, answered to an `EPOCH` request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EpochInfo {
    /// Rebuild epoch (bumps when pending deltas are folded into a
    /// fresh base snapshot — ids are relative to it).
    pub epoch: u64,
    /// Mutation version (bumps on every applied insert/delete).
    pub version: u64,
    /// Live `|R'|`.
    pub live_r: u64,
    /// Live `|S'|`.
    pub live_s: u64,
    /// Mutations pending since the last rebuild.
    pub pending_ops: u64,
    /// Duration of the most recent engine swap for this dataset
    /// (maximum across its serving engines), nanoseconds.
    pub last_swap_ns: u64,
}

/// Decoded request frames.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Mandatory first frame: protocol version + client feature bits.
    Hello {
        /// The protocol version the client speaks.
        version: u16,
        /// The client's feature bits (informational today).
        features: u32,
    },
    /// Keepalive probe, answered with `PONG` from the reader thread.
    Ping {
        /// Opaque token echoed back in the `PONG`.
        token: u64,
    },
    /// Draw samples (see [`SampleRequest`]).
    Sample(SampleRequest),
    /// Report server-wide statistics.
    Stats,
    /// Ask the server to shut down gracefully.
    Shutdown,
    /// Insert points into one side of a dataset.
    Insert {
        /// Client-chosen id echoed on the `UPDATE` answer.
        req_id: u32,
        /// Registered dataset id.
        dataset: u64,
        /// Which point set to extend.
        side: Side,
        /// The points.
        points: Vec<Point>,
    },
    /// Tombstone points of one side of a dataset by id.
    Delete {
        /// Client-chosen id echoed on the `UPDATE` answer.
        req_id: u32,
        /// Registered dataset id.
        dataset: u64,
        /// Which point set to shrink.
        side: Side,
        /// Epoch-relative point ids.
        ids: Vec<u32>,
    },
    /// Query a dataset's epoch/version state.
    Epoch {
        /// Client-chosen id echoed on the `EPOCH` answer.
        req_id: u32,
        /// Registered dataset id.
        dataset: u64,
    },
    /// Fetch the server's metrics registry as Prometheus text
    /// exposition.
    Metrics,
    /// Fetch the buffered trace spans for a trace id (as returned in
    /// [`RequestStats::trace_id`]).
    Trace {
        /// The trace to dump.
        trace_id: u64,
    },
    /// Fetch the most recent slow-request captures (tail-based
    /// forensics), newest first.
    SlowLog {
        /// At most this many entries (the server additionally caps the
        /// answer to fit one frame).
        max: u32,
    },
}

/// Decoded response frames.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Successful handshake answer to `HELLO`.
    Welcome {
        /// The protocol version the server speaks.
        version: u16,
        /// The server's feature bits (see [`SERVER_FEATURES`]).
        features: u32,
    },
    /// Keepalive answer to `PING`.
    Pong {
        /// Echo of the `PING` token.
        token: u64,
    },
    /// The server declined to execute a request (rate limit or load
    /// shed). The request did **not** run; retry after
    /// `retry_after_ms`.
    Busy {
        /// Echo of the declined request's id (`0` for frames that
        /// carry none).
        req_id: u32,
        /// Suggested minimum backoff before retrying, milliseconds.
        retry_after_ms: u32,
    },
    /// Terminal connection error (handshake rejection); the server
    /// closes the connection after sending it.
    Error {
        /// Machine-readable cause.
        code: ErrorCode,
        /// Human-readable detail (at most [`MAX_ERROR_MSG_LEN`]
        /// bytes).
        message: String,
    },
    /// One batch of an in-flight `SAMPLE` answer.
    Batch {
        /// Echo of [`SampleRequest::req_id`].
        req_id: u32,
        /// The samples.
        pairs: Vec<JoinPair>,
    },
    /// Terminates a `SAMPLE` answer.
    Done {
        /// Echo of [`SampleRequest::req_id`].
        req_id: u32,
        /// How the request ended.
        status: RequestStatus,
        /// Serving statistics for this request.
        stats: RequestStats,
    },
    /// Answer to a `STATS` request.
    ServerStats(ServerStatsFrame),
    /// Answer to an `INSERT`/`DELETE` request.
    Update {
        /// Echo of the request id.
        req_id: u32,
        /// How the mutation ended.
        status: RequestStatus,
        /// The mutation outcome.
        stats: UpdateStats,
    },
    /// Answer to an `EPOCH` request.
    Epoch {
        /// Echo of the request id.
        req_id: u32,
        /// How the query ended.
        status: RequestStatus,
        /// The dataset's epoch state (zeroed unless `status` is
        /// [`RequestStatus::Ok`]).
        info: EpochInfo,
    },
    /// Answer to a `METRICS` request.
    Metrics {
        /// Prometheus text exposition of the server's registry.
        text: String,
    },
    /// Answer to a `TRACE` request.
    Trace {
        /// Echo of the requested trace id.
        trace_id: u64,
        /// Buffered span records, oldest first (empty for an unknown
        /// or already-overwritten trace).
        spans: Vec<TraceSpan>,
    },
    /// Answer to a `SLOWLOG` request.
    SlowLog {
        /// Retained slow-request captures, newest first.
        entries: Vec<SlowLogEntry>,
    },
}

/// One retained slow request, as carried by the `SLOWLOG` response
/// frame: the full request context plus the span tree snapshotted when
/// the request breached the latency threshold.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SlowLogEntry {
    /// The request's (forced or sampled) trace id.
    pub trace_id: u64,
    /// Server-process-monotone completion timestamp, nanoseconds.
    pub finished_ns: u64,
    /// Served dataset id.
    pub dataset: u64,
    /// Requested sample count.
    pub t: u64,
    /// Serving algorithm name (`auto` when the planner chose).
    pub algorithm: String,
    /// Dataset epoch the request was served against.
    pub epoch: u64,
    /// Rejection-loop iterations the request burned.
    pub iterations: u64,
    /// Time between frame decode and the first worker step,
    /// nanoseconds.
    pub queue_wait_ns: u64,
    /// End-to-end wall time, nanoseconds.
    pub elapsed_ns: u64,
    /// The span tree, oldest first.
    pub spans: Vec<TraceSpan>,
}

/// One span record of a traced request, as carried by the `TRACE`
/// response frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSpan {
    /// Server-process-monotone timestamp, nanoseconds.
    pub ns: u64,
    /// Instrumented stage (e.g. `draw_loop`).
    pub span: String,
    /// What happened in the stage (e.g. `begin`).
    pub event: String,
}

/// Why a frame could not be decoded.
#[derive(Debug)]
pub enum ProtocolError {
    /// Underlying transport failure.
    Io(std::io::Error),
    /// Structurally invalid payload.
    Malformed(&'static str),
    /// Length prefix above [`MAX_FRAME_LEN`].
    TooLarge(usize),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "I/O error: {e}"),
            ProtocolError::Malformed(what) => write!(f, "malformed frame: {what}"),
            ProtocolError::TooLarge(n) => write!(f, "frame length {n} exceeds {MAX_FRAME_LEN}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

// ---- primitive encoding helpers -----------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Parser<'a> {
    buf: &'a [u8],
}

impl<'a> Parser<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Parser { buf }
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        let (&b, rest) = self
            .buf
            .split_first()
            .ok_or(ProtocolError::Malformed("truncated u8"))?;
        self.buf = rest;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, ProtocolError> {
        let (head, rest) = self
            .buf
            .split_first_chunk::<2>()
            .ok_or(ProtocolError::Malformed("truncated u16"))?;
        self.buf = rest;
        Ok(u16::from_le_bytes(*head))
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        let (head, rest) = self
            .buf
            .split_first_chunk::<4>()
            .ok_or(ProtocolError::Malformed("truncated u32"))?;
        self.buf = rest;
        Ok(u32::from_le_bytes(*head))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        let (head, rest) = self
            .buf
            .split_first_chunk::<8>()
            .ok_or(ProtocolError::Malformed("truncated u64"))?;
        self.buf = rest;
        Ok(u64::from_le_bytes(*head))
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        if self.buf.len() < n {
            return Err(ProtocolError::Malformed("truncated bytes"));
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    fn str(&mut self, n: usize) -> Result<&'a str, ProtocolError> {
        std::str::from_utf8(self.bytes(n)?).map_err(|_| ProtocolError::Malformed("invalid utf-8"))
    }

    fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn finish(&self) -> Result<(), ProtocolError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(ProtocolError::Malformed("trailing bytes"))
        }
    }
}

/// Truncates to at most `max` bytes without splitting a UTF-8
/// scalar.
fn truncate_utf8(s: &str, max: usize) -> &str {
    if s.len() <= max {
        return s;
    }
    let mut end = max;
    while end > 0 && !s.is_char_boundary(end) {
        end -= 1;
    }
    &s[..end]
}

fn algorithm_to_byte(a: Option<Algorithm>) -> u8 {
    match a {
        None => 0,
        Some(Algorithm::Kds) => 1,
        Some(Algorithm::KdsRejection) => 2,
        Some(Algorithm::Bbst) => 3,
    }
}

fn algorithm_from_byte(b: u8) -> Result<Option<Algorithm>, ProtocolError> {
    Ok(match b {
        0 => None,
        1 => Some(Algorithm::Kds),
        2 => Some(Algorithm::KdsRejection),
        3 => Some(Algorithm::Bbst),
        _ => return Err(ProtocolError::Malformed("unknown algorithm byte")),
    })
}

/// Encodes a span list: count, then `(ns, span_len, span, event_len,
/// event)` per span — the layout shared by `TRACE` and `SLOWLOG`.
fn put_spans(out: &mut Vec<u8>, spans: &[TraceSpan]) {
    put_u32(out, spans.len() as u32);
    for s in spans {
        put_u64(out, s.ns);
        put_u16(out, s.span.len() as u16);
        out.extend_from_slice(s.span.as_bytes());
        put_u16(out, s.event.len() as u16);
        out.extend_from_slice(s.event.as_bytes());
    }
}

/// Smallest wire size of one span: ns + two empty strings.
const MIN_SPAN_LEN: usize = 12;

/// Decodes a span list as written by [`put_spans`], bounding the
/// allocation against the parser's remaining bytes before trusting the
/// count.
fn parse_spans(p: &mut Parser<'_>) -> Result<Vec<TraceSpan>, ProtocolError> {
    let count = p.u32()? as usize;
    if count * MIN_SPAN_LEN > p.remaining() {
        return Err(ProtocolError::Malformed("span count vs length mismatch"));
    }
    let mut spans = Vec::with_capacity(count);
    for _ in 0..count {
        let ns = p.u64()?;
        let span_len = p.u16()? as usize;
        let span = p.str(span_len)?.to_string();
        let event_len = p.u16()? as usize;
        let event = p.str(event_len)?.to_string();
        spans.push(TraceSpan { ns, span, event });
    }
    Ok(spans)
}

// ---- frame encode/decode -------------------------------------------------

/// Encodes a request into a complete frame (length prefix included).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64);
    match req {
        Request::Sample(s) => {
            payload.push(OP_SAMPLE);
            put_u32(&mut payload, s.req_id);
            put_u64(&mut payload, s.dataset);
            put_u64(&mut payload, s.l.to_bits());
            payload.push(algorithm_to_byte(s.algorithm));
            put_u32(&mut payload, s.shards);
            put_u64(&mut payload, s.t);
            put_u64(&mut payload, s.seed);
        }
        Request::Stats => payload.push(OP_STATS),
        Request::Shutdown => payload.push(OP_SHUTDOWN),
        Request::Insert {
            req_id,
            dataset,
            side,
            points,
        } => {
            payload.reserve(points.len() * 16 + 18);
            payload.push(OP_INSERT);
            put_u32(&mut payload, *req_id);
            put_u64(&mut payload, *dataset);
            payload.push(side.to_byte());
            put_u32(&mut payload, points.len() as u32);
            for p in points {
                put_u64(&mut payload, p.x.to_bits());
                put_u64(&mut payload, p.y.to_bits());
            }
        }
        Request::Delete {
            req_id,
            dataset,
            side,
            ids,
        } => {
            payload.reserve(ids.len() * 4 + 18);
            payload.push(OP_DELETE);
            put_u32(&mut payload, *req_id);
            put_u64(&mut payload, *dataset);
            payload.push(side.to_byte());
            put_u32(&mut payload, ids.len() as u32);
            for &id in ids {
                put_u32(&mut payload, id);
            }
        }
        Request::Epoch { req_id, dataset } => {
            payload.push(OP_EPOCH);
            put_u32(&mut payload, *req_id);
            put_u64(&mut payload, *dataset);
        }
        Request::Metrics => payload.push(OP_METRICS),
        Request::Trace { trace_id } => {
            payload.push(OP_TRACE);
            put_u64(&mut payload, *trace_id);
        }
        Request::Hello { version, features } => {
            payload.push(OP_HELLO);
            put_u16(&mut payload, *version);
            put_u32(&mut payload, *features);
        }
        Request::Ping { token } => {
            payload.push(OP_PING);
            put_u64(&mut payload, *token);
        }
        Request::SlowLog { max } => {
            payload.push(OP_SLOWLOG);
            put_u32(&mut payload, *max);
        }
    }
    finish_frame(payload)
}

/// Decodes a request payload (the bytes after the length prefix).
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtocolError> {
    let mut p = Parser::new(payload);
    let req = match p.u8()? {
        OP_SAMPLE => {
            let req_id = p.u32()?;
            let dataset = p.u64()?;
            let l = f64::from_bits(p.u64()?);
            let algorithm = algorithm_from_byte(p.u8()?)?;
            let shards = p.u32()?;
            let t = p.u64()?;
            let seed = p.u64()?;
            if !(l.is_finite() && l > 0.0) {
                return Err(ProtocolError::Malformed("non-positive half-extent"));
            }
            Request::Sample(SampleRequest {
                req_id,
                dataset,
                l,
                algorithm,
                shards,
                t,
                seed,
            })
        }
        OP_STATS => Request::Stats,
        OP_SHUTDOWN => Request::Shutdown,
        OP_INSERT => {
            let req_id = p.u32()?;
            let dataset = p.u64()?;
            let side = Side::from_byte(p.u8()?)?;
            let count = p.u32()? as usize;
            if count * 16 != payload.len() - 18 {
                return Err(ProtocolError::Malformed("insert count vs length mismatch"));
            }
            let mut points = Vec::with_capacity(count);
            for _ in 0..count {
                let x = f64::from_bits(p.u64()?);
                let y = f64::from_bits(p.u64()?);
                if !(x.is_finite() && y.is_finite()) {
                    return Err(ProtocolError::Malformed("non-finite point coordinate"));
                }
                points.push(Point::new(x, y));
            }
            Request::Insert {
                req_id,
                dataset,
                side,
                points,
            }
        }
        OP_DELETE => {
            let req_id = p.u32()?;
            let dataset = p.u64()?;
            let side = Side::from_byte(p.u8()?)?;
            let count = p.u32()? as usize;
            if count * 4 != payload.len() - 18 {
                return Err(ProtocolError::Malformed("delete count vs length mismatch"));
            }
            let mut ids = Vec::with_capacity(count);
            for _ in 0..count {
                ids.push(p.u32()?);
            }
            Request::Delete {
                req_id,
                dataset,
                side,
                ids,
            }
        }
        OP_EPOCH => Request::Epoch {
            req_id: p.u32()?,
            dataset: p.u64()?,
        },
        OP_METRICS => Request::Metrics,
        OP_TRACE => Request::Trace { trace_id: p.u64()? },
        OP_HELLO => Request::Hello {
            version: p.u16()?,
            features: p.u32()?,
        },
        OP_PING => Request::Ping { token: p.u64()? },
        OP_SLOWLOG => Request::SlowLog { max: p.u32()? },
        _ => return Err(ProtocolError::Malformed("unknown request opcode")),
    };
    p.finish()?;
    Ok(req)
}

/// Encodes a response into a complete frame (length prefix included).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut payload = Vec::with_capacity(32);
    match resp {
        Response::Batch { req_id, pairs } => {
            payload.reserve(pairs.len() * 8 + 9);
            payload.push(OP_BATCH);
            put_u32(&mut payload, *req_id);
            put_u32(&mut payload, pairs.len() as u32);
            for p in pairs {
                put_u32(&mut payload, p.r);
                put_u32(&mut payload, p.s);
            }
        }
        Response::Done {
            req_id,
            status,
            stats,
        } => {
            payload.push(OP_DONE);
            put_u32(&mut payload, *req_id);
            payload.push(status.to_byte());
            put_u64(&mut payload, stats.samples);
            put_u64(&mut payload, stats.iterations);
            put_u64(&mut payload, stats.elapsed_ns);
            put_u64(&mut payload, stats.trace_id);
        }
        Response::ServerStats(s) => {
            payload.push(OP_SERVER_STATS);
            for v in [
                s.queries,
                s.samples,
                s.iterations,
                s.errors,
                s.mean_ns,
                s.p50_ns,
                s.p99_ns,
                s.engines_cached,
                s.cache_hits,
                s.cache_misses,
                s.connections_accepted,
                s.active_connections,
                s.patch_swaps,
                s.cells_patched,
                s.repairs,
                s.last_swap_ns,
                // Canonicalize: a non-finite Σµ (which a healthy
                // server never produces) must not leak arbitrary NaN
                // bit patterns onto the wire.
                if s.mu_total.is_finite() {
                    s.mu_total.to_bits()
                } else {
                    0.0f64.to_bits()
                },
            ] {
                put_u64(&mut payload, v);
            }
        }
        Response::Update {
            req_id,
            status,
            stats,
        } => {
            payload.push(OP_UPDATE);
            put_u32(&mut payload, *req_id);
            payload.push(status.to_byte());
            put_u32(&mut payload, stats.first_id);
            put_u32(&mut payload, stats.applied);
            put_u64(&mut payload, stats.epoch);
            put_u64(&mut payload, stats.version);
        }
        Response::Metrics { text } => {
            payload.reserve(text.len() + 5);
            payload.push(OP_METRICS_TEXT);
            put_u32(&mut payload, text.len() as u32);
            payload.extend_from_slice(text.as_bytes());
        }
        Response::Trace { trace_id, spans } => {
            payload.push(OP_TRACE_SPANS);
            put_u64(&mut payload, *trace_id);
            put_spans(&mut payload, spans);
        }
        Response::SlowLog { entries } => {
            payload.push(OP_SLOWLOG_ENTRIES);
            put_u32(&mut payload, entries.len() as u32);
            for e in entries {
                put_u64(&mut payload, e.trace_id);
                put_u64(&mut payload, e.finished_ns);
                put_u64(&mut payload, e.dataset);
                put_u64(&mut payload, e.t);
                put_u64(&mut payload, e.epoch);
                put_u64(&mut payload, e.iterations);
                put_u64(&mut payload, e.queue_wait_ns);
                put_u64(&mut payload, e.elapsed_ns);
                put_u16(&mut payload, e.algorithm.len() as u16);
                payload.extend_from_slice(e.algorithm.as_bytes());
                put_spans(&mut payload, &e.spans);
            }
        }
        Response::Welcome { version, features } => {
            payload.push(OP_WELCOME);
            put_u16(&mut payload, *version);
            put_u32(&mut payload, *features);
        }
        Response::Pong { token } => {
            payload.push(OP_PONG);
            put_u64(&mut payload, *token);
        }
        Response::Busy {
            req_id,
            retry_after_ms,
        } => {
            payload.push(OP_BUSY);
            put_u32(&mut payload, *req_id);
            put_u32(&mut payload, *retry_after_ms);
        }
        Response::Error { code, message } => {
            let msg = truncate_utf8(message, MAX_ERROR_MSG_LEN);
            payload.push(OP_ERROR);
            payload.push(code.to_byte());
            put_u16(&mut payload, msg.len() as u16);
            payload.extend_from_slice(msg.as_bytes());
        }
        Response::Epoch {
            req_id,
            status,
            info,
        } => {
            payload.push(OP_EPOCH_INFO);
            put_u32(&mut payload, *req_id);
            payload.push(status.to_byte());
            for v in [
                info.epoch,
                info.version,
                info.live_r,
                info.live_s,
                info.pending_ops,
                info.last_swap_ns,
            ] {
                put_u64(&mut payload, v);
            }
        }
    }
    finish_frame(payload)
}

/// Decodes a response payload (the bytes after the length prefix).
pub fn decode_response(payload: &[u8]) -> Result<Response, ProtocolError> {
    let mut p = Parser::new(payload);
    let resp = match p.u8()? {
        OP_BATCH => {
            let req_id = p.u32()?;
            let count = p.u32()? as usize;
            if count * 8 != payload.len() - 9 {
                return Err(ProtocolError::Malformed("batch count vs length mismatch"));
            }
            let mut pairs = Vec::with_capacity(count);
            for _ in 0..count {
                let r = p.u32()?;
                let s = p.u32()?;
                pairs.push(JoinPair::new(r, s));
            }
            Response::Batch { req_id, pairs }
        }
        OP_DONE => {
            let req_id = p.u32()?;
            let status = RequestStatus::from_byte(p.u8()?)
                .ok_or(ProtocolError::Malformed("unknown status byte"))?;
            let stats = RequestStats {
                samples: p.u64()?,
                iterations: p.u64()?,
                elapsed_ns: p.u64()?,
                trace_id: p.u64()?,
            };
            Response::Done {
                req_id,
                status,
                stats,
            }
        }
        OP_SERVER_STATS => {
            let mut vals = [0u64; 17];
            for v in &mut vals {
                *v = p.u64()?;
            }
            Response::ServerStats(ServerStatsFrame {
                queries: vals[0],
                samples: vals[1],
                iterations: vals[2],
                errors: vals[3],
                mean_ns: vals[4],
                p50_ns: vals[5],
                p99_ns: vals[6],
                engines_cached: vals[7],
                cache_hits: vals[8],
                cache_misses: vals[9],
                connections_accepted: vals[10],
                active_connections: vals[11],
                patch_swaps: vals[12],
                cells_patched: vals[13],
                repairs: vals[14],
                last_swap_ns: vals[15],
                mu_total: {
                    let mu = f64::from_bits(vals[16]);
                    if !mu.is_finite() {
                        return Err(ProtocolError::Malformed("non-finite mu_total"));
                    }
                    mu
                },
            })
        }
        OP_UPDATE => {
            let req_id = p.u32()?;
            let status = RequestStatus::from_byte(p.u8()?)
                .ok_or(ProtocolError::Malformed("unknown status byte"))?;
            let stats = UpdateStats {
                first_id: p.u32()?,
                applied: p.u32()?,
                epoch: p.u64()?,
                version: p.u64()?,
            };
            Response::Update {
                req_id,
                status,
                stats,
            }
        }
        OP_EPOCH_INFO => {
            let req_id = p.u32()?;
            let status = RequestStatus::from_byte(p.u8()?)
                .ok_or(ProtocolError::Malformed("unknown status byte"))?;
            let info = EpochInfo {
                epoch: p.u64()?,
                version: p.u64()?,
                live_r: p.u64()?,
                live_s: p.u64()?,
                pending_ops: p.u64()?,
                last_swap_ns: p.u64()?,
            };
            Response::Epoch {
                req_id,
                status,
                info,
            }
        }
        OP_METRICS_TEXT => {
            let len = p.u32()? as usize;
            let text = p.str(len)?.to_string();
            Response::Metrics { text }
        }
        OP_TRACE_SPANS => {
            let trace_id = p.u64()?;
            let spans = parse_spans(&mut p)?;
            Response::Trace { trace_id, spans }
        }
        OP_SLOWLOG_ENTRIES => {
            let count = p.u32()? as usize;
            // Each entry is at least 70 bytes (eight u64 fields, an
            // empty algorithm string, an empty span list); bound the
            // allocation before trusting the count.
            if count * 70 > p.remaining() {
                return Err(ProtocolError::Malformed("slowlog count vs length mismatch"));
            }
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                let trace_id = p.u64()?;
                let finished_ns = p.u64()?;
                let dataset = p.u64()?;
                let t = p.u64()?;
                let epoch = p.u64()?;
                let iterations = p.u64()?;
                let queue_wait_ns = p.u64()?;
                let elapsed_ns = p.u64()?;
                let algo_len = p.u16()? as usize;
                let algorithm = p.str(algo_len)?.to_string();
                let spans = parse_spans(&mut p)?;
                entries.push(SlowLogEntry {
                    trace_id,
                    finished_ns,
                    dataset,
                    t,
                    algorithm,
                    epoch,
                    iterations,
                    queue_wait_ns,
                    elapsed_ns,
                    spans,
                });
            }
            Response::SlowLog { entries }
        }
        OP_WELCOME => Response::Welcome {
            version: p.u16()?,
            features: p.u32()?,
        },
        OP_PONG => Response::Pong { token: p.u64()? },
        OP_BUSY => Response::Busy {
            req_id: p.u32()?,
            retry_after_ms: p.u32()?,
        },
        OP_ERROR => {
            let code = ErrorCode::from_byte(p.u8()?)?;
            let len = p.u16()? as usize;
            if len > MAX_ERROR_MSG_LEN {
                return Err(ProtocolError::Malformed("error message too long"));
            }
            let message = p.str(len)?.to_string();
            Response::Error { code, message }
        }
        _ => return Err(ProtocolError::Malformed("unknown response opcode")),
    };
    p.finish()?;
    Ok(resp)
}

/// Prepends the length prefix, turning a payload into a wire frame.
fn finish_frame(payload: Vec<u8>) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_FRAME_LEN,
        "frame exceeds MAX_FRAME_LEN"
    );
    let mut frame = Vec::with_capacity(payload.len() + 4);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Writes a pre-encoded frame (as produced by the `encode_*` helpers).
pub fn write_frame<W: Write>(w: &mut W, frame: &[u8]) -> std::io::Result<()> {
    w.write_all(frame)
}

/// Reads one frame payload. `Ok(None)` on clean EOF at a frame
/// boundary; mid-frame EOF is an error.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, ProtocolError> {
    let mut len_buf = [0u8; 4];
    // Distinguish "connection closed between frames" from "closed
    // mid-frame": the first is a clean end-of-stream.
    match r.read(&mut len_buf)? {
        0 => return Ok(None),
        n => r.read_exact(&mut len_buf[n..])?,
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Outcome of a deadline-aware frame read
/// ([`read_frame_or_idle`]).
#[derive(Debug)]
pub enum FrameRead {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// Clean end-of-stream at a frame boundary.
    Eof,
    /// The socket's read timeout expired with **zero** bytes received
    /// — the peer is idle at a frame boundary, not broken. (A timeout
    /// after partial bytes is a mid-frame stall and surfaces as
    /// [`ProtocolError::Io`].)
    Idle,
}

/// Reads one frame from a stream that has a read timeout set
/// (`TcpStream::set_read_timeout`). A timeout before the first byte
/// of the length prefix is reported as [`FrameRead::Idle`] so the
/// caller can check liveness/shutdown flags and keep waiting; a
/// timeout anywhere inside a frame means the peer stalled mid-frame
/// and is an error.
pub fn read_frame_or_idle<R: Read>(r: &mut R) -> Result<FrameRead, ProtocolError> {
    let mut len_buf = [0u8; 4];
    match r.read(&mut len_buf) {
        Ok(0) => return Ok(FrameRead::Eof),
        Ok(n) => r.read_exact(&mut len_buf[n..])?,
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            return Ok(FrameRead::Idle);
        }
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(FrameRead::Frame(payload))
}

/// Incremental frame decoder for nonblocking sockets.
///
/// The readiness loop reads whatever bytes the socket has and feeds
/// them through [`FrameAccumulator::extend`]; complete frame payloads
/// come back out of [`FrameAccumulator::next_frame`] one at a time,
/// in arrival order, regardless of how the byte stream was split.
/// The length prefix is validated against [`MAX_FRAME_LEN`] as soon
/// as its 4 bytes are present — an oversized frame is rejected before
/// any payload is buffered, exactly like [`read_frame`]'s check
/// before allocation.
#[derive(Debug, Default)]
pub struct FrameAccumulator {
    buf: Vec<u8>,
    /// Bytes of `buf` already handed out as frames; compacted lazily.
    pos: usize,
}

/// Consumed prefix past which [`FrameAccumulator::next_frame`]
/// compacts its buffer instead of letting it creep.
const ACCUMULATOR_COMPACT_BYTES: usize = 64 * 1024;

impl FrameAccumulator {
    pub fn new() -> FrameAccumulator {
        FrameAccumulator::default()
    }

    /// Appends raw socket bytes (any split, including one at a time).
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame payload, `Ok(None)` when more
    /// bytes are needed. A length prefix beyond [`MAX_FRAME_LEN`] is
    /// an error the moment it is readable; the accumulator is then
    /// poisoned garbage and the connection must be torn down.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, ProtocolError> {
        let pending = &self.buf[self.pos..];
        if pending.len() < 4 {
            self.maybe_compact();
            return Ok(None);
        }
        let len = u32::from_le_bytes([pending[0], pending[1], pending[2], pending[3]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(ProtocolError::TooLarge(len));
        }
        if pending.len() < 4 + len {
            self.maybe_compact();
            return Ok(None);
        }
        let payload = pending[4..4 + len].to_vec();
        self.pos += 4 + len;
        self.maybe_compact();
        Ok(Some(payload))
    }

    /// Whether a partial frame (or partial length prefix) is pending —
    /// the state that arms a mid-frame read deadline.
    pub fn has_partial(&self) -> bool {
        self.buf.len() > self.pos
    }

    /// Bytes buffered but not yet returned as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn maybe_compact(&mut self) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > ACCUMULATOR_COMPACT_BYTES {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let frame = encode_request(&req);
        let mut cursor = std::io::Cursor::new(&frame);
        let payload = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(decode_request(&payload).unwrap(), req);
    }

    fn roundtrip_response(resp: Response) {
        let frame = encode_response(&resp);
        let mut cursor = std::io::Cursor::new(&frame);
        let payload = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(decode_response(&payload).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        for algorithm in [
            None,
            Some(Algorithm::Kds),
            Some(Algorithm::KdsRejection),
            Some(Algorithm::Bbst),
        ] {
            roundtrip_request(Request::Sample(SampleRequest {
                req_id: 7,
                dataset: 0xDEAD_BEEF,
                l: 123.456,
                algorithm,
                shards: 4,
                t: 1_000_000,
                seed: 42,
            }));
        }
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Shutdown);
        roundtrip_request(Request::Metrics);
        roundtrip_request(Request::Trace { trace_id: 0xFEED });
    }

    #[test]
    fn observability_responses_roundtrip() {
        roundtrip_response(Response::Metrics {
            text: String::new(),
        });
        roundtrip_response(Response::Metrics {
            text: "# TYPE srj_requests_total counter\nsrj_requests_total 5\n".to_string(),
        });
        roundtrip_response(Response::Trace {
            trace_id: 42,
            spans: Vec::new(),
        });
        roundtrip_response(Response::Trace {
            trace_id: 42,
            spans: vec![
                TraceSpan {
                    ns: 1_000,
                    span: "frame_decode".to_string(),
                    event: "begin".to_string(),
                },
                TraceSpan {
                    ns: 2_000,
                    span: "draw_loop".to_string(),
                    event: "end".to_string(),
                },
            ],
        });
    }

    fn slow_entry(trace_id: u64) -> SlowLogEntry {
        SlowLogEntry {
            trace_id,
            finished_ns: 1_000_000,
            dataset: 3,
            t: 50_000,
            algorithm: "auto".to_string(),
            epoch: 2,
            iterations: 123_456,
            queue_wait_ns: 7_890,
            elapsed_ns: 42_000_000,
            spans: vec![
                TraceSpan {
                    ns: 10,
                    span: "frame_decode".to_string(),
                    event: "sample_request".to_string(),
                },
                TraceSpan {
                    ns: 20,
                    span: "draw_loop".to_string(),
                    event: "begin".to_string(),
                },
            ],
        }
    }

    #[test]
    fn slowlog_frames_roundtrip() {
        roundtrip_request(Request::SlowLog { max: 0 });
        roundtrip_request(Request::SlowLog { max: 32 });
        roundtrip_response(Response::SlowLog {
            entries: Vec::new(),
        });
        roundtrip_response(Response::SlowLog {
            entries: vec![slow_entry(9), slow_entry(8)],
        });
        // An entry with no spans and an empty algorithm name is the
        // minimal (70-byte) wire form.
        roundtrip_response(Response::SlowLog {
            entries: vec![SlowLogEntry::default()],
        });
    }

    #[test]
    fn slowlog_hostile_counts_are_rejected() {
        let frame = encode_response(&Response::SlowLog {
            entries: vec![slow_entry(1)],
        });
        // Claim 60000 entries: must fail the pre-allocation bound
        // check (entry count lives right after the opcode byte).
        let mut payload = frame[4..].to_vec();
        payload[1..5].copy_from_slice(&60_000u32.to_le_bytes());
        assert!(decode_response(&payload).is_err());
        // Claim a huge span count inside the single entry: the nested
        // span guard must reject it. The span count sits after the
        // opcode, entry count, eight u64 fields, and "auto".
        let mut payload = frame[4..].to_vec();
        let off = 1 + 4 + 64 + 2 + 4;
        payload[off..off + 4].copy_from_slice(&1_000_000u32.to_le_bytes());
        assert!(decode_response(&payload).is_err());
        // Truncating the final span mid-string is a malformed frame.
        let short = &frame[4..frame.len() - 3];
        assert!(decode_response(short).is_err());
    }

    #[test]
    fn trace_span_count_mismatch_is_rejected() {
        let frame = encode_response(&Response::Trace {
            trace_id: 1,
            spans: vec![TraceSpan {
                ns: 5,
                span: "a".to_string(),
                event: "b".to_string(),
            }],
        });
        let mut payload = frame[4..].to_vec();
        // claim 1000 spans: must fail the pre-allocation bound check
        payload[9..13].copy_from_slice(&1000u32.to_le_bytes());
        assert!(decode_response(&payload).is_err());
    }

    #[test]
    fn non_finite_mu_total_is_canonicalized_and_rejected() {
        // Encode canonicalizes a NaN Σµ to 0.0 — no arbitrary NaN bit
        // patterns on the wire.
        let frame = encode_response(&Response::ServerStats(ServerStatsFrame {
            mu_total: f64::NAN,
            ..ServerStatsFrame::default()
        }));
        match decode_response(&frame[4..]).unwrap() {
            Response::ServerStats(s) => assert_eq!(s.mu_total, 0.0),
            other => panic!("unexpected response: {other:?}"),
        }
        // A frame carrying non-finite bits anyway (hostile or corrupt
        // peer) is rejected as malformed, for every non-finite class.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let frame = encode_response(&Response::ServerStats(ServerStatsFrame::default()));
            let mut payload = frame[4..].to_vec();
            let off = payload.len() - 8;
            payload[off..].copy_from_slice(&bad.to_bits().to_le_bytes());
            assert!(
                matches!(decode_response(&payload), Err(ProtocolError::Malformed(_))),
                "{bad} must be rejected"
            );
        }
    }

    #[test]
    fn update_requests_roundtrip() {
        for side in [Side::R, Side::S] {
            roundtrip_request(Request::Insert {
                req_id: 11,
                dataset: 7,
                side,
                points: vec![Point::new(1.5, -2.5), Point::new(0.0, 9999.0)],
            });
            roundtrip_request(Request::Insert {
                req_id: 12,
                dataset: 7,
                side,
                points: Vec::new(),
            });
            roundtrip_request(Request::Delete {
                req_id: 13,
                dataset: 7,
                side,
                ids: vec![0, 42, u32::MAX],
            });
        }
        roundtrip_request(Request::Epoch {
            req_id: 14,
            dataset: 7,
        });
    }

    #[test]
    fn update_responses_roundtrip() {
        roundtrip_response(Response::Update {
            req_id: 21,
            status: RequestStatus::Ok,
            stats: UpdateStats {
                first_id: 100,
                applied: 3,
                epoch: 2,
                version: 17,
            },
        });
        roundtrip_response(Response::Update {
            req_id: 22,
            status: RequestStatus::UnknownDataset,
            stats: UpdateStats::default(),
        });
        roundtrip_response(Response::Epoch {
            req_id: 23,
            status: RequestStatus::Ok,
            info: EpochInfo {
                epoch: 3,
                version: 99,
                live_r: 1000,
                live_s: 2000,
                pending_ops: 12,
                last_swap_ns: 1_234_567,
            },
        });
    }

    #[test]
    fn malformed_update_frames_are_rejected() {
        // count says 2 points but payload holds 1
        let frame = encode_request(&Request::Insert {
            req_id: 0,
            dataset: 1,
            side: Side::R,
            points: vec![Point::new(1.0, 2.0)],
        });
        let mut payload = frame[4..].to_vec();
        payload[14..18].copy_from_slice(&2u32.to_le_bytes());
        assert!(decode_request(&payload).is_err());
        // NaN coordinate
        let mut frame = encode_request(&Request::Insert {
            req_id: 0,
            dataset: 1,
            side: Side::R,
            points: vec![Point::new(1.0, 2.0)],
        });
        let off = frame.len() - 8;
        frame[off..].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert!(decode_request(&frame[4..]).is_err());
        // unknown side byte
        let mut frame = encode_request(&Request::Delete {
            req_id: 0,
            dataset: 1,
            side: Side::S,
            ids: vec![1],
        });
        frame[17] = 9;
        assert!(decode_request(&frame[4..]).is_err());
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::Batch {
            req_id: 3,
            pairs: (0..1000).map(|i| JoinPair::new(i, i * 2)).collect(),
        });
        roundtrip_response(Response::Batch {
            req_id: 0,
            pairs: Vec::new(),
        });
        for status in [
            RequestStatus::Ok,
            RequestStatus::UnknownDataset,
            RequestStatus::EmptyJoin,
            RequestStatus::RejectionLimit,
            RequestStatus::BadRequest,
            RequestStatus::ShuttingDown,
        ] {
            roundtrip_response(Response::Done {
                req_id: 9,
                status,
                stats: RequestStats {
                    samples: 100,
                    iterations: 250,
                    elapsed_ns: 12_345,
                    trace_id: 77,
                },
            });
        }
        roundtrip_response(Response::ServerStats(ServerStatsFrame {
            queries: 1,
            samples: 2,
            iterations: 3,
            errors: 4,
            mean_ns: 5,
            p50_ns: 6,
            p99_ns: 7,
            engines_cached: 8,
            cache_hits: 9,
            cache_misses: 10,
            connections_accepted: 11,
            active_connections: 12,
            patch_swaps: 13,
            cells_patched: 14,
            repairs: 15,
            last_swap_ns: 16,
            mu_total: 1234.5,
        }));
    }

    #[test]
    fn truncated_stats_frame_is_rejected() {
        let frame = encode_response(&Response::ServerStats(ServerStatsFrame::default()));
        // Drop the trailing mu_total field: the old 12-counter layout
        // must no longer parse.
        assert!(decode_response(&frame[4..frame.len() - 8]).is_err());
    }

    #[test]
    fn malformed_frames_are_rejected_not_panicked() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[0xFF]).is_err());
        assert!(decode_request(&[OP_SAMPLE, 1, 2]).is_err(), "truncated");
        // trailing garbage after a valid STATS
        assert!(decode_request(&[OP_STATS, 0]).is_err());
        // NaN / negative half-extent
        let mut frame = encode_request(&Request::Sample(SampleRequest {
            req_id: 0,
            dataset: 1,
            l: 1.0,
            algorithm: None,
            shards: 1,
            t: 1,
            seed: 0,
        }));
        // stomp the l bits (offset: 4 len + 1 op + 4 req_id + 8 dataset)
        frame[17..25].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert!(decode_request(&frame[4..]).is_err());

        assert!(decode_response(&[OP_BATCH, 0, 0, 0, 0, 9, 0, 0, 0]).is_err());
    }

    #[test]
    fn handshake_and_control_frames_roundtrip() {
        roundtrip_request(Request::Hello {
            version: PROTOCOL_VERSION,
            features: SERVER_FEATURES,
        });
        roundtrip_request(Request::Hello {
            version: 0,
            features: 0,
        });
        roundtrip_request(Request::Ping { token: u64::MAX });
        roundtrip_response(Response::Welcome {
            version: PROTOCOL_VERSION,
            features: SERVER_FEATURES,
        });
        roundtrip_response(Response::Pong { token: 0xDEAD });
        roundtrip_response(Response::Busy {
            req_id: 7,
            retry_after_ms: 125,
        });
        for code in [
            ErrorCode::VersionMismatch,
            ErrorCode::HandshakeRequired,
            ErrorCode::Rejected,
        ] {
            roundtrip_response(Response::Error {
                code,
                message: format!("{code}"),
            });
        }
        roundtrip_response(Response::Error {
            code: ErrorCode::Rejected,
            message: String::new(),
        });
    }

    #[test]
    fn oversized_error_message_is_truncated_on_encode_rejected_on_decode() {
        // Encode truncates to MAX_ERROR_MSG_LEN without splitting a
        // UTF-8 scalar...
        let long = "é".repeat(MAX_ERROR_MSG_LEN); // 2 bytes each
        let frame = encode_response(&Response::Error {
            code: ErrorCode::Rejected,
            message: long,
        });
        match decode_response(&frame[4..]).unwrap() {
            Response::Error { message, .. } => {
                assert!(message.len() <= MAX_ERROR_MSG_LEN);
                assert!(!message.is_empty());
            }
            other => panic!("unexpected response: {other:?}"),
        }
        // ...and a hostile frame claiming a longer message is
        // rejected before any allocation happens.
        let mut payload = vec![OP_ERROR, 3];
        payload.extend_from_slice(&((MAX_ERROR_MSG_LEN as u16) + 1).to_le_bytes());
        payload.extend(std::iter::repeat_n(b'x', MAX_ERROR_MSG_LEN + 1));
        assert!(decode_response(&payload).is_err());
        // Unknown error-code byte.
        let payload = vec![OP_ERROR, 99, 0, 0];
        assert!(decode_response(&payload).is_err());
    }

    /// `Idle` only at a frame boundary: a timeout mid-frame is a
    /// broken peer, not an idle one.
    #[test]
    fn read_frame_or_idle_distinguishes_idle_eof_and_stall() {
        struct Script(Vec<std::io::Result<Vec<u8>>>);
        impl Read for Script {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                match self.0.pop() {
                    None => Ok(0),
                    Some(Ok(bytes)) => {
                        buf[..bytes.len()].copy_from_slice(&bytes);
                        Ok(bytes.len())
                    }
                    Some(Err(e)) => Err(e),
                }
            }
        }
        let timeout = || std::io::Error::from(std::io::ErrorKind::WouldBlock);

        // Timeout before any byte: Idle.
        let mut r = Script(vec![Err(timeout())]);
        assert!(matches!(read_frame_or_idle(&mut r), Ok(FrameRead::Idle)));
        // EOF at the boundary: Eof.
        let mut r = Script(vec![]);
        assert!(matches!(read_frame_or_idle(&mut r), Ok(FrameRead::Eof)));
        // Two length bytes then a timeout: mid-frame stall, error.
        let mut r = Script(vec![Err(timeout()), Ok(vec![2, 0])]);
        assert!(matches!(
            read_frame_or_idle(&mut r),
            Err(ProtocolError::Io(_))
        ));
        // A whole frame delivered byte-wise still parses.
        let frame = encode_request(&Request::Ping { token: 9 });
        let mut r = Script(frame.iter().rev().map(|&b| Ok(vec![b])).collect());
        match read_frame_or_idle(&mut r) {
            Ok(FrameRead::Frame(payload)) => {
                assert_eq!(
                    decode_request(&payload).unwrap(),
                    Request::Ping { token: 9 }
                );
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        bytes.extend_from_slice(&[0u8; 16]);
        let mut cursor = std::io::Cursor::new(&bytes);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ProtocolError::TooLarge(_))
        ));
    }

    #[test]
    fn clean_eof_is_none_midframe_eof_is_error() {
        let mut empty = std::io::Cursor::new(Vec::<u8>::new());
        assert!(read_frame(&mut empty).unwrap().is_none());
        // length says 10 bytes, stream has 2
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&10u32.to_le_bytes());
        bytes.extend_from_slice(&[1, 2]);
        let mut cursor = std::io::Cursor::new(&bytes);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn accumulator_reassembles_byte_at_a_time() {
        let reqs = [
            Request::Ping { token: 3 },
            Request::Stats,
            Request::Sample(SampleRequest {
                req_id: 1,
                dataset: 2,
                l: 4.5,
                algorithm: None,
                shards: 1,
                t: 10,
                seed: 6,
            }),
        ];
        let mut wire = Vec::new();
        for req in &reqs {
            wire.extend_from_slice(&encode_request(req));
        }
        let mut acc = FrameAccumulator::new();
        let mut decoded = Vec::new();
        for &b in &wire {
            acc.extend(&[b]);
            while let Some(payload) = acc.next_frame().unwrap() {
                decoded.push(decode_request(&payload).unwrap());
            }
        }
        assert_eq!(decoded, reqs);
        assert!(!acc.has_partial());
        assert_eq!(acc.buffered(), 0);
    }

    #[test]
    fn accumulator_rejects_oversized_prefix_before_payload() {
        let mut acc = FrameAccumulator::new();
        acc.extend(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        assert!(matches!(acc.next_frame(), Err(ProtocolError::TooLarge(_))));
    }

    #[test]
    fn accumulator_tracks_partial_state() {
        let frame = encode_request(&Request::Ping { token: 11 });
        let mut acc = FrameAccumulator::new();
        assert!(!acc.has_partial());
        acc.extend(&frame[..3]);
        assert!(acc.next_frame().unwrap().is_none());
        assert!(acc.has_partial(), "a split length prefix is mid-frame");
        acc.extend(&frame[3..]);
        let payload = acc.next_frame().unwrap().unwrap();
        assert_eq!(
            decode_request(&payload).unwrap(),
            Request::Ping { token: 11 }
        );
        assert!(!acc.has_partial());
    }
}
