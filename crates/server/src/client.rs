//! A blocking client for the `srj-server` protocol.
//!
//! One [`Client`] owns one TCP connection. [`Client::sample`] issues a
//! `SAMPLE` request and collects the whole answer;
//! [`Client::sample_with`] hands each batch to a callback as it
//! arrives, which is both the streaming consumption mode and — because
//! a callback that dawdles stops reading the socket — the natural way
//! to exercise the server's backpressure.

use std::net::{TcpStream, ToSocketAddrs};

use srj_core::JoinPair;
use srj_geom::Point;

use crate::protocol::{
    encode_request, read_frame, write_frame, EpochInfo, ProtocolError, Request, RequestStats,
    RequestStatus, Response, SampleRequest, ServerStatsFrame, Side, TraceSpan,
};

/// Client-side failure modes.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Protocol(ProtocolError),
    /// The server answered out of protocol (wrong frame kind or an
    /// unexpected request id).
    Unexpected(&'static str),
    /// The connection ended before the answer completed.
    Disconnected,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Unexpected(what) => write!(f, "unexpected server answer: {what}"),
            ClientError::Disconnected => write!(f, "server closed the connection mid-answer"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Protocol(ProtocolError::Io(e))
    }
}

/// A completed `SAMPLE` answer.
#[derive(Debug)]
pub struct SampleOutcome {
    /// How the server ended the request. [`RequestStatus::Ok`] means
    /// all `t` samples arrived; any other status may come with a
    /// partial prefix of the stream.
    pub status: RequestStatus,
    /// Server-side per-request statistics from the `DONE` frame.
    pub stats: RequestStats,
    /// Samples received (empty for [`Client::sample_with`], which
    /// hands them to the callback instead).
    pub pairs: Vec<JoinPair>,
}

/// A completed `INSERT`/`DELETE` answer (see
/// [`crate::protocol::UpdateStats`] for the field semantics).
#[derive(Clone, Copy, Debug)]
pub struct UpdateOutcome {
    /// How the mutation ended.
    pub status: RequestStatus,
    /// First assigned id (inserts; contiguous per call).
    pub first_id: u32,
    /// Operations actually applied.
    pub applied: u32,
    /// Dataset epoch after the mutation.
    pub epoch: u64,
    /// Dataset version after the mutation.
    pub version: u64,
}

/// One blocking connection to an `srj-server`.
pub struct Client {
    stream: TcpStream,
    next_req_id: u32,
}

impl Client {
    /// Connects to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            next_req_id: 1,
        })
    }

    /// Draws `req.t` samples, collecting every batch. `req.req_id` is
    /// overwritten with a connection-unique id.
    pub fn sample(&mut self, req: SampleRequest) -> Result<SampleOutcome, ClientError> {
        let mut pairs = Vec::new();
        let mut outcome = self.sample_with(req, |batch| pairs.extend_from_slice(batch))?;
        outcome.pairs = pairs;
        Ok(outcome)
    }

    /// Draws `req.t` samples, handing each batch to `on_batch` as it
    /// arrives. The callback runs between socket reads: a slow callback
    /// is a slow reader, and the server parks this request (only) until
    /// the client catches up.
    pub fn sample_with(
        &mut self,
        mut req: SampleRequest,
        mut on_batch: impl FnMut(&[JoinPair]),
    ) -> Result<SampleOutcome, ClientError> {
        req.req_id = self.next_req_id;
        self.next_req_id = self.next_req_id.wrapping_add(1);
        write_frame(&mut self.stream, &encode_request(&Request::Sample(req)))?;
        loop {
            match self.read_response()? {
                Response::Batch { req_id, pairs } if req_id == req.req_id => on_batch(&pairs),
                Response::Done {
                    req_id,
                    status,
                    stats,
                } if req_id == req.req_id => {
                    return Ok(SampleOutcome {
                        status,
                        stats,
                        pairs: Vec::new(),
                    });
                }
                _ => return Err(ClientError::Unexpected("frame for a different request")),
            }
        }
    }

    /// Inserts `points` into one side of a dataset. On
    /// [`RequestStatus::Ok`] the points were assigned the contiguous id
    /// range starting at [`UpdateOutcome::first_id`] (epoch-relative —
    /// a later rebuild renumbers ids; watch [`UpdateOutcome::epoch`] /
    /// [`Client::epoch`]).
    pub fn insert(
        &mut self,
        dataset: u64,
        side: Side,
        points: &[Point],
    ) -> Result<UpdateOutcome, ClientError> {
        let req_id = self.next_id();
        write_frame(
            &mut self.stream,
            &encode_request(&Request::Insert {
                req_id,
                dataset,
                side,
                points: points.to_vec(),
            }),
        )?;
        self.read_update(req_id)
    }

    /// Tombstones points of one side of a dataset by id. Unknown or
    /// already-deleted ids are skipped; [`UpdateOutcome::applied`]
    /// counts the ids that actually took effect.
    pub fn delete(
        &mut self,
        dataset: u64,
        side: Side,
        ids: &[u32],
    ) -> Result<UpdateOutcome, ClientError> {
        let req_id = self.next_id();
        write_frame(
            &mut self.stream,
            &encode_request(&Request::Delete {
                req_id,
                dataset,
                side,
                ids: ids.to_vec(),
            }),
        )?;
        self.read_update(req_id)
    }

    /// Queries a dataset's epoch/version state.
    pub fn epoch(&mut self, dataset: u64) -> Result<(RequestStatus, EpochInfo), ClientError> {
        let req_id = self.next_id();
        write_frame(
            &mut self.stream,
            &encode_request(&Request::Epoch { req_id, dataset }),
        )?;
        match self.read_response()? {
            Response::Epoch {
                req_id: rid,
                status,
                info,
            } if rid == req_id => Ok((status, info)),
            _ => Err(ClientError::Unexpected("expected an epoch frame")),
        }
    }

    fn next_id(&mut self) -> u32 {
        let id = self.next_req_id;
        self.next_req_id = self.next_req_id.wrapping_add(1);
        id
    }

    fn read_update(&mut self, req_id: u32) -> Result<UpdateOutcome, ClientError> {
        match self.read_response()? {
            Response::Update {
                req_id: rid,
                status,
                stats,
            } if rid == req_id => Ok(UpdateOutcome {
                status,
                first_id: stats.first_id,
                applied: stats.applied,
                epoch: stats.epoch,
                version: stats.version,
            }),
            _ => Err(ClientError::Unexpected("expected an update frame")),
        }
    }

    /// Fetches server-wide aggregate statistics.
    pub fn server_stats(&mut self) -> Result<ServerStatsFrame, ClientError> {
        write_frame(&mut self.stream, &encode_request(&Request::Stats))?;
        match self.read_response()? {
            Response::ServerStats(frame) => Ok(frame),
            _ => Err(ClientError::Unexpected("expected a stats frame")),
        }
    }

    /// Fetches the server's metrics in the Prometheus text exposition
    /// format (the `METRICS` frame; what `srj-top` polls).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        write_frame(&mut self.stream, &encode_request(&Request::Metrics))?;
        match self.read_response()? {
            Response::Metrics { text } => Ok(text),
            _ => Err(ClientError::Unexpected("expected a metrics frame")),
        }
    }

    /// Fetches the still-buffered spans of a trace, oldest first. Feed
    /// it the nonzero [`RequestStats::trace_id`] a traced `SAMPLE`'s
    /// `DONE` frame carried; an untraced or already-overwritten trace
    /// comes back empty.
    pub fn trace(&mut self, trace_id: u64) -> Result<Vec<TraceSpan>, ClientError> {
        write_frame(
            &mut self.stream,
            &encode_request(&Request::Trace { trace_id }),
        )?;
        match self.read_response()? {
            Response::Trace {
                trace_id: tid,
                spans,
            } if tid == trace_id => Ok(spans),
            Response::Trace { .. } => Err(ClientError::Unexpected("trace for a different id")),
            _ => Err(ClientError::Unexpected("expected a trace frame")),
        }
    }

    /// Asks the server to shut down gracefully. The connection is
    /// unusable afterwards.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        write_frame(&mut self.stream, &encode_request(&Request::Shutdown))?;
        Ok(())
    }

    fn read_response(&mut self) -> Result<Response, ClientError> {
        let payload = read_frame(&mut self.stream)?.ok_or(ClientError::Disconnected)?;
        Ok(crate::protocol::decode_response(&payload)?)
    }
}
