//! A blocking, fault-tolerant client for the `srj-server` protocol.
//!
//! One [`Client`] owns one TCP connection, opened under
//! [`ClientConfig::connect_timeout`] and versioned by the mandatory
//! `HELLO`/`WELCOME` handshake. [`Client::sample`] issues a `SAMPLE`
//! request and collects the whole answer; [`Client::sample_with`]
//! hands each batch to a callback as it arrives, which is both the
//! streaming consumption mode and — because a callback that dawdles
//! stops reading the socket — the natural way to exercise the server's
//! backpressure.
//!
//! **Retry semantics.** Every request honours
//! [`ClientConfig::retries`] with jittered exponential backoff, and a
//! `BUSY{retry_after_ms}` answer never waits less than the server's
//! hint. What is safe to resend differs by request:
//!
//! * reads (`SAMPLE`, `STATS`, `METRICS`, `EPOCH`, `TRACE`, `SLOWLOG`,
//!   `PING`)
//!   are idempotent — transport failures reconnect and resend freely
//!   ([`Client::sample`] restarts with a fresh buffer;
//!   [`Client::sample_with`] only resends while *zero* batches have
//!   reached the callback, since delivered pairs cannot be recalled);
//! * mutations (`INSERT`/`DELETE`) are **not** idempotent over a lost
//!   answer. The client probes the dataset's `EPOCH` counters before
//!   sending; after a transport failure it reconnects, re-probes, and
//!   resends only when the counters are unchanged (the mutation
//!   provably did not apply). A changed counter surfaces as
//!   [`ClientError::AmbiguousMutation`] — with this client as the
//!   dataset's sole mutator that means "applied, answer lost", and
//!   callers holding a ledger (e.g. the chaos harness) can resolve it
//!   from the live counts. `BUSY` answers to mutations are always safe
//!   to retry: the server declined before applying anything.

use std::cell::Cell;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use srj_core::JoinPair;
use srj_geom::Point;

use crate::fault::FaultRng;
use crate::protocol::{
    encode_request, read_frame, write_frame, EpochInfo, ErrorCode, ProtocolError, Request,
    RequestStats, RequestStatus, Response, SampleRequest, ServerStatsFrame, Side, TraceSpan,
    FEAT_BUSY, FEAT_KEEPALIVE, FEAT_MUTATIONS, PROTOCOL_VERSION,
};

/// Connection and retry knobs. The defaults suit an interactive client
/// on a healthy network; a chaos harness raises `retries`.
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// Deadline for the TCP connect itself. Default 5 s. Zero blocks
    /// indefinitely (plain `connect`).
    pub connect_timeout: Duration,
    /// Socket read deadline; an answer stalled past it counts as a
    /// transport failure (and retries, when the request allows).
    /// Default 30 s. Zero disables.
    pub read_timeout: Duration,
    /// Socket write deadline. Default 30 s. Zero disables.
    pub write_timeout: Duration,
    /// `TCP_NODELAY` on the connection. Default `true` — the protocol
    /// is request/response, Nagle only adds latency.
    pub nodelay: bool,
    /// Resends allowed per request after `BUSY` answers or transport
    /// failures. Default 3. Zero also skips the pre-mutation `EPOCH`
    /// probe (no retry, nothing to classify).
    pub retries: u32,
    /// First backoff step; doubles each retry. Default 50 ms.
    pub backoff_base: Duration,
    /// Backoff ceiling. Default 2 s.
    pub backoff_max: Duration,
    /// Seed for the backoff jitter stream (any value works; two
    /// clients with different seeds desynchronise their retry storms).
    pub jitter_seed: u64,
    /// Feature bits advertised in `HELLO`. Default: everything this
    /// client implements.
    pub features: u32,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            nodelay: true,
            retries: 3,
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
            jitter_seed: 0,
            features: FEAT_KEEPALIVE | FEAT_BUSY | FEAT_MUTATIONS,
        }
    }
}

/// Client-side failure modes.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Protocol(ProtocolError),
    /// The server answered out of protocol (wrong frame kind or an
    /// unexpected request id).
    Unexpected(&'static str),
    /// The connection ended before the answer completed.
    Disconnected,
    /// The server answered `BUSY` and the retry budget is exhausted;
    /// carries the server's last `retry_after_ms` hint.
    Busy {
        /// The server's suggested wait before re-offering.
        retry_after_ms: u32,
    },
    /// The server refused the connection or request with an `ERROR`
    /// frame (version mismatch, missing handshake, …).
    Rejected {
        /// Machine-readable reason.
        code: ErrorCode,
        /// Human-readable detail from the server.
        message: String,
    },
    /// A mutation's answer was lost and the dataset's epoch/version
    /// moved meanwhile, so the client cannot prove the mutation did
    /// not apply. Sole-mutator callers can resolve this from the
    /// dataset's live counts ([`Client::epoch`]).
    AmbiguousMutation,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Unexpected(what) => write!(f, "unexpected server answer: {what}"),
            ClientError::Disconnected => write!(f, "server closed the connection mid-answer"),
            ClientError::Busy { retry_after_ms } => {
                write!(f, "server busy (retry after {retry_after_ms} ms)")
            }
            ClientError::Rejected { code, message } => {
                write!(f, "server rejected the connection ({code}): {message}")
            }
            ClientError::AmbiguousMutation => {
                write!(
                    f,
                    "mutation answer lost; server state moved, cannot prove non-application"
                )
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Protocol(ProtocolError::Io(e))
    }
}

/// Whether an error is a transport failure (reconnect + resend might
/// help) rather than a semantic answer.
fn is_transport(e: &ClientError) -> bool {
    matches!(
        e,
        ClientError::Protocol(ProtocolError::Io(_)) | ClientError::Disconnected
    )
}

/// A completed `SAMPLE` answer.
#[derive(Debug)]
pub struct SampleOutcome {
    /// How the server ended the request. [`RequestStatus::Ok`] means
    /// all `t` samples arrived; any other status may come with a
    /// partial prefix of the stream.
    pub status: RequestStatus,
    /// Server-side per-request statistics from the `DONE` frame.
    pub stats: RequestStats,
    /// Samples received (empty for [`Client::sample_with`], which
    /// hands them to the callback instead).
    pub pairs: Vec<JoinPair>,
}

/// A completed `INSERT`/`DELETE` answer (see
/// [`crate::protocol::UpdateStats`] for the field semantics).
#[derive(Clone, Copy, Debug)]
pub struct UpdateOutcome {
    /// How the mutation ended.
    pub status: RequestStatus,
    /// First assigned id (inserts; contiguous per call).
    pub first_id: u32,
    /// Operations actually applied.
    pub applied: u32,
    /// Dataset epoch after the mutation.
    pub epoch: u64,
    /// Dataset version after the mutation.
    pub version: u64,
}

/// One blocking connection to an `srj-server`, with reconnect/retry
/// state (see the module docs for what is safe to resend).
pub struct Client {
    stream: TcpStream,
    /// Resolved server addresses, kept for reconnects.
    addrs: Vec<SocketAddr>,
    config: ClientConfig,
    next_req_id: u32,
    /// Feature bits the server advertised in `WELCOME`.
    server_features: u32,
    /// Resends performed (both `BUSY`- and transport-triggered).
    retries_total: u64,
    /// `BUSY` answers received.
    busy_answers: u64,
    jitter: FaultRng,
}

impl Client {
    /// Connects with the default [`ClientConfig`].
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connects (under `config.connect_timeout`) and performs the
    /// `HELLO`/`WELCOME` handshake. A server speaking another protocol
    /// version answers a clean `ERROR` frame, surfaced as
    /// [`ClientError::Rejected`].
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        config: ClientConfig,
    ) -> Result<Client, ClientError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(ClientError::Unexpected("address resolved to nothing"));
        }
        let stream = dial(&addrs, &config)?;
        let mut client = Client {
            stream,
            addrs,
            config,
            next_req_id: 1,
            server_features: 0,
            retries_total: 0,
            busy_answers: 0,
            jitter: FaultRng::new(config.jitter_seed ^ 0x6A17_7E5E_ED5E_ED00),
        };
        client.handshake()?;
        Ok(client)
    }

    /// Feature bits the server advertised in `WELCOME`.
    pub fn server_features(&self) -> u32 {
        self.server_features
    }

    /// Resends this client has performed (after `BUSY` answers or
    /// transport failures).
    pub fn retries(&self) -> u64 {
        self.retries_total
    }

    /// `BUSY` answers this client has received.
    pub fn busy_answers(&self) -> u64 {
        self.busy_answers
    }

    /// Round-trips a keepalive `PING` (retried like any idempotent
    /// read).
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let token = u64::from(self.next_id()) | 0x5157_0000_0000_0000;
        match self.exchange(&Request::Ping { token })? {
            Response::Pong { token: t } if t == token => Ok(()),
            _ => Err(ClientError::Unexpected("expected a pong frame")),
        }
    }

    /// Draws `req.t` samples, collecting every batch. `req.req_id` is
    /// overwritten with a connection-unique id. Retries freely: every
    /// attempt restarts with a fresh buffer, so a mid-stream transport
    /// failure costs time, never correctness.
    pub fn sample(&mut self, req: SampleRequest) -> Result<SampleOutcome, ClientError> {
        let mut attempt = 0u32;
        loop {
            let mut pairs = Vec::new();
            match self.try_sample(req, |batch| pairs.extend_from_slice(batch)) {
                Ok(mut outcome) => {
                    outcome.pairs = pairs;
                    return Ok(outcome);
                }
                Err(ClientError::Busy { retry_after_ms }) => {
                    self.busy_answers += 1;
                    if attempt >= self.config.retries {
                        return Err(ClientError::Busy { retry_after_ms });
                    }
                    self.backoff(attempt, retry_after_ms);
                }
                Err(e) if is_transport(&e) => {
                    if attempt >= self.config.retries {
                        return Err(e);
                    }
                    self.backoff(attempt, 0);
                    self.reconnect()?;
                }
                Err(e) => return Err(e),
            }
            self.retries_total += 1;
            attempt += 1;
        }
    }

    /// Draws `req.t` samples, handing each batch to `on_batch` as it
    /// arrives. The callback runs between socket reads: a slow callback
    /// is a slow reader, and the server parks this request (only) until
    /// the client catches up. Transport failures are retried only while
    /// zero batches have reached the callback — delivered pairs cannot
    /// be recalled, so a mid-stream failure surfaces as an error.
    pub fn sample_with(
        &mut self,
        req: SampleRequest,
        mut on_batch: impl FnMut(&[JoinPair]),
    ) -> Result<SampleOutcome, ClientError> {
        let mut attempt = 0u32;
        loop {
            let delivered = Cell::new(false);
            let result = self.try_sample(req, |batch| {
                delivered.set(true);
                on_batch(batch);
            });
            match result {
                Ok(outcome) => return Ok(outcome),
                Err(ClientError::Busy { retry_after_ms }) => {
                    self.busy_answers += 1;
                    if attempt >= self.config.retries {
                        return Err(ClientError::Busy { retry_after_ms });
                    }
                    self.backoff(attempt, retry_after_ms);
                }
                Err(e) if is_transport(&e) && !delivered.get() => {
                    if attempt >= self.config.retries {
                        return Err(e);
                    }
                    self.backoff(attempt, 0);
                    self.reconnect()?;
                }
                Err(e) => return Err(e),
            }
            self.retries_total += 1;
            attempt += 1;
        }
    }

    /// One `SAMPLE` attempt on the current connection.
    fn try_sample(
        &mut self,
        mut req: SampleRequest,
        mut on_batch: impl FnMut(&[JoinPair]),
    ) -> Result<SampleOutcome, ClientError> {
        req.req_id = self.next_id();
        write_frame(&mut self.stream, &encode_request(&Request::Sample(req)))?;
        loop {
            match self.read_response()? {
                Response::Batch { req_id, pairs } if req_id == req.req_id => on_batch(&pairs),
                Response::Done {
                    req_id,
                    status,
                    stats,
                } if req_id == req.req_id => {
                    return Ok(SampleOutcome {
                        status,
                        stats,
                        pairs: Vec::new(),
                    });
                }
                Response::Busy {
                    req_id,
                    retry_after_ms,
                } if req_id == req.req_id => {
                    return Err(ClientError::Busy { retry_after_ms });
                }
                Response::Error { code, message } => {
                    return Err(ClientError::Rejected { code, message });
                }
                _ => return Err(ClientError::Unexpected("frame for a different request")),
            }
        }
    }

    /// Inserts `points` into one side of a dataset. On
    /// [`RequestStatus::Ok`] the points were assigned the contiguous id
    /// range starting at [`UpdateOutcome::first_id`] (epoch-relative —
    /// a later rebuild renumbers ids; watch [`UpdateOutcome::epoch`] /
    /// [`Client::epoch`]). See the module docs for the retry contract.
    pub fn insert(
        &mut self,
        dataset: u64,
        side: Side,
        points: &[Point],
    ) -> Result<UpdateOutcome, ClientError> {
        let req = Request::Insert {
            req_id: 0,
            dataset,
            side,
            points: points.to_vec(),
        };
        self.mutate(dataset, req)
    }

    /// Tombstones points of one side of a dataset by id. Unknown or
    /// already-deleted ids are skipped; [`UpdateOutcome::applied`]
    /// counts the ids that actually took effect. See the module docs
    /// for the retry contract.
    pub fn delete(
        &mut self,
        dataset: u64,
        side: Side,
        ids: &[u32],
    ) -> Result<UpdateOutcome, ClientError> {
        let req = Request::Delete {
            req_id: 0,
            dataset,
            side,
            ids: ids.to_vec(),
        };
        self.mutate(dataset, req)
    }

    /// The shared mutation path: probe, send, and classify failures so
    /// a mutation is only ever resent when it provably did not apply.
    fn mutate(&mut self, dataset: u64, mut req: Request) -> Result<UpdateOutcome, ClientError> {
        // The baseline the non-application proof compares against. Not
        // probed when retries are off — there would be nothing to
        // classify — and absent when the server refuses the probe
        // (unknown dataset: the mutation below earns the same refusal
        // as its own clean UPDATE status).
        let baseline = if self.config.retries > 0 {
            self.baseline_counters(dataset)?
        } else {
            None
        };
        let mut attempt = 0u32;
        loop {
            let req_id = self.next_id();
            match &mut req {
                Request::Insert { req_id: id, .. } | Request::Delete { req_id: id, .. } => {
                    *id = req_id;
                }
                _ => unreachable!("mutate() only takes mutation requests"),
            }
            let result = (|| {
                write_frame(&mut self.stream, &encode_request(&req))?;
                self.read_response()
            })();
            match result {
                Ok(Response::Update {
                    req_id: rid,
                    status,
                    stats,
                }) if rid == req_id => {
                    return Ok(UpdateOutcome {
                        status,
                        first_id: stats.first_id,
                        applied: stats.applied,
                        epoch: stats.epoch,
                        version: stats.version,
                    });
                }
                Ok(Response::Busy {
                    req_id: rid,
                    retry_after_ms,
                }) if rid == req_id => {
                    // BUSY is an admission-control answer: the server
                    // declined before touching the store, so resending
                    // is always safe.
                    self.busy_answers += 1;
                    if attempt >= self.config.retries {
                        return Err(ClientError::Busy { retry_after_ms });
                    }
                    self.backoff(attempt, retry_after_ms);
                }
                Ok(Response::Error { code, message }) => {
                    return Err(ClientError::Rejected { code, message });
                }
                Ok(_) => return Err(ClientError::Unexpected("expected an update frame")),
                Err(e) if is_transport(&e) => {
                    let Some((epoch, version)) = baseline else {
                        return Err(e);
                    };
                    if attempt >= self.config.retries {
                        return Err(e);
                    }
                    self.backoff(attempt, 0);
                    self.reconnect()?;
                    // Resend only on proof of non-application: both
                    // counters unchanged since the pre-send probe. A
                    // moved counter means *some* mutation (with a sole
                    // mutator: ours) or a compaction landed — resending
                    // could double-apply, so surface the ambiguity.
                    if self.probe_counters(dataset)? != (epoch, version) {
                        return Err(ClientError::AmbiguousMutation);
                    }
                }
                Err(e) => return Err(e),
            }
            self.retries_total += 1;
            attempt += 1;
        }
    }

    /// Queries a dataset's epoch/version state.
    pub fn epoch(&mut self, dataset: u64) -> Result<(RequestStatus, EpochInfo), ClientError> {
        let req_id = self.next_id();
        match self.exchange(&Request::Epoch { req_id, dataset })? {
            Response::Epoch {
                req_id: rid,
                status,
                info,
            } if rid == req_id => Ok((status, info)),
            _ => Err(ClientError::Unexpected("expected an epoch frame")),
        }
    }

    /// `(epoch, version)` of a dataset, for mutation-retry proofs.
    fn probe_counters(&mut self, dataset: u64) -> Result<(u64, u64), ClientError> {
        let (status, info) = self.epoch(dataset)?;
        if status != RequestStatus::Ok {
            return Err(ClientError::Unexpected("epoch probe refused"));
        }
        Ok((info.epoch, info.version))
    }

    /// Pre-mutation baseline: like [`Self::probe_counters`], but a
    /// refused probe is `None` rather than an error, so a mutation
    /// against an unknown dataset still reaches the server and comes
    /// back with its proper `UNKNOWN_DATASET` status.
    fn baseline_counters(&mut self, dataset: u64) -> Result<Option<(u64, u64)>, ClientError> {
        let (status, info) = self.epoch(dataset)?;
        Ok((status == RequestStatus::Ok).then_some((info.epoch, info.version)))
    }

    fn next_id(&mut self) -> u32 {
        let id = self.next_req_id;
        self.next_req_id = self.next_req_id.wrapping_add(1);
        id
    }

    /// Fetches server-wide aggregate statistics.
    pub fn server_stats(&mut self) -> Result<ServerStatsFrame, ClientError> {
        match self.exchange(&Request::Stats)? {
            Response::ServerStats(frame) => Ok(frame),
            _ => Err(ClientError::Unexpected("expected a stats frame")),
        }
    }

    /// Fetches the server's metrics in the Prometheus text exposition
    /// format (the `METRICS` frame; what `srj-top` polls).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.exchange(&Request::Metrics)? {
            Response::Metrics { text } => Ok(text),
            _ => Err(ClientError::Unexpected("expected a metrics frame")),
        }
    }

    /// Fetches the still-buffered spans of a trace, oldest first. Feed
    /// it the nonzero [`RequestStats::trace_id`] a traced `SAMPLE`'s
    /// `DONE` frame carried; an untraced or already-overwritten trace
    /// comes back empty.
    pub fn trace(&mut self, trace_id: u64) -> Result<Vec<TraceSpan>, ClientError> {
        match self.exchange(&Request::Trace { trace_id })? {
            Response::Trace {
                trace_id: tid,
                spans,
            } if tid == trace_id => Ok(spans),
            Response::Trace { .. } => Err(ClientError::Unexpected("trace for a different id")),
            _ => Err(ClientError::Unexpected("expected a trace frame")),
        }
    }

    /// Fetches the server's slow-request log: up to `max` of the most
    /// recent over-threshold requests, newest first, each with its
    /// request context and captured span tree. The server additionally
    /// caps the answer at its own retention/frame limit.
    pub fn slow_log(
        &mut self,
        max: u32,
    ) -> Result<Vec<crate::protocol::SlowLogEntry>, ClientError> {
        match self.exchange(&Request::SlowLog { max })? {
            Response::SlowLog { entries } => Ok(entries),
            _ => Err(ClientError::Unexpected("expected a slow-log frame")),
        }
    }

    /// Asks the server to shut down gracefully. The connection is
    /// unusable afterwards.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        write_frame(&mut self.stream, &encode_request(&Request::Shutdown))?;
        Ok(())
    }

    /// One idempotent request/answer exchange with the full retry
    /// treatment: `BUSY` backs off and resends, transport failures
    /// reconnect and resend. Only used for requests that are safe to
    /// replay.
    fn exchange(&mut self, req: &Request) -> Result<Response, ClientError> {
        let mut attempt = 0u32;
        loop {
            let result = (|| {
                write_frame(&mut self.stream, &encode_request(req))?;
                self.read_response()
            })();
            match result {
                Ok(Response::Busy { retry_after_ms, .. }) => {
                    self.busy_answers += 1;
                    if attempt >= self.config.retries {
                        return Err(ClientError::Busy { retry_after_ms });
                    }
                    self.backoff(attempt, retry_after_ms);
                }
                Ok(Response::Error { code, message }) => {
                    return Err(ClientError::Rejected { code, message });
                }
                Ok(resp) => return Ok(resp),
                Err(e) if is_transport(&e) => {
                    if attempt >= self.config.retries {
                        return Err(e);
                    }
                    self.backoff(attempt, 0);
                    self.reconnect()?;
                }
                Err(e) => return Err(e),
            }
            self.retries_total += 1;
            attempt += 1;
        }
    }

    /// Sleeps the jittered exponential backoff for `attempt`, never
    /// less than the server's `retry_after_ms` hint.
    fn backoff(&mut self, attempt: u32, retry_after_ms: u32) {
        let step = self
            .config
            .backoff_base
            .saturating_mul(1u32 << attempt.min(16));
        let capped = step
            .min(self.config.backoff_max)
            .max(Duration::from_millis(1));
        // Half deterministic, half jitter: concurrent clients shed at
        // the same instant spread their re-offers apart.
        let half_ns = (capped.as_nanos() / 2).min(u128::from(u64::MAX)) as u64;
        let wait = Duration::from_nanos(half_ns)
            + Duration::from_nanos(self.jitter.next_u64() % half_ns.max(1));
        let hint = Duration::from_millis(u64::from(retry_after_ms));
        std::thread::sleep(wait.max(hint));
    }

    /// Re-dials and re-handshakes after a transport failure.
    fn reconnect(&mut self) -> Result<(), ClientError> {
        self.stream = dial(&self.addrs, &self.config)?;
        self.handshake()
    }

    /// The client half of the mandatory handshake.
    fn handshake(&mut self) -> Result<(), ClientError> {
        write_frame(
            &mut self.stream,
            &encode_request(&Request::Hello {
                version: PROTOCOL_VERSION,
                features: self.config.features,
            }),
        )?;
        match self.read_response()? {
            Response::Welcome { features, .. } => {
                self.server_features = features;
                Ok(())
            }
            Response::Error { code, message } => Err(ClientError::Rejected { code, message }),
            _ => Err(ClientError::Unexpected("expected a welcome frame")),
        }
    }

    fn read_response(&mut self) -> Result<Response, ClientError> {
        let payload = read_frame(&mut self.stream)?.ok_or(ClientError::Disconnected)?;
        Ok(crate::protocol::decode_response(&payload)?)
    }
}

/// Dials the first reachable address under the configured connect
/// timeout and applies the socket options.
fn dial(addrs: &[SocketAddr], config: &ClientConfig) -> Result<TcpStream, ClientError> {
    let mut last: Option<std::io::Error> = None;
    for addr in addrs {
        let dialed = if config.connect_timeout.is_zero() {
            TcpStream::connect(addr)
        } else {
            TcpStream::connect_timeout(addr, config.connect_timeout)
        };
        match dialed {
            Ok(stream) => {
                if config.nodelay {
                    let _ = stream.set_nodelay(true);
                }
                let _ = stream.set_read_timeout(opt(config.read_timeout));
                let _ = stream.set_write_timeout(opt(config.write_timeout));
                return Ok(stream);
            }
            Err(e) => last = Some(e),
        }
    }
    Err(last
        .unwrap_or_else(|| std::io::Error::new(std::io::ErrorKind::AddrNotAvailable, "no address"))
        .into())
}

/// Zero means "no deadline" (the std setters reject `Some(ZERO)`).
fn opt(d: Duration) -> Option<Duration> {
    (!d.is_zero()).then_some(d)
}
