//! Minimal hand-rolled HTTP/1.1 listener for observability pulls.
//!
//! GET-only, loopback-oriented, dependency-free: enough HTTP for a
//! Prometheus scraper, a `curl`, or a CI probe over bash `/dev/tcp` —
//! not a general web server. Three routes:
//!
//! * `/metrics` — the Prometheus text exposition (same bytes as the
//!   binary `METRICS` frame).
//! * `/healthz` — readiness JSON; `200` when ready, `503` while the
//!   server is inside a degraded incident window (recent shedding,
//!   reaping, handshake rejects, or re-planning).
//! * `/vars` — JSON snapshot: every metric, recent time-series
//!   rollups, and the slow-log tail.
//!
//! Requests are read with a hard size bound ([`MAX_REQUEST_BYTES`]);
//! anything oversized, non-GET, or malformed gets a terse error
//! status and the connection is closed (`Connection: close` always —
//! no keep-alive state machine).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::server::Shared;

/// Upper bound on a request head. A legitimate probe is < 200 bytes;
/// anything larger is either an attack or a mistake.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// How long a connection may dribble its request in before we hang up.
const READ_TIMEOUT: Duration = Duration::from_secs(2);

/// Binds `127.0.0.1:port` and spawns the accept loop. Returns the
/// bound address (so `port` 0 works in tests) and the listener thread
/// handle; `Server::shutdown` wakes the loop with a no-op connect and
/// joins the handle.
pub(crate) fn start(
    shared: Arc<Shared>,
    port: u16,
) -> std::io::Result<(SocketAddr, JoinHandle<()>)> {
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    let addr = listener.local_addr()?;
    let handle = std::thread::Builder::new()
        .name("srj-http".into())
        .spawn(move || accept_loop(listener, shared))
        .expect("spawn srj-http thread");
    Ok((addr, handle))
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.is_shutting_down() {
                    return;
                }
                continue;
            }
        };
        if shared.is_shutting_down() {
            return;
        }
        // Serve inline: the routes are all cheap snapshots and the
        // listener is a diagnostics port, not a data plane — one
        // slow scraper delaying another is acceptable, a thread per
        // probe is not.
        let _ = serve_one(stream, &shared);
    }
}

fn serve_one(mut stream: TcpStream, shared: &Arc<Shared>) -> std::io::Result<()> {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_write_timeout(Some(READ_TIMEOUT));

    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    let head_end = loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Ok(()); // peer hung up mid-request
        }
        buf.extend_from_slice(&chunk[..n]);
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_REQUEST_BYTES {
            return respond(&mut stream, 413, "text/plain", "request too large\n");
        }
    };

    let head = String::from_utf8_lossy(&buf[..head_end]);
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m, t),
        _ => return respond(&mut stream, 400, "text/plain", "bad request\n"),
    };
    if method != "GET" {
        return respond(&mut stream, 405, "text/plain", "method not allowed\n");
    }
    // Ignore any query string: `/healthz?probe=ci` is still /healthz.
    let path = target.split('?').next().unwrap_or(target);

    match path {
        "/metrics" => {
            let body = shared.metrics_text();
            respond(&mut stream, 200, "text/plain; version=0.0.4", &body)
        }
        "/healthz" => {
            let (ready, body) = shared.healthz();
            let status = if ready { 200 } else { 503 };
            respond(&mut stream, status, "application/json", &body)
        }
        "/vars" => {
            let body = shared.vars_json();
            respond(&mut stream, 200, "application/json", &body)
        }
        _ => respond(&mut stream, 404, "text/plain", "not found\n"),
    }
}

/// Position just past the `\r\n\r\n` (or lone `\n\n`) head terminator.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|p| p + 2))
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\n"), Some(18));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\n\n"), Some(16));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
        assert_eq!(find_head_end(b""), None);
    }
}
