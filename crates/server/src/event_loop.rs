//! The readiness-based connection layer: one thread, every socket.
//!
//! This module replaces the thread-per-connection reader/writer pair
//! with a single event-loop thread that owns the listener, every
//! connection socket (all nonblocking), a [`Poller`] (epoll on Linux,
//! `poll(2)` fallback), and a [`TimerWheel`] carrying every deadline
//! the old layer expressed through blocking-socket timeouts:
//!
//! * **Handshake deadline** — a fresh connection that produces no
//!   `HELLO` inside `handshake_timeout` is dropped silently.
//! * **Read deadline** — a peer that stalls *mid-frame* past
//!   `read_timeout` is disconnected (idleness *between* frames is the
//!   idle sweep's business).
//! * **Write deadline** — a peer whose receive window stays closed
//!   past `write_timeout` while the server has bytes to deliver is
//!   disconnected.
//! * **Idle sweep** — connections quiet past `idle_timeout` with no
//!   in-flight work are reaped (journaled as `ConnReaped`), on a
//!   sweep that runs at half the deadline, clamped to [10 ms, 500 ms].
//! * **Fault timers** — the chaos plan's read delays and split writes
//!   become wheel entries instead of `thread::sleep`s, preserving the
//!   same deterministic per-connection fault schedules.
//!
//! **Decode.** Bytes from a readable socket land in a
//! [`FrameAccumulator`]; every complete frame dispatches through the
//! same admission chain the old reader ran (handshake gate, token
//! buckets, fault draws, load shedding, inline mutations, job
//! enqueue). Partial frames simply stay buffered until the next
//! readable event — no thread ever blocks mid-frame.
//!
//! **Flush.** Worker responses land in the connection's bounded
//! out-queue ([`ConnShared::try_send`]); the loop drains it to the
//! socket through a write buffer that survives partial writes. A full
//! out-queue parks the job on its connection (exactly the old
//! backpressure handshake) *and* pauses frame decode for that
//! connection, so control answers stay bounded and a flooding client
//! is throttled by its own TCP window.
//!
//! **fd exhaustion.** An `accept(2)` failing with EMFILE/ENFILE
//! pauses accepting (the listener is deregistered so readiness does
//! not spin), journals an `AcceptBackoff`, and retries on an
//! exponential timer (10 ms doubling to 500 ms); a successful accept
//! resets the backoff.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use srj_net::{Event, Interest, Poller, TimerWheel, Waker};
use srj_obs::journal::EventKind;
use srj_obs::{trace, WorkerState};

use crate::fault::FaultRng;
use crate::protocol::{
    decode_request, encode_response, EpochInfo, ErrorCode, FrameAccumulator, Request, RequestStats,
    RequestStatus, Response, TraceSpan, UpdateStats, PROTOCOL_VERSION, SERVER_FEATURES,
};
use crate::server::{
    apply_delete, apply_insert, enqueue, epoch_info, finish, should_shed, slow_entry_to_wire,
    timeout_opt, ConnShared, Job, Shared, TokenBucket, FAULT_ROLE_READER, FAULT_ROLE_WRITER,
    SHED_RETRY_MS, SLOWLOG_MAX_ENTRIES,
};

/// Poller token of the cross-thread waker pipe.
const TOKEN_WAKER: u64 = u64::MAX;
/// Poller token of the listening socket.
const TOKEN_LISTENER: u64 = u64::MAX - 1;

/// Most bytes read from one socket per service pass, so one firehose
/// connection cannot starve the rest of the loop.
const READ_BURST_LIMIT: usize = 256 * 1024;

/// First accept-backoff interval after fd exhaustion; doubles per
/// consecutive failure up to [`ACCEPT_BACKOFF_MAX`].
const ACCEPT_BACKOFF_MIN: Duration = Duration::from_millis(10);
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(500);

// ---- cross-thread doorbell -------------------------------------------------

/// How other threads reach the event loop: a dirty-connection list
/// plus a [`Waker`] pipe that interrupts [`Poller::wait`]. Workers
/// ring it when they queue a response, park a job, or finish one;
/// shutdown rings it with no dirty mark at all.
pub(crate) struct LoopNotify {
    dirty: Mutex<Vec<u64>>,
    waker: Waker,
}

impl LoopNotify {
    pub(crate) fn new() -> io::Result<LoopNotify> {
        Ok(LoopNotify {
            dirty: Mutex::new(Vec::new()),
            waker: Waker::new()?,
        })
    }

    /// Marks connection `id` dirty (flush / unpark / teardown checks
    /// pending) and wakes the loop.
    pub(crate) fn mark_dirty(&self, id: u64) {
        self.dirty.lock().expect("dirty list poisoned").push(id);
        self.waker.wake();
    }

    /// Wakes the loop with nothing marked — shutdown's knock.
    pub(crate) fn wake(&self) {
        self.waker.wake();
    }

    fn drain(&self, into: &mut Vec<u64>) {
        into.append(&mut self.dirty.lock().expect("dirty list poisoned"));
    }

    fn waker_fd(&self) -> RawFd {
        self.waker.fd()
    }

    fn drain_waker(&self) {
        self.waker.drain();
    }
}

// ---- timers ----------------------------------------------------------------

/// Per-connection timer kinds. The wheel has no cancellation; a fired
/// key is validated against current connection state and stale fires
/// are ignored (ids are never reused, so a key can never alias a
/// newer connection).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ConnTimer {
    /// `handshake_timeout` — no HELLO yet.
    Handshake,
    /// `read_timeout` — mid-frame read stall.
    Read,
    /// `write_timeout` — write stall with bytes pending.
    Write,
    /// Chaos `delay_read_ms` elapsed; dispatch the held frame.
    ResumeRead,
    /// Chaos split-write gap elapsed; resume flushing.
    WriteGate,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TimerKey {
    Conn(u64, ConnTimer),
    /// Idle-reap / housekeeping sweep, always armed.
    Sweep,
    /// Retry `accept(2)` after fd-exhaustion backoff.
    AcceptResume,
}

// ---- per-connection loop state ---------------------------------------------

/// The loop-local half of one connection: the nonblocking socket, the
/// incremental decoder, the write buffer, and the state-machine flags
/// that replace what used to be implicit in two blocked threads.
struct Conn {
    shared: Arc<ConnShared>,
    sock: TcpStream,
    /// Incremental frame decoder; partial frames persist across
    /// readable events.
    acc: FrameAccumulator,
    /// The frame currently draining to the socket (`wb_pos` bytes
    /// already written).
    wb: Vec<u8>,
    wb_pos: usize,
    /// HELLO/WELCOME completed.
    established: bool,
    /// Stop reading the socket (peer EOF, read error, or a protocol
    /// violation); buffered work still flushes out before teardown.
    eof: bool,
    /// Stop decoding buffered frames (post-reject / post-bad-frame):
    /// whatever is in `acc` is never interpreted.
    discard: bool,
    /// Chaos schedules, deterministic per connection id — same
    /// streams, same draw order as the old reader/writer threads.
    reader_rng: Option<FaultRng>,
    writer_rng: Option<FaultRng>,
    req_bucket: Option<TokenBucket>,
    mut_bucket: Option<TokenBucket>,
    /// A decoded frame held back by an injected read delay, plus the
    /// pre-drawn drop-connection decision that follows it.
    pending: Option<(Vec<u8>, bool)>,
    /// While set, reading and decoding pause (injected read delay).
    resume_at: Option<Instant>,
    /// While set, flushing pauses (injected split write).
    write_gate: Option<Instant>,
    read_stall_since: Instant,
    read_timer_armed: bool,
    write_stall_since: Instant,
    write_timer_armed: bool,
    /// Interest currently registered with the poller.
    interest: Interest,
}

impl Conn {
    /// Bytes queued for the socket but not yet written.
    fn write_pending(&self) -> bool {
        self.wb_pos < self.wb.len()
    }
}

// ---- the loop --------------------------------------------------------------

pub(crate) struct EventLoop {
    shared: Arc<Shared>,
    poller: Poller,
    listener: TcpListener,
    conns: HashMap<u64, Conn>,
    wheel: TimerWheel<TimerKey>,
    sweep_interval: Duration,
    accept_paused: bool,
    accept_backoff: Duration,
}

impl EventLoop {
    /// Builds the loop: nonblocking listener, poller with the waker
    /// and listener registered, sweep timer armed. Runs on the caller
    /// so setup errors surface from [`Server::start`].
    pub(crate) fn new(listener: TcpListener, shared: Arc<Shared>) -> io::Result<EventLoop> {
        listener.set_nonblocking(true)?;
        let mut poller = Poller::new()?;
        poller.register(shared.notify.waker_fd(), TOKEN_WAKER, Interest::READ)?;
        poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        let idle = shared.config.idle_timeout;
        let sweep_interval = if idle.is_zero() {
            Duration::from_millis(500)
        } else {
            (idle / 2).clamp(Duration::from_millis(10), Duration::from_millis(500))
        };
        let mut wheel = TimerWheel::new(Duration::from_millis(1), 512);
        wheel.schedule(Instant::now() + sweep_interval, TimerKey::Sweep);
        Ok(EventLoop {
            shared,
            poller,
            listener,
            conns: HashMap::new(),
            wheel,
            sweep_interval,
            accept_paused: false,
            accept_backoff: Duration::ZERO,
        })
    }

    /// The loop body: fire due timers, wait for readiness, dispatch.
    /// Exits when shutdown flips, tearing every connection down.
    pub(crate) fn run(&mut self) {
        let tag = self.shared.profiler.register();
        let mut events: Vec<Event> = Vec::with_capacity(256);
        let mut fired: Vec<TimerKey> = Vec::new();
        let mut dirty: Vec<u64> = Vec::new();
        loop {
            if self.shared.is_shutting_down() {
                break;
            }
            let now = Instant::now();
            self.wheel.advance(now, &mut fired);
            for key in fired.drain(..) {
                self.fire_timer(key);
            }
            if self.shared.is_shutting_down() {
                break;
            }
            let timeout = self.wheel.next_timeout(Instant::now());
            tag.set(WorkerState::Idle);
            if self.poller.wait(&mut events, timeout).is_err() {
                break;
            }
            let t0 = Instant::now();
            tag.set(WorkerState::Decode);
            self.shared.server_metrics.loop_wakeups.inc();
            for ev in events.iter().copied() {
                if ev.token == TOKEN_WAKER {
                    self.shared.notify.drain_waker();
                } else if ev.token == TOKEN_LISTENER {
                    self.accept_burst();
                } else {
                    self.service_conn(ev.token);
                }
            }
            // Dirty marks from workers (responses queued, jobs parked
            // or finished) — drained every pass, whether or not the
            // waker event itself was observed this pass.
            self.shared.notify.drain(&mut dirty);
            dirty.sort_unstable();
            dirty.dedup();
            for id in dirty.drain(..) {
                self.service_conn(id);
            }
            let ns = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            self.shared.server_metrics.loop_dispatch.observe(ns);
        }
        self.teardown_all();
    }

    // ---- accept ----------------------------------------------------------

    fn accept_burst(&mut self) {
        if self.accept_paused {
            return;
        }
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    if self.shared.is_shutting_down() {
                        return;
                    }
                    self.accept_backoff = Duration::ZERO;
                    self.register_conn(stream, peer.to_string());
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // EMFILE (24) / ENFILE (23): the process or system fd
                // table is full. Accepting again immediately would
                // spin at 100% CPU; stop listening and retry on an
                // exponential backoff instead.
                Err(ref e) if matches!(e.raw_os_error(), Some(23) | Some(24)) => {
                    self.pause_accept(e);
                    return;
                }
                Err(_) => return,
            }
        }
    }

    fn pause_accept(&mut self, err: &io::Error) {
        self.accept_paused = true;
        let _ = self.poller.deregister(self.listener.as_raw_fd());
        self.accept_backoff = if self.accept_backoff.is_zero() {
            ACCEPT_BACKOFF_MIN
        } else {
            (self.accept_backoff * 2).min(ACCEPT_BACKOFF_MAX)
        };
        self.shared.server_metrics.accept_backoffs.inc();
        srj_obs::journal::event(EventKind::AcceptBackoff)
            .label(err.to_string())
            .duration_ns(self.accept_backoff.as_nanos().min(u128::from(u64::MAX)) as u64)
            .emit();
        self.wheel
            .schedule(Instant::now() + self.accept_backoff, TimerKey::AcceptResume);
    }

    fn resume_accept(&mut self) {
        if !self.accept_paused {
            return;
        }
        self.accept_paused = false;
        if self
            .poller
            .register(self.listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)
            .is_err()
        {
            // Re-registration itself needs an fd table slot on some
            // backends; treat it as still-exhausted and back off again.
            self.accept_paused = true;
            self.accept_backoff = (self.accept_backoff * 2).min(ACCEPT_BACKOFF_MAX);
            self.wheel
                .schedule(Instant::now() + self.accept_backoff, TimerKey::AcceptResume);
            return;
        }
        // Connections may have queued while paused; serve them now
        // rather than waiting for the next readiness edge.
        self.accept_burst();
    }

    fn register_conn(&mut self, stream: TcpStream, peer: String) {
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let Ok(shutdown_clone) = stream.try_clone() else {
            return; // clone failure: drop the connection
        };
        let config = &self.shared.config;
        let id = self.shared.accepted.fetch_add(1, Ordering::Relaxed);
        let cs = Arc::new(ConnShared::new(
            id,
            shutdown_clone,
            peer,
            config.queue_frames,
            Arc::clone(&self.shared.notify),
        ));
        if self
            .poller
            .register(stream.as_raw_fd(), id, Interest::READ)
            .is_err()
        {
            return;
        }
        self.shared.active.fetch_add(1, Ordering::Relaxed);
        {
            // Opportunistically forget closed connections so a
            // long-lived server's bookkeeping doesn't grow unbounded.
            let mut conns = self.shared.conns.lock().expect("conn list poisoned");
            conns.retain(|c| !c.closed.load(Ordering::Acquire));
            conns.push(Arc::clone(&cs));
        }
        let plan = config.fault_plan;
        let now = Instant::now();
        let conn = Conn {
            shared: cs,
            sock: stream,
            acc: FrameAccumulator::new(),
            wb: Vec::new(),
            wb_pos: 0,
            established: false,
            eof: false,
            discard: false,
            reader_rng: plan
                .is_active()
                .then(|| plan.rng_for(id, FAULT_ROLE_READER)),
            writer_rng: plan
                .is_active()
                .then(|| plan.rng_for(id, FAULT_ROLE_WRITER)),
            req_bucket: TokenBucket::new(config.rate_limit_rps),
            mut_bucket: TokenBucket::new(config.mutation_rate_limit_rps),
            pending: None,
            resume_at: None,
            write_gate: None,
            read_stall_since: now,
            read_timer_armed: false,
            write_stall_since: now,
            write_timer_armed: false,
            interest: Interest::READ,
        };
        if let Some(d) = timeout_opt(config.handshake_timeout) {
            self.wheel
                .schedule(now + d, TimerKey::Conn(id, ConnTimer::Handshake));
        }
        self.conns.insert(id, conn);
        self.shared
            .server_metrics
            .conn_open
            .set(self.conns.len() as f64);
    }

    // ---- the per-connection service pass ---------------------------------

    /// One full service pass: flush what is writable (freeing
    /// out-queue room), read what is readable, decode and dispatch
    /// complete frames, re-activate parked jobs, flush the answers,
    /// then reconcile timers, poller interest, and liveness.
    ///
    /// Order matters for shed determinism: frames decode *before*
    /// parked jobs re-enqueue, so a `SAMPLE` arriving on a
    /// backpressured connection observes the parked job and sheds —
    /// exactly when the old blocking reader would have.
    fn service_conn(&mut self, id: u64) {
        if !self.conns.contains_key(&id) {
            return;
        }
        self.flush_conn(id);
        self.read_conn(id);
        self.process_frames(id);
        self.unpark_if_room(id);
        self.flush_conn(id);
        self.arm_io_timers(id);
        self.update_interest(id);
        self.maybe_teardown(id);
    }

    /// Reads the socket into the frame accumulator, bounded per pass.
    /// Reading pauses while an injected delay holds a frame or the
    /// out-queue is at capacity (backpressure reaches the peer's TCP
    /// window).
    fn read_conn(&mut self, id: u64) {
        let mut dead = false;
        {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            if conn.eof || conn.resume_at.is_some() || !conn.shared.out_has_room() {
                return;
            }
            let mut buf = [0u8; 16 * 1024];
            let mut total = 0usize;
            loop {
                match (&conn.sock).read(&mut buf) {
                    Ok(0) => {
                        conn.eof = true;
                        break;
                    }
                    Ok(n) => {
                        conn.acc.extend(&buf[..n]);
                        conn.read_stall_since = Instant::now();
                        total += n;
                        if n < buf.len() || total >= READ_BURST_LIMIT {
                            break;
                        }
                    }
                    Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
        }
        if dead {
            self.teardown(id);
        }
    }

    /// Decodes and dispatches every complete buffered frame, stopping
    /// at a partial frame, an injected delay, a full out-queue, or a
    /// dispatch that ends the connection's request stream.
    fn process_frames(&mut self, id: u64) {
        loop {
            if self.shared.is_shutting_down() {
                return;
            }
            let frame = {
                let Some(conn) = self.conns.get_mut(&id) else {
                    return;
                };
                if conn.discard || conn.resume_at.is_some() || !conn.shared.out_has_room() {
                    return;
                }
                match conn.acc.next_frame() {
                    Ok(Some(payload)) => payload,
                    Ok(None) => return,
                    Err(_) => {
                        // A garbage length prefix: same silent close
                        // the blocking reader gave it, before or after
                        // the handshake. Buffered answers still flush.
                        conn.discard = true;
                        conn.eof = true;
                        return;
                    }
                }
            };
            if !self.dispatch(id, frame) {
                return;
            }
        }
    }

    /// Frame-level fault draws + handshake gate, then request
    /// dispatch. Returns whether the connection should keep decoding.
    fn dispatch(&mut self, id: u64, payload: Vec<u8>) -> bool {
        enum Gate {
            Drop,
            Delay(Instant),
            Pass,
        }
        let plan = self.shared.config.fault_plan;
        let mut payload = Some(payload);
        let gate = {
            let Some(conn) = self.conns.get_mut(&id) else {
                return false;
            };
            if !conn.established {
                return self.handshake(id, &payload.take().expect("payload taken"));
            }
            conn.shared.touch();
            match conn.reader_rng.as_mut() {
                Some(rng) => {
                    // Both frame-level decisions are drawn up front, in
                    // the order the blocking reader drew them (delay,
                    // then drop), so a chaos seed replays identically.
                    let delay = rng.fires(plan.delay_read_prob);
                    let drop_now = rng.fires(plan.drop_conn_prob);
                    if delay {
                        let at = Instant::now() + Duration::from_millis(plan.delay_read_ms);
                        conn.resume_at = Some(at);
                        conn.pending = Some((payload.take().expect("payload taken"), drop_now));
                        Gate::Delay(at)
                    } else if drop_now {
                        Gate::Drop
                    } else {
                        Gate::Pass
                    }
                }
                None => Gate::Pass,
            }
        };
        match gate {
            Gate::Delay(at) => {
                self.wheel
                    .schedule(at, TimerKey::Conn(id, ConnTimer::ResumeRead));
                false
            }
            Gate::Drop => {
                self.teardown(id);
                false
            }
            Gate::Pass => self.dispatch_decoded(id, payload.take().expect("payload taken")),
        }
    }

    /// The mandatory `HELLO`/`WELCOME` exchange. A v0 peer — one that
    /// opens with a request frame, or a `HELLO` carrying a version
    /// this server does not speak — gets a well-formed `ERROR` frame
    /// and a close; it never reaches the job queue.
    fn handshake(&mut self, id: u64, payload: &[u8]) -> bool {
        let Some(conn) = self.conns.get_mut(&id) else {
            return false;
        };
        let reject = |conn: &mut Conn, shared: &Shared, code: ErrorCode, message: String| {
            shared.server_metrics.handshake_rejects.inc();
            conn.shared
                .push_direct(encode_response(&Response::Error { code, message }));
            conn.discard = true;
            conn.eof = true;
            false
        };
        match decode_request(payload) {
            Ok(Request::Hello { version, .. }) if version == PROTOCOL_VERSION => {
                conn.shared.touch();
                conn.established = true;
                conn.shared.push_direct(encode_response(&Response::Welcome {
                    version: PROTOCOL_VERSION,
                    features: SERVER_FEATURES,
                }));
                true
            }
            Ok(Request::Hello { version, .. }) => reject(
                conn,
                &self.shared,
                ErrorCode::VersionMismatch,
                format!("peer speaks protocol version {version}, server speaks {PROTOCOL_VERSION}"),
            ),
            Ok(_) => reject(
                conn,
                &self.shared,
                ErrorCode::HandshakeRequired,
                "first frame on a connection must be HELLO".to_string(),
            ),
            Err(e) => reject(
                conn,
                &self.shared,
                ErrorCode::HandshakeRequired,
                format!("bad handshake: {e}"),
            ),
        }
    }

    /// The post-handshake dispatch: admission control (token buckets,
    /// load shedding), fault busy answers, inline mutations, job
    /// enqueue — a straight port of the old reader's frame loop.
    fn dispatch_decoded(&mut self, id: u64, payload: Vec<u8>) -> bool {
        let shared = Arc::clone(&self.shared);
        let plan = shared.config.fault_plan;
        let Some(conn) = self.conns.get_mut(&id) else {
            return false;
        };
        let cs = Arc::clone(&conn.shared);
        let busy = |req_id: u32, retry_after_ms: u32| {
            cs.push_direct(encode_response(&Response::Busy {
                req_id,
                retry_after_ms,
            }));
        };
        // Declined by a token bucket? Bumps the metric so the check
        // reads as one expression at each admission point.
        let throttled = |bucket: &mut Option<TokenBucket>| -> Option<u32> {
            let ms = bucket.as_mut()?.admit()?;
            shared.server_metrics.rate_limited.inc();
            Some(ms)
        };
        match decode_request(&payload) {
            Ok(Request::Hello { .. }) => {
                // A repeated HELLO is harmless; re-answer it so a
                // client that re-syncs after a partial read converges.
                cs.push_direct(encode_response(&Response::Welcome {
                    version: PROTOCOL_VERSION,
                    features: SERVER_FEATURES,
                }));
            }
            Ok(Request::Ping { token }) => {
                // Keepalives are never shed, limited, or queued: their
                // job is to answer even (especially) under load.
                cs.push_direct(encode_response(&Response::Pong { token }));
            }
            Ok(Request::Sample(req)) => {
                if let Some(ms) = throttled(&mut conn.req_bucket) {
                    busy(req.req_id, ms);
                    return true;
                }
                if let Some(rng) = conn.reader_rng.as_mut() {
                    if rng.fires(plan.busy_prob) {
                        busy(req.req_id, plan.busy_retry_after_ms);
                        return true;
                    }
                }
                if should_shed(&shared, &cs) {
                    shared.server_metrics.requests_shed.inc();
                    srj_obs::journal::event(EventKind::LoadShed)
                        .dataset(Some(req.dataset))
                        .label(cs.peer.clone())
                        .emit();
                    busy(req.req_id, SHED_RETRY_MS);
                    return true;
                }
                // The sampling decision is made here, at frame decode,
                // so the trace covers the request's whole server-side
                // life; the id rides on the job and comes back to the
                // client in the DONE frame. With slow-log capture on,
                // an unsampled request still gets a forced span id —
                // never echoed, but snapshotted if it finishes slow.
                let trace_id = trace::try_start_trace();
                let span_id = if trace_id != 0 {
                    trace_id
                } else if shared.slow_log.enabled() {
                    trace::start_trace_forced()
                } else {
                    0
                };
                trace::event_for(span_id, "frame_decode", "sample_request");
                enqueue(
                    &shared,
                    Job::sample(req, trace_id, span_id, Arc::clone(&cs)),
                );
            }
            Ok(Request::Stats) => {
                if let Some(ms) = throttled(&mut conn.req_bucket) {
                    busy(0, ms);
                    return true;
                }
                let frame = encode_response(&Response::ServerStats(shared.stats_frame()));
                enqueue(
                    &shared,
                    Job::respond(frame, RequestStatus::Ok, Arc::clone(&cs)),
                );
            }
            // Observability answers are rendered inline on the loop
            // (pure snapshot work, no engine/handle involvement) and
            // still delivered through a job so backpressure has
            // exactly one path.
            Ok(Request::Metrics) => {
                if let Some(ms) = throttled(&mut conn.req_bucket) {
                    busy(0, ms);
                    return true;
                }
                let frame = encode_response(&Response::Metrics {
                    text: shared.metrics_text(),
                });
                enqueue(
                    &shared,
                    Job::respond(frame, RequestStatus::Ok, Arc::clone(&cs)),
                );
            }
            Ok(Request::Trace { trace_id }) => {
                if let Some(ms) = throttled(&mut conn.req_bucket) {
                    busy(0, ms);
                    return true;
                }
                let spans = trace::spans_for(trace_id)
                    .into_iter()
                    .map(|r| TraceSpan {
                        ns: r.ns,
                        span: r.span.to_string(),
                        event: r.event.to_string(),
                    })
                    .collect();
                let frame = encode_response(&Response::Trace { trace_id, spans });
                enqueue(
                    &shared,
                    Job::respond(frame, RequestStatus::Ok, Arc::clone(&cs)),
                );
            }
            Ok(Request::SlowLog { max }) => {
                if let Some(ms) = throttled(&mut conn.req_bucket) {
                    busy(0, ms);
                    return true;
                }
                let cap = (max as usize).min(SLOWLOG_MAX_ENTRIES);
                let entries = shared
                    .slow_log
                    .recent(cap)
                    .into_iter()
                    .map(slow_entry_to_wire)
                    .collect();
                let frame = encode_response(&Response::SlowLog { entries });
                enqueue(
                    &shared,
                    Job::respond(frame, RequestStatus::Ok, Arc::clone(&cs)),
                );
            }
            // Mutations are applied here, on the loop: they are
            // O(|frame|) buffer writes against the store (no index
            // work — engines fold the delta in lazily), so they never
            // occupy a sampling worker, and applying before the next
            // frame is decoded gives each connection read-your-writes
            // ordering.
            Ok(Request::Insert {
                req_id,
                dataset,
                side,
                points,
            }) => {
                // Mutations pay both budgets: the shared request bucket
                // and the (usually tighter) mutation bucket.
                if let Some(ms) =
                    throttled(&mut conn.req_bucket).or_else(|| throttled(&mut conn.mut_bucket))
                {
                    busy(req_id, ms);
                    return true;
                }
                if let Some(rng) = conn.reader_rng.as_mut() {
                    if rng.fires(plan.busy_prob) {
                        busy(req_id, plan.busy_retry_after_ms);
                        return true;
                    }
                }
                let (status, stats) = match apply_insert(&shared, dataset, side, &points) {
                    Ok(stats) => (RequestStatus::Ok, stats),
                    Err(status) => (status, UpdateStats::default()),
                };
                let frame = encode_response(&Response::Update {
                    req_id,
                    status,
                    stats,
                });
                enqueue(&shared, Job::respond(frame, status, Arc::clone(&cs)));
            }
            Ok(Request::Delete {
                req_id,
                dataset,
                side,
                ids,
            }) => {
                if let Some(ms) =
                    throttled(&mut conn.req_bucket).or_else(|| throttled(&mut conn.mut_bucket))
                {
                    busy(req_id, ms);
                    return true;
                }
                if let Some(rng) = conn.reader_rng.as_mut() {
                    if rng.fires(plan.busy_prob) {
                        busy(req_id, plan.busy_retry_after_ms);
                        return true;
                    }
                }
                let (status, stats) = match apply_delete(&shared, dataset, side, &ids) {
                    Ok(stats) => (RequestStatus::Ok, stats),
                    Err(status) => (status, UpdateStats::default()),
                };
                let frame = encode_response(&Response::Update {
                    req_id,
                    status,
                    stats,
                });
                enqueue(&shared, Job::respond(frame, status, Arc::clone(&cs)));
            }
            Ok(Request::Epoch { req_id, dataset }) => {
                if let Some(ms) = throttled(&mut conn.req_bucket) {
                    busy(req_id, ms);
                    return true;
                }
                let (status, info) = match epoch_info(&shared, dataset) {
                    Ok(info) => (RequestStatus::Ok, info),
                    Err(status) => (status, EpochInfo::default()),
                };
                let frame = encode_response(&Response::Epoch {
                    req_id,
                    status,
                    info,
                });
                enqueue(&shared, Job::respond(frame, status, Arc::clone(&cs)));
            }
            Ok(Request::Shutdown) => {
                shared.begin_shutdown();
                return false;
            }
            Err(_) => {
                // Can't trust any field of a malformed frame, so the
                // echoed id is 0; close after answering.
                let frame = encode_response(&Response::Done {
                    req_id: 0,
                    status: RequestStatus::BadRequest,
                    stats: RequestStats::default(),
                });
                enqueue(
                    &shared,
                    Job::respond(frame, RequestStatus::BadRequest, Arc::clone(&cs)),
                );
                conn.discard = true;
                conn.eof = true;
                return false;
            }
        }
        true
    }

    // ---- flush -----------------------------------------------------------

    /// Drains the write buffer and the out-queue to the socket until
    /// everything is sent or the socket would block. Writer-side
    /// chaos faults fire here, per popped frame, on the same rng
    /// stream (and draw order) the old writer thread used.
    fn flush_conn(&mut self, id: u64) {
        let mut dead = false;
        let mut gate: Option<Instant> = None;
        {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            if conn.write_gate.is_some() {
                return;
            }
            let plan = self.shared.config.fault_plan;
            'flush: loop {
                if !conn.write_pending() {
                    conn.wb.clear();
                    conn.wb_pos = 0;
                    let Some(frame) = conn.shared.pop_out() else {
                        break 'flush;
                    };
                    if let Some(rng) = conn.writer_rng.as_mut() {
                        // Only frames with room to split meaningfully
                        // are candidates; tiny control frames pass.
                        if frame.len() > 8 {
                            if rng.fires(plan.truncate_frame_prob) {
                                // Deliberately leave the peer mid-frame
                                // and kill the connection.
                                let _ = (&conn.sock).write(&frame[..frame.len() / 2]);
                                dead = true;
                                break 'flush;
                            }
                            if rng.fires(plan.partial_write_prob) {
                                // Two temporally separated writes: the
                                // head half now, the tail after a 1 ms
                                // gate — the nonblocking analogue of
                                // the old write/sleep/write.
                                let half = frame.len() / 2;
                                conn.wb = frame;
                                conn.wb_pos = 0;
                                while conn.wb_pos < half {
                                    match (&conn.sock).write(&conn.wb[conn.wb_pos..half]) {
                                        Ok(0) => {
                                            dead = true;
                                            break;
                                        }
                                        Ok(n) => {
                                            conn.wb_pos += n;
                                            conn.write_stall_since = Instant::now();
                                        }
                                        Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                                            break
                                        }
                                        Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                                        Err(_) => {
                                            dead = true;
                                            break;
                                        }
                                    }
                                }
                                if !dead {
                                    let at = Instant::now() + Duration::from_millis(1);
                                    conn.write_gate = Some(at);
                                    gate = Some(at);
                                }
                                break 'flush;
                            }
                        }
                    }
                    conn.wb = frame;
                    conn.wb_pos = 0;
                }
                match (&conn.sock).write(&conn.wb[conn.wb_pos..]) {
                    Ok(0) => {
                        dead = true;
                        break 'flush;
                    }
                    Ok(n) => {
                        conn.wb_pos += n;
                        conn.write_stall_since = Instant::now();
                    }
                    Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break 'flush,
                    Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        dead = true;
                        break 'flush;
                    }
                }
            }
        }
        if let Some(at) = gate {
            self.wheel
                .schedule(at, TimerKey::Conn(id, ConnTimer::WriteGate));
        }
        if dead {
            self.teardown(id);
        }
    }

    /// Re-enqueues parked jobs once the out-queue has room — the other
    /// half of the backpressure handshake. Gated on room (like the old
    /// writer, whose park kicks only landed when the channel had a
    /// slot) so park/unpark cannot livelock.
    fn unpark_if_room(&mut self, id: u64) {
        let jobs: Vec<Job> = {
            let Some(conn) = self.conns.get(&id) else {
                return;
            };
            if !conn.shared.out_has_room() {
                return;
            }
            let mut parked = conn.shared.parked.lock().expect("parked list poisoned");
            if parked.is_empty() {
                return;
            }
            parked.drain(..).collect()
        };
        for job in jobs {
            enqueue(&self.shared, job);
        }
    }

    // ---- timers ----------------------------------------------------------

    /// Arms the mid-frame read stall and write stall timers when the
    /// respective condition holds and no timer is already pending.
    fn arm_io_timers(&mut self, id: u64) {
        let config = &self.shared.config;
        let (read_at, write_at) = {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            let mut read_at = None;
            if conn.acc.has_partial() && !conn.read_timer_armed && !conn.eof {
                if let Some(rt) = timeout_opt(config.read_timeout) {
                    conn.read_timer_armed = true;
                    read_at = Some(conn.read_stall_since + rt);
                }
            }
            let mut write_at = None;
            if conn.write_pending() && !conn.write_timer_armed {
                if let Some(wt) = timeout_opt(config.write_timeout) {
                    conn.write_timer_armed = true;
                    write_at = Some(conn.write_stall_since + wt);
                }
            }
            (read_at, write_at)
        };
        if let Some(at) = read_at {
            self.wheel.schedule(at, TimerKey::Conn(id, ConnTimer::Read));
        }
        if let Some(at) = write_at {
            self.wheel
                .schedule(at, TimerKey::Conn(id, ConnTimer::Write));
        }
    }

    fn fire_timer(&mut self, key: TimerKey) {
        match key {
            TimerKey::Sweep => self.sweep(),
            TimerKey::AcceptResume => self.resume_accept(),
            TimerKey::Conn(id, ConnTimer::Handshake) => {
                let expired = self.conns.get(&id).is_some_and(|c| !c.established);
                if expired {
                    // Silent close, exactly like the blocking
                    // handshake's deadline: no peer worth answering.
                    self.teardown(id);
                }
            }
            TimerKey::Conn(id, ConnTimer::Read) => {
                let rearm = {
                    let Some(conn) = self.conns.get_mut(&id) else {
                        return;
                    };
                    conn.read_timer_armed = false;
                    if !conn.acc.has_partial() || conn.eof {
                        None
                    } else {
                        let rt = self.shared.config.read_timeout;
                        let deadline = conn.read_stall_since + rt;
                        if Instant::now() >= deadline {
                            Some(None) // expired
                        } else {
                            conn.read_timer_armed = true;
                            Some(Some(deadline)) // progressed; re-arm
                        }
                    }
                };
                match rearm {
                    Some(None) => self.teardown(id),
                    Some(Some(at)) => self.wheel.schedule(at, TimerKey::Conn(id, ConnTimer::Read)),
                    None => {}
                }
            }
            TimerKey::Conn(id, ConnTimer::Write) => {
                let rearm = {
                    let Some(conn) = self.conns.get_mut(&id) else {
                        return;
                    };
                    conn.write_timer_armed = false;
                    if !conn.write_pending() {
                        None
                    } else {
                        let wt = self.shared.config.write_timeout;
                        let deadline = conn.write_stall_since + wt;
                        if Instant::now() >= deadline {
                            Some(None)
                        } else {
                            conn.write_timer_armed = true;
                            Some(Some(deadline))
                        }
                    }
                };
                match rearm {
                    Some(None) => self.teardown(id),
                    Some(Some(at)) => self
                        .wheel
                        .schedule(at, TimerKey::Conn(id, ConnTimer::Write)),
                    None => {}
                }
            }
            TimerKey::Conn(id, ConnTimer::ResumeRead) => {
                enum Next {
                    Rearm(Instant),
                    Drop,
                    Dispatch(Vec<u8>),
                    Nothing,
                }
                let next = {
                    let Some(conn) = self.conns.get_mut(&id) else {
                        return;
                    };
                    match conn.resume_at {
                        Some(at) if Instant::now() < at => Next::Rearm(at),
                        Some(_) => {
                            conn.resume_at = None;
                            match conn.pending.take() {
                                Some((_, true)) => Next::Drop,
                                Some((payload, false)) => Next::Dispatch(payload),
                                None => Next::Nothing,
                            }
                        }
                        None => Next::Nothing,
                    }
                };
                match next {
                    Next::Rearm(at) => self
                        .wheel
                        .schedule(at, TimerKey::Conn(id, ConnTimer::ResumeRead)),
                    Next::Drop => self.teardown(id),
                    Next::Dispatch(payload) => {
                        let _ = self.dispatch_decoded(id, payload);
                        self.service_conn(id);
                    }
                    Next::Nothing => {}
                }
            }
            TimerKey::Conn(id, ConnTimer::WriteGate) => {
                let open = {
                    let Some(conn) = self.conns.get_mut(&id) else {
                        return;
                    };
                    match conn.write_gate {
                        Some(at) if Instant::now() < at => Some(at),
                        Some(_) => {
                            conn.write_gate = None;
                            None
                        }
                        None => None,
                    }
                };
                match open {
                    Some(at) => self
                        .wheel
                        .schedule(at, TimerKey::Conn(id, ConnTimer::WriteGate)),
                    None => self.service_conn(id),
                }
            }
        }
    }

    /// The idle sweep: reaps connections quiet past `idle_timeout`
    /// with no in-flight work, then re-arms itself. Runs even with
    /// reaping disabled, as a housekeeping backstop.
    fn sweep(&mut self) {
        if let Some(idle) = timeout_opt(self.shared.config.idle_timeout) {
            let idle_ns = idle.as_nanos().min(u128::from(u64::MAX)) as u64;
            let mut reap: Vec<(u64, u64, String)> = Vec::new();
            for (id, conn) in self.conns.iter() {
                if conn.shared.closed.load(Ordering::Acquire)
                    || conn.shared.inflight.load(Ordering::Acquire) != 0
                {
                    continue;
                }
                let quiet_ns = conn.shared.idle_ns();
                if quiet_ns >= idle_ns {
                    reap.push((*id, quiet_ns, conn.shared.peer.clone()));
                }
            }
            for (id, quiet_ns, peer) in reap {
                self.shared.server_metrics.conn_reaped.inc();
                srj_obs::journal::event(EventKind::ConnReaped)
                    .duration_ns(quiet_ns)
                    .label(peer)
                    .emit();
                self.teardown(id);
            }
        }
        self.wheel
            .schedule(Instant::now() + self.sweep_interval, TimerKey::Sweep);
    }

    // ---- interest & liveness ---------------------------------------------

    /// Reconciles poller interest with connection state: read while
    /// the connection accepts frames, write while bytes are pending
    /// and no chaos gate holds. Level-triggered, so interest must
    /// drop whenever the loop would refuse the corresponding I/O —
    /// otherwise readiness would spin.
    fn update_interest(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        let want = Interest {
            read: !conn.eof
                && !conn.discard
                && conn.resume_at.is_none()
                && conn.shared.out_has_room(),
            write: conn.write_gate.is_none() && (conn.write_pending() || conn.shared.out_len() > 0),
        };
        if want != conn.interest {
            conn.interest = want;
            let _ = self.poller.reregister(conn.sock.as_raw_fd(), id, want);
        }
    }

    /// Tears the connection down once its stream is over (EOF or
    /// close) and every owed byte has been delivered: write buffer
    /// drained, out-queue empty, no jobs in flight, no held frame.
    fn maybe_teardown(&mut self, id: u64) {
        let done = {
            let Some(conn) = self.conns.get(&id) else {
                return;
            };
            (conn.eof || conn.shared.closed.load(Ordering::Acquire))
                && !conn.write_pending()
                && conn.shared.out_len() == 0
                && conn.shared.inflight.load(Ordering::Acquire) == 0
                && conn.pending.is_none()
        };
        if done {
            self.teardown(id);
        }
    }

    /// The single teardown path: deregister, mark closed, drop queued
    /// frames, shut the socket down, finish stranded jobs, and update
    /// the connection accounting.
    fn teardown(&mut self, id: u64) {
        let Some(conn) = self.conns.remove(&id) else {
            return;
        };
        let _ = self.poller.deregister(conn.sock.as_raw_fd());
        conn.shared.closed.store(true, Ordering::Release);
        conn.shared.out_disconnect();
        let _ = conn.sock.shutdown(Shutdown::Both);
        let stranded: Vec<Job> = conn
            .shared
            .parked
            .lock()
            .expect("parked list poisoned")
            .drain(..)
            .collect();
        for job in &stranded {
            finish(&self.shared, job, false);
        }
        drop(stranded);
        self.shared.active.fetch_sub(1, Ordering::Relaxed);
        self.shared
            .server_metrics
            .conn_open
            .set(self.conns.len() as f64);
        self.shared
            .conns
            .lock()
            .expect("conn list poisoned")
            .retain(|c| !c.closed.load(Ordering::Acquire));
    }

    fn teardown_all(&mut self) {
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            self.teardown(id);
        }
    }
}
