//! `srj-server` — the networked sampling front-end over `srj-engine`.
//!
//! The engine (PR 1–2) serves in-process threads; this crate puts a
//! real server boundary in front of it: a dependency-free TCP
//! subsystem on `std::net` + `std::thread` speaking a length-prefixed
//! binary protocol, with the properties heavy multi-user traffic
//! needs —
//!
//! * **request batching**: one engine/handle acquisition per request,
//!   amortised over all `t` samples, streamed out in `BATCH` frames
//!   ([`ServerConfig::batch_pairs`] pairs each);
//! * **backpressure**: a bounded per-connection response queue; a
//!   client that stops reading parks *its own* request and frees the
//!   worker — the pool never blocks on a slow socket;
//! * **fair multiplexing**: a fixed worker pool serves one batch per
//!   job step, round-robin across every in-flight request of every
//!   connection;
//! * **cache admission**: serving engines are built at most once per
//!   `(dataset, l, shards, algorithm)` shape, shared across requests
//!   and connections;
//! * **dynamic datasets**: `INSERT`/`DELETE` frames mutate a served
//!   dataset's point store; every serving engine is an
//!   [`srj_engine::EpochEngine`] that folds pending deltas in on its
//!   next handle acquisition (overlay snapshots between rebuilds,
//!   epoch swaps past the rebuild threshold, rejection-rate-driven
//!   re-planning) — in-flight requests keep streaming their pinned
//!   epoch; the `EPOCH` frame exposes the epoch/version counters;
//! * **graceful shutdown**: a control signal (API call or `SHUTDOWN`
//!   frame) stops the acceptor, closes every connection, and joins
//!   every spawned thread;
//! * **fault tolerance**: a mandatory versioned `HELLO`/`WELCOME`
//!   handshake (mismatched peers get a clean `ERROR`, never consume a
//!   worker slot), `PING`/`PONG` keepalives, per-connection
//!   read/write/idle deadlines with maintainer-thread reaping,
//!   token-bucket rate limiting and queue-depth load shedding answered
//!   with `BUSY { retry_after_ms }`, a client that retries with
//!   jittered backoff and keeps mutations exactly-once via `EPOCH`
//!   probes, and a seeded [`FaultPlan`] (inert by default) driving the
//!   `srj-loadgen --chaos` soak — see the README's "Failure semantics".
//!
//! Binaries: `srj-serve` (register datasets, serve), `srj-loadgen`
//! (concurrent load generator reporting samples/sec and latency
//! quantiles into `BENCH_PR3.json`, a mixed read/update mode writing
//! `BENCH_PR4.json`, and the `--chaos` fault-injection soak writing
//! `BENCH_PR7.json`), and `srj-top` (live metrics dashboard with a
//! server-health line). See the README's "Network serving" and
//! "Dynamic updates & re-planning" sections for the quickstart and
//! `examples/network_serving.rs` for the in-process version.

pub mod client;
mod event_loop;
pub mod fault;
mod http;
pub mod protocol;
mod server;

pub use client::{Client, ClientConfig, ClientError, SampleOutcome, UpdateOutcome};
pub use fault::{FaultPlan, FaultRng};
pub use protocol::{
    EpochInfo, ErrorCode, ProtocolError, Request, RequestStats, RequestStatus, Response,
    SampleRequest, ServerStatsFrame, Side, SlowLogEntry, TraceSpan, UpdateStats,
};
pub use server::{DatasetRegistry, Server, ServerConfig, SLOW_AUTO_MIN_REQUESTS};
/// Re-exported so protocol users don't need a direct `srj-engine` dep.
pub use srj_engine::Algorithm;

#[cfg(test)]
mod tests {
    use super::*;
    use srj_geom::Point;

    /// `Server::start` applies its `trace_sample_rate` process-wide,
    /// so tests that start servers must not interleave.
    static LOOPBACK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        LOOPBACK_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn pseudo_points(n: usize, seed: u64, extent: f64) -> Vec<Point> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(next() * extent, next() * extent))
            .collect()
    }

    #[test]
    fn end_to_end_sample_over_loopback() {
        let _serial = serial();
        let r = pseudo_points(200, 1, 50.0);
        let s = pseudo_points(300, 2, 50.0);
        let mut registry = DatasetRegistry::new();
        registry.register(7, r.clone(), s.clone());
        let mut server = Server::start("127.0.0.1:0", registry, ServerConfig::default()).unwrap();

        let mut client = Client::connect(server.local_addr()).unwrap();
        let outcome = client
            .sample(SampleRequest {
                req_id: 0,
                dataset: 7,
                l: 5.0,
                algorithm: None,
                shards: 1,
                t: 1_000,
                seed: 42,
            })
            .unwrap();
        assert_eq!(outcome.status, RequestStatus::Ok);
        assert_eq!(outcome.pairs.len(), 1_000);
        assert_eq!(outcome.stats.samples, 1_000);
        for p in &outcome.pairs {
            let w = srj_geom::Rect::window(r[p.r as usize], 5.0);
            assert!(w.contains(s[p.s as usize]));
        }

        // same seed ⇒ same stream, across a fresh connection
        let mut client2 = Client::connect(server.local_addr()).unwrap();
        let again = client2
            .sample(SampleRequest {
                req_id: 0,
                dataset: 7,
                l: 5.0,
                algorithm: None,
                shards: 1,
                t: 1_000,
                seed: 42,
            })
            .unwrap();
        assert_eq!(again.pairs, outcome.pairs);

        // server-side stats saw both requests
        let stats = client.server_stats().unwrap();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.samples, 2_000);
        assert_eq!(stats.cache_misses, 1, "second request must hit the cache");
        server.shutdown();
    }

    /// The PR6 acceptance loop: a live server's `METRICS` exposition
    /// carries the per-dataset request, latency, rejection, and all
    /// five maintenance-rung series, and a traced `SAMPLE` yields at
    /// least four distinct spans through the `TRACE` frame.
    #[test]
    fn metrics_and_trace_over_loopback() {
        let _serial = serial();
        let r = pseudo_points(200, 3, 50.0);
        let s = pseudo_points(300, 4, 50.0);
        let mut registry = DatasetRegistry::new();
        registry.register(9, r, s);
        let config = ServerConfig {
            trace_sample_rate: 1.0,
            ..ServerConfig::default()
        };
        let mut server = Server::start("127.0.0.1:0", registry, config).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();

        let outcome = client
            .sample(SampleRequest {
                req_id: 0,
                dataset: 9,
                l: 5.0,
                algorithm: None,
                shards: 1,
                t: 500,
                seed: 7,
            })
            .unwrap();
        assert_eq!(outcome.status, RequestStatus::Ok);
        assert_ne!(
            outcome.stats.trace_id, 0,
            "rate 1.0 must trace every request"
        );

        let text = client.metrics().unwrap();
        for required in [
            "srj_requests_total{dataset=\"9\"} 1",
            "srj_samples_total{dataset=\"9\"} 500",
            "# TYPE srj_request_latency_ns histogram",
            "srj_request_latency_ns_count{dataset=\"9\"} 1",
            "srj_request_latency_ns_bucket{dataset=\"9\",le=\"+Inf\"} 1",
            "srj_rejection_rate{dataset=\"9\"}",
            "srj_rejection_iterations_total{dataset=\"9\"}",
            "srj_mu_total{dataset=\"9\"}",
            "srj_connections_accepted_total 1",
        ] {
            assert!(text.contains(required), "missing {required:?} in:\n{text}");
        }
        for rung in [
            "minor_swap",
            "cell_patch",
            "full_rebuild",
            "repair",
            "replan",
        ] {
            let series = format!("srj_maintenance_total{{dataset=\"9\",rung=\"{rung}\"}}");
            assert!(text.contains(&series), "missing {series:?} in:\n{text}");
        }

        let spans = client.trace(outcome.stats.trace_id).unwrap();
        let distinct: std::collections::HashSet<&str> =
            spans.iter().map(|s| s.span.as_str()).collect();
        assert!(
            distinct.len() >= 4,
            "expected >= 4 distinct spans, got {distinct:?}"
        );
        for span in ["frame_decode", "acquire", "draw_loop", "batch_write"] {
            assert!(
                distinct.contains(span),
                "missing span {span:?}: {distinct:?}"
            );
        }
        assert!(
            spans.windows(2).all(|w| w[0].ns <= w[1].ns),
            "spans must come back oldest first"
        );

        // An untraced id answers an empty span list, not an error.
        assert!(client.trace(u64::MAX - 1).unwrap().is_empty());
        server.shutdown();
    }

    /// The PR8 forensics loop: with sampling *off* but the slow log
    /// armed with an absolute threshold, a slow request is retained
    /// with its complete span tree and request context, fast requests
    /// are not, and the capture never leaks into the `DONE` frame's
    /// sampled-trace contract.
    #[test]
    fn slow_requests_are_captured_with_span_forensics() {
        let _serial = serial();
        let r = pseudo_points(200, 5, 50.0);
        let s = pseudo_points(300, 6, 50.0);
        let mut registry = DatasetRegistry::new();
        registry.register(3, r, s);
        let threshold = std::time::Duration::from_millis(40);
        let config = ServerConfig {
            trace_sample_rate: 0.0,
            slow_log_capacity: 8,
            slow_threshold_ns: threshold.as_nanos() as u64,
            ..ServerConfig::default()
        };
        let mut server = Server::start("127.0.0.1:0", registry, config).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();

        let req = |t: u64| SampleRequest {
            req_id: 0,
            dataset: 3,
            l: 5.0,
            algorithm: None,
            shards: 1,
            t,
            seed: 9,
        };
        // Warm the engine cache so the fast probe below cannot be
        // slowed by the one-time index build.
        client.sample(req(1)).unwrap();
        let fast = client.sample(req(5)).unwrap();
        assert_eq!(fast.status, RequestStatus::Ok);

        // Grow t until a request breaches the threshold for real —
        // self-calibrating, so the test holds on any build profile.
        let mut t = 50_000u64;
        let slow = loop {
            let outcome = client.sample(req(t)).unwrap();
            assert_eq!(outcome.status, RequestStatus::Ok);
            assert_eq!(
                outcome.stats.trace_id, 0,
                "sampling is off; forced slow-log ids must not leak into DONE"
            );
            if std::time::Duration::from_nanos(outcome.stats.elapsed_ns) > 2 * threshold {
                break outcome;
            }
            t *= 4;
        };

        let entries = client.slow_log(32).unwrap();
        assert!(!entries.is_empty(), "the slow request must be retained");
        for e in &entries {
            assert!(
                e.t >= 50_000,
                "fast requests must not be captured (found t = {})",
                e.t
            );
            assert!(e.elapsed_ns >= threshold.as_nanos() as u64);
        }
        let newest = &entries[0];
        assert_eq!(newest.dataset, 3);
        assert_eq!(newest.t, t);
        assert_eq!(newest.algorithm, "auto");
        assert_ne!(newest.trace_id, 0, "capture runs under a forced trace id");
        assert!(newest.queue_wait_ns <= newest.elapsed_ns);
        assert!(newest.iterations >= slow.stats.samples);
        let distinct: std::collections::HashSet<&str> =
            newest.spans.iter().map(|s| s.span.as_str()).collect();
        for span in ["frame_decode", "acquire", "draw_loop", "batch_write"] {
            assert!(
                distinct.contains(span),
                "missing span {span:?} in {distinct:?}"
            );
        }
        assert!(
            newest.spans.windows(2).all(|w| w[0].ns <= w[1].ns),
            "spans must be oldest first"
        );
        server.shutdown();
    }

    fn http_get(addr: std::net::SocketAddr, head: &str) -> String {
        use std::io::{Read, Write};
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        s.write_all(head.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    /// The HTTP sidecar serves the three endpoints, enforces GET, and
    /// `/healthz` flips ready → degraded on a health signal (here a
    /// handshake reject) and recovers once the incident window ages
    /// out.
    #[test]
    fn http_endpoints_and_health_transitions() {
        let _serial = serial();
        let r = pseudo_points(200, 7, 50.0);
        let s = pseudo_points(300, 8, 50.0);
        let mut registry = DatasetRegistry::new();
        registry.register(4, r, s);
        let config = ServerConfig {
            http_port: Some(0),
            health_degraded_window_ms: 300,
            ..ServerConfig::default()
        };
        let mut server = Server::start("127.0.0.1:0", registry, config).unwrap();
        let http = server.http_addr().expect("http listener must be up");
        let mut client = Client::connect(server.local_addr()).unwrap();
        client
            .sample(SampleRequest {
                req_id: 0,
                dataset: 4,
                l: 5.0,
                algorithm: None,
                shards: 1,
                t: 100,
                seed: 3,
            })
            .unwrap();

        let metrics = http_get(http, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
        assert!(metrics.contains("srj_requests_total{dataset=\"4\"} 1"));
        assert!(metrics.contains("srj_connections_accepted_total"));

        let vars = http_get(http, "GET /vars?probe=ci HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(vars.starts_with("HTTP/1.1 200 OK"), "{vars}");
        assert!(vars.contains("\"metrics\":["), "{vars}");
        assert!(vars.contains("\"series\":["), "{vars}");
        assert!(vars.contains("\"slow_log\":["), "{vars}");

        let health = http_get(http, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
        assert!(health.contains("\"status\":\"ready\""), "{health}");

        assert!(http_get(http, "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n").starts_with("HTTP/1.1 404"));
        assert!(
            http_get(http, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n").starts_with("HTTP/1.1 405")
        );

        // A version-mismatched HELLO bumps the handshake-reject
        // counter: a health signal.
        {
            let mut bad = std::net::TcpStream::connect(server.local_addr()).unwrap();
            protocol::write_frame(
                &mut bad,
                &protocol::encode_request(&protocol::Request::Hello {
                    version: protocol::PROTOCOL_VERSION + 7,
                    features: 0,
                }),
            )
            .unwrap();
            // Wait for the ERROR answer so the reject has been counted.
            let _ = protocol::read_frame(&mut bad);
        }
        let degraded = http_get(http, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(
            degraded.starts_with("HTTP/1.1 503"),
            "expected degraded: {degraded}"
        );
        assert!(degraded.contains("\"status\":\"degraded\""), "{degraded}");

        // Once the incident window ages out, /healthz recovers.
        std::thread::sleep(std::time::Duration::from_millis(450));
        let recovered = http_get(http, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(
            recovered.starts_with("HTTP/1.1 200 OK"),
            "expected recovery: {recovered}"
        );
        server.shutdown();
    }
}
