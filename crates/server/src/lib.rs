//! `srj-server` — the networked sampling front-end over `srj-engine`.
//!
//! The engine (PR 1–2) serves in-process threads; this crate puts a
//! real server boundary in front of it: a dependency-free TCP
//! subsystem on `std::net` + `std::thread` speaking a length-prefixed
//! binary protocol, with the properties heavy multi-user traffic
//! needs —
//!
//! * **request batching**: one engine/handle acquisition per request,
//!   amortised over all `t` samples, streamed out in `BATCH` frames
//!   ([`ServerConfig::batch_pairs`] pairs each);
//! * **backpressure**: a bounded per-connection response queue; a
//!   client that stops reading parks *its own* request and frees the
//!   worker — the pool never blocks on a slow socket;
//! * **fair multiplexing**: a fixed worker pool serves one batch per
//!   job step, round-robin across every in-flight request of every
//!   connection;
//! * **cache admission**: serving engines are built at most once per
//!   `(dataset, l, shards, algorithm)` shape, shared across requests
//!   and connections;
//! * **dynamic datasets**: `INSERT`/`DELETE` frames mutate a served
//!   dataset's point store; every serving engine is an
//!   [`srj_engine::EpochEngine`] that folds pending deltas in on its
//!   next handle acquisition (overlay snapshots between rebuilds,
//!   epoch swaps past the rebuild threshold, rejection-rate-driven
//!   re-planning) — in-flight requests keep streaming their pinned
//!   epoch; the `EPOCH` frame exposes the epoch/version counters;
//! * **graceful shutdown**: a control signal (API call or `SHUTDOWN`
//!   frame) stops the acceptor, closes every connection, and joins
//!   every spawned thread;
//! * **fault tolerance**: a mandatory versioned `HELLO`/`WELCOME`
//!   handshake (mismatched peers get a clean `ERROR`, never consume a
//!   worker slot), `PING`/`PONG` keepalives, per-connection
//!   read/write/idle deadlines with maintainer-thread reaping,
//!   token-bucket rate limiting and queue-depth load shedding answered
//!   with `BUSY { retry_after_ms }`, a client that retries with
//!   jittered backoff and keeps mutations exactly-once via `EPOCH`
//!   probes, and a seeded [`FaultPlan`] (inert by default) driving the
//!   `srj-loadgen --chaos` soak — see the README's "Failure semantics".
//!
//! Binaries: `srj-serve` (register datasets, serve), `srj-loadgen`
//! (concurrent load generator reporting samples/sec and latency
//! quantiles into `BENCH_PR3.json`, a mixed read/update mode writing
//! `BENCH_PR4.json`, and the `--chaos` fault-injection soak writing
//! `BENCH_PR7.json`), and `srj-top` (live metrics dashboard with a
//! server-health line). See the README's "Network serving" and
//! "Dynamic updates & re-planning" sections for the quickstart and
//! `examples/network_serving.rs` for the in-process version.

pub mod client;
pub mod fault;
pub mod protocol;
mod server;

pub use client::{Client, ClientConfig, ClientError, SampleOutcome, UpdateOutcome};
pub use fault::{FaultPlan, FaultRng};
pub use protocol::{
    EpochInfo, ErrorCode, ProtocolError, Request, RequestStats, RequestStatus, Response,
    SampleRequest, ServerStatsFrame, Side, TraceSpan, UpdateStats,
};
pub use server::{DatasetRegistry, Server, ServerConfig};
/// Re-exported so protocol users don't need a direct `srj-engine` dep.
pub use srj_engine::Algorithm;

#[cfg(test)]
mod tests {
    use super::*;
    use srj_geom::Point;

    /// `Server::start` applies its `trace_sample_rate` process-wide,
    /// so tests that start servers must not interleave.
    static LOOPBACK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        LOOPBACK_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn pseudo_points(n: usize, seed: u64, extent: f64) -> Vec<Point> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(next() * extent, next() * extent))
            .collect()
    }

    #[test]
    fn end_to_end_sample_over_loopback() {
        let _serial = serial();
        let r = pseudo_points(200, 1, 50.0);
        let s = pseudo_points(300, 2, 50.0);
        let mut registry = DatasetRegistry::new();
        registry.register(7, r.clone(), s.clone());
        let mut server = Server::start("127.0.0.1:0", registry, ServerConfig::default()).unwrap();

        let mut client = Client::connect(server.local_addr()).unwrap();
        let outcome = client
            .sample(SampleRequest {
                req_id: 0,
                dataset: 7,
                l: 5.0,
                algorithm: None,
                shards: 1,
                t: 1_000,
                seed: 42,
            })
            .unwrap();
        assert_eq!(outcome.status, RequestStatus::Ok);
        assert_eq!(outcome.pairs.len(), 1_000);
        assert_eq!(outcome.stats.samples, 1_000);
        for p in &outcome.pairs {
            let w = srj_geom::Rect::window(r[p.r as usize], 5.0);
            assert!(w.contains(s[p.s as usize]));
        }

        // same seed ⇒ same stream, across a fresh connection
        let mut client2 = Client::connect(server.local_addr()).unwrap();
        let again = client2
            .sample(SampleRequest {
                req_id: 0,
                dataset: 7,
                l: 5.0,
                algorithm: None,
                shards: 1,
                t: 1_000,
                seed: 42,
            })
            .unwrap();
        assert_eq!(again.pairs, outcome.pairs);

        // server-side stats saw both requests
        let stats = client.server_stats().unwrap();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.samples, 2_000);
        assert_eq!(stats.cache_misses, 1, "second request must hit the cache");
        server.shutdown();
    }

    /// The PR6 acceptance loop: a live server's `METRICS` exposition
    /// carries the per-dataset request, latency, rejection, and all
    /// five maintenance-rung series, and a traced `SAMPLE` yields at
    /// least four distinct spans through the `TRACE` frame.
    #[test]
    fn metrics_and_trace_over_loopback() {
        let _serial = serial();
        let r = pseudo_points(200, 3, 50.0);
        let s = pseudo_points(300, 4, 50.0);
        let mut registry = DatasetRegistry::new();
        registry.register(9, r, s);
        let config = ServerConfig {
            trace_sample_rate: 1.0,
            ..ServerConfig::default()
        };
        let mut server = Server::start("127.0.0.1:0", registry, config).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();

        let outcome = client
            .sample(SampleRequest {
                req_id: 0,
                dataset: 9,
                l: 5.0,
                algorithm: None,
                shards: 1,
                t: 500,
                seed: 7,
            })
            .unwrap();
        assert_eq!(outcome.status, RequestStatus::Ok);
        assert_ne!(
            outcome.stats.trace_id, 0,
            "rate 1.0 must trace every request"
        );

        let text = client.metrics().unwrap();
        for required in [
            "srj_requests_total{dataset=\"9\"} 1",
            "srj_samples_total{dataset=\"9\"} 500",
            "# TYPE srj_request_latency_ns histogram",
            "srj_request_latency_ns_count{dataset=\"9\"} 1",
            "srj_request_latency_ns_bucket{dataset=\"9\",le=\"+Inf\"} 1",
            "srj_rejection_rate{dataset=\"9\"}",
            "srj_rejection_iterations_total{dataset=\"9\"}",
            "srj_mu_total{dataset=\"9\"}",
            "srj_connections_accepted_total 1",
        ] {
            assert!(text.contains(required), "missing {required:?} in:\n{text}");
        }
        for rung in [
            "minor_swap",
            "cell_patch",
            "full_rebuild",
            "repair",
            "replan",
        ] {
            let series = format!("srj_maintenance_total{{dataset=\"9\",rung=\"{rung}\"}}");
            assert!(text.contains(&series), "missing {series:?} in:\n{text}");
        }

        let spans = client.trace(outcome.stats.trace_id).unwrap();
        let distinct: std::collections::HashSet<&str> =
            spans.iter().map(|s| s.span.as_str()).collect();
        assert!(
            distinct.len() >= 4,
            "expected >= 4 distinct spans, got {distinct:?}"
        );
        for span in ["frame_decode", "acquire", "draw_loop", "batch_write"] {
            assert!(
                distinct.contains(span),
                "missing span {span:?}: {distinct:?}"
            );
        }
        assert!(
            spans.windows(2).all(|w| w[0].ns <= w[1].ns),
            "spans must come back oldest first"
        );

        // An untraced id answers an empty span list, not an error.
        assert!(client.trace(u64::MAX - 1).unwrap().is_empty());
        server.shutdown();
    }
}
