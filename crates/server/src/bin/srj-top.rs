//! `srj-top` — a live terminal dashboard over a server's `METRICS`
//! exposition.
//!
//! ```sh
//! srj-top --addr 127.0.0.1:7878 --interval-ms 1000
//! ```
//!
//! Polls the `METRICS` frame on an interval and renders a server
//! health line (connections accepted and currently open, event-loop
//! wakeups/second, load sheds, rate limits, reaped idle connections,
//! handshake rejects), a worker-utilization bar (sampled
//! state deltas between polls), plus, per dataset: request/sample
//! throughput (rates are deltas between polls), error counts, the
//! exact mean latency (`_sum`/`_count`), latency p50/p99 estimated
//! from the histogram buckets, the observed rejection rate, and the
//! five maintenance-rung counters; the `SLOWLOG` tail is shown
//! underneath when the server retains slow requests. `--once` prints
//! a single snapshot and exits; `--raw` dumps the exposition text
//! verbatim (what the CI smoke step greps).
//!
//! **Quantile error bound.** The histogram buckets are log₂-spaced,
//! so a quantile is only known to lie inside one bucket `(le/2, le]`.
//! The dashboard reports the bucket's *geometric midpoint* `le/√2`,
//! which is at most a factor √2 ≈ 1.41 away from the true quantile in
//! either direction (the bucket upper bound, reported previously, was
//! biased up to 2× high). The mean column has no such error: it is
//! computed exactly from the histogram's `_sum` and `_count` series.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use srj_server::{Client, ClientConfig, SlowLogEntry};

const USAGE: &str = "usage: srj-top [--addr HOST:PORT] [--interval-ms N]
               [--connect-timeout-ms N] [--once] [--raw] [--slow N]
  --once: print one snapshot and exit
  --raw:  print the raw Prometheus exposition instead of the dashboard
  --slow: tail the newest N slow-log entries under the table
          (default 4; 0 hides the panel)
  --connect-timeout-ms: dial deadline (0 blocks indefinitely)
  Default: --addr 127.0.0.1:7878 --interval-ms 1000
           --connect-timeout-ms 5000";

fn fail(msg: &str) -> ! {
    eprintln!("{msg}\n{USAGE}");
    std::process::exit(2);
}

/// One parsed exposition sample: metric name, sorted labels, value.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

impl Sample {
    fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parses the Prometheus text format subset the server emits
/// (`name{k="v",...} value`; `# TYPE` comments skipped).
fn parse_exposition(text: &str) -> Vec<Sample> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (head, value) = match line.rsplit_once(' ') {
            Some(pair) => pair,
            None => continue,
        };
        let Ok(value) = value.parse::<f64>() else {
            continue;
        };
        let (name, labels) = match head.split_once('{') {
            Some((name, rest)) => {
                let rest = rest.trim_end_matches('}');
                let mut labels = Vec::new();
                for part in rest.split(',') {
                    if let Some((k, v)) = part.split_once('=') {
                        labels.push((k.to_string(), v.trim_matches('"').to_string()));
                    }
                }
                (name.to_string(), labels)
            }
            None => (head.to_string(), Vec::new()),
        };
        out.push(Sample {
            name,
            labels,
            value,
        });
    }
    out
}

/// Quantile estimate from cumulative `_bucket{le=...}` samples of one
/// series: find the first bucket whose cumulative count reaches the
/// q-th rank, then report the bucket's **geometric midpoint** `le/√2`
/// (the buckets are log₂-spaced, so the true quantile lies in
/// `(le/2, le]` and the midpoint is within a factor √2 of it; the
/// upper bound would be biased up to 2× high). The first bucket
/// (`le ≤ 1` ns) and an overflow into `+Inf` fall back to the bound
/// itself (resp. the largest finite bound) — there is no midpoint to
/// take.
fn bucket_quantile(buckets: &[(f64, f64)], q: f64) -> f64 {
    let total = buckets
        .iter()
        .filter(|(le, _)| le.is_infinite())
        .map(|(_, c)| *c)
        .next()
        .unwrap_or(0.0);
    if total <= 0.0 {
        return 0.0;
    }
    let rank = (total * q).floor() + 1.0;
    let mut sorted: Vec<(f64, f64)> = buckets.to_vec();
    sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut last_finite = 0.0;
    for (le, cumulative) in sorted {
        if le.is_finite() {
            last_finite = le;
        }
        if cumulative >= rank.min(total) {
            return if le.is_infinite() {
                last_finite
            } else if le <= 1.0 {
                le
            } else {
                le / std::f64::consts::SQRT_2
            };
        }
    }
    last_finite
}

fn fmt_ns(ns: f64) -> String {
    if !ns.is_finite() {
        "inf".to_string()
    } else if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.1}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Everything the dashboard shows for one dataset, pulled out of one
/// exposition snapshot.
#[derive(Default, Clone)]
struct DatasetRow {
    requests: f64,
    samples: f64,
    errors: f64,
    rejection_rate: f64,
    mu_total: f64,
    epoch: f64,
    rungs: BTreeMap<String, f64>,
    buffer_hits: f64,
    buffer_refills: f64,
    buffer_invalidations: f64,
    latency_buckets: Vec<(f64, f64)>,
    latency_sum: f64,
    latency_count: f64,
}

fn snapshot_rows(samples: &[Sample]) -> BTreeMap<u64, DatasetRow> {
    let mut rows: BTreeMap<u64, DatasetRow> = BTreeMap::new();
    for s in samples {
        let Some(dataset) = s.label("dataset").and_then(|d| d.parse::<u64>().ok()) else {
            continue;
        };
        let row = rows.entry(dataset).or_default();
        match s.name.as_str() {
            "srj_requests_total" => row.requests = s.value,
            "srj_samples_total" => row.samples = s.value,
            "srj_request_errors_total" => row.errors = s.value,
            "srj_rejection_rate" => row.rejection_rate = s.value,
            "srj_mu_total" => row.mu_total = s.value,
            "srj_epoch" => row.epoch = s.value,
            "srj_buffer_hits_total" => row.buffer_hits = s.value,
            "srj_buffer_refills_total" => row.buffer_refills = s.value,
            "srj_buffer_invalidations_total" => row.buffer_invalidations = s.value,
            "srj_maintenance_total" => {
                if let Some(rung) = s.label("rung") {
                    row.rungs.insert(rung.to_string(), s.value);
                }
            }
            "srj_request_latency_ns_bucket" => {
                let le = match s.label("le") {
                    Some("+Inf") => f64::INFINITY,
                    Some(le) => le.parse().unwrap_or(f64::INFINITY),
                    None => continue,
                };
                row.latency_buckets.push((le, s.value));
            }
            "srj_request_latency_ns_sum" => row.latency_sum = s.value,
            "srj_request_latency_ns_count" => row.latency_count = s.value,
            _ => {}
        }
    }
    rows
}

/// Unlabeled server-wide series the health line shows, plus the
/// per-state worker-profiler sample counters the utilization bar is
/// built from.
#[derive(Default, Clone, Copy)]
struct HealthRow {
    connections: f64,
    /// `srj_conn_open` — sockets registered on the event loop now.
    open: f64,
    /// `srj_event_loop_wakeups_total` — loop iterations; rendered as
    /// wakeups/second from the delta between polls.
    loop_wakeups: f64,
    shed: f64,
    rate_limited: f64,
    reaped: f64,
    handshake_rejects: f64,
    parks: f64,
    /// `srj_worker_state_samples_total` in [`WORKER_STATES`] order.
    worker_states: [f64; 6],
}

/// Label values of `srj_worker_state_samples_total`, in display order.
const WORKER_STATES: [&str; 6] = ["idle", "decode", "acquire", "draw", "write", "park"];

/// One glyph per state for the utilization bar, same order.
const STATE_GLYPHS: [char; 6] = ['.', 'd', 'a', 'D', 'w', 'P'];

fn snapshot_health(samples: &[Sample]) -> HealthRow {
    let mut h = HealthRow::default();
    for s in samples {
        match s.name.as_str() {
            "srj_connections_accepted_total" => h.connections = s.value,
            "srj_conn_open" => h.open = s.value,
            "srj_event_loop_wakeups_total" => h.loop_wakeups = s.value,
            "srj_requests_shed" => h.shed = s.value,
            "srj_rate_limited" => h.rate_limited = s.value,
            "srj_conn_reaped" => h.reaped = s.value,
            "srj_handshake_rejects_total" => h.handshake_rejects = s.value,
            "srj_backpressure_parks_total" => h.parks = s.value,
            "srj_worker_state_samples_total" => {
                if let Some(i) = s
                    .label("state")
                    .and_then(|v| WORKER_STATES.iter().position(|w| *w == v))
                {
                    h.worker_states[i] = s.value;
                }
            }
            _ => {}
        }
    }
    h
}

/// Renders the worker-utilization line from the per-state sample
/// deltas since the previous poll: a 30-cell proportional bar (one
/// glyph per state) plus the busiest non-idle percentages. Empty when
/// the profiler is off or no sweep landed between polls.
fn render_util(current: &HealthRow, prev: &HealthRow) -> String {
    let deltas: Vec<f64> = (0..6)
        .map(|i| (current.worker_states[i] - prev.worker_states[i]).max(0.0))
        .collect();
    let total: f64 = deltas.iter().sum();
    if total <= 0.0 {
        return String::new();
    }
    const WIDTH: usize = 30;
    let mut bar = String::with_capacity(WIDTH);
    for (i, d) in deltas.iter().enumerate() {
        let cells = (d / total * WIDTH as f64).round() as usize;
        for _ in 0..cells {
            if bar.len() < WIDTH {
                bar.push(STATE_GLYPHS[i]);
            }
        }
    }
    while bar.len() < WIDTH {
        bar.push('.');
    }
    let mut parts = Vec::new();
    for (i, d) in deltas.iter().enumerate() {
        if i != 0 && *d > 0.0 {
            parts.push(format!("{} {:.0}%", WORKER_STATES[i], d / total * 100.0));
        }
    }
    format!("util [{bar}] {}", parts.join("  "))
}

fn render(
    rows: &BTreeMap<u64, DatasetRow>,
    prev: &BTreeMap<u64, DatasetRow>,
    health: HealthRow,
    prev_health: &HealthRow,
    slow: &[SlowLogEntry],
    dt: Duration,
    clear: bool,
) {
    if clear {
        // ANSI clear + home, so the dashboard repaints in place.
        print!("\x1b[2J\x1b[H");
    }
    let wakeups_per_s = if dt.as_secs_f64() > 0.0 {
        ((health.loop_wakeups - prev_health.loop_wakeups).max(0.0)) / dt.as_secs_f64()
    } else {
        0.0
    };
    println!(
        "conns {:.0} ({:.0} open)  loop {:.0}/s  shed {:.0}  rate-limited {:.0}  \
         reaped {:.0}  handshake-rejects {:.0}  parks {:.0}",
        health.connections,
        health.open,
        wakeups_per_s,
        health.shed,
        health.rate_limited,
        health.reaped,
        health.handshake_rejects,
        health.parks,
    );
    let util = render_util(&health, prev_health);
    if !util.is_empty() {
        println!("{util}");
    }
    println!(
        "{:>8} {:>9} {:>11} {:>7} {:>9} {:>9} {:>9} {:>7} {:>20} {:>16}",
        "dataset",
        "req/s",
        "samples/s",
        "errors",
        "mean",
        "~p50",
        "~p99",
        "rej",
        "rungs m/c/f/r/p",
        "buf h/r/i"
    );
    let dt_s = dt.as_secs_f64().max(1e-9);
    for (id, row) in rows {
        let prev_row = prev.get(id).cloned().unwrap_or_default();
        let req_rate = (row.requests - prev_row.requests).max(0.0) / dt_s;
        let sample_rate = (row.samples - prev_row.samples).max(0.0) / dt_s;
        let mean = if row.latency_count > 0.0 {
            row.latency_sum / row.latency_count
        } else {
            0.0
        };
        let p50 = bucket_quantile(&row.latency_buckets, 0.50);
        let p99 = bucket_quantile(&row.latency_buckets, 0.99);
        let rung = |name: &str| row.rungs.get(name).copied().unwrap_or(0.0) as u64;
        println!(
            "{:>8} {:>9.1} {:>11.0} {:>7.0} {:>9} {:>9} {:>9} {:>7.2} {:>20} {:>16}",
            id,
            req_rate,
            sample_rate,
            row.errors,
            fmt_ns(mean),
            fmt_ns(p50),
            fmt_ns(p99),
            row.rejection_rate,
            format!(
                "{}/{}/{}/{}/{}",
                rung("minor_swap"),
                rung("cell_patch"),
                rung("full_rebuild"),
                rung("repair"),
                rung("replan")
            ),
            format!(
                "{:.0}/{:.0}/{:.0}",
                row.buffer_hits, row.buffer_refills, row.buffer_invalidations
            ),
        );
    }
    if !slow.is_empty() {
        println!("slow requests (newest first):");
        for e in slow {
            println!(
                "  trace {:>#18x}  ds {:>3}  t {:>8}  {:<13}  \
                 elapsed {:>9}  wait {:>9}  iters {:>8}  spans {:>3}",
                e.trace_id,
                e.dataset,
                e.t,
                e.algorithm,
                fmt_ns(e.elapsed_ns as f64),
                fmt_ns(e.queue_wait_ns as f64),
                e.iterations,
                e.spans.len(),
            );
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7878".to_string();
    let mut interval = Duration::from_millis(1000);
    let mut once = false;
    let mut raw = false;
    let mut slow_tail: u32 = 4;
    let mut connect_timeout = Duration::from_millis(5_000);

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                let Some(v) = args.get(i + 1) else {
                    fail("--addr requires a value");
                };
                addr = v.clone();
                i += 2;
            }
            "--interval-ms" => {
                let Some(v) = args.get(i + 1) else {
                    fail("--interval-ms requires a value");
                };
                let ms: u64 = v
                    .parse()
                    .unwrap_or_else(|_| fail("--interval-ms takes an integer"));
                interval = Duration::from_millis(ms.max(1));
                i += 2;
            }
            "--connect-timeout-ms" => {
                let Some(v) = args.get(i + 1) else {
                    fail("--connect-timeout-ms requires a value");
                };
                let ms: u64 = v
                    .parse()
                    .unwrap_or_else(|_| fail("--connect-timeout-ms takes an integer"));
                connect_timeout = Duration::from_millis(ms);
                i += 2;
            }
            "--once" => {
                once = true;
                i += 1;
            }
            "--raw" => {
                raw = true;
                i += 1;
            }
            "--slow" => {
                let Some(v) = args.get(i + 1) else {
                    fail("--slow requires a value");
                };
                slow_tail = v
                    .parse()
                    .unwrap_or_else(|_| fail("--slow takes an integer"));
                i += 2;
            }
            "--help" | "-h" => fail("srj-top"),
            other => fail(&format!("unknown flag {other}")),
        }
    }

    let config = ClientConfig {
        connect_timeout,
        ..ClientConfig::default()
    };
    let mut client = match Client::connect_with(addr.as_str(), config) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };

    let mut prev: BTreeMap<u64, DatasetRow> = BTreeMap::new();
    let mut prev_health = HealthRow::default();
    let mut last_poll = Instant::now();
    loop {
        let text = match client.metrics() {
            Ok(text) => text,
            Err(e) => {
                eprintln!("metrics fetch failed: {e}");
                std::process::exit(1);
            }
        };
        if raw {
            print!("{text}");
        } else {
            let samples = parse_exposition(&text);
            let rows = snapshot_rows(&samples);
            let health = snapshot_health(&samples);
            // An older server answers SLOWLOG with an ERROR frame;
            // show the panel only when the fetch works.
            let slow = if slow_tail > 0 {
                client.slow_log(slow_tail).unwrap_or_default()
            } else {
                Vec::new()
            };
            let dt = last_poll.elapsed().max(interval);
            render(&rows, &prev, health, &prev_health, &slow, dt, !once);
            prev = rows;
            prev_health = health;
        }
        if once {
            return;
        }
        last_poll = Instant::now();
        std::thread::sleep(interval);
    }
}
