//! `srj-loadgen` — concurrent load generator for `srj-serve`.
//!
//! ```sh
//! srj-loadgen --addr 127.0.0.1:7878 --clients 4 --requests 8 --t 50000
//! srj-loadgen --addr 127.0.0.1:7878 --clients 1 --shutdown   # CI smoke
//! srj-loadgen --addr 127.0.0.1:7878 --update-fraction 0.1 \
//!             --out BENCH_PR4.json                           # mixed 90/10
//! ```
//!
//! Spawns `--clients` threads, each holding one connection and issuing
//! `--requests` sequential operations. By default every operation is a
//! `SAMPLE` request of `--t` samples; with `--update-fraction f > 0`
//! every ⌈1/f⌉-th operation is instead an `INSERT` or `DELETE` batch
//! (`--update-batch` points, alternating sides, deletes recycling
//! previously inserted ids) — the mixed read/update workload the
//! dynamic-dataset path is benchmarked under. Reports achieved
//! samples/sec, client-observed request latency quantiles, update
//! latency quantiles, and the served dataset's epoch counters (swap
//! count + last swap latency via the `EPOCH` frame), machine-readable
//! into `--out` (`BENCH_PR3.json` shape, `"pr": 4` fields added when
//! updates ran; `host_cores` included — single-core CI boxes cannot
//! show parallel speedup). Exits non-zero on any non-`Ok` status or
//! transport error.

use std::fmt::Write as _;
use std::time::Instant;

use srj_bench::{host_cores, percentile_sorted};
use srj_geom::Point;
use srj_server::{
    Algorithm, Client, DatasetRegistry, RequestStatus, SampleRequest, Server, ServerConfig, Side,
};

const USAGE: &str = "usage: srj-loadgen [--addr HOST:PORT] [--clients N] [--requests N] [--t N]
                   [--dataset ID] [--l F] [--algo auto|kds|kds-rejection|bbst]
                   [--shards N] [--update-fraction F] [--update-batch N]
                   [--delete-heavy] [--obs-bench] [--domain F] [--out PATH]
                   [--shutdown]
  Defaults: --addr 127.0.0.1:7878 --clients 4 --requests 8 --t 50000
            --dataset 1 --l 100 --algo auto --shards 1
            --update-fraction 0 --update-batch 256 --domain 10000
            --out BENCH_PR3.json (BENCH_PR5.json with --delete-heavy,
            BENCH_PR6.json with --obs-bench)
  --delete-heavy: every request is preceded by a DELETE batch of S ids
                  (no inserts); asserts the served Σµ strictly shrinks
                  across the resulting epoch swap and writes the PR5
                  bench JSON.
  --obs-bench: ignore --addr; start two identical in-process servers —
               observability cold (tracing off) and hot (every request
               traced) — run the same read load against both, and
               record the throughput ratio as \"measured_ratio\" in the
               PR6 bench JSON.";

fn fail(msg: &str) -> ! {
    eprintln!("{msg}\n{USAGE}");
    std::process::exit(2);
}

#[derive(Default)]
struct ClientOutcome {
    samples: u64,
    latencies_ns: Vec<u64>,
    update_latencies_ns: Vec<u64>,
    inserted_points: u64,
    deleted_points: u64,
    /// DELETE frames actually sent (points *applied* can legitimately
    /// be zero when an epoch swap invalidated the ids mid-flight).
    delete_frames: u64,
    errors: u64,
}

/// Deterministic xorshift point stream for inserts (same generator as
/// the test helpers; no `rand` dependency in the bins).
struct PointGen {
    state: u64,
    domain: f64,
}

impl PointGen {
    fn new(seed: u64, domain: f64) -> Self {
        PointGen {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
            domain,
        }
    }

    fn next_unit(&mut self) -> f64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        (self.state >> 11) as f64 / (1u64 << 53) as f64
    }

    fn point(&mut self) -> Point {
        Point::new(
            self.next_unit() * self.domain,
            self.next_unit() * self.domain,
        )
    }
}

/// One delete-heavy client: each round tombstones a batch of currently
/// live `S` ids (validated against the current epoch via an `EPOCH`
/// probe, like the mixed-mode delete path) and then samples, so the
/// tombstone-threshold rebuild — and its `Σµ` shrink — happens under
/// read load.
#[allow(clippy::too_many_arguments)]
fn run_delete_heavy_client(
    cid: usize,
    addr: &str,
    requests: usize,
    t: u64,
    dataset: u64,
    l: f64,
    algorithm: Option<Algorithm>,
    shards: u32,
    delete_batch: usize,
) -> ClientOutcome {
    let mut out = ClientOutcome::default();
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("client {cid}: connect failed: {e}");
            out.errors += 1;
            return out;
        }
    };
    for r in 0..requests {
        // Pick a deterministic, per-(client, round) segment of the
        // currently live id space. Already-tombstoned ids are skipped
        // server-side (`applied` counts the effective ones).
        let live_s = match client.epoch(dataset) {
            Ok((RequestStatus::Ok, info)) => info.live_s,
            _ => 0,
        };
        if live_s > delete_batch as u64 * 2 {
            let span = live_s - delete_batch as u64;
            let start = ((cid as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(r as u64 * 2_654_435_761))
                % span;
            let ids: Vec<u32> = (0..delete_batch as u64)
                .map(|k| (start + k) as u32)
                .collect();
            let del_start = Instant::now();
            match client.delete(dataset, Side::S, &ids) {
                Ok(o) if o.status == RequestStatus::Ok => {
                    out.deleted_points += o.applied as u64;
                    out.delete_frames += 1;
                    out.update_latencies_ns
                        .push(del_start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                }
                Ok(o) => {
                    eprintln!("client {cid} delete: status {}", o.status);
                    out.errors += 1;
                }
                Err(e) => {
                    eprintln!("client {cid} delete: {e}");
                    out.errors += 1;
                    return out;
                }
            }
        }
        let seed = 1 + (cid * requests + r) as u64;
        let start = Instant::now();
        let mut received = 0u64;
        let outcome = client.sample_with(
            SampleRequest {
                req_id: 0,
                dataset,
                l,
                algorithm,
                shards,
                t,
                seed,
            },
            |batch| received += batch.len() as u64,
        );
        match outcome {
            Ok(o) if o.status == RequestStatus::Ok && received == t => {
                out.samples += received;
                out.latencies_ns
                    .push(start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
            }
            Ok(o) => {
                eprintln!(
                    "client {cid} request {r}: status {} after {received} samples",
                    o.status
                );
                out.errors += 1;
            }
            Err(e) => {
                eprintln!("client {cid} request {r}: {e}");
                out.errors += 1;
                return out;
            }
        }
    }
    out
}

/// The `--obs-bench` harness: the same read-only load, twice, against
/// two freshly started in-process servers — one with observability
/// cold (tracing disabled; the metrics counters still run, as they
/// always do), one hot (`trace_sample_rate` 1.0, so *every* request
/// records spans through the whole pipeline). The achieved
/// samples/sec ratio is the measured end-to-end overhead of the
/// instrumentation. Exits the process with the bench outcome.
#[allow(clippy::too_many_arguments)]
fn run_obs_bench(
    clients_n: usize,
    requests: usize,
    t: u64,
    l: f64,
    algorithm: Option<Algorithm>,
    algo_str: &str,
    shards: u32,
    domain: f64,
    out_path: &str,
) -> ! {
    let dataset = 1u64;
    let phase = |trace_sample_rate: f64| -> (f64, u64) {
        // Identical dataset per phase (same generator seeds).
        let mut gen = PointGen::new(0x0B5_BE7C4, domain);
        let r: Vec<Point> = (0..20_000).map(|_| gen.point()).collect();
        let s: Vec<Point> = (0..20_000).map(|_| gen.point()).collect();
        let mut registry = DatasetRegistry::new();
        registry.register(dataset, r, s);
        let config = ServerConfig {
            trace_sample_rate,
            ..ServerConfig::default()
        };
        let mut server =
            Server::start("127.0.0.1:0", registry, config).expect("bind obs-bench server");
        let addr = server.local_addr().to_string();
        // Warm the engine cache so neither phase times the index build.
        if let Ok(mut c) = Client::connect(addr.as_str()) {
            let _ = c.sample(SampleRequest {
                req_id: 0,
                dataset,
                l,
                algorithm,
                shards,
                t: 1,
                seed: 1,
            });
        }
        let wall_start = Instant::now();
        let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
            let addr = &addr;
            let handles: Vec<_> = (0..clients_n)
                .map(|cid| {
                    scope.spawn(move || {
                        run_client(
                            cid, addr, requests, t, dataset, l, algorithm, shards, 0, 1, domain,
                        )
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let wall = wall_start.elapsed();
        if trace_sample_rate > 0.0 {
            // Exercise the export surfaces once while hot, so the bench
            // also covers the scrape path end to end.
            if let Ok(mut c) = Client::connect(addr.as_str()) {
                if let Ok(text) = c.metrics() {
                    assert!(
                        text.contains("srj_requests_total"),
                        "hot-phase METRICS exposition is missing request counters"
                    );
                }
            }
        }
        server.shutdown();
        let total: u64 = outcomes.iter().map(|o| o.samples).sum();
        let errors: u64 = outcomes.iter().map(|o| o.errors).sum();
        if errors > 0 || total == 0 {
            eprintln!("obs-bench phase failed: {errors} errors, {total} samples");
            std::process::exit(1);
        }
        (total as f64 / wall.as_secs_f64().max(1e-9), total)
    };

    eprintln!(
        "# obs-bench: {clients_n} clients x {requests} reqs x {t} samples, \
         observability off vs on (trace rate 1.0)"
    );
    // Three alternating off/on phase pairs, best rate per side: the
    // phases are short and the interesting signal (instrumentation
    // cost) is a *floor* effect, so peak-vs-peak cancels the scheduler
    // and frequency noise that dominates single-run deltas on a
    // shared 1-core box.
    const ROUNDS: usize = 3;
    let mut off_rate = 0.0f64;
    let mut on_rate = 0.0f64;
    let mut total = 0u64;
    for round in 0..ROUNDS {
        let (off, n) = phase(0.0);
        let (on, _) = phase(1.0);
        eprintln!("# round {round}: off {off:.0} samples/s, on {on:.0} samples/s");
        off_rate = off_rate.max(off);
        on_rate = on_rate.max(on);
        total = n;
    }
    // on/off throughput: 1.0 = free, 0.95 = 5% overhead.
    let measured_ratio = on_rate / off_rate.max(1e-9);

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"pr\": 6,").unwrap();
    writeln!(json, "  \"host_cores\": {},", host_cores()).unwrap();
    writeln!(
        json,
        "  \"workload\": {{\"clients\": {clients_n}, \"requests_per_client\": {requests}, \
         \"t\": {t}, \"dataset\": {dataset}, \"l\": {l}, \"algorithm\": \"{algo_str}\", \
         \"shards\": {shards}, \"trace_sample_rate_hot\": 1.0}},"
    )
    .unwrap();
    writeln!(json, "  \"total_samples_per_phase\": {total},").unwrap();
    writeln!(json, "  \"samples_per_sec_off\": {off_rate:.0},").unwrap();
    writeln!(json, "  \"samples_per_sec_on\": {on_rate:.0},").unwrap();
    writeln!(
        json,
        "  \"overhead_pct\": {:.2},",
        (1.0 - measured_ratio) * 100.0
    )
    .unwrap();
    writeln!(json, "  \"measured_ratio\": {measured_ratio:.4}").unwrap();
    writeln!(json, "}}").unwrap();
    print!("{json}");
    if let Err(e) = std::fs::write(out_path, &json) {
        eprintln!("warning: could not write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("# wrote {out_path}");
    std::process::exit(0);
}

#[allow(clippy::too_many_arguments)]
fn run_client(
    cid: usize,
    addr: &str,
    requests: usize,
    t: u64,
    dataset: u64,
    l: f64,
    algorithm: Option<Algorithm>,
    shards: u32,
    update_every: usize,
    update_batch: usize,
    domain: f64,
) -> ClientOutcome {
    let mut out = ClientOutcome::default();
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("client {cid}: connect failed: {e}");
            out.errors += 1;
            return out;
        }
    };
    let mut gen = PointGen::new(0xC11E_4400 + cid as u64, domain);
    // Ids this client inserted and may later delete, tagged with the
    // epoch they were assigned in (a rebuild renumbers ids, so stale
    // epochs are discarded rather than deleting arbitrary points).
    let mut pending_deletes: Vec<(Side, u32, u64)> = Vec::new();
    let mut update_no = 0usize;
    for r in 0..requests {
        let is_update = update_every > 0 && (r + 1) % update_every == 0;
        if is_update {
            update_no += 1;
            let side = if update_no.is_multiple_of(2) {
                Side::S
            } else {
                Side::R
            };
            let start = Instant::now();
            // Alternate insert/delete once enough inserted ids are
            // banked, so the dataset size stays roughly stable.
            let result = if update_no.is_multiple_of(4) {
                // Confirm the banked ids are still addressable before
                // sending: a concurrent client's inserts may have
                // crossed the rebuild threshold (or tripped a re-plan)
                // and renumbered everything, in which case the banked
                // ids would tombstone arbitrary points.
                let current_epoch = match client.epoch(dataset) {
                    Ok((RequestStatus::Ok, info)) => info.epoch,
                    _ => u64::MAX, // discard everything below
                };
                pending_deletes.retain(|(_, _, e)| *e == current_epoch);
                if pending_deletes.len() < update_batch {
                    // Not enough surviving ids (e.g. an epoch swap just
                    // discarded the bank): insert a fresh batch in the
                    // current epoch so the delete always has valid
                    // targets and the DELETE path is always exercised.
                    let points: Vec<Point> = (0..update_batch).map(|_| gen.point()).collect();
                    if let Ok(o) = client.insert(dataset, side, &points) {
                        if o.status == RequestStatus::Ok {
                            out.inserted_points += o.applied as u64;
                            pending_deletes.retain(|(_, _, e)| *e == o.epoch);
                            for k in 0..o.applied {
                                pending_deletes.push((side, o.first_id + k, o.epoch));
                            }
                        }
                    }
                }
                let take = pending_deletes.len().min(update_batch);
                let batch: Vec<(Side, u32, u64)> = pending_deletes.drain(..take).collect();
                out.delete_frames += u64::from(batch.iter().any(|(s, _, _)| *s == Side::R))
                    + u64::from(batch.iter().any(|(s, _, _)| *s == Side::S));
                let mut applied = 0;
                let mut failed = false;
                for del_side in [Side::R, Side::S] {
                    let ids: Vec<u32> = batch
                        .iter()
                        .filter(|(s, _, _)| *s == del_side)
                        .map(|(_, id, _)| *id)
                        .collect();
                    if ids.is_empty() {
                        continue;
                    }
                    match client.delete(dataset, del_side, &ids) {
                        Ok(o) if o.status == RequestStatus::Ok => {
                            applied += o.applied as u64;
                            // A bumped epoch invalidates banked ids —
                            // including the not-yet-sent other side of
                            // this very batch (the server skipped the
                            // now-stale ids anyway; `applied` tells us).
                            pending_deletes.retain(|(_, _, e)| *e == o.epoch);
                            if o.epoch != current_epoch {
                                break;
                            }
                        }
                        Ok(o) => {
                            eprintln!("client {cid} delete: status {}", o.status);
                            failed = true;
                        }
                        Err(e) => {
                            eprintln!("client {cid} delete: {e}");
                            failed = true;
                        }
                    }
                }
                out.deleted_points += applied;
                !failed
            } else {
                let points: Vec<Point> = (0..update_batch).map(|_| gen.point()).collect();
                match client.insert(dataset, side, &points) {
                    Ok(o) if o.status == RequestStatus::Ok => {
                        pending_deletes.retain(|(_, _, e)| *e == o.epoch);
                        for k in 0..o.applied {
                            pending_deletes.push((side, o.first_id + k, o.epoch));
                        }
                        out.inserted_points += o.applied as u64;
                        true
                    }
                    Ok(o) => {
                        eprintln!("client {cid} insert: status {}", o.status);
                        false
                    }
                    Err(e) => {
                        eprintln!("client {cid} insert: {e}");
                        false
                    }
                }
            };
            if result {
                out.update_latencies_ns
                    .push(start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
            } else {
                out.errors += 1;
            }
            continue;
        }
        // Nonzero seed ⇒ reproducible per-slot streams.
        let seed = 1 + (cid * requests + r) as u64;
        let start = Instant::now();
        let mut received = 0u64;
        let outcome = client.sample_with(
            SampleRequest {
                req_id: 0,
                dataset,
                l,
                algorithm,
                shards,
                t,
                seed,
            },
            |batch| received += batch.len() as u64,
        );
        let elapsed = start.elapsed();
        match outcome {
            Ok(o) if o.status == RequestStatus::Ok && received == t => {
                out.samples += received;
                out.latencies_ns
                    .push(elapsed.as_nanos().min(u128::from(u64::MAX)) as u64);
            }
            Ok(o) => {
                eprintln!(
                    "client {cid} request {r}: status {} after {received} samples",
                    o.status
                );
                out.errors += 1;
            }
            Err(e) => {
                eprintln!("client {cid} request {r}: {e}");
                out.errors += 1;
                return out;
            }
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7878".to_string();
    let mut clients: usize = 4;
    let mut requests: usize = 8;
    let mut t: u64 = 50_000;
    let mut dataset: u64 = 1;
    let mut l: f64 = 100.0;
    let mut algo_str = "auto".to_string();
    let mut shards: u32 = 1;
    let mut update_fraction: f64 = 0.0;
    let mut update_batch: usize = 256;
    let mut delete_heavy = false;
    let mut obs_bench = false;
    let mut domain: f64 = 10_000.0;
    let mut out_path: Option<String> = None;
    let mut shutdown = false;

    let mut i = 0;
    let value = |args: &[String], i: &mut usize, flag: &str| -> String {
        let Some(v) = args.get(*i + 1) else {
            fail(&format!("{flag} requires a value"));
        };
        *i += 2;
        v.clone()
    };
    macro_rules! parse_flag {
        ($target:ident, $flag:literal, $what:literal) => {
            $target = value(&args, &mut i, $flag)
                .parse()
                .unwrap_or_else(|_| fail(concat!($flag, " takes ", $what)))
        };
    }
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = value(&args, &mut i, "--addr"),
            "--clients" => parse_flag!(clients, "--clients", "an integer"),
            "--requests" => parse_flag!(requests, "--requests", "an integer"),
            "--t" => parse_flag!(t, "--t", "an integer"),
            "--dataset" => parse_flag!(dataset, "--dataset", "an integer"),
            "--l" => parse_flag!(l, "--l", "a float"),
            "--algo" => algo_str = value(&args, &mut i, "--algo"),
            "--shards" => parse_flag!(shards, "--shards", "an integer"),
            "--update-fraction" => {
                parse_flag!(update_fraction, "--update-fraction", "a float")
            }
            "--update-batch" => parse_flag!(update_batch, "--update-batch", "an integer"),
            "--delete-heavy" => {
                delete_heavy = true;
                i += 1;
            }
            "--obs-bench" => {
                obs_bench = true;
                i += 1;
            }
            "--domain" => parse_flag!(domain, "--domain", "a float"),
            "--out" => out_path = Some(value(&args, &mut i, "--out")),
            "--shutdown" => {
                shutdown = true;
                i += 1;
            }
            "--help" | "-h" => fail("srj-loadgen"),
            other => fail(&format!("unknown flag {other}")),
        }
    }
    let algorithm = match algo_str.as_str() {
        "auto" => None,
        "kds" => Some(Algorithm::Kds),
        "kds-rejection" => Some(Algorithm::KdsRejection),
        "bbst" => Some(Algorithm::Bbst),
        other => fail(&format!("unknown algorithm {other:?}")),
    };
    if !(0.0..=1.0).contains(&update_fraction) {
        fail("--update-fraction takes a fraction in [0, 1]");
    }
    if delete_heavy && update_fraction > 0.0 {
        fail("--delete-heavy and --update-fraction are mutually exclusive");
    }
    if obs_bench && (delete_heavy || update_fraction > 0.0) {
        fail("--obs-bench runs a pure read workload (no updates)");
    }
    let out_path = out_path.unwrap_or_else(|| {
        if obs_bench {
            "BENCH_PR6.json".to_string()
        } else if delete_heavy {
            "BENCH_PR5.json".to_string()
        } else {
            "BENCH_PR3.json".to_string()
        }
    });
    if obs_bench {
        run_obs_bench(
            clients.max(1),
            requests,
            t,
            l,
            algorithm,
            &algo_str,
            shards,
            domain,
            &out_path,
        );
    }
    let update_batch = update_batch.max(1);
    let clients_n = clients.max(1);
    // Every k-th operation is an update ⇒ update share ≈ 1/k.
    let update_every = if update_fraction > 0.0 {
        (1.0 / update_fraction).round().max(1.0) as usize
    } else {
        0
    };

    eprintln!(
        "# loadgen: {clients_n} clients x {requests} ops x {t} samples \
         (dataset {dataset}, l {l}, algo {algo_str}, shards {shards}, \
         update-fraction {update_fraction}, delete-heavy {delete_heavy}) -> {addr}"
    );
    let probes = update_every > 0 || delete_heavy;
    // Delete-heavy runs compare Σµ across the swap, so the serving
    // engine must exist (and register its Σµ) *before* the first
    // delete: warm it up with one tiny sample request.
    if delete_heavy {
        if let Ok(mut c) = Client::connect(addr.as_str()) {
            let _ = c.sample(SampleRequest {
                req_id: 0,
                dataset,
                l,
                algorithm,
                shards,
                t: 1,
                seed: 1,
            });
        }
    }
    // Epoch/stats probes only matter for the update-mode JSON
    // branches; pure-read runs must not pay the extra connections.
    let probe = |fold_first: bool| {
        Client::connect(addr.as_str()).ok().and_then(|mut c| {
            if fold_first {
                // One read forces any still-pending delta to be folded
                // in, so the probe reports a current swap.
                let _ = c.sample(SampleRequest {
                    req_id: 0,
                    dataset,
                    l,
                    algorithm,
                    shards,
                    t: 1,
                    seed: 1,
                });
            }
            let info = c.epoch(dataset).ok().map(|(_, info)| info)?;
            let stats = c.server_stats().ok()?;
            Some((info, stats))
        })
    };
    let before = probes.then(|| probe(false)).flatten();
    let wall_start = Instant::now();
    let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
        let addr = &addr;
        let handles: Vec<_> = (0..clients_n)
            .map(|cid| {
                scope.spawn(move || {
                    if delete_heavy {
                        run_delete_heavy_client(
                            cid,
                            addr,
                            requests,
                            t,
                            dataset,
                            l,
                            algorithm,
                            shards,
                            update_batch,
                        )
                    } else {
                        run_client(
                            cid,
                            addr,
                            requests,
                            t,
                            dataset,
                            l,
                            algorithm,
                            shards,
                            update_every,
                            update_batch,
                            domain,
                        )
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = wall_start.elapsed();
    let after = probes.then(|| probe(true)).flatten();
    let epoch_before = before.as_ref().map(|(info, _)| *info);
    let epoch_after = after.as_ref().map(|(info, _)| *info);

    let total_samples: u64 = outcomes.iter().map(|o| o.samples).sum();
    let errors: u64 = outcomes.iter().map(|o| o.errors).sum();
    let inserted: u64 = outcomes.iter().map(|o| o.inserted_points).sum();
    let deleted: u64 = outcomes.iter().map(|o| o.deleted_points).sum();
    let delete_frames: u64 = outcomes.iter().map(|o| o.delete_frames).sum();
    let mut latencies: Vec<u64> = outcomes
        .iter()
        .flat_map(|o| o.latencies_ns.iter().copied())
        .collect();
    latencies.sort_unstable();
    let mut update_latencies: Vec<u64> = outcomes
        .iter()
        .flat_map(|o| o.update_latencies_ns.iter().copied())
        .collect();
    update_latencies.sort_unstable();
    let samples_per_sec = total_samples as f64 / wall.as_secs_f64().max(1e-9);
    let mean = |v: &[u64]| {
        if v.is_empty() {
            0
        } else {
            v.iter().sum::<u64>() / v.len() as u64
        }
    };
    let ns_to_ms = |ns: u64| ns as f64 / 1e6;

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    let pr = if delete_heavy {
        5
    } else if update_every > 0 {
        4
    } else {
        3
    };
    writeln!(json, "  \"pr\": {pr},").unwrap();
    writeln!(json, "  \"host_cores\": {},", host_cores()).unwrap();
    writeln!(
        json,
        "  \"workload\": {{\"clients\": {clients_n}, \"requests_per_client\": {requests}, \
         \"t\": {t}, \"dataset\": {dataset}, \"l\": {l}, \"algorithm\": \"{algo_str}\", \
         \"shards\": {shards}, \"update_fraction\": {update_fraction}, \
         \"update_batch\": {update_batch}}},"
    )
    .unwrap();
    writeln!(json, "  \"total_samples\": {total_samples},").unwrap();
    writeln!(json, "  \"errors\": {errors},").unwrap();
    writeln!(json, "  \"wall_s\": {:.4},", wall.as_secs_f64()).unwrap();
    writeln!(json, "  \"samples_per_sec\": {samples_per_sec:.0},").unwrap();
    if probes {
        writeln!(
            json,
            "  \"updates\": {{\"ops\": {}, \"inserted_points\": {inserted}, \
             \"deleted_points\": {deleted}, \"delete_frames\": {delete_frames}, \
             \"latency_ms\": {{\"mean\": {:.3}, \
             \"p50\": {:.3}, \"p99\": {:.3}}}}},",
            update_latencies.len(),
            ns_to_ms(mean(&update_latencies)),
            ns_to_ms(percentile_sorted(&update_latencies, 0.50)),
            ns_to_ms(percentile_sorted(&update_latencies, 0.99)),
        )
        .unwrap();
        let (e0, e1) = (
            epoch_before.map_or(0, |i| i.epoch),
            epoch_after.map_or(0, |i| i.epoch),
        );
        writeln!(
            json,
            "  \"epochs\": {{\"before\": {e0}, \"after\": {e1}, \"swaps\": {}, \
             \"pending_ops_after\": {}, \"last_swap_ms\": {:.3}}},",
            e1.saturating_sub(e0),
            epoch_after.map_or(0, |i| i.pending_ops),
            ns_to_ms(epoch_after.map_or(0, |i| i.last_swap_ns)),
        )
        .unwrap();
        // Cell-granular maintenance counters (the PR5 acceptance
        // signal): Σµ before/after and how much of the S-side each
        // swap actually rebuilt.
        if let (Some((_, sb)), Some((_, sa))) = (&before, &after) {
            writeln!(
                json,
                "  \"cell_maintenance\": {{\"mu_before\": {:.1}, \"mu_after\": {:.1}, \
                 \"patch_swaps\": {}, \"cells_patched\": {}, \"repairs\": {}, \
                 \"epoch_swap_cost_ms\": {:.3}}},",
                sb.mu_total,
                sa.mu_total,
                sa.patch_swaps.saturating_sub(sb.patch_swaps),
                sa.cells_patched.saturating_sub(sb.cells_patched),
                sa.repairs.saturating_sub(sb.repairs),
                ns_to_ms(sa.last_swap_ns),
            )
            .unwrap();
        }
    }
    writeln!(
        json,
        "  \"request_latency_ms\": {{\"mean\": {:.3}, \"p50\": {:.3}, \"p99\": {:.3}}}",
        ns_to_ms(mean(&latencies)),
        ns_to_ms(percentile_sorted(&latencies, 0.50)),
        ns_to_ms(percentile_sorted(&latencies, 0.99))
    )
    .unwrap();
    writeln!(json, "}}").unwrap();
    print!("{json}");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("warning: could not write {out_path}: {e}");
    } else {
        eprintln!("# wrote {out_path}");
    }

    if shutdown {
        match Client::connect(addr.as_str()).and_then(|mut c| {
            c.shutdown_server()
                .map_err(|e| std::io::Error::other(e.to_string()))
        }) {
            Ok(()) => eprintln!("# sent shutdown"),
            Err(e) => eprintln!("warning: shutdown request failed: {e}"),
        }
    }

    if errors > 0 || total_samples == 0 {
        std::process::exit(1);
    }
    if delete_heavy {
        // The whole point of the delete-heavy smoke: deletes must flow,
        // the tombstone threshold must fire, and the swap must shrink
        // Σµ (tombstone rejection alone never does).
        // Saturating: a failed after-probe reports 0 while the before
        // epoch may be positive.
        let swaps = epoch_after
            .map_or(0, |i| i.epoch)
            .saturating_sub(epoch_before.map_or(0, |i| i.epoch));
        if deleted == 0 {
            eprintln!("delete-heavy run deleted nothing");
            std::process::exit(1);
        }
        if swaps == 0 {
            eprintln!("delete-heavy run never crossed the tombstone rebuild threshold");
            std::process::exit(1);
        }
        match (&before, &after) {
            (Some((_, sb)), Some((_, sa))) if sa.mu_total < sb.mu_total => {}
            (Some((_, sb)), Some((_, sa))) => {
                eprintln!(
                    "delete-only swap did not shrink Σµ: {} -> {}",
                    sb.mu_total, sa.mu_total
                );
                std::process::exit(1);
            }
            _ => {
                eprintln!("delete-heavy run could not probe server stats");
                std::process::exit(1);
            }
        }
    }
}
