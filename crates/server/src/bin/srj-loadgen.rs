//! `srj-loadgen` — concurrent load generator for `srj-serve`.
//!
//! ```sh
//! srj-loadgen --addr 127.0.0.1:7878 --clients 4 --requests 8 --t 50000
//! srj-loadgen --addr 127.0.0.1:7878 --clients 1 --shutdown   # CI smoke
//! srj-loadgen --addr 127.0.0.1:7878 --update-fraction 0.1 \
//!             --out BENCH_PR4.json                           # mixed 90/10
//! ```
//!
//! Spawns `--clients` threads, each holding one connection and issuing
//! `--requests` sequential operations. By default every operation is a
//! `SAMPLE` request of `--t` samples; with `--update-fraction f > 0`
//! every ⌈1/f⌉-th operation is instead an `INSERT` or `DELETE` batch
//! (`--update-batch` points, alternating sides, deletes recycling
//! previously inserted ids) — the mixed read/update workload the
//! dynamic-dataset path is benchmarked under. Reports achieved
//! samples/sec, client-observed request latency quantiles, update
//! latency quantiles, and the served dataset's epoch counters (swap
//! count + last swap latency via the `EPOCH` frame), machine-readable
//! into `--out` (`BENCH_PR3.json` shape, `"pr": 4` fields added when
//! updates ran; `host_cores` included — single-core CI boxes cannot
//! show parallel speedup). Exits non-zero on any non-`Ok` status or
//! transport error.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use srj_bench::{host_cores, percentile_sorted};
use srj_geom::Point;
use srj_server::{
    Algorithm, Client, ClientConfig, ClientError, DatasetRegistry, FaultPlan, RequestStatus,
    SampleRequest, Server, ServerConfig, Side,
};

const USAGE: &str = "usage: srj-loadgen [--addr HOST:PORT] [--clients N] [--requests N] [--t N]
                   [--dataset ID] [--l F] [--algo auto|kds|kds-rejection|bbst]
                   [--shards N] [--update-fraction F] [--update-batch N]
                   [--delete-heavy] [--obs-bench] [--chaos] [--fault-seed N]
                   [--buffers on|off|ab] [--connections N]
                   [--connect-timeout-ms N]
                   [--no-nodelay] [--domain F] [--out PATH] [--shutdown]
  Defaults: --addr 127.0.0.1:7878 --clients 4 --requests 8 --t 50000
            --dataset 1 --l 100 --algo auto --shards 1
            --update-fraction 0 --update-batch 256 --domain 10000
            --connect-timeout-ms 5000 --fault-seed 7
            --out BENCH_PR3.json (BENCH_PR5.json with --delete-heavy,
            BENCH_PR8.json with --obs-bench, BENCH_PR7.json with --chaos,
            BENCH_PR9.json with --buffers, BENCH_PR10.json with
            --connections)
  --delete-heavy: every request is preceded by a DELETE batch of S ids
                  (no inserts); asserts the served Σµ strictly shrinks
                  across the resulting epoch swap and writes the PR5
                  bench JSON.
  --obs-bench: ignore --addr; start identical in-process servers —
               observability cold (tracing, slow log, recorder, and
               profiler all off) and hot (every request traced,
               always-on slow-log rings, 100 ms recorder cadence,
               worker-state sampling) — run the same read load against
               both in interleaved phase pairs, and record the best-of
               throughput ratio as \"measured_ratio\" (plus the
               per-phase rates and spread) in the PR8 bench JSON.
  --chaos: ignore --addr; run the fault-injection soak — the same
           mutating workload against a clean in-process server and one
           injecting dropped connections, truncated/partial frames,
           delayed reads, and forced BUSY (seeded by --fault-seed).
           Exits non-zero unless every client converges with zero lost
           mutations, a chi-squared uniformity test passes under
           faults, and the hardening paths (retries, BUSY answers,
           idle-connection reaping) demonstrably fired. Writes the PR7
           bench JSON.
  --buffers: ignore --addr; benchmark the buffered draw fast path.
           Starts identical in-process servers differing only in
           `ServerConfig::buffers` — off serves the legacy per-draw
           stream (virtual RNG dispatch, per-item accounting), on
           serves the monomorphised batch path with per-cell sample
           buffers — and runs the same read load against both. Untimed
           warm-up phase pairs repeat until back-to-back rates settle
           within 10% per side, then the timed rounds record best-of
           rates, per-round rates, and spread into the PR9 bench JSON
           (\"speedup\" = buffered/unbuffered). `on` or `off` runs a
           single side (no speedup); `ab` runs the A/B.
  --connections N: ignore --addr; run the high-fanout serving bench
           against an in-process server — phase 1 is the plain read
           workload alone (the regression gate vs the
           thread-per-connection baseline), phase 2 opens N keepalive
           connections held live by PING sweeps and reruns the same
           hot workload through that standing crowd. Exits non-zero
           on any hot-client error or any keepalive connection that
           stops answering. Writes the PR10 bench JSON.
  --connect-timeout-ms / --no-nodelay: client socket knobs (all modes);
           0 disables the connect deadline, --no-nodelay leaves Nagle
           batching on.";

fn fail(msg: &str) -> ! {
    eprintln!("{msg}\n{USAGE}");
    std::process::exit(2);
}

#[derive(Default)]
struct ClientOutcome {
    samples: u64,
    latencies_ns: Vec<u64>,
    update_latencies_ns: Vec<u64>,
    inserted_points: u64,
    deleted_points: u64,
    /// DELETE frames actually sent (points *applied* can legitimately
    /// be zero when an epoch swap invalidated the ids mid-flight).
    delete_frames: u64,
    errors: u64,
}

/// Deterministic xorshift point stream for inserts (same generator as
/// the test helpers; no `rand` dependency in the bins).
struct PointGen {
    state: u64,
    domain: f64,
}

impl PointGen {
    fn new(seed: u64, domain: f64) -> Self {
        PointGen {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
            domain,
        }
    }

    fn next_unit(&mut self) -> f64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        (self.state >> 11) as f64 / (1u64 << 53) as f64
    }

    fn point(&mut self) -> Point {
        Point::new(
            self.next_unit() * self.domain,
            self.next_unit() * self.domain,
        )
    }
}

/// One delete-heavy client: each round tombstones a batch of currently
/// live `S` ids (validated against the current epoch via an `EPOCH`
/// probe, like the mixed-mode delete path) and then samples, so the
/// tombstone-threshold rebuild — and its `Σµ` shrink — happens under
/// read load.
#[allow(clippy::too_many_arguments)]
fn run_delete_heavy_client(
    cid: usize,
    addr: &str,
    cfg: ClientConfig,
    requests: usize,
    t: u64,
    dataset: u64,
    l: f64,
    algorithm: Option<Algorithm>,
    shards: u32,
    delete_batch: usize,
) -> ClientOutcome {
    let mut out = ClientOutcome::default();
    let mut client = match Client::connect_with(addr, cfg) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("client {cid}: connect failed: {e}");
            out.errors += 1;
            return out;
        }
    };
    for r in 0..requests {
        // Pick a deterministic, per-(client, round) segment of the
        // currently live id space. Already-tombstoned ids are skipped
        // server-side (`applied` counts the effective ones).
        let live_s = match client.epoch(dataset) {
            Ok((RequestStatus::Ok, info)) => info.live_s,
            _ => 0,
        };
        if live_s > delete_batch as u64 * 2 {
            let span = live_s - delete_batch as u64;
            let start = ((cid as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(r as u64 * 2_654_435_761))
                % span;
            let ids: Vec<u32> = (0..delete_batch as u64)
                .map(|k| (start + k) as u32)
                .collect();
            let del_start = Instant::now();
            match client.delete(dataset, Side::S, &ids) {
                Ok(o) if o.status == RequestStatus::Ok => {
                    out.deleted_points += o.applied as u64;
                    out.delete_frames += 1;
                    out.update_latencies_ns
                        .push(del_start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                }
                Ok(o) => {
                    eprintln!("client {cid} delete: status {}", o.status);
                    out.errors += 1;
                }
                Err(e) => {
                    eprintln!("client {cid} delete: {e}");
                    out.errors += 1;
                    return out;
                }
            }
        }
        let seed = 1 + (cid * requests + r) as u64;
        let start = Instant::now();
        let mut received = 0u64;
        let outcome = client.sample_with(
            SampleRequest {
                req_id: 0,
                dataset,
                l,
                algorithm,
                shards,
                t,
                seed,
            },
            |batch| received += batch.len() as u64,
        );
        match outcome {
            Ok(o) if o.status == RequestStatus::Ok && received == t => {
                out.samples += received;
                out.latencies_ns
                    .push(start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
            }
            Ok(o) => {
                eprintln!(
                    "client {cid} request {r}: status {} after {received} samples",
                    o.status
                );
                out.errors += 1;
            }
            Err(e) => {
                eprintln!("client {cid} request {r}: {e}");
                out.errors += 1;
                return out;
            }
        }
    }
    out
}

/// The `--obs-bench` harness: the same read-only load against freshly
/// started in-process servers — observability cold (tracing off,
/// slow-log rings off, no time-series recorder, no profiler; the
/// metrics counters still run, as they always do) and hot (every
/// request traced, always-on slow-log rings, a fast-cadence recorder,
/// and worker-state sampling). The achieved samples/sec ratio is the
/// measured end-to-end overhead of the full instrumentation stack.
/// Phases are interleaved off/on and the ratio is best-of per side
/// (instrumentation cost is a floor effect; peak-vs-peak cancels
/// scheduler and frequency noise), with the per-phase spread reported
/// alongside so the noise floor is visible in the JSON. Exits the
/// process with the bench outcome.
#[allow(clippy::too_many_arguments)]
fn run_obs_bench(
    cfg: ClientConfig,
    clients_n: usize,
    requests: usize,
    t: u64,
    l: f64,
    algorithm: Option<Algorithm>,
    algo_str: &str,
    shards: u32,
    domain: f64,
    out_path: &str,
) -> ! {
    let dataset = 1u64;
    let phase = |hot: bool| -> (f64, u64) {
        // Identical dataset per phase (same generator seeds).
        let mut gen = PointGen::new(0x0B5_BE7C4, domain);
        let r: Vec<Point> = (0..20_000).map(|_| gen.point()).collect();
        let s: Vec<Point> = (0..20_000).map(|_| gen.point()).collect();
        let mut registry = DatasetRegistry::new();
        registry.register(dataset, r, s);
        // Off: every optional observability layer disabled. On: the
        // full stack — per-request tracing, always-on slow-log rings
        // with auto (p99) thresholding, a 100 ms recorder cadence
        // (10x the default, so short phases still exercise it), and
        // worker-state sampling.
        let config = if hot {
            ServerConfig {
                trace_sample_rate: 1.0,
                slow_log_capacity: 64,
                slow_threshold_ns: 0,
                timeseries_cadence_ms: 100,
                profiler: true,
                ..ServerConfig::default()
            }
        } else {
            ServerConfig {
                trace_sample_rate: 0.0,
                slow_log_capacity: 0,
                timeseries_cadence_ms: 0,
                profiler: false,
                ..ServerConfig::default()
            }
        };
        let mut server =
            Server::start("127.0.0.1:0", registry, config).expect("bind obs-bench server");
        let addr = server.local_addr().to_string();
        // Warm the engine cache so neither phase times the index build.
        if let Ok(mut c) = Client::connect_with(addr.as_str(), cfg) {
            let _ = c.sample(SampleRequest {
                req_id: 0,
                dataset,
                l,
                algorithm,
                shards,
                t: 1,
                seed: 1,
            });
        }
        let wall_start = Instant::now();
        let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
            let addr = &addr;
            let handles: Vec<_> = (0..clients_n)
                .map(|cid| {
                    scope.spawn(move || {
                        run_client(
                            cid, addr, cfg, requests, t, dataset, l, algorithm, shards, 0, 1,
                            domain,
                        )
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let wall = wall_start.elapsed();
        if hot {
            // Exercise the export surfaces once while hot, so the bench
            // also covers the scrape path end to end.
            if let Ok(mut c) = Client::connect_with(addr.as_str(), cfg) {
                if let Ok(text) = c.metrics() {
                    assert!(
                        text.contains("srj_requests_total"),
                        "hot-phase METRICS exposition is missing request counters"
                    );
                }
            }
        }
        server.shutdown();
        let total: u64 = outcomes.iter().map(|o| o.samples).sum();
        let errors: u64 = outcomes.iter().map(|o| o.errors).sum();
        if errors > 0 || total == 0 {
            eprintln!("obs-bench phase failed: {errors} errors, {total} samples");
            std::process::exit(1);
        }
        (total as f64 / wall.as_secs_f64().max(1e-9), total)
    };

    eprintln!(
        "# obs-bench: {clients_n} clients x {requests} reqs x {t} samples, \
         observability off vs on (trace 1.0 + slow-log + recorder + profiler)"
    );
    // Interleaved off/on phase pairs, best rate per side: the phases
    // are short and the interesting signal (instrumentation cost) is
    // a *floor* effect, so peak-vs-peak cancels the scheduler and
    // frequency noise that dominates single-run deltas on a shared
    // 1-core box. Five pairs (up from three in PR 6) because the
    // observed round-to-round spread exceeded the effect size; the
    // per-phase rates and their spread go into the JSON so a reader
    // can judge the noise floor against the reported ratio.
    const ROUNDS: usize = 5;
    let mut off_rates = Vec::with_capacity(ROUNDS);
    let mut on_rates = Vec::with_capacity(ROUNDS);
    let mut total = 0u64;
    for round in 0..ROUNDS {
        let (off, n) = phase(false);
        let (on, _) = phase(true);
        eprintln!("# round {round}: off {off:.0} samples/s, on {on:.0} samples/s");
        off_rates.push(off);
        on_rates.push(on);
        total = n;
    }
    let best = |rates: &[f64]| rates.iter().copied().fold(0.0f64, f64::max);
    let spread_pct = |rates: &[f64]| {
        let hi = best(rates);
        let lo = rates.iter().copied().fold(f64::INFINITY, f64::min);
        (hi - lo) / hi.max(1e-9) * 100.0
    };
    let fmt_rates = |rates: &[f64]| {
        let items: Vec<String> = rates.iter().map(|r| format!("{r:.0}")).collect();
        format!("[{}]", items.join(", "))
    };
    let off_rate = best(&off_rates);
    let on_rate = best(&on_rates);
    // on/off throughput: 1.0 = free, 0.95 = 5% overhead.
    let measured_ratio = on_rate / off_rate.max(1e-9);

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"pr\": 8,").unwrap();
    writeln!(json, "  \"host_cores\": {},", host_cores()).unwrap();
    writeln!(
        json,
        "  \"workload\": {{\"clients\": {clients_n}, \"requests_per_client\": {requests}, \
         \"t\": {t}, \"dataset\": {dataset}, \"l\": {l}, \"algorithm\": \"{algo_str}\", \
         \"shards\": {shards}, \"hot\": {{\"trace_sample_rate\": 1.0, \
         \"slow_log_capacity\": 64, \"timeseries_cadence_ms\": 100, \"profiler\": true}}}},"
    )
    .unwrap();
    writeln!(json, "  \"rounds\": {ROUNDS},").unwrap();
    writeln!(json, "  \"total_samples_per_phase\": {total},").unwrap();
    writeln!(
        json,
        "  \"samples_per_sec_off_phases\": {},",
        fmt_rates(&off_rates)
    )
    .unwrap();
    writeln!(
        json,
        "  \"samples_per_sec_on_phases\": {},",
        fmt_rates(&on_rates)
    )
    .unwrap();
    writeln!(json, "  \"off_spread_pct\": {:.2},", spread_pct(&off_rates)).unwrap();
    writeln!(json, "  \"on_spread_pct\": {:.2},", spread_pct(&on_rates)).unwrap();
    writeln!(json, "  \"samples_per_sec_off\": {off_rate:.0},").unwrap();
    writeln!(json, "  \"samples_per_sec_on\": {on_rate:.0},").unwrap();
    writeln!(
        json,
        "  \"overhead_pct\": {:.2},",
        (1.0 - measured_ratio) * 100.0
    )
    .unwrap();
    writeln!(json, "  \"measured_ratio\": {measured_ratio:.4}").unwrap();
    writeln!(json, "}}").unwrap();
    print!("{json}");
    if let Err(e) = std::fs::write(out_path, &json) {
        eprintln!("warning: could not write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("# wrote {out_path}");
    std::process::exit(0);
}

/// In-process A/B of the buffered draw fast path: identical servers
/// and workloads, differing only in [`ServerConfig::buffers`] — off
/// serves every draw through the legacy stream (per-draw virtual RNG
/// dispatch, per-item accounting), on serves whole batches through
/// the monomorphised cursor path with per-cell sample buffers.
///
/// Untimed warm-up phase pairs run the full workload first and repeat
/// until back-to-back rates per side settle within 10% (max 3 pairs),
/// so the timed rounds never pay cold caches, page-cache misses, or
/// CPU-frequency ramp. Each timed round runs the two sides
/// back-to-back and the reported `speedup` is the **median of the
/// per-round paired ratios**: pairing cancels the box-speed drift
/// that dominates a shared machine (a round where the host runs fast
/// runs *both* sides fast), and the median discards the occasional
/// outlier round that a best-vs-best comparison would latch onto.
/// The per-round rates and spread still go into the JSON so a reader
/// can judge the noise floor against the reported speedup.
#[allow(clippy::too_many_arguments)]
fn run_buffers_bench(
    cfg: ClientConfig,
    clients_n: usize,
    requests: usize,
    t: u64,
    l: f64,
    algorithm: Option<Algorithm>,
    algo_str: &str,
    shards: u32,
    domain: f64,
    mode: &str,
    out_path: &str,
) -> ! {
    let dataset = 1u64;
    let run_off = mode != "on";
    let run_on = mode != "off";
    let phase = |buffers: bool| -> (f64, u64) {
        // Identical dataset per phase (same generator seeds).
        let mut gen = PointGen::new(0x0B5_BE7C4, domain);
        let r: Vec<Point> = (0..20_000).map(|_| gen.point()).collect();
        let s: Vec<Point> = (0..20_000).map(|_| gen.point()).collect();
        let mut registry = DatasetRegistry::new();
        registry.register(dataset, r, s);
        // The only knob that differs between the sides.
        let config = ServerConfig {
            buffers,
            ..ServerConfig::default()
        };
        let mut server =
            Server::start("127.0.0.1:0", registry, config).expect("bind buffers-bench server");
        let addr = server.local_addr().to_string();
        // Pay the index build outside the clock.
        if let Ok(mut c) = Client::connect_with(addr.as_str(), cfg) {
            let _ = c.sample(SampleRequest {
                req_id: 0,
                dataset,
                l,
                algorithm,
                shards,
                t: 1,
                seed: 1,
            });
        }
        let wall_start = Instant::now();
        let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
            let addr = &addr;
            let handles: Vec<_> = (0..clients_n)
                .map(|cid| {
                    scope.spawn(move || {
                        run_client(
                            cid, addr, cfg, requests, t, dataset, l, algorithm, shards, 0, 1,
                            domain,
                        )
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let wall = wall_start.elapsed();
        server.shutdown();
        let total: u64 = outcomes.iter().map(|o| o.samples).sum();
        let errors: u64 = outcomes.iter().map(|o| o.errors).sum();
        if errors > 0 || total == 0 {
            eprintln!("buffers-bench phase failed: {errors} errors, {total} samples");
            std::process::exit(1);
        }
        (total as f64 / wall.as_secs_f64().max(1e-9), total)
    };

    eprintln!(
        "# buffers-bench ({mode}): {clients_n} clients x {requests} reqs x {t} samples, \
         legacy stream vs buffered batch draw path"
    );
    // Warm-up: a side that is not run reports 0.0 and counts as
    // settled, so single-side modes converge on their own rate alone.
    const WARMUP_MAX: usize = 3;
    let mut warmup_pairs = 0usize;
    let mut prev: Option<(f64, f64)> = None;
    for _ in 0..WARMUP_MAX {
        let off = if run_off { phase(false).0 } else { 0.0 };
        let on = if run_on { phase(true).0 } else { 0.0 };
        warmup_pairs += 1;
        eprintln!("# warm-up {warmup_pairs}: off {off:.0} samples/s, on {on:.0} samples/s");
        let settled = |p: f64, c: f64| p <= 0.0 || c <= 0.0 || (c - p).abs() / c.max(1e-9) < 0.10;
        let done = prev.is_some_and(|(po, pn)| settled(po, off) && settled(pn, on));
        prev = Some((off, on));
        if done {
            break;
        }
    }
    const ROUNDS: usize = 5;
    let mut off_rates = Vec::with_capacity(ROUNDS);
    let mut on_rates = Vec::with_capacity(ROUNDS);
    let mut total = 0u64;
    for round in 0..ROUNDS {
        let off = if run_off {
            let (r, n) = phase(false);
            total = n;
            off_rates.push(r);
            r
        } else {
            0.0
        };
        let on = if run_on {
            let (r, n) = phase(true);
            total = n;
            on_rates.push(r);
            r
        } else {
            0.0
        };
        eprintln!("# round {round}: off {off:.0} samples/s, on {on:.0} samples/s");
    }
    let best = |rates: &[f64]| rates.iter().copied().fold(0.0f64, f64::max);
    let spread_pct = |rates: &[f64]| {
        let hi = best(rates);
        let lo = rates.iter().copied().fold(f64::INFINITY, f64::min);
        (hi - lo) / hi.max(1e-9) * 100.0
    };
    let fmt_rates = |rates: &[f64]| {
        let items: Vec<String> = rates.iter().map(|r| format!("{r:.0}")).collect();
        format!("[{}]", items.join(", "))
    };

    let mut fields: Vec<String> = vec![
        "  \"pr\": 9".to_string(),
        format!("  \"host_cores\": {}", host_cores()),
        format!("  \"mode\": \"{mode}\""),
        format!(
            "  \"workload\": {{\"clients\": {clients_n}, \"requests_per_client\": {requests}, \
             \"t\": {t}, \"dataset\": {dataset}, \"l\": {l}, \"algorithm\": \"{algo_str}\", \
             \"shards\": {shards}}}"
        ),
        format!("  \"warmup_pairs\": {warmup_pairs}"),
        format!("  \"rounds\": {ROUNDS}"),
        format!("  \"total_samples_per_phase\": {total}"),
    ];
    if run_off {
        fields.push(format!(
            "  \"samples_per_sec_unbuffered_phases\": {}",
            fmt_rates(&off_rates)
        ));
        fields.push(format!(
            "  \"unbuffered_spread_pct\": {:.2}",
            spread_pct(&off_rates)
        ));
        fields.push(format!(
            "  \"samples_per_sec_unbuffered\": {:.0}",
            best(&off_rates)
        ));
    }
    if run_on {
        fields.push(format!(
            "  \"samples_per_sec_buffered_phases\": {}",
            fmt_rates(&on_rates)
        ));
        fields.push(format!(
            "  \"buffered_spread_pct\": {:.2}",
            spread_pct(&on_rates)
        ));
        fields.push(format!(
            "  \"samples_per_sec_buffered\": {:.0}",
            best(&on_rates)
        ));
    }
    if run_off && run_on {
        let ratios: Vec<f64> = off_rates
            .iter()
            .zip(&on_rates)
            .map(|(off, on)| on / off.max(1e-9))
            .collect();
        let items: Vec<String> = ratios.iter().map(|r| format!("{r:.4}")).collect();
        fields.push(format!("  \"paired_ratios\": [{}]", items.join(", ")));
        let mut sorted = ratios.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let speedup = sorted[sorted.len() / 2];
        fields.push(format!("  \"speedup\": {speedup:.4}"));
    }
    let json = format!("{{\n{}\n}}\n", fields.join(",\n"));
    print!("{json}");
    if let Err(e) = std::fs::write(out_path, &json) {
        eprintln!("warning: could not write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("# wrote {out_path}");
    std::process::exit(0);
}

/// High-fanout serving bench — the C10k acceptance run for the
/// readiness-based connection layer. Ignores `--addr`; starts one
/// in-process server with a deliberately short idle timeout and runs
/// two phases against it:
///
/// 1. **low fanout** — the plain read workload (`clients_n` hot
///    clients, no standing crowd), the regression gate against the
///    thread-per-connection baseline's samples/sec;
/// 2. **high fanout** — `connections` keepalive connections are
///    opened (handshake only), kept alive by a PING sweep timed to
///    beat the idle reaper, and the *same* hot workload runs through
///    that standing crowd. After the hot load drains, every keepalive
///    connection must still answer a PING: a dead one means the event
///    loop starved it, mis-fired its idle timer, or leaked its state
///    under fanout — exactly the failure modes this layer exists to
///    avoid.
///
/// Writes the PR10 bench JSON with both rates, the sustained
/// connection count, and the event-loop counters scraped via
/// `METRICS`. Exits non-zero on any hot-client error, any keepalive
/// ping failure, or a sustained count below the target.
#[allow(clippy::too_many_arguments)]
fn run_connections_bench(
    cfg: ClientConfig,
    connections: usize,
    clients_n: usize,
    requests: usize,
    t: u64,
    l: f64,
    algorithm: Option<Algorithm>,
    algo_str: &str,
    shards: u32,
    domain: f64,
    out_path: &str,
) -> ! {
    let dataset = 1u64;
    // The fd budget: N keepalive sockets + hot clients + listener +
    // waker + accept headroom, on both ends of the loopback.
    let need = (connections as u64) * 2 + 512;
    match srj_net::rlimit::raise_nofile(need) {
        Ok(soft) if soft < need => eprintln!(
            "warning: RLIMIT_NOFILE soft limit {soft} < wanted {need}; \
             some connections may fail to open"
        ),
        Ok(_) => {}
        Err(e) => eprintln!("warning: could not raise RLIMIT_NOFILE: {e}"),
    }

    // The exact dataset `srj-serve`'s default serves (uniform, scale
    // 0.05, seed 42): the low-fanout phase is then directly comparable
    // to a `srj-serve` + plain-loadgen run of the same workload — the
    // regression gate against the thread-per-connection baseline.
    let d = srj_bench::scaled_spec(srj_datagen::DatasetKind::Uniform, 0.05, 0.5, 42);
    let mut registry = DatasetRegistry::new();
    registry.register(dataset, d.r, d.s);
    // Short idle timeout on purpose: with the PING sweep below at half
    // that period, a reaped keepalive connection is a timer-wheel bug,
    // not a configuration accident.
    const IDLE: Duration = Duration::from_secs(5);
    let config = ServerConfig {
        idle_timeout: IDLE,
        ..ServerConfig::default()
    };
    let mut server =
        Server::start("127.0.0.1:0", registry, config).expect("bind connections-bench server");
    let addr = server.local_addr().to_string();

    // Warm the engine cache so neither phase times the index build.
    if let Ok(mut c) = Client::connect_with(addr.as_str(), cfg) {
        let _ = c.sample(SampleRequest {
            req_id: 0,
            dataset,
            l,
            algorithm,
            shards,
            t: 1,
            seed: 1,
        });
    }

    let hot_phase = |label: &str| -> (f64, u64, u64) {
        let wall_start = Instant::now();
        let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
            let addr = &addr;
            let handles: Vec<_> = (0..clients_n)
                .map(|cid| {
                    scope.spawn(move || {
                        run_client(
                            cid, addr, cfg, requests, t, dataset, l, algorithm, shards, 0, 1,
                            domain,
                        )
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let wall = wall_start.elapsed();
        let total: u64 = outcomes.iter().map(|o| o.samples).sum();
        let errors: u64 = outcomes.iter().map(|o| o.errors).sum();
        let rate = total as f64 / wall.as_secs_f64().max(1e-9);
        eprintln!(
            "# {label}: {total} samples in {:.2}s = {rate:.0}/s ({errors} errors)",
            wall.as_secs_f64()
        );
        (rate, total, errors)
    };

    eprintln!(
        "# connections-bench: {clients_n} hot clients x {requests} reqs x {t} samples, \
         {connections} keepalive connections (idle timeout {:?})",
        IDLE
    );
    let (low_rate, low_total, low_errors) = hot_phase("low-fanout phase");

    // Open the standing crowd. Connect failures are counted, not
    // fatal here — the sustained-count gate at the end decides.
    let mut keepalive: Vec<Client> = Vec::with_capacity(connections);
    let mut connect_failures = 0u64;
    for k in 0..connections {
        match Client::connect_with(addr.as_str(), cfg) {
            Ok(c) => keepalive.push(c),
            Err(e) => {
                if connect_failures == 0 {
                    eprintln!("keepalive connect {k} failed: {e}");
                }
                connect_failures += 1;
            }
        }
    }
    let opened = keepalive.len();
    eprintln!("# opened {opened}/{connections} keepalive connections");

    // PING sweep at half the idle timeout: every connection stays
    // legitimately alive, so any reap is the server's mistake. The
    // sweeper owns the crowd while the hot phase runs and hands it
    // back (with its failure count) for the final liveness check.
    let stop = std::sync::atomic::AtomicBool::new(false);
    let sweep_every = IDLE / 2;
    let ((high_rate, high_total, high_errors), (mut keepalive, sweep_failures)) =
        std::thread::scope(|scope| {
            let stop = &stop;
            let sweeper = scope.spawn(move || {
                let mut failures = 0u64;
                let mut last = Instant::now();
                // First sweep immediately: proves the crowd is live
                // before the hot load starts competing for the core.
                loop {
                    for c in keepalive.iter_mut() {
                        if c.ping().is_err() {
                            failures += 1;
                        }
                    }
                    while last.elapsed() < sweep_every {
                        if stop.load(std::sync::atomic::Ordering::Relaxed) {
                            return (keepalive, failures);
                        }
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    last = Instant::now();
                }
            });
            let hot = hot_phase("high-fanout phase");
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            (hot, sweeper.join().unwrap())
        });

    // Final liveness check: every opened connection must still answer.
    let mut sustained = 0usize;
    for c in keepalive.iter_mut() {
        if c.ping().is_ok() {
            sustained += 1;
        }
    }
    eprintln!("# sustained {sustained}/{opened} keepalive connections after hot load");

    // Scrape the event-loop counters while the crowd is still open so
    // `srj_conn_open` reflects the standing fanout.
    let (conn_open, wakeups, reaped) = Client::connect_with(addr.as_str(), cfg)
        .ok()
        .and_then(|mut c| c.metrics().ok())
        .map(|text| {
            (
                metric_value(&text, "srj_conn_open"),
                metric_value(&text, "srj_event_loop_wakeups_total"),
                metric_value(&text, "srj_conn_reaped"),
            )
        })
        .unwrap_or((-1.0, -1.0, -1.0));
    drop(keepalive);
    server.shutdown();

    let ratio = high_rate / low_rate.max(1e-9);
    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"pr\": 10,").unwrap();
    writeln!(json, "  \"host_cores\": {},", host_cores()).unwrap();
    writeln!(
        json,
        "  \"workload\": {{\"clients\": {clients_n}, \"requests_per_client\": {requests}, \
         \"t\": {t}, \"dataset\": {dataset}, \"l\": {l}, \"algorithm\": \"{algo_str}\", \
         \"shards\": {shards}, \"idle_timeout_s\": {}, \"ping_sweep_s\": {}}},",
        IDLE.as_secs(),
        sweep_every.as_secs_f64(),
    )
    .unwrap();
    writeln!(json, "  \"connections_target\": {connections},").unwrap();
    writeln!(json, "  \"connections_opened\": {opened},").unwrap();
    writeln!(json, "  \"connections_sustained\": {sustained},").unwrap();
    writeln!(json, "  \"connect_failures\": {connect_failures},").unwrap();
    writeln!(json, "  \"keepalive_ping_failures\": {sweep_failures},").unwrap();
    writeln!(json, "  \"samples_low_fanout\": {low_total},").unwrap();
    writeln!(json, "  \"samples_per_sec_low_fanout\": {low_rate:.0},").unwrap();
    writeln!(json, "  \"samples_high_fanout\": {high_total},").unwrap();
    writeln!(json, "  \"samples_per_sec_high_fanout\": {high_rate:.0},").unwrap();
    writeln!(json, "  \"high_over_low_ratio\": {ratio:.4},").unwrap();
    writeln!(json, "  \"errors\": {},", low_errors + high_errors).unwrap();
    writeln!(json, "  \"srj_conn_open\": {conn_open:.0},").unwrap();
    writeln!(json, "  \"srj_conn_reaped\": {reaped:.0},").unwrap();
    writeln!(json, "  \"srj_event_loop_wakeups_total\": {wakeups:.0}").unwrap();
    writeln!(json, "}}").unwrap();
    print!("{json}");
    if let Err(e) = std::fs::write(out_path, &json) {
        eprintln!("warning: could not write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("# wrote {out_path}");

    let hot_failed = low_errors + high_errors > 0 || low_total == 0 || high_total == 0;
    if hot_failed {
        eprintln!("connections-bench: hot clients saw errors");
        std::process::exit(1);
    }
    if sweep_failures > 0 || sustained < connections {
        eprintln!(
            "connections-bench: keepalive crowd degraded \
             ({sweep_failures} sweep failures, {sustained}/{connections} sustained)"
        );
        std::process::exit(1);
    }
    std::process::exit(0);
}

#[allow(clippy::too_many_arguments)]
fn run_client(
    cid: usize,
    addr: &str,
    cfg: ClientConfig,
    requests: usize,
    t: u64,
    dataset: u64,
    l: f64,
    algorithm: Option<Algorithm>,
    shards: u32,
    update_every: usize,
    update_batch: usize,
    domain: f64,
) -> ClientOutcome {
    let mut out = ClientOutcome::default();
    let mut client = match Client::connect_with(addr, cfg) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("client {cid}: connect failed: {e}");
            out.errors += 1;
            return out;
        }
    };
    let mut gen = PointGen::new(0xC11E_4400 + cid as u64, domain);
    // Ids this client inserted and may later delete, tagged with the
    // epoch they were assigned in (a rebuild renumbers ids, so stale
    // epochs are discarded rather than deleting arbitrary points).
    let mut pending_deletes: Vec<(Side, u32, u64)> = Vec::new();
    let mut update_no = 0usize;
    for r in 0..requests {
        let is_update = update_every > 0 && (r + 1) % update_every == 0;
        if is_update {
            update_no += 1;
            let side = if update_no.is_multiple_of(2) {
                Side::S
            } else {
                Side::R
            };
            let start = Instant::now();
            // Alternate insert/delete once enough inserted ids are
            // banked, so the dataset size stays roughly stable.
            let result = if update_no.is_multiple_of(4) {
                // Confirm the banked ids are still addressable before
                // sending: a concurrent client's inserts may have
                // crossed the rebuild threshold (or tripped a re-plan)
                // and renumbered everything, in which case the banked
                // ids would tombstone arbitrary points.
                let current_epoch = match client.epoch(dataset) {
                    Ok((RequestStatus::Ok, info)) => info.epoch,
                    _ => u64::MAX, // discard everything below
                };
                pending_deletes.retain(|(_, _, e)| *e == current_epoch);
                if pending_deletes.len() < update_batch {
                    // Not enough surviving ids (e.g. an epoch swap just
                    // discarded the bank): insert a fresh batch in the
                    // current epoch so the delete always has valid
                    // targets and the DELETE path is always exercised.
                    let points: Vec<Point> = (0..update_batch).map(|_| gen.point()).collect();
                    if let Ok(o) = client.insert(dataset, side, &points) {
                        if o.status == RequestStatus::Ok {
                            out.inserted_points += o.applied as u64;
                            pending_deletes.retain(|(_, _, e)| *e == o.epoch);
                            for k in 0..o.applied {
                                pending_deletes.push((side, o.first_id + k, o.epoch));
                            }
                        }
                    }
                }
                let take = pending_deletes.len().min(update_batch);
                let batch: Vec<(Side, u32, u64)> = pending_deletes.drain(..take).collect();
                out.delete_frames += u64::from(batch.iter().any(|(s, _, _)| *s == Side::R))
                    + u64::from(batch.iter().any(|(s, _, _)| *s == Side::S));
                let mut applied = 0;
                let mut failed = false;
                for del_side in [Side::R, Side::S] {
                    let ids: Vec<u32> = batch
                        .iter()
                        .filter(|(s, _, _)| *s == del_side)
                        .map(|(_, id, _)| *id)
                        .collect();
                    if ids.is_empty() {
                        continue;
                    }
                    match client.delete(dataset, del_side, &ids) {
                        Ok(o) if o.status == RequestStatus::Ok => {
                            applied += o.applied as u64;
                            // A bumped epoch invalidates banked ids —
                            // including the not-yet-sent other side of
                            // this very batch (the server skipped the
                            // now-stale ids anyway; `applied` tells us).
                            pending_deletes.retain(|(_, _, e)| *e == o.epoch);
                            if o.epoch != current_epoch {
                                break;
                            }
                        }
                        Ok(o) => {
                            eprintln!("client {cid} delete: status {}", o.status);
                            failed = true;
                        }
                        Err(e) => {
                            eprintln!("client {cid} delete: {e}");
                            failed = true;
                        }
                    }
                }
                out.deleted_points += applied;
                !failed
            } else {
                let points: Vec<Point> = (0..update_batch).map(|_| gen.point()).collect();
                match client.insert(dataset, side, &points) {
                    Ok(o) if o.status == RequestStatus::Ok => {
                        pending_deletes.retain(|(_, _, e)| *e == o.epoch);
                        for k in 0..o.applied {
                            pending_deletes.push((side, o.first_id + k, o.epoch));
                        }
                        out.inserted_points += o.applied as u64;
                        true
                    }
                    Ok(o) => {
                        eprintln!("client {cid} insert: status {}", o.status);
                        false
                    }
                    Err(e) => {
                        eprintln!("client {cid} insert: {e}");
                        false
                    }
                }
            };
            if result {
                out.update_latencies_ns
                    .push(start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
            } else {
                out.errors += 1;
            }
            continue;
        }
        // Nonzero seed ⇒ reproducible per-slot streams.
        let seed = 1 + (cid * requests + r) as u64;
        let start = Instant::now();
        let mut received = 0u64;
        let outcome = client.sample_with(
            SampleRequest {
                req_id: 0,
                dataset,
                l,
                algorithm,
                shards,
                t,
                seed,
            },
            |batch| received += batch.len() as u64,
        );
        let elapsed = start.elapsed();
        match outcome {
            Ok(o) if o.status == RequestStatus::Ok && received == t => {
                out.samples += received;
                out.latencies_ns
                    .push(elapsed.as_nanos().min(u128::from(u64::MAX)) as u64);
            }
            Ok(o) => {
                eprintln!(
                    "client {cid} request {r}: status {} after {received} samples",
                    o.status
                );
                out.errors += 1;
            }
            Err(e) => {
                eprintln!("client {cid} request {r}: {e}");
                out.errors += 1;
                return out;
            }
        }
    }
    out
}

/// Read-only control dataset for the chaos soak's chi-squared check:
/// small enough to brute-force the exact join client-side, dense
/// enough that every joinable pair expects well over five draws.
const CTL_DATASET: u64 = 1_000;
const CTL_L: f64 = 25.0;

fn control_points() -> (Vec<Point>, Vec<Point>) {
    let mut gen = PointGen::new(0xC7_1000, 100.0);
    let r: Vec<Point> = (0..50).map(|_| gen.point()).collect();
    let s: Vec<Point> = (0..50).map(|_| gen.point()).collect();
    (r, s)
}

/// The value of an unlabeled `name value` series in a Prometheus text
/// exposition (0 when absent).
fn metric_value(text: &str, name: &str) -> f64 {
    text.lines()
        .find_map(|line| {
            let rest = line.strip_prefix(name)?;
            rest.strip_prefix(' ')?.trim().parse::<f64>().ok()
        })
        .unwrap_or(0.0)
}

/// Current live `|S'|` of a dataset, via a (retried) `EPOCH` probe.
fn probe_live(client: &mut Client, dataset: u64) -> Option<u64> {
    match client.epoch(dataset) {
        Ok((RequestStatus::Ok, info)) => Some(info.live_s),
        _ => None,
    }
}

#[derive(Default)]
struct ChaosOutcome {
    samples: u64,
    retries: u64,
    busy: u64,
    errors: u64,
    /// Ledger disagreements: the server's live count ended up somewhere
    /// the client's mutation history cannot explain — a mutation was
    /// lost or applied twice.
    lost: u64,
}

/// One chaos client: sole mutator of its own dataset, alternating
/// insert/delete batches with reads, keeping a ledger of the live `S`
/// count the server *must* report. `AmbiguousMutation` (a retry the
/// client could not prove safe) is resolved the way a real
/// application-level protocol would: probe the authoritative count and
/// accept only the two states the ambiguous op can explain.
fn run_chaos_client(
    cid: usize,
    addr: &str,
    cfg: ClientConfig,
    rounds: usize,
    t: u64,
) -> ChaosOutcome {
    const BATCH: usize = 32;
    let dataset = cid as u64 + 1;
    let mut out = ChaosOutcome::default();
    let mut client = match Client::connect_with(addr, cfg) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("chaos client {cid}: connect failed: {e}");
            out.errors += 1;
            return out;
        }
    };
    let mut expected = match probe_live(&mut client, dataset) {
        Some(v) => v,
        None => {
            eprintln!("chaos client {cid}: initial EPOCH probe failed");
            out.errors += 1;
            return out;
        }
    };
    let mut gen = PointGen::new(0x50A4_D00D + cid as u64, 10_000.0);
    for r in 0..rounds {
        if r % 3 == 2 && expected > 2 * BATCH as u64 {
            // Delete a batch of currently live ids. `applied` can fall
            // short of the batch when a concurrent fold renumbered the
            // id space — the ledger tracks applied, not attempted.
            match probe_live(&mut client, dataset) {
                Some(live) if live > BATCH as u64 => {
                    let start = (r as u64 * 97) % (live - BATCH as u64);
                    let ids: Vec<u32> = (0..BATCH as u64).map(|k| (start + k) as u32).collect();
                    match client.delete(dataset, Side::S, &ids) {
                        Ok(o) if o.status == RequestStatus::Ok => {
                            expected -= u64::from(o.applied);
                        }
                        Ok(o) => {
                            eprintln!("chaos client {cid} delete: status {}", o.status);
                            out.errors += 1;
                        }
                        Err(ClientError::AmbiguousMutation) => {
                            match probe_live(&mut client, dataset) {
                                // Anywhere in [expected - BATCH, expected]
                                // is explained by a partially-stale batch
                                // applied zero or one times; resync.
                                Some(live)
                                    if live <= expected && live + BATCH as u64 >= expected =>
                                {
                                    expected = live;
                                }
                                Some(live) => {
                                    eprintln!(
                                        "chaos client {cid}: ambiguous delete left live {live}, \
                                         ledger {expected}"
                                    );
                                    out.lost += 1;
                                }
                                None => out.errors += 1,
                            }
                        }
                        Err(e) => {
                            eprintln!("chaos client {cid} delete: {e}");
                            out.errors += 1;
                        }
                    }
                }
                Some(_) => {}
                None => out.errors += 1,
            }
        } else {
            let points: Vec<Point> = (0..BATCH).map(|_| gen.point()).collect();
            match client.insert(dataset, Side::S, &points) {
                Ok(o) if o.status == RequestStatus::Ok => {
                    expected += u64::from(o.applied);
                }
                Ok(o) => {
                    eprintln!("chaos client {cid} insert: status {}", o.status);
                    out.errors += 1;
                }
                Err(ClientError::AmbiguousMutation) => match probe_live(&mut client, dataset) {
                    // Inserts apply atomically: applied once or not at
                    // all — any other count is a lost/doubled mutation.
                    Some(live) if live == expected + BATCH as u64 || live == expected => {
                        expected = live;
                    }
                    Some(live) => {
                        eprintln!(
                            "chaos client {cid}: ambiguous insert left live {live}, \
                             ledger {expected}"
                        );
                        out.lost += 1;
                    }
                    None => out.errors += 1,
                },
                Err(e) => {
                    eprintln!("chaos client {cid} insert: {e}");
                    out.errors += 1;
                }
            }
        }
        // A read between every mutation — full-buffer `sample` retries
        // freely (idempotent), so faults cost latency, not correctness.
        let seed = 1 + (cid * rounds + r) as u64;
        match client.sample(SampleRequest {
            req_id: 0,
            dataset,
            l: 100.0,
            algorithm: None,
            shards: 1,
            t,
            seed,
        }) {
            Ok(o) if o.status == RequestStatus::Ok => out.samples += o.pairs.len() as u64,
            Ok(o) => {
                eprintln!("chaos client {cid} round {r}: status {}", o.status);
                out.errors += 1;
            }
            Err(e) => {
                eprintln!("chaos client {cid} round {r}: {e}");
                out.errors += 1;
            }
        }
    }
    // Final convergence check: the server must agree exactly with the
    // sole mutator's ledger once all ambiguity has been resolved.
    match probe_live(&mut client, dataset) {
        Some(live) if live == expected => {}
        Some(live) => {
            eprintln!("chaos client {cid}: final live {live} != ledger {expected}");
            out.lost += 1;
        }
        None => {
            eprintln!("chaos client {cid}: final EPOCH probe failed");
            out.errors += 1;
        }
    }
    out.retries = client.retries();
    out.busy = client.busy_answers();
    out
}

struct ChaosPhase {
    samples_per_sec: f64,
    samples: u64,
    retries: u64,
    busy: u64,
    errors: u64,
    lost: u64,
    shed: u64,
    rate_limited: u64,
    reaped: u64,
    /// `(pairs, draws, statistic, threshold, pass)` when the phase ran
    /// the chi-squared uniformity check.
    chi2: Option<(usize, u64, f64, f64, bool)>,
}

/// The `--chaos` soak (see USAGE). Runs the identical mutating
/// workload twice — faults off, then the seeded fault plan — and holds
/// the faulted run to the same correctness bar plus evidence that the
/// hardening machinery actually fired.
fn run_chaos(
    base_cfg: ClientConfig,
    clients: usize,
    requests: usize,
    t: u64,
    fault_seed: u64,
    out_path: &str,
) -> ! {
    let clients_n = clients.clamp(2, 8);
    let rounds = requests.max(40);
    let t = t.clamp(200, 2_000);
    // Aggressive retry posture: the soak's job is to converge through
    // faults, not to report them.
    let chaos_cfg = ClientConfig {
        retries: 20,
        backoff_base: Duration::from_millis(2),
        backoff_max: Duration::from_millis(50),
        ..base_cfg
    };

    let phase = |plan: FaultPlan, idle_timeout_ms: u64, shed_hw: usize| -> ChaosPhase {
        // Identical datasets per phase: one private dataset per client
        // (ids 1..=clients) plus the read-only chi-squared control.
        let mut registry = DatasetRegistry::new();
        for cid in 0..clients_n {
            let mut gen = PointGen::new(0xC4A0_5000 + cid as u64, 10_000.0);
            let r: Vec<Point> = (0..4_000).map(|_| gen.point()).collect();
            let s: Vec<Point> = (0..4_000).map(|_| gen.point()).collect();
            registry.register(cid as u64 + 1, r, s);
        }
        let (ctl_r, ctl_s) = control_points();
        registry.register(CTL_DATASET, ctl_r.clone(), ctl_s.clone());
        let faulted = plan.is_active();
        let config = ServerConfig {
            fault_plan: plan,
            idle_timeout: Duration::from_millis(idle_timeout_ms),
            shed_high_water: shed_hw,
            ..ServerConfig::default()
        };
        let mut server = Server::start("127.0.0.1:0", registry, config).expect("bind chaos server");
        let addr = server.local_addr().to_string();
        // A connection that speaks once and then goes quiet: under an
        // idle deadline the maintainer must reap it (srj_conn_reaped).
        let mut idle_client = Client::connect_with(addr.as_str(), chaos_cfg).ok();
        if let Some(c) = idle_client.as_mut() {
            let _ = c.ping();
        }
        let idle_since = Instant::now();

        let wall_start = Instant::now();
        let outcomes: Vec<ChaosOutcome> = std::thread::scope(|scope| {
            let addr = &addr;
            let handles: Vec<_> = (0..clients_n)
                .map(|cid| {
                    let cfg = ClientConfig {
                        jitter_seed: cid as u64 + 1,
                        ..chaos_cfg
                    };
                    scope.spawn(move || run_chaos_client(cid, addr, cfg, rounds, t))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let wall = wall_start.elapsed();

        // Chi-squared uniformity of the sample stream *under faults*:
        // retries and reassembly must not bias which pairs come back.
        let chi2 = faulted.then(|| {
            let mut pair_index = std::collections::HashMap::new();
            for (ri, rp) in ctl_r.iter().enumerate() {
                let w = srj_geom::Rect::window(*rp, CTL_L);
                for (si, sp) in ctl_s.iter().enumerate() {
                    if w.contains(*sp) {
                        let k = pair_index.len();
                        pair_index.insert((ri as u32, si as u32), k);
                    }
                }
            }
            let j = pair_index.len();
            assert!(j > 20, "degenerate control join ({j} pairs)");
            let target = (60 * j as u64).clamp(20_000, 200_000);
            let mut counts = vec![0u64; j];
            let mut drawn = 0u64;
            let mut sound = true;
            let mut c = Client::connect_with(addr.as_str(), chaos_cfg).expect("chi2 client");
            for round in 0.. {
                if drawn >= target || round > 400 {
                    break;
                }
                let want = (target - drawn).min(2_000);
                match c.sample(SampleRequest {
                    req_id: 0,
                    dataset: CTL_DATASET,
                    l: CTL_L,
                    algorithm: None,
                    shards: 1,
                    t: want,
                    seed: 0xC210 + round,
                }) {
                    Ok(o) if o.status == RequestStatus::Ok => {
                        for p in &o.pairs {
                            match pair_index.get(&(p.r, p.s)) {
                                Some(&k) => counts[k] += 1,
                                // A pair outside the exact join is a
                                // correctness failure, not noise.
                                None => sound = false,
                            }
                        }
                        drawn += o.pairs.len() as u64;
                    }
                    _ => {
                        sound = false;
                        break;
                    }
                }
            }
            let e = drawn as f64 / j as f64;
            let stat: f64 = counts
                .iter()
                .map(|&c| {
                    let d = c as f64 - e;
                    d * d / e
                })
                .sum();
            let df = (j - 1) as f64;
            // ~6 sigma above the chi-squared mean: essentially never
            // trips on a uniform sampler, catches gross bias.
            let threshold = df + 6.0 * (2.0 * df).sqrt();
            (
                j,
                drawn,
                stat,
                threshold,
                sound && drawn >= target && stat <= threshold,
            )
        });

        // Give the maintainer room to reap the idle connection: the
        // acceptance bound is 2x the idle deadline.
        if idle_timeout_ms > 0 {
            let deadline = Duration::from_millis(idle_timeout_ms * 2);
            let since = idle_since.elapsed();
            if since < deadline {
                std::thread::sleep(deadline - since);
            }
            std::thread::sleep(Duration::from_millis(200));
        }
        let metrics = server.metrics_text();
        drop(idle_client);
        server.shutdown();

        ChaosPhase {
            samples_per_sec: outcomes.iter().map(|o| o.samples).sum::<u64>() as f64
                / wall.as_secs_f64().max(1e-9),
            samples: outcomes.iter().map(|o| o.samples).sum(),
            retries: outcomes.iter().map(|o| o.retries).sum(),
            busy: outcomes.iter().map(|o| o.busy).sum(),
            errors: outcomes.iter().map(|o| o.errors).sum(),
            lost: outcomes.iter().map(|o| o.lost).sum(),
            shed: metric_value(&metrics, "srj_requests_shed") as u64,
            rate_limited: metric_value(&metrics, "srj_rate_limited") as u64,
            reaped: metric_value(&metrics, "srj_conn_reaped") as u64,
            chi2,
        }
    };

    eprintln!(
        "# chaos: {clients_n} clients x {rounds} rounds x {t} samples, \
         faults off then on (seed {fault_seed})"
    );
    let off = phase(FaultPlan::inert(), 0, 0);
    eprintln!(
        "# faults off: {:.0} samples/s, {} errors",
        off.samples_per_sec, off.errors
    );
    let plan = FaultPlan {
        seed: fault_seed,
        delay_read_prob: 0.05,
        delay_read_ms: 2,
        partial_write_prob: 0.03,
        truncate_frame_prob: 0.015,
        drop_conn_prob: 0.015,
        busy_prob: 0.05,
        busy_retry_after_ms: 5,
    };
    let on = phase(plan, 300, 2);
    let ratio = on.samples_per_sec / off.samples_per_sec.max(1e-9);
    eprintln!(
        "# faults on: {:.0} samples/s (ratio {ratio:.2}), {} retries, {} busy, \
         {} shed, {} reaped, {} errors, {} lost",
        on.samples_per_sec, on.retries, on.busy, on.shed, on.reaped, on.errors, on.lost
    );

    let mut failures: Vec<String> = Vec::new();
    for (label, p) in [("faults_off", &off), ("faults_on", &on)] {
        if p.lost > 0 {
            failures.push(format!("{label}: {} lost mutations", p.lost));
        }
        if p.errors > 0 {
            failures.push(format!("{label}: {} unconverged operations", p.errors));
        }
        if p.samples == 0 {
            failures.push(format!("{label}: no samples delivered"));
        }
    }
    if ratio < 0.35 {
        failures.push(format!(
            "faulted throughput collapsed: ratio {ratio:.2} < 0.35"
        ));
    }
    if on.reaped == 0 {
        failures.push("no idle connection was reaped under the idle deadline".into());
    }
    if on.retries + on.busy == 0 {
        failures.push("fault plan produced zero retry/BUSY activity".into());
    }
    match on.chi2 {
        Some((_, _, stat, threshold, pass)) if !pass => {
            failures.push(format!(
                "chi-squared uniformity failed under faults: {stat:.1} > {threshold:.1} \
                 (or non-join pairs / short draw)"
            ));
        }
        None => failures.push("chi-squared check did not run".into()),
        _ => {}
    }

    let (chi_pairs, chi_draws, chi_stat, chi_threshold, chi_pass) =
        on.chi2.unwrap_or((0, 0, 0.0, 0.0, false));
    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"pr\": 7,").unwrap();
    writeln!(json, "  \"host_cores\": {},", host_cores()).unwrap();
    writeln!(
        json,
        "  \"workload\": {{\"clients\": {clients_n}, \"rounds_per_client\": {rounds}, \
         \"t\": {t}, \"insert_batch\": 32, \"fault_seed\": {fault_seed}}},"
    )
    .unwrap();
    writeln!(
        json,
        "  \"fault_plan\": {{\"delay_read_prob\": {}, \"delay_read_ms\": {}, \
         \"partial_write_prob\": {}, \"truncate_frame_prob\": {}, \"drop_conn_prob\": {}, \
         \"busy_prob\": {}, \"busy_retry_after_ms\": {}}},",
        plan.delay_read_prob,
        plan.delay_read_ms,
        plan.partial_write_prob,
        plan.truncate_frame_prob,
        plan.drop_conn_prob,
        plan.busy_prob,
        plan.busy_retry_after_ms
    )
    .unwrap();
    for (label, p) in [("faults_off", &off), ("faults_on", &on)] {
        writeln!(
            json,
            "  \"{label}\": {{\"samples_per_sec\": {:.0}, \"samples\": {}, \"retries\": {}, \
             \"busy_answers\": {}, \"requests_shed\": {}, \"rate_limited\": {}, \
             \"conns_reaped\": {}, \"errors\": {}, \"lost_mutations\": {}}},",
            p.samples_per_sec,
            p.samples,
            p.retries,
            p.busy,
            p.shed,
            p.rate_limited,
            p.reaped,
            p.errors,
            p.lost
        )
        .unwrap();
    }
    writeln!(json, "  \"throughput_ratio\": {ratio:.4},").unwrap();
    writeln!(
        json,
        "  \"chi2\": {{\"pairs\": {chi_pairs}, \"draws\": {chi_draws}, \
         \"statistic\": {chi_stat:.2}, \"threshold\": {chi_threshold:.2}, \
         \"pass\": {chi_pass}}},"
    )
    .unwrap();
    writeln!(json, "  \"pass\": {}", failures.is_empty()).unwrap();
    writeln!(json, "}}").unwrap();
    print!("{json}");
    if let Err(e) = std::fs::write(out_path, &json) {
        eprintln!("warning: could not write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("# wrote {out_path}");
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("chaos soak failed: {f}");
        }
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7878".to_string();
    let mut clients: usize = 4;
    let mut requests: usize = 8;
    let mut t: u64 = 50_000;
    let mut dataset: u64 = 1;
    let mut l: f64 = 100.0;
    let mut algo_str = "auto".to_string();
    let mut shards: u32 = 1;
    let mut update_fraction: f64 = 0.0;
    let mut update_batch: usize = 256;
    let mut delete_heavy = false;
    let mut obs_bench = false;
    let mut chaos = false;
    let mut buffers_mode: Option<String> = None;
    let mut connections: usize = 0;
    let mut fault_seed: u64 = 7;
    let mut connect_timeout_ms: u64 = 5_000;
    let mut nodelay = true;
    let mut domain: f64 = 10_000.0;
    let mut out_path: Option<String> = None;
    let mut shutdown = false;

    let mut i = 0;
    let value = |args: &[String], i: &mut usize, flag: &str| -> String {
        let Some(v) = args.get(*i + 1) else {
            fail(&format!("{flag} requires a value"));
        };
        *i += 2;
        v.clone()
    };
    macro_rules! parse_flag {
        ($target:ident, $flag:literal, $what:literal) => {
            $target = value(&args, &mut i, $flag)
                .parse()
                .unwrap_or_else(|_| fail(concat!($flag, " takes ", $what)))
        };
    }
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = value(&args, &mut i, "--addr"),
            "--clients" => parse_flag!(clients, "--clients", "an integer"),
            "--requests" => parse_flag!(requests, "--requests", "an integer"),
            "--t" => parse_flag!(t, "--t", "an integer"),
            "--dataset" => parse_flag!(dataset, "--dataset", "an integer"),
            "--l" => parse_flag!(l, "--l", "a float"),
            "--algo" => algo_str = value(&args, &mut i, "--algo"),
            "--shards" => parse_flag!(shards, "--shards", "an integer"),
            "--update-fraction" => {
                parse_flag!(update_fraction, "--update-fraction", "a float")
            }
            "--update-batch" => parse_flag!(update_batch, "--update-batch", "an integer"),
            "--delete-heavy" => {
                delete_heavy = true;
                i += 1;
            }
            "--obs-bench" => {
                obs_bench = true;
                i += 1;
            }
            "--chaos" => {
                chaos = true;
                i += 1;
            }
            "--connections" => parse_flag!(connections, "--connections", "an integer"),
            "--fault-seed" => parse_flag!(fault_seed, "--fault-seed", "an integer"),
            "--buffers" => {
                let v = value(&args, &mut i, "--buffers");
                match v.as_str() {
                    "on" | "off" | "ab" => buffers_mode = Some(v),
                    _ => fail("--buffers takes on, off, or ab"),
                }
            }
            "--connect-timeout-ms" => {
                parse_flag!(connect_timeout_ms, "--connect-timeout-ms", "an integer")
            }
            "--no-nodelay" => {
                nodelay = false;
                i += 1;
            }
            "--domain" => parse_flag!(domain, "--domain", "a float"),
            "--out" => out_path = Some(value(&args, &mut i, "--out")),
            "--shutdown" => {
                shutdown = true;
                i += 1;
            }
            "--help" | "-h" => fail("srj-loadgen"),
            other => fail(&format!("unknown flag {other}")),
        }
    }
    let algorithm = match algo_str.as_str() {
        "auto" => None,
        "kds" => Some(Algorithm::Kds),
        "kds-rejection" => Some(Algorithm::KdsRejection),
        "bbst" => Some(Algorithm::Bbst),
        other => fail(&format!("unknown algorithm {other:?}")),
    };
    if !(0.0..=1.0).contains(&update_fraction) {
        fail("--update-fraction takes a fraction in [0, 1]");
    }
    if delete_heavy && update_fraction > 0.0 {
        fail("--delete-heavy and --update-fraction are mutually exclusive");
    }
    if obs_bench && (delete_heavy || update_fraction > 0.0) {
        fail("--obs-bench runs a pure read workload (no updates)");
    }
    if chaos && (obs_bench || delete_heavy || update_fraction > 0.0) {
        fail("--chaos is its own workload (no --obs-bench/--delete-heavy/--update-fraction)");
    }
    if buffers_mode.is_some() && (chaos || obs_bench || delete_heavy || update_fraction > 0.0) {
        fail("--buffers runs its own pure read A/B (no other workload modes)");
    }
    if connections > 0
        && (buffers_mode.is_some() || chaos || obs_bench || delete_heavy || update_fraction > 0.0)
    {
        fail("--connections runs its own high-fanout read workload (no other workload modes)");
    }
    let cfg = ClientConfig {
        connect_timeout: Duration::from_millis(connect_timeout_ms),
        nodelay,
        ..ClientConfig::default()
    };
    let out_path = out_path.unwrap_or_else(|| {
        if connections > 0 {
            "BENCH_PR10.json".to_string()
        } else if buffers_mode.is_some() {
            "BENCH_PR9.json".to_string()
        } else if chaos {
            "BENCH_PR7.json".to_string()
        } else if obs_bench {
            "BENCH_PR8.json".to_string()
        } else if delete_heavy {
            "BENCH_PR5.json".to_string()
        } else {
            "BENCH_PR3.json".to_string()
        }
    });
    if chaos {
        run_chaos(cfg, clients, requests, t, fault_seed, &out_path);
    }
    if connections > 0 {
        run_connections_bench(
            cfg,
            connections,
            clients.max(1),
            requests,
            t,
            l,
            algorithm,
            &algo_str,
            shards,
            domain,
            &out_path,
        );
    }
    if let Some(mode) = &buffers_mode {
        run_buffers_bench(
            cfg,
            clients.max(1),
            requests,
            t,
            l,
            algorithm,
            &algo_str,
            shards,
            domain,
            mode,
            &out_path,
        );
    }
    if obs_bench {
        run_obs_bench(
            cfg,
            clients.max(1),
            requests,
            t,
            l,
            algorithm,
            &algo_str,
            shards,
            domain,
            &out_path,
        );
    }
    let update_batch = update_batch.max(1);
    let clients_n = clients.max(1);
    // Every k-th operation is an update ⇒ update share ≈ 1/k.
    let update_every = if update_fraction > 0.0 {
        (1.0 / update_fraction).round().max(1.0) as usize
    } else {
        0
    };

    eprintln!(
        "# loadgen: {clients_n} clients x {requests} ops x {t} samples \
         (dataset {dataset}, l {l}, algo {algo_str}, shards {shards}, \
         update-fraction {update_fraction}, delete-heavy {delete_heavy}) -> {addr}"
    );
    let probes = update_every > 0 || delete_heavy;
    // Delete-heavy runs compare Σµ across the swap, so the serving
    // engine must exist (and register its Σµ) *before* the first
    // delete: warm it up with one tiny sample request.
    if delete_heavy {
        if let Ok(mut c) = Client::connect_with(addr.as_str(), cfg) {
            let _ = c.sample(SampleRequest {
                req_id: 0,
                dataset,
                l,
                algorithm,
                shards,
                t: 1,
                seed: 1,
            });
        }
    }
    // Epoch/stats probes only matter for the update-mode JSON
    // branches; pure-read runs must not pay the extra connections.
    let probe = |fold_first: bool| {
        Client::connect_with(addr.as_str(), cfg)
            .ok()
            .and_then(|mut c| {
                if fold_first {
                    // One read forces any still-pending delta to be folded
                    // in, so the probe reports a current swap.
                    let _ = c.sample(SampleRequest {
                        req_id: 0,
                        dataset,
                        l,
                        algorithm,
                        shards,
                        t: 1,
                        seed: 1,
                    });
                }
                let info = c.epoch(dataset).ok().map(|(_, info)| info)?;
                let stats = c.server_stats().ok()?;
                Some((info, stats))
            })
    };
    let before = probes.then(|| probe(false)).flatten();
    let wall_start = Instant::now();
    let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
        let addr = &addr;
        let handles: Vec<_> = (0..clients_n)
            .map(|cid| {
                scope.spawn(move || {
                    if delete_heavy {
                        run_delete_heavy_client(
                            cid,
                            addr,
                            cfg,
                            requests,
                            t,
                            dataset,
                            l,
                            algorithm,
                            shards,
                            update_batch,
                        )
                    } else {
                        run_client(
                            cid,
                            addr,
                            cfg,
                            requests,
                            t,
                            dataset,
                            l,
                            algorithm,
                            shards,
                            update_every,
                            update_batch,
                            domain,
                        )
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = wall_start.elapsed();
    let after = probes.then(|| probe(true)).flatten();
    let epoch_before = before.as_ref().map(|(info, _)| *info);
    let epoch_after = after.as_ref().map(|(info, _)| *info);

    let total_samples: u64 = outcomes.iter().map(|o| o.samples).sum();
    let errors: u64 = outcomes.iter().map(|o| o.errors).sum();
    let inserted: u64 = outcomes.iter().map(|o| o.inserted_points).sum();
    let deleted: u64 = outcomes.iter().map(|o| o.deleted_points).sum();
    let delete_frames: u64 = outcomes.iter().map(|o| o.delete_frames).sum();
    let mut latencies: Vec<u64> = outcomes
        .iter()
        .flat_map(|o| o.latencies_ns.iter().copied())
        .collect();
    latencies.sort_unstable();
    let mut update_latencies: Vec<u64> = outcomes
        .iter()
        .flat_map(|o| o.update_latencies_ns.iter().copied())
        .collect();
    update_latencies.sort_unstable();
    let samples_per_sec = total_samples as f64 / wall.as_secs_f64().max(1e-9);
    let mean = |v: &[u64]| {
        if v.is_empty() {
            0
        } else {
            v.iter().sum::<u64>() / v.len() as u64
        }
    };
    let ns_to_ms = |ns: u64| ns as f64 / 1e6;

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    let pr = if delete_heavy {
        5
    } else if update_every > 0 {
        4
    } else {
        3
    };
    writeln!(json, "  \"pr\": {pr},").unwrap();
    writeln!(json, "  \"host_cores\": {},", host_cores()).unwrap();
    writeln!(
        json,
        "  \"workload\": {{\"clients\": {clients_n}, \"requests_per_client\": {requests}, \
         \"t\": {t}, \"dataset\": {dataset}, \"l\": {l}, \"algorithm\": \"{algo_str}\", \
         \"shards\": {shards}, \"update_fraction\": {update_fraction}, \
         \"update_batch\": {update_batch}}},"
    )
    .unwrap();
    writeln!(json, "  \"total_samples\": {total_samples},").unwrap();
    writeln!(json, "  \"errors\": {errors},").unwrap();
    writeln!(json, "  \"wall_s\": {:.4},", wall.as_secs_f64()).unwrap();
    writeln!(json, "  \"samples_per_sec\": {samples_per_sec:.0},").unwrap();
    if probes {
        writeln!(
            json,
            "  \"updates\": {{\"ops\": {}, \"inserted_points\": {inserted}, \
             \"deleted_points\": {deleted}, \"delete_frames\": {delete_frames}, \
             \"latency_ms\": {{\"mean\": {:.3}, \
             \"p50\": {:.3}, \"p99\": {:.3}}}}},",
            update_latencies.len(),
            ns_to_ms(mean(&update_latencies)),
            ns_to_ms(percentile_sorted(&update_latencies, 0.50)),
            ns_to_ms(percentile_sorted(&update_latencies, 0.99)),
        )
        .unwrap();
        let (e0, e1) = (
            epoch_before.map_or(0, |i| i.epoch),
            epoch_after.map_or(0, |i| i.epoch),
        );
        writeln!(
            json,
            "  \"epochs\": {{\"before\": {e0}, \"after\": {e1}, \"swaps\": {}, \
             \"pending_ops_after\": {}, \"last_swap_ms\": {:.3}}},",
            e1.saturating_sub(e0),
            epoch_after.map_or(0, |i| i.pending_ops),
            ns_to_ms(epoch_after.map_or(0, |i| i.last_swap_ns)),
        )
        .unwrap();
        // Cell-granular maintenance counters (the PR5 acceptance
        // signal): Σµ before/after and how much of the S-side each
        // swap actually rebuilt.
        if let (Some((_, sb)), Some((_, sa))) = (&before, &after) {
            writeln!(
                json,
                "  \"cell_maintenance\": {{\"mu_before\": {:.1}, \"mu_after\": {:.1}, \
                 \"patch_swaps\": {}, \"cells_patched\": {}, \"repairs\": {}, \
                 \"epoch_swap_cost_ms\": {:.3}}},",
                sb.mu_total,
                sa.mu_total,
                sa.patch_swaps.saturating_sub(sb.patch_swaps),
                sa.cells_patched.saturating_sub(sb.cells_patched),
                sa.repairs.saturating_sub(sb.repairs),
                ns_to_ms(sa.last_swap_ns),
            )
            .unwrap();
        }
    }
    writeln!(
        json,
        "  \"request_latency_ms\": {{\"mean\": {:.3}, \"p50\": {:.3}, \"p99\": {:.3}}}",
        ns_to_ms(mean(&latencies)),
        ns_to_ms(percentile_sorted(&latencies, 0.50)),
        ns_to_ms(percentile_sorted(&latencies, 0.99))
    )
    .unwrap();
    writeln!(json, "}}").unwrap();
    print!("{json}");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("warning: could not write {out_path}: {e}");
    } else {
        eprintln!("# wrote {out_path}");
    }

    if shutdown {
        match Client::connect_with(addr.as_str(), cfg).and_then(|mut c| c.shutdown_server()) {
            Ok(()) => eprintln!("# sent shutdown"),
            Err(e) => eprintln!("warning: shutdown request failed: {e}"),
        }
    }

    if errors > 0 || total_samples == 0 {
        std::process::exit(1);
    }
    if delete_heavy {
        // The whole point of the delete-heavy smoke: deletes must flow,
        // the tombstone threshold must fire, and the swap must shrink
        // Σµ (tombstone rejection alone never does).
        // Saturating: a failed after-probe reports 0 while the before
        // epoch may be positive.
        let swaps = epoch_after
            .map_or(0, |i| i.epoch)
            .saturating_sub(epoch_before.map_or(0, |i| i.epoch));
        if deleted == 0 {
            eprintln!("delete-heavy run deleted nothing");
            std::process::exit(1);
        }
        if swaps == 0 {
            eprintln!("delete-heavy run never crossed the tombstone rebuild threshold");
            std::process::exit(1);
        }
        match (&before, &after) {
            (Some((_, sb)), Some((_, sa))) if sa.mu_total < sb.mu_total => {}
            (Some((_, sb)), Some((_, sa))) => {
                eprintln!(
                    "delete-only swap did not shrink Σµ: {} -> {}",
                    sb.mu_total, sa.mu_total
                );
                std::process::exit(1);
            }
            _ => {
                eprintln!("delete-heavy run could not probe server stats");
                std::process::exit(1);
            }
        }
    }
}
