//! `srj-loadgen` — concurrent load generator for `srj-serve`.
//!
//! ```sh
//! srj-loadgen --addr 127.0.0.1:7878 --clients 4 --requests 8 --t 50000
//! srj-loadgen --addr 127.0.0.1:7878 --clients 1 --shutdown   # CI smoke
//! ```
//!
//! Spawns `--clients` threads, each holding one connection and issuing
//! `--requests` sequential `SAMPLE` requests of `--t` samples; reports
//! the achieved samples/sec and the client-observed per-request p50 /
//! p99 latency, and writes the machine-readable `BENCH_PR3.json`
//! (`host_cores` included, as with `BENCH_PR2.json` — single-core CI
//! boxes cannot show parallel speedup). Exits non-zero on any
//! non-`Ok` request status or transport error.

use std::fmt::Write as _;
use std::time::Instant;

use srj_bench::{host_cores, percentile_sorted};
use srj_server::{Algorithm, Client, RequestStatus, SampleRequest};

const USAGE: &str = "usage: srj-loadgen [--addr HOST:PORT] [--clients N] [--requests N] [--t N]
                   [--dataset ID] [--l F] [--algo auto|kds|kds-rejection|bbst]
                   [--shards N] [--out PATH] [--shutdown]
  Defaults: --addr 127.0.0.1:7878 --clients 4 --requests 8 --t 50000
            --dataset 1 --l 100 --algo auto --shards 1 --out BENCH_PR3.json";

fn fail(msg: &str) -> ! {
    eprintln!("{msg}\n{USAGE}");
    std::process::exit(2);
}

struct ClientOutcome {
    samples: u64,
    latencies_ns: Vec<u64>,
    errors: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7878".to_string();
    let mut clients: usize = 4;
    let mut requests: usize = 8;
    let mut t: u64 = 50_000;
    let mut dataset: u64 = 1;
    let mut l: f64 = 100.0;
    let mut algo_str = "auto".to_string();
    let mut shards: u32 = 1;
    let mut out_path = "BENCH_PR3.json".to_string();
    let mut shutdown = false;

    let mut i = 0;
    let value = |args: &[String], i: &mut usize, flag: &str| -> String {
        let Some(v) = args.get(*i + 1) else {
            fail(&format!("{flag} requires a value"));
        };
        *i += 2;
        v.clone()
    };
    macro_rules! parse_flag {
        ($target:ident, $flag:literal, $what:literal) => {
            $target = value(&args, &mut i, $flag)
                .parse()
                .unwrap_or_else(|_| fail(concat!($flag, " takes ", $what)))
        };
    }
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = value(&args, &mut i, "--addr"),
            "--clients" => parse_flag!(clients, "--clients", "an integer"),
            "--requests" => parse_flag!(requests, "--requests", "an integer"),
            "--t" => parse_flag!(t, "--t", "an integer"),
            "--dataset" => parse_flag!(dataset, "--dataset", "an integer"),
            "--l" => parse_flag!(l, "--l", "a float"),
            "--algo" => algo_str = value(&args, &mut i, "--algo"),
            "--shards" => parse_flag!(shards, "--shards", "an integer"),
            "--out" => out_path = value(&args, &mut i, "--out"),
            "--shutdown" => {
                shutdown = true;
                i += 1;
            }
            "--help" | "-h" => fail("srj-loadgen"),
            other => fail(&format!("unknown flag {other}")),
        }
    }
    let algorithm = match algo_str.as_str() {
        "auto" => None,
        "kds" => Some(Algorithm::Kds),
        "kds-rejection" => Some(Algorithm::KdsRejection),
        "bbst" => Some(Algorithm::Bbst),
        other => fail(&format!("unknown algorithm {other:?}")),
    };
    let clients_n = clients.max(1);

    eprintln!(
        "# loadgen: {clients_n} clients x {requests} requests x {t} samples \
         (dataset {dataset}, l {l}, algo {algo_str}, shards {shards}) -> {addr}"
    );
    let wall_start = Instant::now();
    let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
        let addr = &addr;
        let handles: Vec<_> = (0..clients_n)
            .map(|cid| {
                scope.spawn(move || {
                    let mut out = ClientOutcome {
                        samples: 0,
                        latencies_ns: Vec::with_capacity(requests),
                        errors: 0,
                    };
                    let mut client = match Client::connect(addr.as_str()) {
                        Ok(c) => c,
                        Err(e) => {
                            eprintln!("client {cid}: connect failed: {e}");
                            out.errors += 1;
                            return out;
                        }
                    };
                    for r in 0..requests {
                        // Nonzero seed ⇒ reproducible per-slot streams.
                        let seed = 1 + (cid * requests + r) as u64;
                        let start = Instant::now();
                        let mut received = 0u64;
                        let outcome = client.sample_with(
                            SampleRequest {
                                req_id: 0,
                                dataset,
                                l,
                                algorithm,
                                shards,
                                t,
                                seed,
                            },
                            |batch| received += batch.len() as u64,
                        );
                        let elapsed = start.elapsed();
                        match outcome {
                            Ok(o) if o.status == RequestStatus::Ok && received == t => {
                                out.samples += received;
                                out.latencies_ns
                                    .push(elapsed.as_nanos().min(u128::from(u64::MAX)) as u64);
                            }
                            Ok(o) => {
                                eprintln!(
                                    "client {cid} request {r}: status {} after {received} samples",
                                    o.status
                                );
                                out.errors += 1;
                            }
                            Err(e) => {
                                eprintln!("client {cid} request {r}: {e}");
                                out.errors += 1;
                                return out;
                            }
                        }
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = wall_start.elapsed();

    let total_samples: u64 = outcomes.iter().map(|o| o.samples).sum();
    let errors: u64 = outcomes.iter().map(|o| o.errors).sum();
    let mut latencies: Vec<u64> = outcomes
        .iter()
        .flat_map(|o| o.latencies_ns.iter().copied())
        .collect();
    latencies.sort_unstable();
    let samples_per_sec = total_samples as f64 / wall.as_secs_f64().max(1e-9);
    let mean_ns = if latencies.is_empty() {
        0
    } else {
        latencies.iter().sum::<u64>() / latencies.len() as u64
    };
    let p50_ns = percentile_sorted(&latencies, 0.50);
    let p99_ns = percentile_sorted(&latencies, 0.99);
    let ns_to_ms = |ns: u64| ns as f64 / 1e6;

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"pr\": 3,").unwrap();
    writeln!(json, "  \"host_cores\": {},", host_cores()).unwrap();
    writeln!(
        json,
        "  \"workload\": {{\"clients\": {clients_n}, \"requests_per_client\": {requests}, \
         \"t\": {t}, \"dataset\": {dataset}, \"l\": {l}, \"algorithm\": \"{algo_str}\", \
         \"shards\": {shards}}},"
    )
    .unwrap();
    writeln!(json, "  \"total_samples\": {total_samples},").unwrap();
    writeln!(json, "  \"errors\": {errors},").unwrap();
    writeln!(json, "  \"wall_s\": {:.4},", wall.as_secs_f64()).unwrap();
    writeln!(json, "  \"samples_per_sec\": {samples_per_sec:.0},").unwrap();
    writeln!(
        json,
        "  \"request_latency_ms\": {{\"mean\": {:.3}, \"p50\": {:.3}, \"p99\": {:.3}}}",
        ns_to_ms(mean_ns),
        ns_to_ms(p50_ns),
        ns_to_ms(p99_ns)
    )
    .unwrap();
    writeln!(json, "}}").unwrap();
    print!("{json}");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("warning: could not write {out_path}: {e}");
    } else {
        eprintln!("# wrote {out_path}");
    }

    if shutdown {
        match Client::connect(addr.as_str()).and_then(|mut c| {
            c.shutdown_server()
                .map_err(|e| std::io::Error::other(e.to_string()))
        }) {
            Ok(()) => eprintln!("# sent shutdown"),
            Err(e) => eprintln!("warning: shutdown request failed: {e}"),
        }
    }

    if errors > 0 || total_samples == 0 {
        std::process::exit(1);
    }
}
