//! `srj-serve` — stand up a sampling server.
//!
//! ```sh
//! srj-serve --addr 127.0.0.1:7878 --workers 2 \
//!           --dataset 1=uniform:0.05 --dataset 2=taxi:0.02 \
//!           --dataset-file 9=r_points.txt,s_points.txt
//! ```
//!
//! Generated datasets use the `srj-bench` scaled stand-ins for the
//! paper's evaluation data (`kind:scale[:seed]`, kinds: uniform, road,
//! poi, trajectory, taxi); file datasets load the plain-text point
//! format of `srj-datagen` (`x<sep>y` per line) and are split into
//! `R`/`S` halves unless two paths are given. The server runs until it
//! receives a `SHUTDOWN` frame (e.g. `srj-loadgen --shutdown`) or the
//! process is killed.

use srj_bench::scaled_spec;
use srj_datagen::{read_points_file, split_rs, DatasetKind};
use srj_server::{DatasetRegistry, Server, ServerConfig};

const USAGE: &str = "usage: srj-serve [--addr HOST:PORT] [--workers N] [--queue-frames N]
                 [--batch-pairs N] [--cache N]
                 [--rebuild-fraction F] [--tombstone-rebuild-fraction F]
                 [--max-patch-fraction F] [--repair-factor F] [--replan-factor F]
                 [--trace-sample-rate F] [--log-json]
                 [--handshake-timeout-ms N] [--read-timeout-ms N]
                 [--write-timeout-ms N] [--idle-timeout-ms N]
                 [--rate-limit-rps N] [--mutation-rate-limit-rps N]
                 [--shed-high-water N]
                 [--http-port N] [--slow-log N] [--slow-threshold-ms N]
                 [--timeseries-cadence-ms N] [--no-profiler]
                 [--health-window-ms N] [--buffers on|off]
                 [--dataset ID=KIND:SCALE[:SEED]]... [--dataset-file ID=R_PATH[,S_PATH]]...
  KIND: uniform | road | poi | trajectory | taxi
  --trace-sample-rate: fraction of SAMPLE requests recording trace
                       spans (0 disables tracing; fetch with TRACE)
  --http-port: also serve GET /metrics, /healthz, /vars over HTTP/1.1
               on 127.0.0.1:N (0 picks a free port; off by default)
  --slow-log: slow-request log capacity (0 disables capture; default 64)
  --slow-threshold-ms: absolute slow threshold; 0 = auto (live p99,
               after a warm-up of 32 requests; default 0)
  --timeseries-cadence-ms: metric history snapshot cadence
               (0 disables the recorder; default 1000)
  --no-profiler: disable worker-state sampling
  --buffers: serve batches through the buffered draw fast path
      (default on; off = legacy per-item streaming draw)
  --health-window-ms: how long /healthz stays degraded after the last
               shed/reap/reject/replan signal (default 5000)
  --log-json: print every lifecycle event (swaps, patches, repairs,
              re-plans, compactions, backpressure parks, load sheds,
              reaped connections) to stderr as one JSON object per line
  --handshake/read/write/idle-timeout-ms: connection deadlines
              (0 disables; defaults 10000/30000/30000/300000)
  --rate-limit-rps / --mutation-rate-limit-rps: per-connection token
              buckets, frames/second (0 = unlimited); exceeded budgets
              answer BUSY{retry_after_ms}
  --shed-high-water: job-queue depth past which SAMPLEs are answered
              BUSY instead of queued (0 disables; default 256)
  Default: --addr 127.0.0.1:7878 --dataset 1=uniform:0.05";

fn fail(msg: &str) -> ! {
    eprintln!("{msg}\n{USAGE}");
    std::process::exit(2);
}

fn parse_kind(s: &str) -> DatasetKind {
    match s {
        "uniform" => DatasetKind::Uniform,
        "road" => DatasetKind::RoadLike,
        "poi" => DatasetKind::PoiClusters,
        "trajectory" => DatasetKind::TrajectoryLike,
        "taxi" => DatasetKind::TaxiHotspots,
        other => fail(&format!("unknown dataset kind {other:?}")),
    }
}

/// `ID=KIND:SCALE[:SEED]` → a generated-and-split dataset.
fn register_generated(registry: &mut DatasetRegistry, spec: &str) {
    let Some((id, rest)) = spec.split_once('=') else {
        fail("--dataset takes ID=KIND:SCALE[:SEED]");
    };
    let id: u64 = id
        .parse()
        .unwrap_or_else(|_| fail("dataset id must be a u64"));
    let mut parts = rest.split(':');
    let kind = parse_kind(parts.next().unwrap_or(""));
    let scale: f64 = parts
        .next()
        .unwrap_or("0.05")
        .parse()
        .unwrap_or_else(|_| fail("dataset scale must be a float"));
    let seed: u64 = parts.next().map_or(42, |s| {
        s.parse()
            .unwrap_or_else(|_| fail("dataset seed must be a u64"))
    });
    let d = scaled_spec(kind, scale, 0.5, seed);
    eprintln!(
        "# dataset {id}: {} scale {scale} -> |R| = {}, |S| = {}",
        kind.label(),
        d.r.len(),
        d.s.len()
    );
    registry.register(id, d.r, d.s);
}

/// `ID=R_PATH[,S_PATH]` → points loaded from files (one file is split
/// 50/50 into `R` and `S`, the paper's assignment).
fn register_file(registry: &mut DatasetRegistry, spec: &str) {
    let Some((id, paths)) = spec.split_once('=') else {
        fail("--dataset-file takes ID=R_PATH[,S_PATH]");
    };
    let id: u64 = id
        .parse()
        .unwrap_or_else(|_| fail("dataset id must be a u64"));
    let (r, s) = match paths.split_once(',') {
        Some((rp, sp)) => {
            let r = read_points_file(rp).unwrap_or_else(|e| fail(&format!("{rp}: {e}")));
            let s = read_points_file(sp).unwrap_or_else(|e| fail(&format!("{sp}: {e}")));
            (r, s)
        }
        None => {
            let all = read_points_file(paths).unwrap_or_else(|e| fail(&format!("{paths}: {e}")));
            split_rs(&all, 0.5, id ^ 0xD15C)
        }
    };
    eprintln!(
        "# dataset {id}: |R| = {}, |S| = {} (from files)",
        r.len(),
        s.len()
    );
    registry.register(id, r, s);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7878".to_string();
    let mut config = ServerConfig::default();
    let mut registry = DatasetRegistry::new();
    let mut log_json = false;

    let mut i = 0;
    let value = |args: &[String], i: &mut usize, flag: &str| -> String {
        let Some(v) = args.get(*i + 1) else {
            fail(&format!("{flag} requires a value"));
        };
        *i += 2;
        v.clone()
    };
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = value(&args, &mut i, "--addr"),
            "--workers" => {
                config.workers = value(&args, &mut i, "--workers")
                    .parse()
                    .unwrap_or_else(|_| fail("--workers takes an integer"));
            }
            "--queue-frames" => {
                config.queue_frames = value(&args, &mut i, "--queue-frames")
                    .parse()
                    .unwrap_or_else(|_| fail("--queue-frames takes an integer"));
            }
            "--batch-pairs" => {
                config.batch_pairs = value(&args, &mut i, "--batch-pairs")
                    .parse()
                    .unwrap_or_else(|_| fail("--batch-pairs takes an integer"));
            }
            "--cache" => {
                config.cache_capacity = value(&args, &mut i, "--cache")
                    .parse()
                    .unwrap_or_else(|_| fail("--cache takes an integer"));
            }
            "--rebuild-fraction" => {
                let f: f64 = value(&args, &mut i, "--rebuild-fraction")
                    .parse()
                    .unwrap_or_else(|_| fail("--rebuild-fraction takes a float"));
                if f.is_nan() || f <= 0.0 {
                    fail("--rebuild-fraction must be a positive fraction");
                }
                config.epoch = config.epoch.with_rebuild_fraction(f);
            }
            "--replan-factor" => {
                let f: f64 = value(&args, &mut i, "--replan-factor")
                    .parse()
                    .unwrap_or_else(|_| fail("--replan-factor takes a float"));
                if f.is_nan() || f < 1.0 {
                    fail("--replan-factor must be >= 1");
                }
                config.epoch = config.epoch.with_replan_factor(f);
            }
            "--tombstone-rebuild-fraction" => {
                let f: f64 = value(&args, &mut i, "--tombstone-rebuild-fraction")
                    .parse()
                    .unwrap_or_else(|_| fail("--tombstone-rebuild-fraction takes a float"));
                if f.is_nan() || f <= 0.0 {
                    fail("--tombstone-rebuild-fraction must be a positive fraction");
                }
                config.epoch = config.epoch.with_tombstone_rebuild_fraction(f);
            }
            "--max-patch-fraction" => {
                let f: f64 = value(&args, &mut i, "--max-patch-fraction")
                    .parse()
                    .unwrap_or_else(|_| fail("--max-patch-fraction takes a float"));
                if f.is_nan() || !(0.0..=1.0).contains(&f) {
                    fail("--max-patch-fraction must be in [0, 1]");
                }
                config.epoch = config.epoch.with_max_patch_fraction(f);
            }
            "--repair-factor" => {
                let f: f64 = value(&args, &mut i, "--repair-factor")
                    .parse()
                    .unwrap_or_else(|_| fail("--repair-factor takes a float"));
                if f.is_nan() || f < 1.0 {
                    fail("--repair-factor must be >= 1");
                }
                config.epoch = config.epoch.with_repair_factor(f);
            }
            "--trace-sample-rate" => {
                let f: f64 = value(&args, &mut i, "--trace-sample-rate")
                    .parse()
                    .unwrap_or_else(|_| fail("--trace-sample-rate takes a float"));
                if f.is_nan() || !(0.0..=1.0).contains(&f) {
                    fail("--trace-sample-rate must be in [0, 1]");
                }
                config.trace_sample_rate = f;
            }
            "--handshake-timeout-ms" => {
                let ms: u64 = value(&args, &mut i, "--handshake-timeout-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--handshake-timeout-ms takes an integer"));
                config.handshake_timeout = std::time::Duration::from_millis(ms);
            }
            "--read-timeout-ms" => {
                let ms: u64 = value(&args, &mut i, "--read-timeout-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--read-timeout-ms takes an integer"));
                config.read_timeout = std::time::Duration::from_millis(ms);
            }
            "--write-timeout-ms" => {
                let ms: u64 = value(&args, &mut i, "--write-timeout-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--write-timeout-ms takes an integer"));
                config.write_timeout = std::time::Duration::from_millis(ms);
            }
            "--idle-timeout-ms" => {
                let ms: u64 = value(&args, &mut i, "--idle-timeout-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--idle-timeout-ms takes an integer"));
                config.idle_timeout = std::time::Duration::from_millis(ms);
            }
            "--rate-limit-rps" => {
                config.rate_limit_rps = value(&args, &mut i, "--rate-limit-rps")
                    .parse()
                    .unwrap_or_else(|_| fail("--rate-limit-rps takes an integer"));
            }
            "--mutation-rate-limit-rps" => {
                config.mutation_rate_limit_rps = value(&args, &mut i, "--mutation-rate-limit-rps")
                    .parse()
                    .unwrap_or_else(|_| fail("--mutation-rate-limit-rps takes an integer"));
            }
            "--shed-high-water" => {
                config.shed_high_water = value(&args, &mut i, "--shed-high-water")
                    .parse()
                    .unwrap_or_else(|_| fail("--shed-high-water takes an integer"));
            }
            "--http-port" => {
                let port: u16 = value(&args, &mut i, "--http-port")
                    .parse()
                    .unwrap_or_else(|_| fail("--http-port takes a port number"));
                config.http_port = Some(port);
            }
            "--slow-log" => {
                config.slow_log_capacity = value(&args, &mut i, "--slow-log")
                    .parse()
                    .unwrap_or_else(|_| fail("--slow-log takes an integer"));
            }
            "--slow-threshold-ms" => {
                let ms: u64 = value(&args, &mut i, "--slow-threshold-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--slow-threshold-ms takes an integer"));
                config.slow_threshold_ns = ms.saturating_mul(1_000_000);
            }
            "--timeseries-cadence-ms" => {
                config.timeseries_cadence_ms = value(&args, &mut i, "--timeseries-cadence-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--timeseries-cadence-ms takes an integer"));
            }
            "--no-profiler" => {
                config.profiler = false;
                i += 1;
            }
            "--buffers" => match value(&args, &mut i, "--buffers").as_str() {
                "on" => config.buffers = true,
                "off" => config.buffers = false,
                _ => fail("--buffers takes on|off"),
            },
            "--health-window-ms" => {
                config.health_degraded_window_ms = value(&args, &mut i, "--health-window-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--health-window-ms takes an integer"));
            }
            "--log-json" => {
                log_json = true;
                i += 1;
            }
            "--dataset" => {
                let spec = value(&args, &mut i, "--dataset");
                register_generated(&mut registry, &spec);
            }
            "--dataset-file" => {
                let spec = value(&args, &mut i, "--dataset-file");
                register_file(&mut registry, &spec);
            }
            "--help" | "-h" => fail("srj-serve"),
            other => fail(&format!("unknown flag {other}")),
        }
    }
    if config.epoch.repair_factor > config.epoch.replan_factor {
        fail("--repair-factor must not exceed --replan-factor");
    }
    if registry.is_empty() {
        register_generated(&mut registry, "1=uniform:0.05");
    }
    if log_json {
        // One JSON object per line on stderr, so stdout stays pure
        // protocol chatter ("listening on ...") for scripts.
        srj_obs::journal::journal().add_listener(|e| {
            eprintln!("{}", e.to_json());
        });
    }

    let mut server = match Server::start(addr.as_str(), registry, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    // Parsed by srj-loadgen scripts / the CI smoke step; keep stable.
    println!("listening on {}", server.local_addr());
    if let Some(http) = server.http_addr() {
        // Also parsed by the CI HTTP smoke step; keep stable.
        println!("http on {http}");
    }
    server.wait_shutdown();
    eprintln!("# shutdown requested");
    server.shutdown();
    let stats = server.stats();
    eprintln!(
        "# served {} requests / {} samples ({} errors)",
        stats.queries, stats.samples, stats.errors
    );
}
