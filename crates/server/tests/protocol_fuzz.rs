//! Property-based and adversarial wire-format tests: every frame type
//! must round-trip exactly, and no byte sequence an attacker or a
//! truncating network can produce may panic, over-allocate, or decode
//! into something a well-formed encoder could not have produced —
//! malformed input always surfaces as a clean `Err`.

use proptest::prelude::*;
use srj_core::JoinPair;
use srj_geom::Point;
use srj_server::protocol::{
    decode_request, decode_response, encode_request, encode_response, read_frame, EpochInfo,
    ErrorCode, FrameAccumulator, ProtocolError, Request, RequestStats, RequestStatus, Response,
    SampleRequest, ServerStatsFrame, Side, SlowLogEntry, TraceSpan, UpdateStats, MAX_ERROR_MSG_LEN,
    MAX_FRAME_LEN, PROTOCOL_VERSION, SERVER_FEATURES,
};
use srj_server::Algorithm;

/// Splits a wire frame into its length prefix and payload, checking
/// the prefix is consistent.
fn payload_of(frame: &[u8]) -> &[u8] {
    assert!(frame.len() >= 4, "frame shorter than its length prefix");
    let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
    assert_eq!(len, frame.len() - 4, "length prefix disagrees with frame");
    &frame[4..]
}

fn roundtrip_request(req: Request) {
    let payload = payload_of(&encode_request(&req)).to_vec();
    assert_eq!(decode_request(&payload).unwrap(), req);
    assert_prefixes_fail_request(&payload);
}

fn roundtrip_response(resp: Response) {
    let payload = payload_of(&encode_response(&resp)).to_vec();
    assert_eq!(decode_response(&payload).unwrap(), resp);
    assert_prefixes_fail_response(&payload);
}

/// The decoder consumes exactly the payload it was given, so every
/// strict prefix of a valid payload must fail cleanly — there is no
/// byte position where a truncated frame silently parses.
fn assert_prefixes_fail_request(payload: &[u8]) {
    for cut in 0..payload.len() {
        assert!(
            decode_request(&payload[..cut]).is_err(),
            "request prefix of {cut}/{} bytes decoded",
            payload.len()
        );
    }
}

fn assert_prefixes_fail_response(payload: &[u8]) {
    for cut in 0..payload.len() {
        assert!(
            decode_response(&payload[..cut]).is_err(),
            "response prefix of {cut}/{} bytes decoded",
            payload.len()
        );
    }
}

fn algorithm_from_index(i: u8) -> Option<Algorithm> {
    match i % 4 {
        0 => None,
        1 => Some(Algorithm::Kds),
        2 => Some(Algorithm::KdsRejection),
        _ => Some(Algorithm::Bbst),
    }
}

fn status_from_index(i: u8) -> RequestStatus {
    [
        RequestStatus::Ok,
        RequestStatus::UnknownDataset,
        RequestStatus::EmptyJoin,
        RequestStatus::RejectionLimit,
        RequestStatus::BadRequest,
        RequestStatus::ShuttingDown,
    ][i as usize % 6]
}

fn side_from(b: bool) -> Side {
    if b {
        Side::S
    } else {
        Side::R
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hello_roundtrips(version in 0u16..=u16::MAX, features in any::<u32>()) {
        roundtrip_request(Request::Hello { version, features });
    }

    #[test]
    fn ping_roundtrips(token in any::<u64>()) {
        roundtrip_request(Request::Ping { token });
    }

    #[test]
    fn sample_roundtrips(
        ids in (any::<u32>(), any::<u64>(), any::<u64>(), any::<u64>()),
        l in 1e-6..1e9f64,
        algo in any::<u8>(),
        shards in any::<u32>(),
    ) {
        roundtrip_request(Request::Sample(SampleRequest {
            req_id: ids.0,
            dataset: ids.1,
            l,
            algorithm: algorithm_from_index(algo),
            shards,
            t: ids.2,
            seed: ids.3,
        }));
    }

    #[test]
    fn insert_roundtrips(
        req_id in any::<u32>(),
        dataset in any::<u64>(),
        s_side in any::<bool>(),
        coords in prop::collection::vec((-1e9..1e9f64, -1e9..1e9f64), 0..40),
    ) {
        roundtrip_request(Request::Insert {
            req_id,
            dataset,
            side: side_from(s_side),
            points: coords.into_iter().map(|(x, y)| Point::new(x, y)).collect(),
        });
    }

    #[test]
    fn delete_roundtrips(
        req_id in any::<u32>(),
        dataset in any::<u64>(),
        s_side in any::<bool>(),
        ids in prop::collection::vec(any::<u32>(), 0..40),
    ) {
        roundtrip_request(Request::Delete {
            req_id,
            dataset,
            side: side_from(s_side),
            ids,
        });
    }

    #[test]
    fn epoch_and_trace_roundtrip(req_id in any::<u32>(), id in any::<u64>()) {
        roundtrip_request(Request::Epoch { req_id, dataset: id });
        roundtrip_request(Request::Trace { trace_id: id });
    }

    #[test]
    fn welcome_pong_busy_roundtrip(
        version in 0u16..=u16::MAX,
        features in any::<u32>(),
        token in any::<u64>(),
        req_id in any::<u32>(),
        retry_after_ms in any::<u32>(),
    ) {
        roundtrip_response(Response::Welcome { version, features });
        roundtrip_response(Response::Pong { token });
        roundtrip_response(Response::Busy { req_id, retry_after_ms });
    }

    #[test]
    fn error_roundtrips(code in 0u8..3, msg_len in 0usize..MAX_ERROR_MSG_LEN) {
        let code = [
            ErrorCode::VersionMismatch,
            ErrorCode::HandshakeRequired,
            ErrorCode::Rejected,
        ][code as usize];
        roundtrip_response(Response::Error {
            code,
            message: "e".repeat(msg_len),
        });
    }

    #[test]
    fn batch_and_done_roundtrip(
        req_id in any::<u32>(),
        pairs in prop::collection::vec((any::<u32>(), any::<u32>()), 0..60),
        status in any::<u8>(),
        stats in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
    ) {
        roundtrip_response(Response::Batch {
            req_id,
            pairs: pairs.into_iter().map(|(r, s)| JoinPair::new(r, s)).collect(),
        });
        roundtrip_response(Response::Done {
            req_id,
            status: status_from_index(status),
            stats: RequestStats {
                samples: stats.0,
                iterations: stats.1,
                elapsed_ns: stats.2,
                trace_id: stats.3,
            },
        });
    }

    #[test]
    fn update_and_epoch_info_roundtrip(
        req_id in any::<u32>(),
        status in any::<u8>(),
        small in (any::<u32>(), any::<u32>()),
        wide in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
    ) {
        roundtrip_response(Response::Update {
            req_id,
            status: status_from_index(status),
            stats: UpdateStats {
                first_id: small.0,
                applied: small.1,
                epoch: wide.0,
                version: wide.1,
            },
        });
        roundtrip_response(Response::Epoch {
            req_id,
            status: status_from_index(status),
            info: EpochInfo {
                epoch: wide.0,
                version: wide.1,
                live_r: wide.2,
                live_s: wide.3,
                pending_ops: wide.4,
                last_swap_ns: wide.5,
            },
        });
    }

    #[test]
    fn server_stats_roundtrips(
        a in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        b in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        c in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        mu in 0.0..1e12f64,
    ) {
        roundtrip_response(Response::ServerStats(ServerStatsFrame {
            queries: a.0,
            samples: a.1,
            iterations: a.2,
            errors: a.3,
            mean_ns: a.4,
            p50_ns: a.5,
            p99_ns: b.0,
            engines_cached: b.1,
            cache_hits: b.2,
            cache_misses: b.3,
            connections_accepted: b.4,
            active_connections: b.5,
            patch_swaps: c.0,
            cells_patched: c.1,
            repairs: c.2,
            last_swap_ns: c.3,
            mu_total: mu,
        }));
    }

    #[test]
    fn metrics_and_trace_responses_roundtrip(
        text_len in 0usize..512,
        trace_id in any::<u64>(),
        spans in prop::collection::vec((any::<u64>(), 0usize..24, 0usize..24), 0..16),
    ) {
        roundtrip_response(Response::Metrics {
            text: "m".repeat(text_len),
        });
        roundtrip_response(Response::Trace {
            trace_id,
            spans: spans
                .into_iter()
                .map(|(ns, a, b)| TraceSpan {
                    ns,
                    span: "s".repeat(a),
                    event: "v".repeat(b),
                })
                .collect(),
        });
    }

    #[test]
    fn slowlog_roundtrips(
        max in any::<u32>(),
        entries in prop::collection::vec(
            (
                (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
                (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
                0usize..12,
                prop::collection::vec((any::<u64>(), 0usize..16, 0usize..16), 0..6),
            ),
            0..4,
        ),
    ) {
        roundtrip_request(Request::SlowLog { max });
        roundtrip_response(Response::SlowLog {
            entries: entries
                .into_iter()
                .map(|(a, b, algo_len, spans)| SlowLogEntry {
                    trace_id: a.0,
                    finished_ns: a.1,
                    dataset: a.2,
                    t: a.3,
                    algorithm: "a".repeat(algo_len),
                    epoch: b.0,
                    iterations: b.1,
                    queue_wait_ns: b.2,
                    elapsed_ns: b.3,
                    spans: spans
                        .into_iter()
                        .map(|(ns, s, v)| TraceSpan {
                            ns,
                            span: "s".repeat(s),
                            event: "v".repeat(v),
                        })
                        .collect(),
                })
                .collect(),
        });
    }

    /// Arbitrary bytes never panic the decoders — every outcome is a
    /// clean `Ok`/`Err`, even for garbage that happens to start with a
    /// valid opcode.
    #[test]
    fn random_bytes_decode_cleanly(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
    }

    /// Single-byte corruptions of valid frames never panic either —
    /// they decode to an error or to some other well-formed frame.
    #[test]
    fn flipped_bytes_decode_cleanly(
        pos in any::<usize>(),
        bit in 0u8..8,
        token in any::<u64>(),
        ids in prop::collection::vec(any::<u32>(), 0..20),
    ) {
        for payload in [
            payload_of(&encode_request(&Request::Ping { token })).to_vec(),
            payload_of(&encode_request(&Request::Delete {
                req_id: 1,
                dataset: 2,
                side: Side::S,
                ids,
            }))
            .to_vec(),
        ] {
            let mut corrupted = payload.clone();
            let at = pos % corrupted.len();
            corrupted[at] ^= 1 << bit;
            let _ = decode_request(&corrupted);
        }
    }

    /// Adversarial `count` fields (the length-prefixed vector sizes)
    /// must be rejected by the count-vs-payload cross-check before any
    /// allocation trusts them.
    #[test]
    fn inflated_counts_rejected(count in 50u32..=u32::MAX) {
        // DELETE with 2 real ids but a claimed count of `count`.
        let mut payload = payload_of(&encode_request(&Request::Delete {
            req_id: 9,
            dataset: 9,
            side: Side::R,
            ids: vec![1, 2],
        }))
        .to_vec();
        let fixed_prefix = 1 + 4 + 8 + 1; // opcode + req_id + dataset + side
        payload[fixed_prefix..fixed_prefix + 4].copy_from_slice(&count.to_le_bytes());
        assert!(decode_request(&payload).is_err());
    }
}

#[test]
fn wrong_version_hello_still_decodes() {
    // Version negotiation is semantic, not syntactic: a HELLO carrying
    // a version this server will reject must still *decode*, so the
    // server can answer with a well-formed ERROR instead of a hang.
    let payload = payload_of(&encode_request(&Request::Hello {
        version: PROTOCOL_VERSION + 41,
        features: SERVER_FEATURES,
    }))
    .to_vec();
    match decode_request(&payload).unwrap() {
        Request::Hello { version, .. } => assert_eq!(version, PROTOCOL_VERSION + 41),
        other => panic!("decoded {other:?}"),
    }
}

#[test]
fn oversized_length_prefix_is_too_large_not_oom() {
    // A length prefix just past the cap must be rejected *before* the
    // payload allocation. (If it allocated first, a 4 GiB claim would
    // be an OOM attack.)
    for claim in [MAX_FRAME_LEN as u32 + 1, u32::MAX] {
        let mut wire = claim.to_le_bytes().to_vec();
        wire.extend_from_slice(&[0u8; 16]);
        let mut cursor = std::io::Cursor::new(wire);
        match read_frame(&mut cursor) {
            Err(ProtocolError::TooLarge(len)) => assert_eq!(len, claim as usize),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }
}

#[test]
fn max_length_prefix_with_short_body_is_io_error() {
    // A length prefix at exactly the cap is structurally legal; when
    // the peer then hangs up mid-frame, the reader reports a transport
    // error — never a partial frame.
    let mut wire = (MAX_FRAME_LEN as u32).to_le_bytes().to_vec();
    wire.extend_from_slice(&[0u8; 64]); // far short of MAX_FRAME_LEN
    let mut cursor = std::io::Cursor::new(wire);
    match read_frame(&mut cursor) {
        Err(ProtocolError::Io(_)) => {}
        other => panic!("expected Io error, got {other:?}"),
    }
}

#[test]
fn mid_frame_eof_is_error_and_boundary_eof_is_clean() {
    let frame = encode_request(&Request::Ping { token: 7 });
    // Clean EOF at a frame boundary.
    let mut empty = std::io::Cursor::new(Vec::new());
    assert!(matches!(read_frame(&mut empty), Ok(None)));
    // EOF anywhere inside a frame (even inside the length prefix) is
    // an error, not a silent truncation.
    for cut in 1..frame.len() {
        let mut cursor = std::io::Cursor::new(frame[..cut].to_vec());
        assert!(
            read_frame(&mut cursor).is_err(),
            "EOF after {cut}/{} bytes was not an error",
            frame.len()
        );
    }
}

/// One request of every frame type — fixed-size, variable-size, and
/// empty-payload shapes — so the incremental-decode tests below cover
/// each wire layout the readiness loop's accumulator will see.
fn request_corpus() -> Vec<Request> {
    vec![
        Request::Hello {
            version: PROTOCOL_VERSION,
            features: SERVER_FEATURES,
        },
        Request::Ping {
            token: 0xDEAD_BEEF_CAFE_F00D,
        },
        Request::Sample(SampleRequest {
            req_id: 7,
            dataset: 1,
            l: 100.0,
            algorithm: Some(Algorithm::Kds),
            shards: 2,
            t: 4096,
            seed: 99,
        }),
        Request::Stats,
        Request::Shutdown,
        Request::Insert {
            req_id: 8,
            dataset: 2,
            side: Side::R,
            points: (0..17).map(|i| Point::new(i as f64, -(i as f64))).collect(),
        },
        Request::Delete {
            req_id: 9,
            dataset: 3,
            side: Side::S,
            ids: (0..23).collect(),
        },
        Request::Epoch {
            req_id: 10,
            dataset: 4,
        },
        Request::Metrics,
        Request::Trace { trace_id: 0x1234 },
        Request::SlowLog { max: 5 },
    ]
}

/// The accumulator must reassemble every request frame type from the
/// worst possible fragmentation — one byte per read — yielding no
/// frame early, exactly one frame at the final byte, and an empty
/// buffer afterwards.
#[test]
fn accumulator_decodes_every_request_byte_at_a_time() {
    for req in request_corpus() {
        let wire = encode_request(&req);
        let mut acc = FrameAccumulator::new();
        for (i, byte) in wire.iter().enumerate() {
            assert!(
                acc.next_frame().unwrap().is_none(),
                "{req:?}: frame surfaced after {i}/{} bytes",
                wire.len()
            );
            acc.extend(std::slice::from_ref(byte));
            assert!(
                acc.has_partial(),
                "{req:?}: partial not flagged at byte {i}"
            );
        }
        let payload = acc
            .next_frame()
            .unwrap()
            .unwrap_or_else(|| panic!("{req:?}: no frame after all {} bytes", wire.len()));
        assert_eq!(decode_request(&payload).unwrap(), req);
        assert!(acc.next_frame().unwrap().is_none());
        assert!(!acc.has_partial(), "{req:?}: bytes left over");
        assert_eq!(acc.buffered(), 0);
    }
}

/// A length prefix beyond `MAX_FRAME_LEN` is rejected the moment its
/// fourth byte lands — before any payload is buffered — even when it
/// arrives mid-stream behind valid frames, one byte at a time.
#[test]
fn accumulator_rejects_oversized_prefix_mid_stream() {
    let mut acc = FrameAccumulator::new();
    acc.extend(&encode_request(&Request::Ping { token: 1 }));
    assert!(acc.next_frame().unwrap().is_some());
    let claim = (MAX_FRAME_LEN as u32 + 1).to_le_bytes();
    for (i, byte) in claim.iter().enumerate() {
        if i < 3 {
            acc.extend(std::slice::from_ref(byte));
            assert!(acc.next_frame().unwrap().is_none());
        } else {
            acc.extend(std::slice::from_ref(byte));
            assert!(matches!(
                acc.next_frame(),
                Err(ProtocolError::TooLarge(len)) if len == MAX_FRAME_LEN + 1
            ));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The whole request corpus concatenated into one byte stream and
    /// delivered in arbitrary chunks — including splits inside length
    /// prefixes and across frame boundaries — must come back out as
    /// exactly the original frame sequence, popping eagerly after
    /// every chunk (the readiness loop's access pattern, which also
    /// exercises the lazy compaction).
    #[test]
    fn accumulator_reassembles_random_splits(
        raw_cuts in prop::collection::vec(any::<usize>(), 0..24),
    ) {
        let corpus = request_corpus();
        let stream: Vec<u8> = corpus.iter().flat_map(encode_request).collect();
        let mut cuts: Vec<usize> = raw_cuts.iter().map(|c| c % stream.len()).collect();
        cuts.push(0);
        cuts.push(stream.len());
        cuts.sort_unstable();
        cuts.dedup();
        let mut acc = FrameAccumulator::new();
        let mut decoded = Vec::new();
        for window in cuts.windows(2) {
            acc.extend(&stream[window[0]..window[1]]);
            while let Some(payload) = acc.next_frame().unwrap() {
                decoded.push(decode_request(&payload).unwrap());
            }
        }
        prop_assert_eq!(decoded, corpus);
        prop_assert!(!acc.has_partial());
    }
}

#[test]
fn error_message_is_capped_on_encode() {
    let resp = Response::Error {
        code: ErrorCode::Rejected,
        message: "x".repeat(MAX_ERROR_MSG_LEN * 4),
    };
    let payload = payload_of(&encode_response(&resp)).to_vec();
    match decode_response(&payload).unwrap() {
        Response::Error { message, .. } => assert_eq!(message.len(), MAX_ERROR_MSG_LEN),
        other => panic!("decoded {other:?}"),
    }
}
