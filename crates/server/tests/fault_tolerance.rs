//! End-to-end fault-tolerance tests over real loopback connections:
//! handshake rejection, idle-connection reaping, load shedding, rate
//! limiting, keepalives, and client retry semantics under an active
//! fault plan — each with its journal/metrics evidence.

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use srj_geom::Point;
use srj_obs::journal::{journal, EventKind};
use srj_server::protocol::{
    decode_response, encode_request, read_frame, ErrorCode, Request, Response, SampleRequest,
    PROTOCOL_VERSION,
};
use srj_server::{
    Client, ClientConfig, ClientError, DatasetRegistry, FaultPlan, RequestStatus, Server,
    ServerConfig, Side,
};

/// Journal assertions are process-global and every test binds a
/// loopback server, so the tests in this binary do not interleave.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn pseudo_points(n: usize, seed: u64, extent: f64) -> Vec<Point> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| Point::new(next() * extent, next() * extent))
        .collect()
}

fn registry_with(dataset: u64, n: usize) -> DatasetRegistry {
    let mut registry = DatasetRegistry::new();
    registry.register(
        dataset,
        pseudo_points(n, 11, 50.0),
        pseudo_points(n, 12, 50.0),
    );
    registry
}

/// Drives a raw (non-`Client`) connection: returns the decoded answer
/// to one written request frame.
fn raw_exchange(stream: &mut TcpStream, req: &Request) -> Response {
    stream.write_all(&encode_request(req)).unwrap();
    let payload = read_frame(stream).unwrap().expect("peer closed early");
    decode_response(&payload).unwrap()
}

#[test]
fn wrong_version_hello_is_rejected_cleanly() {
    let _serial = serial();
    // One worker: if rejected handshakes consumed worker slots, the
    // real request at the end could never be served.
    let config = ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    };
    let mut server = Server::start("127.0.0.1:0", registry_with(1, 300), config).unwrap();
    let addr = server.local_addr();

    for _ in 0..3 {
        let mut stream = TcpStream::connect(addr).unwrap();
        let resp = raw_exchange(
            &mut stream,
            &Request::Hello {
                version: PROTOCOL_VERSION + 7,
                features: 0,
            },
        );
        match resp {
            Response::Error { code, message } => {
                assert_eq!(code, ErrorCode::VersionMismatch);
                assert!(
                    message.contains(&PROTOCOL_VERSION.to_string()),
                    "message should name the server version: {message:?}"
                );
            }
            other => panic!("expected ERROR, got {other:?}"),
        }
        // The server closes cleanly after the ERROR — no hang, no junk.
        assert!(read_frame(&mut stream).unwrap().is_none());
    }

    // A v0-style peer that never heard of HELLO gets the same clean
    // rejection for its first (non-HELLO) frame.
    let mut stream = TcpStream::connect(addr).unwrap();
    match raw_exchange(&mut stream, &Request::Stats) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::HandshakeRequired),
        other => panic!("expected ERROR, got {other:?}"),
    }
    assert!(read_frame(&mut stream).unwrap().is_none());

    // The lone worker is still free: a well-versioned client is served.
    let mut client = Client::connect(addr).unwrap();
    let outcome = client
        .sample(SampleRequest {
            req_id: 0,
            dataset: 1,
            l: 5.0,
            algorithm: None,
            shards: 1,
            t: 100,
            seed: 1,
        })
        .unwrap();
    assert_eq!(outcome.status, RequestStatus::Ok);
    let metrics = client.metrics().unwrap();
    assert!(
        metrics.contains("srj_handshake_rejects_total 4"),
        "expected 4 handshake rejects in:\n{metrics}"
    );
    server.shutdown();
}

#[test]
fn idle_connection_is_reaped_and_journaled() {
    let _serial = serial();
    let idle = Duration::from_millis(200);
    let config = ServerConfig {
        idle_timeout: idle,
        ..ServerConfig::default()
    };
    let mut server = Server::start("127.0.0.1:0", registry_with(2, 200), config).unwrap();
    let addr = server.local_addr();
    let seq_floor = journal().recent(1).first().map_or(0, |e| e.seq);

    // The victim: handshakes, then goes quiet.
    let _idle_client = Client::connect(addr).unwrap();
    let connected_at = Instant::now();

    // The observer polls METRICS (staying active itself) until the
    // victim is reaped — which must happen within 2x the idle deadline
    // (deadline + one maintainer sweep), plus scheduling margin.
    let mut scraper = Client::connect(addr).unwrap();
    let deadline = idle * 2 + Duration::from_millis(800);
    let reaped_at = loop {
        let text = scraper.metrics().unwrap();
        if text.lines().any(|l| {
            l.strip_prefix("srj_conn_reaped ")
                .is_some_and(|v| v.trim() != "0")
        }) {
            break connected_at.elapsed();
        }
        assert!(
            connected_at.elapsed() < deadline,
            "idle connection not reaped within {deadline:?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    };
    assert!(
        reaped_at >= idle,
        "reaped after {reaped_at:?}, before the {idle:?} deadline"
    );

    let events = journal().recent(256);
    let reap = events
        .iter()
        .filter(|e| e.seq > seq_floor)
        .find(|e| e.kind == EventKind::ConnReaped)
        .expect("no ConnReaped journal event");
    assert!(
        reap.duration_ns >= idle.as_nanos() as u64,
        "reap recorded only {}ns idle",
        reap.duration_ns
    );
    assert!(
        events.windows(2).all(|w| w[0].seq < w[1].seq),
        "journal seq must be strictly monotone"
    );
    server.shutdown();
}

#[test]
fn saturated_queue_sheds_samples_with_busy() {
    let _serial = serial();
    let config = ServerConfig {
        workers: 1,
        queue_frames: 4,
        shed_high_water: 1,
        ..ServerConfig::default()
    };
    let mut server = Server::start("127.0.0.1:0", registry_with(3, 400), config).unwrap();
    let addr = server.local_addr();
    let seq_floor = journal().recent(1).first().map_or(0, |e| e.seq);

    let mut stream = TcpStream::connect(addr).unwrap();
    match raw_exchange(
        &mut stream,
        &Request::Hello {
            version: PROTOCOL_VERSION,
            features: 0,
        },
    ) {
        Response::Welcome { version, .. } => assert_eq!(version, PROTOCOL_VERSION),
        other => panic!("expected WELCOME, got {other:?}"),
    }

    // A huge request this connection does not read: its response queue
    // fills and the job parks, which marks the connection saturated.
    let big = Request::Sample(SampleRequest {
        req_id: 1,
        dataset: 3,
        l: 5.0,
        algorithm: None,
        shards: 1,
        t: 5_000_000,
        seed: 2,
    });
    stream.write_all(&encode_request(&big)).unwrap();
    // Wait until the job has demonstrably parked on the full response
    // queue: the writer is wedged against our unread socket buffer, so
    // once the park counter moves the connection stays saturated.
    let started = Instant::now();
    loop {
        let text = server.metrics_text();
        if text.lines().any(|l| {
            l.strip_prefix("srj_backpressure_parks_total ")
                .is_some_and(|v| v.trim() != "0")
        }) {
            break;
        }
        assert!(
            started.elapsed() < Duration::from_secs(120),
            "sample job never parked"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    std::thread::sleep(Duration::from_millis(50));
    // The next SAMPLE on the saturated connection must be shed, not
    // queued behind megabytes of backlog.
    let second = Request::Sample(SampleRequest {
        req_id: 2,
        ..match big {
            Request::Sample(s) => s,
            _ => unreachable!(),
        }
    });
    stream.write_all(&encode_request(&second)).unwrap();

    let mut saw_busy = None;
    for _ in 0..100_000 {
        let payload = read_frame(&mut stream).unwrap().expect("closed early");
        match decode_response(&payload).unwrap() {
            Response::Busy {
                req_id,
                retry_after_ms,
            } => {
                saw_busy = Some((req_id, retry_after_ms));
                break;
            }
            _ => continue,
        }
    }
    let (req_id, retry_after_ms) = saw_busy.expect("saturated connection was never shed");
    assert_eq!(req_id, 2);
    assert!(retry_after_ms > 0);
    drop(stream);

    let shed = journal()
        .recent(256)
        .into_iter()
        .filter(|e| e.seq > seq_floor)
        .find(|e| e.kind == EventKind::LoadShed)
        .expect("no LoadShed journal event");
    assert_eq!(shed.dataset, Some(3));
    let metrics = server.metrics_text();
    assert!(
        metrics.lines().any(|l| l
            .strip_prefix("srj_requests_shed ")
            .is_some_and(|v| v.trim() != "0")),
        "srj_requests_shed not incremented:\n{metrics}"
    );
    server.shutdown();
}

#[test]
fn token_bucket_rate_limits_with_retry_hint() {
    let _serial = serial();
    let config = ServerConfig {
        rate_limit_rps: 1,
        ..ServerConfig::default()
    };
    let mut server = Server::start("127.0.0.1:0", registry_with(4, 100), config).unwrap();

    // No retries: the BUSY must surface, not be absorbed.
    let cfg = ClientConfig {
        retries: 0,
        ..ClientConfig::default()
    };
    let mut client = Client::connect_with(server.local_addr(), cfg).unwrap();
    client
        .server_stats()
        .expect("burst budget admits the first");
    match client.server_stats() {
        Err(ClientError::Busy { retry_after_ms }) => assert!(retry_after_ms > 0),
        other => panic!("expected Busy, got {other:?}"),
    }
    // A client *with* retries rides the hint through transparently.
    let mut patient = Client::connect_with(
        server.local_addr(),
        ClientConfig {
            retries: 5,
            backoff_base: Duration::from_millis(20),
            ..ClientConfig::default()
        },
    )
    .unwrap();
    patient.server_stats().unwrap();
    patient.server_stats().unwrap();
    assert!(
        patient.busy_answers() > 0,
        "second call must have been limited"
    );
    let metrics = server.metrics_text();
    assert!(
        metrics.lines().any(|l| l
            .strip_prefix("srj_rate_limited ")
            .is_some_and(|v| v.trim() != "0")),
        "srj_rate_limited not incremented:\n{metrics}"
    );
    server.shutdown();
}

#[test]
fn ping_pong_keepalive() {
    let _serial = serial();
    let mut server =
        Server::start("127.0.0.1:0", registry_with(5, 50), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    for _ in 0..5 {
        client.ping().unwrap();
    }
    assert_ne!(client.server_features(), 0);
    server.shutdown();
}

#[test]
fn client_retries_through_forced_busy() {
    let _serial = serial();
    let config = ServerConfig {
        fault_plan: FaultPlan {
            seed: 3,
            busy_prob: 0.5,
            busy_retry_after_ms: 1,
            ..FaultPlan::inert()
        },
        ..ServerConfig::default()
    };
    let mut server = Server::start("127.0.0.1:0", registry_with(6, 300), config).unwrap();
    let cfg = ClientConfig {
        retries: 30,
        backoff_base: Duration::from_millis(1),
        backoff_max: Duration::from_millis(10),
        ..ClientConfig::default()
    };
    let mut client = Client::connect_with(server.local_addr(), cfg).unwrap();
    for seed in 1..=8 {
        let outcome = client
            .sample(SampleRequest {
                req_id: 0,
                dataset: 6,
                l: 5.0,
                algorithm: None,
                shards: 1,
                t: 200,
                seed,
            })
            .unwrap();
        assert_eq!(outcome.status, RequestStatus::Ok);
        assert_eq!(outcome.pairs.len(), 200);
    }
    assert!(
        client.busy_answers() > 0,
        "busy_prob 0.5 must have forced at least one BUSY"
    );
    server.shutdown();
}

#[test]
fn mutations_survive_dropped_connections_exactly_once() {
    let _serial = serial();
    const BATCH: usize = 8;
    let config = ServerConfig {
        fault_plan: FaultPlan {
            seed: 5,
            drop_conn_prob: 0.15,
            ..FaultPlan::inert()
        },
        ..ServerConfig::default()
    };
    let mut server = Server::start("127.0.0.1:0", registry_with(7, 500), config).unwrap();
    let cfg = ClientConfig {
        retries: 30,
        backoff_base: Duration::from_millis(1),
        backoff_max: Duration::from_millis(10),
        ..ClientConfig::default()
    };
    let mut client = Client::connect_with(server.local_addr(), cfg).unwrap();
    let probe = |c: &mut Client| match c.epoch(7) {
        Ok((RequestStatus::Ok, info)) => info.live_s,
        other => panic!("EPOCH probe failed: {other:?}"),
    };
    let mut expected = probe(&mut client);

    let points = pseudo_points(BATCH, 99, 50.0);
    let mut ambiguous = 0u64;
    for _ in 0..25 {
        match client.insert(7, Side::S, &points) {
            Ok(o) => {
                assert_eq!(o.status, RequestStatus::Ok);
                expected += u64::from(o.applied);
            }
            // The client could not prove the retry safe; the ledger
            // resolves it — the mutation applied once or not at all,
            // never twice.
            Err(ClientError::AmbiguousMutation) => {
                ambiguous += 1;
                let live = probe(&mut client);
                assert!(
                    live == expected || live == expected + BATCH as u64,
                    "ambiguous insert must resolve to 0 or 1 applications: \
                     ledger {expected}, live {live}"
                );
                expected = live;
            }
            Err(e) => panic!("insert failed: {e}"),
        }
    }
    let live = probe(&mut client);
    assert_eq!(live, expected, "lost or doubled mutation");
    assert!(
        client.retries() > 0,
        "drop_conn_prob 0.15 must have forced at least one retry \
         ({ambiguous} ambiguous)"
    );
    server.shutdown();
}
