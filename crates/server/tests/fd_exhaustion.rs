//! Graceful fd-exhaustion: when `accept(2)` hits `EMFILE`, the event
//! loop must pause accepting with exponential backoff — journaled and
//! counted — while every established connection keeps being served,
//! and must resume accepting on its own once descriptors free up.
//! Runs in its own test binary because it manipulates the process-wide
//! `RLIMIT_NOFILE`.

use std::fs::File;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use srj_geom::Point;
use srj_net::rlimit;
use srj_obs::journal::{journal, EventKind};
use srj_server::{Client, ClientConfig, DatasetRegistry, Server, ServerConfig};

/// The value of an unlabeled `name value` series in a Prometheus text
/// exposition (0 when absent).
fn metric_value(text: &str, name: &str) -> f64 {
    text.lines()
        .find_map(|line| {
            let rest = line.strip_prefix(name)?;
            rest.strip_prefix(' ')?.trim().parse::<f64>().ok()
        })
        .unwrap_or(0.0)
}

fn registry_with(dataset: u64, n: usize) -> DatasetRegistry {
    let mut state = 0x9E37_79B9u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut points = |_side: u8| -> Vec<Point> {
        (0..n)
            .map(|_| Point::new(next() * 50.0, next() * 50.0))
            .collect()
    };
    let mut registry = DatasetRegistry::new();
    registry.register(dataset, points(0), points(1));
    registry
}

#[test]
fn emfile_backs_off_accept_and_recovers() {
    let (soft0, _) = rlimit::nofile().expect("read RLIMIT_NOFILE");
    // Lower the soft limit to just above what the process already
    // holds: enough headroom for the server (epoll fd, waker pipe,
    // listener, one accepted socket plus its shutdown clone) and one
    // client, so the hoard below has only a handful of slots to fill.
    let used = std::fs::read_dir("/proc/self/fd")
        .expect("/proc/self/fd")
        .count() as u64;
    let lowered = rlimit::set_nofile_soft(used + 24).expect("lower RLIMIT_NOFILE");
    assert!(lowered <= used + 24, "soft limit did not drop: {lowered}");

    let config = ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    };
    let mut server = Server::start("127.0.0.1:0", registry_with(1, 64), config).unwrap();
    let addr = server.local_addr().to_string();
    let cfg = ClientConfig::default();

    // An established connection from *before* the exhaustion — it must
    // keep answering throughout.
    let mut c0 = Client::connect_with(addr.as_str(), cfg).expect("connect before exhaustion");
    c0.ping().expect("ping before exhaustion");

    // Fill the fd table, then hand back exactly one slot: the raw
    // connect below spends it on the client socket, so the server's
    // accept(2) is the call that runs out.
    let mut hoard = Vec::new();
    while let Ok(f) = File::open("/dev/null") {
        hoard.push(f);
    }
    assert!(!hoard.is_empty(), "fd table was already exhausted");
    hoard.pop();
    let trigger = TcpStream::connect(addr.as_str()).expect("trigger connect");

    // The failed accept must surface as a counted, journaled backoff —
    // observed through the still-healthy established connection.
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut backoffs = 0.0;
    while Instant::now() < deadline {
        let text = c0.metrics().expect("METRICS over established conn");
        backoffs = metric_value(&text, "srj_accept_backoff_total");
        if backoffs >= 1.0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        backoffs >= 1.0,
        "accept never backed off under EMFILE (counter {backoffs})"
    );
    c0.ping()
        .expect("established connection died during exhaustion");
    assert!(
        journal()
            .recent(256)
            .iter()
            .any(|e| e.kind == EventKind::AcceptBackoff),
        "no AcceptBackoff journal event"
    );

    // Free the descriptors: the resume timer must re-register the
    // listener and accept again without any restart.
    drop(hoard);
    let mut c1 = Client::connect_with(addr.as_str(), cfg).expect("connect after recovery");
    c1.ping().expect("ping after recovery");
    c0.ping().expect("original connection after recovery");

    drop(trigger);
    server.shutdown();
    rlimit::set_nofile_soft(soft0).expect("restore RLIMIT_NOFILE");
}
