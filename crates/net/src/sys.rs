//! Raw `extern "C"` bindings for the syscalls the poller needs.
//!
//! `std` links libc on every unix target, so declaring the symbols
//! here costs nothing and keeps the workspace dependency-free. The
//! constants are the Linux ABI values (x86_64 and aarch64 agree on
//! all of them); the `poll(2)` path uses only POSIX constants.

#![allow(non_camel_case_types)]

pub type RawFd = std::os::unix::io::RawFd;

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;

pub const EPOLL_CTL_ADD: i32 = 1;
pub const EPOLL_CTL_DEL: i32 = 2;
pub const EPOLL_CTL_MOD: i32 = 3;

pub const EPOLL_CLOEXEC: i32 = 0o2000000;
pub const O_NONBLOCK: i32 = 0o4000;
pub const O_CLOEXEC: i32 = 0o2000000;

pub const POLLIN: i16 = 0x001;
pub const POLLOUT: i16 = 0x004;
pub const POLLERR: i16 = 0x008;
pub const POLLHUP: i16 = 0x010;

pub const RLIMIT_NOFILE: i32 = 7;

/// `struct epoll_event`. The x86 kernel ABI packs it to 12 bytes;
/// every other architecture uses natural alignment.
#[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(C, packed))]
#[cfg_attr(not(any(target_arch = "x86_64", target_arch = "x86")), repr(C))]
#[derive(Clone, Copy)]
pub struct epoll_event {
    pub events: u32,
    pub data: u64,
}

#[repr(C)]
#[derive(Clone, Copy)]
pub struct pollfd {
    pub fd: i32,
    pub events: i16,
    pub revents: i16,
}

#[repr(C)]
pub struct rlimit {
    pub rlim_cur: u64,
    pub rlim_max: u64,
}

extern "C" {
    pub fn epoll_create1(flags: i32) -> i32;
    pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut epoll_event) -> i32;
    pub fn epoll_wait(epfd: i32, events: *mut epoll_event, maxevents: i32, timeout: i32) -> i32;
    pub fn poll(fds: *mut pollfd, nfds: u64, timeout: i32) -> i32;
    pub fn pipe2(fds: *mut i32, flags: i32) -> i32;
    pub fn close(fd: i32) -> i32;
    pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    pub fn getrlimit(resource: i32, rlim: *mut rlimit) -> i32;
    pub fn setrlimit(resource: i32, rlim: *const rlimit) -> i32;
}

/// The last OS error as `io::Error` (reads `errno` via std).
pub fn last_error() -> std::io::Error {
    std::io::Error::last_os_error()
}
