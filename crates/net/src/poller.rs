//! Level-triggered fd readiness: `epoll(7)` with a `poll(2)` fallback.
//!
//! The two backends expose one API, chosen at construction:
//! [`BackendKind::Epoll`] keeps registrations in the kernel and waits
//! in O(ready); [`BackendKind::Poll`] keeps them in a map and rebuilds
//! the `pollfd` array per wait — O(registered), fine as a portability
//! net and as the test double that keeps the fallback honest. Setting
//! `SRJ_NET_FORCE_POLL=1` makes [`Poller::new`] pick the fallback.

use std::collections::HashMap;
use std::io;
use std::time::Duration;

use crate::sys;
use crate::sys::RawFd;

/// Which readiness directions a registration cares about.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Interest {
    pub read: bool,
    pub write: bool,
}

impl Interest {
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };
    pub const BOTH: Interest = Interest {
        read: true,
        write: true,
    };
}

/// One ready fd, tagged with the token it was registered under.
///
/// Error/hangup conditions are folded into `readable`/`writable`: the
/// owning state machine discovers the specifics from the syscall that
/// then fails, which keeps teardown on a single path.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    Epoll,
    Poll,
}

pub struct Poller {
    backend: Backend,
}

enum Backend {
    Epoll(Epoll),
    Poll(PollFallback),
}

impl Poller {
    /// Epoll unless `SRJ_NET_FORCE_POLL=1` (or a non-Linux target).
    pub fn new() -> io::Result<Poller> {
        let force_poll = std::env::var_os("SRJ_NET_FORCE_POLL").is_some_and(|v| v == "1");
        let kind = if force_poll || !cfg!(target_os = "linux") {
            BackendKind::Poll
        } else {
            BackendKind::Epoll
        };
        Poller::with_backend(kind)
    }

    pub fn with_backend(kind: BackendKind) -> io::Result<Poller> {
        let backend = match kind {
            BackendKind::Epoll => Backend::Epoll(Epoll::new()?),
            BackendKind::Poll => Backend::Poll(PollFallback::default()),
        };
        Ok(Poller { backend })
    }

    pub fn backend_kind(&self) -> BackendKind {
        match self.backend {
            Backend::Epoll(_) => BackendKind::Epoll,
            Backend::Poll(_) => BackendKind::Poll,
        }
    }

    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            Backend::Epoll(e) => e.ctl(sys::EPOLL_CTL_ADD, fd, token, interest),
            Backend::Poll(p) => {
                p.fds.insert(fd, (token, interest));
                Ok(())
            }
        }
    }

    pub fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            Backend::Epoll(e) => e.ctl(sys::EPOLL_CTL_MOD, fd, token, interest),
            Backend::Poll(p) => {
                p.fds.insert(fd, (token, interest));
                Ok(())
            }
        }
    }

    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.backend {
            Backend::Epoll(e) => e.ctl(sys::EPOLL_CTL_DEL, fd, 0, Interest::default()),
            Backend::Poll(p) => {
                p.fds.remove(&fd);
                Ok(())
            }
        }
    }

    /// Blocks until at least one registered fd is ready, the timeout
    /// elapses, or a signal lands (reported as zero events). Appends
    /// into `events` after clearing it.
    pub fn wait(
        &mut self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        events.clear();
        let timeout_ms = match timeout {
            // Round up so a 100µs deadline does not busy-spin at 0ms.
            Some(d) => i32::try_from(d.as_nanos().div_ceil(1_000_000)).unwrap_or(i32::MAX),
            None => -1,
        };
        match &mut self.backend {
            Backend::Epoll(e) => e.wait(events, timeout_ms),
            Backend::Poll(p) => p.wait(events, timeout_ms),
        }
    }
}

struct Epoll {
    epfd: RawFd,
    buf: Vec<sys::epoll_event>,
}

impl Epoll {
    fn new() -> io::Result<Epoll> {
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(sys::last_error());
        }
        Ok(Epoll {
            epfd,
            buf: vec![sys::epoll_event { events: 0, data: 0 }; 1024],
        })
    }

    fn ctl(&mut self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut flags = sys::EPOLLRDHUP;
        if interest.read {
            flags |= sys::EPOLLIN;
        }
        if interest.write {
            flags |= sys::EPOLLOUT;
        }
        let mut ev = sys::epoll_event {
            events: flags,
            data: token,
        };
        let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(sys::last_error());
        }
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        let n = unsafe {
            sys::epoll_wait(
                self.epfd,
                self.buf.as_mut_ptr(),
                self.buf.len() as i32,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = sys::last_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        for raw in &self.buf[..n as usize] {
            // Copy out of the (possibly packed) struct before use.
            let flags = raw.events;
            let token = raw.data;
            let hangup = flags & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0;
            events.push(Event {
                token,
                readable: flags & sys::EPOLLIN != 0 || hangup,
                writable: flags & sys::EPOLLOUT != 0 || flags & sys::EPOLLERR != 0,
            });
        }
        Ok(events.len())
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { sys::close(self.epfd) };
    }
}

#[derive(Default)]
struct PollFallback {
    fds: HashMap<RawFd, (u64, Interest)>,
    buf: Vec<sys::pollfd>,
}

impl PollFallback {
    fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        self.buf.clear();
        let mut tokens = Vec::with_capacity(self.fds.len());
        for (&fd, &(token, interest)) in &self.fds {
            let mut flags = 0i16;
            if interest.read {
                flags |= sys::POLLIN;
            }
            if interest.write {
                flags |= sys::POLLOUT;
            }
            self.buf.push(sys::pollfd {
                fd,
                events: flags,
                revents: 0,
            });
            tokens.push(token);
        }
        let n = unsafe { sys::poll(self.buf.as_mut_ptr(), self.buf.len() as u64, timeout_ms) };
        if n < 0 {
            let err = sys::last_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        for (pfd, &token) in self.buf.iter().zip(&tokens) {
            let r = pfd.revents;
            if r == 0 {
                continue;
            }
            let hangup = r & (sys::POLLERR | sys::POLLHUP) != 0;
            events.push(Event {
                token,
                readable: r & sys::POLLIN != 0 || hangup,
                writable: r & sys::POLLOUT != 0 || r & sys::POLLERR != 0,
            });
        }
        Ok(events.len())
    }
}

/// Cross-thread wake-up for a [`Poller::wait`]: a nonblocking pipe.
/// Register [`Waker::fd`] for reads under a reserved token; any
/// thread may call [`Waker::wake`]; the loop calls [`Waker::drain`]
/// when the token fires.
pub struct Waker {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl Waker {
    pub fn new() -> io::Result<Waker> {
        let mut fds = [0i32; 2];
        let rc = unsafe { sys::pipe2(fds.as_mut_ptr(), sys::O_NONBLOCK | sys::O_CLOEXEC) };
        if rc < 0 {
            return Err(sys::last_error());
        }
        Ok(Waker {
            read_fd: fds[0],
            write_fd: fds[1],
        })
    }

    /// The fd to register with the poller (read interest).
    pub fn fd(&self) -> RawFd {
        self.read_fd
    }

    /// Nonblocking, safe from any thread. A full pipe means a wake is
    /// already pending, which is all a wake needs to guarantee.
    pub fn wake(&self) {
        let byte = 1u8;
        unsafe { sys::write(self.write_fd, &byte, 1) };
    }

    /// Drain pending wake bytes so level-triggered polling settles.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { sys::read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                break;
            }
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.read_fd);
            sys::close(self.write_fd);
        }
    }
}

// Waker is a pair of fds; writes from any thread are atomic.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::time::Instant;

    fn backends() -> Vec<BackendKind> {
        if cfg!(target_os = "linux") {
            vec![BackendKind::Epoll, BackendKind::Poll]
        } else {
            vec![BackendKind::Poll]
        }
    }

    #[test]
    fn waker_wakes_and_drains() {
        for kind in backends() {
            let mut poller = Poller::with_backend(kind).unwrap();
            let waker = std::sync::Arc::new(Waker::new().unwrap());
            poller.register(waker.fd(), 7, Interest::READ).unwrap();

            let mut events = Vec::new();
            // No wake: times out empty.
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert_eq!(n, 0, "{kind:?}");

            let w = waker.clone();
            let t = std::thread::spawn(move || w.wake());
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            t.join().unwrap();
            assert_eq!(n, 1, "{kind:?}");
            assert_eq!(events[0].token, 7);
            assert!(events[0].readable);

            waker.drain();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert_eq!(n, 0, "{kind:?}: drained waker must go quiet");
        }
    }

    #[test]
    fn tcp_read_and_write_readiness() {
        use std::net::{TcpListener, TcpStream};
        use std::os::unix::io::AsRawFd;

        for kind in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let mut peer = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (sock, _) = listener.accept().unwrap();
            sock.set_nonblocking(true).unwrap();

            let mut poller = Poller::with_backend(kind).unwrap();
            poller
                .register(sock.as_raw_fd(), 3, Interest::BOTH)
                .unwrap();

            let mut events = Vec::new();
            // Idle socket: writable (empty send buffer), not readable.
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(events.iter().any(|e| e.token == 3 && e.writable));
            assert!(!events.iter().any(|e| e.readable), "{kind:?}");

            peer.write_all(b"ping").unwrap();
            let deadline = Instant::now() + Duration::from_secs(5);
            loop {
                poller
                    .wait(&mut events, Some(Duration::from_millis(100)))
                    .unwrap();
                if events.iter().any(|e| e.token == 3 && e.readable) {
                    break;
                }
                assert!(Instant::now() < deadline, "{kind:?}: no readable event");
            }
            let mut buf = [0u8; 8];
            let n = (&sock).read(&mut buf).unwrap();
            assert_eq!(&buf[..n], b"ping");

            poller.deregister(sock.as_raw_fd()).unwrap();
            drop(peer);
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
            assert_eq!(n, 0, "{kind:?}: deregistered fd must not report");
        }
    }
}
