//! `RLIMIT_NOFILE` helpers.
//!
//! The high-fanout load generator raises the soft limit toward the
//! hard cap before opening thousands of sockets; the fd-exhaustion
//! test lowers it to force `EMFILE` deterministically.

use std::io;

use crate::sys;

/// Current `(soft, hard)` fd limits.
pub fn nofile() -> io::Result<(u64, u64)> {
    let mut lim = sys::rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    let rc = unsafe { sys::getrlimit(sys::RLIMIT_NOFILE, &mut lim) };
    if rc < 0 {
        return Err(sys::last_error());
    }
    Ok((lim.rlim_cur, lim.rlim_max))
}

/// Sets the soft fd limit (hard limit unchanged; `soft` is clamped to
/// it). Returns the soft limit actually installed.
pub fn set_nofile_soft(soft: u64) -> io::Result<u64> {
    let (_, hard) = nofile()?;
    let lim = sys::rlimit {
        rlim_cur: soft.min(hard),
        rlim_max: hard,
    };
    let rc = unsafe { sys::setrlimit(sys::RLIMIT_NOFILE, &lim) };
    if rc < 0 {
        return Err(sys::last_error());
    }
    Ok(lim.rlim_cur)
}

/// Raises the soft fd limit to at least `min` when the hard limit
/// allows; never lowers it. Returns the (possibly unchanged) soft
/// limit in force afterwards.
pub fn raise_nofile(min: u64) -> io::Result<u64> {
    let (soft, _) = nofile()?;
    if soft >= min {
        return Ok(soft);
    }
    set_nofile_soft(min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_the_soft_limit() {
        let (soft, hard) = nofile().unwrap();
        assert!(soft > 0 && hard >= soft);
        // Re-installing the current value must succeed and not lower
        // anything (this test shares its process with others).
        assert_eq!(set_nofile_soft(soft).unwrap(), soft.min(hard));
        assert!(raise_nofile(soft).unwrap() >= soft);
    }
}
