//! A hashed timer wheel.
//!
//! Deadlines hash into `slots` buckets of `tick` width; entries whose
//! deadline lies beyond one wheel revolution simply stay in their
//! bucket until the cursor passes them on a later round (the classic
//! "hashed wheel with rounds" scheme, kept implicit by storing each
//! entry's absolute deadline tick). Scheduling is O(1); advancing
//! does O(entries in passed slots) work; [`TimerWheel::next_timeout`]
//! scans at most one revolution of slot headers.
//!
//! Cancellation is intentionally absent: the owner validates every
//! fired key against current state and ignores stale ones. That keeps
//! re-arming (e.g. a read deadline pushed back on every byte of
//! progress) allocation-free and race-free — the price is that a
//! superseded entry occupies its slot until its original deadline
//! passes, which is bounded by the deadline horizon.

use std::time::{Duration, Instant};

struct Entry<K> {
    deadline_tick: u64,
    key: K,
}

pub struct TimerWheel<K> {
    slots: Vec<Vec<Entry<K>>>,
    tick: Duration,
    start: Instant,
    /// Absolute tick the cursor has advanced through (exclusive).
    current_tick: u64,
    len: usize,
}

impl<K> TimerWheel<K> {
    /// `tick` must be nonzero; `slots` ≥ 2. A 1ms tick with 512 slots
    /// gives a 512ms revolution — longer deadlines take extra rounds.
    pub fn new(tick: Duration, slots: usize) -> TimerWheel<K> {
        assert!(!tick.is_zero() && slots >= 2);
        TimerWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            tick,
            start: Instant::now(),
            current_tick: 0,
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn tick_of(&self, t: Instant) -> u64 {
        let ns = t.saturating_duration_since(self.start).as_nanos();
        (ns / self.tick.as_nanos()) as u64
    }

    /// Arms `key` to fire at (or just after) `deadline`. A deadline in
    /// the past fires on the next [`TimerWheel::advance`].
    pub fn schedule(&mut self, deadline: Instant, key: K) {
        let deadline_tick = self.tick_of(deadline).max(self.current_tick);
        let slot = (deadline_tick % self.slots.len() as u64) as usize;
        self.slots[slot].push(Entry { deadline_tick, key });
        self.len += 1;
    }

    /// How long a poller may sleep before the next entry could fire:
    /// the distance to the first occupied slot ahead of the cursor
    /// (an entry there may still be rounds away — the caller wakes,
    /// fires nothing, and sleeps again; rare and harmless). `None`
    /// when the wheel is empty.
    pub fn next_timeout(&self, now: Instant) -> Option<Duration> {
        if self.len == 0 {
            return None;
        }
        let slots = self.slots.len() as u64;
        for ahead in 0..slots {
            let tick = self.current_tick + ahead;
            if !self.slots[(tick % slots) as usize].is_empty() {
                let fire_at = self.start + self.tick * (tick + 1) as u32;
                return Some(fire_at.saturating_duration_since(now));
            }
        }
        // Every remaining entry is ≥ one full revolution out.
        Some(self.tick * self.slots.len() as u32)
    }

    /// Sweeps the cursor up to `now`, appending every due key to
    /// `fired` (in slot order; ties within a slot fire in insertion
    /// order). Entries seen in a passed slot but not yet due stay put.
    pub fn advance(&mut self, now: Instant, fired: &mut Vec<K>) {
        let target = self.tick_of(now);
        if target < self.current_tick {
            return;
        }
        let slots = self.slots.len() as u64;
        // After a sleep longer than a revolution each slot passes at
        // least once, so one full sweep visits everything.
        let steps = (target - self.current_tick + 1).min(slots);
        for i in 0..steps {
            let slot = ((self.current_tick + i) % slots) as usize;
            let bucket = &mut self.slots[slot];
            let mut j = 0;
            while j < bucket.len() {
                if bucket[j].deadline_tick <= target {
                    fired.push(bucket.swap_remove(j).key);
                    self.len -= 1;
                } else {
                    j += 1;
                }
            }
        }
        self.current_tick = target + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_until<K: Clone>(wheel: &mut TimerWheel<K>, deadline: Instant) -> Vec<K> {
        let mut fired = Vec::new();
        wheel.advance(deadline, &mut fired);
        fired
    }

    #[test]
    fn fires_in_deadline_order_across_slots() {
        let mut wheel = TimerWheel::new(Duration::from_millis(1), 8);
        let now = Instant::now();
        wheel.schedule(now + Duration::from_millis(5), "b");
        wheel.schedule(now + Duration::from_millis(2), "a");
        wheel.schedule(now + Duration::from_millis(9), "c");
        assert_eq!(wheel.len(), 3);

        let fired = drain_until(&mut wheel, now + Duration::from_millis(3));
        assert_eq!(fired, vec!["a"]);
        let fired = drain_until(&mut wheel, now + Duration::from_millis(7));
        assert_eq!(fired, vec!["b"]);
        let fired = drain_until(&mut wheel, now + Duration::from_millis(20));
        assert_eq!(fired, vec!["c"]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn deadlines_beyond_one_revolution_wait_their_rounds() {
        let mut wheel = TimerWheel::new(Duration::from_millis(1), 4);
        let now = Instant::now();
        // 4 slots × 1ms tick: a 10ms deadline is 2.5 revolutions out.
        wheel.schedule(now + Duration::from_millis(10), "far");
        wheel.schedule(now + Duration::from_millis(2), "near");

        let fired = drain_until(&mut wheel, now + Duration::from_millis(4));
        assert_eq!(fired, vec!["near"], "far entry must survive a pass");
        let fired = drain_until(&mut wheel, now + Duration::from_millis(8));
        assert!(fired.is_empty(), "still a round short");
        let fired = drain_until(&mut wheel, now + Duration::from_millis(12));
        assert_eq!(fired, vec!["far"]);
    }

    #[test]
    fn past_deadlines_fire_on_next_advance() {
        let mut wheel = TimerWheel::new(Duration::from_millis(1), 8);
        let now = Instant::now();
        let mut fired = Vec::new();
        wheel.advance(now + Duration::from_millis(50), &mut fired);
        wheel.schedule(now, "stale");
        wheel.advance(now + Duration::from_millis(51), &mut fired);
        assert_eq!(fired, vec!["stale"]);
    }

    #[test]
    fn next_timeout_tracks_first_occupied_slot() {
        let mut wheel: TimerWheel<u32> = TimerWheel::new(Duration::from_millis(1), 16);
        let now = Instant::now();
        assert!(wheel.next_timeout(now).is_none());

        wheel.schedule(now + Duration::from_millis(6), 1);
        let hint = wheel.next_timeout(now).unwrap();
        assert!(hint <= Duration::from_millis(8), "hint {hint:?} too far");

        // Sleeping the hint then advancing must fire the entry within
        // a tick or two of its deadline.
        let wake = now + hint + Duration::from_millis(2);
        let mut fired = Vec::new();
        wheel.advance(wake, &mut fired);
        assert_eq!(fired, vec![1]);
    }

    #[test]
    fn rearm_supersedes_via_owner_validation() {
        // The wheel itself keeps stale entries; the contract is that
        // both fire and the owner drops the stale one. Model that.
        let mut wheel = TimerWheel::new(Duration::from_millis(1), 8);
        let now = Instant::now();
        wheel.schedule(now + Duration::from_millis(2), ("conn1", 1u64));
        wheel.schedule(now + Duration::from_millis(4), ("conn1", 2u64));
        let armed_generation = 2u64;
        let fired = drain_until(&mut wheel, now + Duration::from_millis(10));
        let live: Vec<_> = fired
            .into_iter()
            .filter(|(_, generation)| *generation == armed_generation)
            .collect();
        assert_eq!(live, vec![("conn1", 2)]);
    }
}
