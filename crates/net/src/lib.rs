//! `srj-net` — dependency-free readiness primitives for the serving
//! stack.
//!
//! The build environment has no registry access, so this crate binds
//! the handful of syscalls a readiness loop needs directly via
//! `extern "C"` (the symbols live in the libc that `std` already
//! links on every supported target) instead of pulling in `libc`/
//! `mio`:
//!
//! * [`Poller`] — level-triggered readiness over a set of fds, backed
//!   by `epoll(7)` on Linux with a portable `poll(2)` fallback
//!   (forced via `SRJ_NET_FORCE_POLL=1` so the fallback stays tested);
//! * [`Waker`] — a nonblocking pipe for waking a [`Poller::wait`]
//!   from another thread (workers kick the event loop through this);
//! * [`TimerWheel`] — a hashed timer wheel; everything the server
//!   used blocking-socket timeouts for (handshake/read/write/idle
//!   deadlines, fault delays, accept backoff) becomes an entry here;
//! * [`rlimit`] — `RLIMIT_NOFILE` helpers for the high-fanout load
//!   generator (raise) and the fd-exhaustion test (lower).
//!
//! Everything is synchronous and single-threaded by design: one
//! event-loop thread owns the poller and the wheel; only [`Waker`]
//! is shared across threads.

mod poller;
pub mod rlimit;
mod sys;
mod timer;

pub use poller::{BackendKind, Event, Interest, Poller, Waker};
pub use timer::TimerWheel;
