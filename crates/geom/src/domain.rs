use crate::{Point, Rect};

/// The experimental domain used throughout the paper's evaluation:
/// coordinates are normalised into `[0, 10000] × [0, 10000]` (§V-A).
pub const DEFAULT_DOMAIN: f64 = 10_000.0;

/// Axis-aligned bounding rectangle of a non-empty point slice.
///
/// Returns `None` for an empty slice.
pub fn bounding_rect(points: &[Point]) -> Option<Rect> {
    let (first, rest) = points.split_first()?;
    let mut r = Rect::degenerate(*first);
    for p in rest {
        r = r.grown_to(*p);
    }
    Some(r)
}

/// Normalises `points` in place so both coordinates span `[0, domain]`,
/// mirroring the paper's preprocessing ("We normalized the coordinates of
/// each dataset so that the domain was [0, 10000] × [0, 10000]").
///
/// Each axis is scaled independently. A degenerate axis (all points share
/// the same coordinate) is mapped to `domain / 2`.
pub fn normalize_to_domain(points: &mut [Point], domain: f64) {
    let Some(bb) = bounding_rect(points) else {
        return;
    };
    let scale_axis = |extent: f64| if extent > 0.0 { domain / extent } else { 0.0 };
    let sx = scale_axis(bb.width());
    let sy = scale_axis(bb.height());
    for p in points.iter_mut() {
        p.x = if sx > 0.0 {
            (p.x - bb.min_x) * sx
        } else {
            domain * 0.5
        };
        p.y = if sy > 0.0 {
            (p.y - bb.min_y) * sy
        } else {
            domain * 0.5
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounding_rect_empty_is_none() {
        assert_eq!(bounding_rect(&[]), None);
    }

    #[test]
    fn bounding_rect_covers_all_points() {
        let pts = vec![
            Point::new(3.0, -1.0),
            Point::new(-5.0, 2.0),
            Point::new(0.0, 7.0),
        ];
        let bb = bounding_rect(&pts).unwrap();
        assert_eq!(bb, Rect::new(-5.0, -1.0, 3.0, 7.0));
        assert!(pts.iter().all(|p| bb.contains(*p)));
    }

    #[test]
    fn normalize_spans_domain() {
        let mut pts = vec![
            Point::new(10.0, 100.0),
            Point::new(20.0, 300.0),
            Point::new(15.0, 200.0),
        ];
        normalize_to_domain(&mut pts, DEFAULT_DOMAIN);
        let bb = bounding_rect(&pts).unwrap();
        assert_eq!(bb.min_x, 0.0);
        assert_eq!(bb.min_y, 0.0);
        assert!((bb.max_x - DEFAULT_DOMAIN).abs() < 1e-9);
        assert!((bb.max_y - DEFAULT_DOMAIN).abs() < 1e-9);
        // relative order preserved
        assert!(pts[0].x < pts[2].x && pts[2].x < pts[1].x);
    }

    #[test]
    fn normalize_degenerate_axis_centers() {
        let mut pts = vec![Point::new(5.0, 1.0), Point::new(5.0, 2.0)];
        normalize_to_domain(&mut pts, 100.0);
        assert_eq!(pts[0].x, 50.0);
        assert_eq!(pts[1].x, 50.0);
        assert_eq!(pts[0].y, 0.0);
        assert_eq!(pts[1].y, 100.0);
    }

    #[test]
    fn normalize_empty_is_noop() {
        let mut pts: Vec<Point> = vec![];
        normalize_to_domain(&mut pts, 100.0);
        assert!(pts.is_empty());
    }
}
