use std::fmt;

/// Identifier of a point: its index in the owning dataset slice.
///
/// The paper's datasets top out at a few hundred million points, so `u32`
/// is sufficient and halves the memory of every id-carrying structure
/// compared to `usize` (see the Rust Performance Book's "Smaller Integers"
/// guidance).
pub type PointId = u32;

/// A 2-D point with `f64` coordinates.
///
/// Points are `Copy` (16 bytes) and are stored by value in dense arrays;
/// algorithms refer to them by [`PointId`].
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// x coordinate.
    pub x: f64,
    /// y coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Coordinate along `axis` (0 = x, 1 = y).
    ///
    /// # Panics
    ///
    /// Panics if `axis > 1`.
    #[inline]
    pub fn coord(&self, axis: usize) -> f64 {
        match axis {
            0 => self.x,
            1 => self.y,
            _ => panic!("axis must be 0 or 1, got {axis}"),
        }
    }

    /// Squared Euclidean distance to `other`.
    #[inline]
    pub fn dist2(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point { x, y }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coord_selects_axis() {
        let p = Point::new(3.0, -7.5);
        assert_eq!(p.coord(0), 3.0);
        assert_eq!(p.coord(1), -7.5);
    }

    #[test]
    #[should_panic(expected = "axis must be 0 or 1")]
    fn coord_rejects_bad_axis() {
        Point::new(0.0, 0.0).coord(2);
    }

    #[test]
    fn dist2_is_squared_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist2(&b), 25.0);
        assert_eq!(b.dist2(&a), 25.0);
        assert_eq!(a.dist2(&a), 0.0);
    }

    #[test]
    fn from_tuple() {
        let p: Point = (1.0, 2.0).into();
        assert_eq!(p, Point::new(1.0, 2.0));
    }

    #[test]
    fn point_is_16_bytes() {
        assert_eq!(std::mem::size_of::<Point>(), 16);
    }
}
